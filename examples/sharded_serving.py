"""Sharded serving: one router, a fleet of live streams, batched drains.

Run:  python examples/sharded_serving.py

``examples/streaming_monitoring.py`` serves ONE stream with a dedicated
:class:`repro.stream.StreamScorer`.  A monitoring fleet has hundreds of
hosts, each its own series, arriving interleaved and in bursts.  This
example

1. trains one RAE on shared history and hangs a fleet of host streams off
   one :class:`repro.serve.StreamRouter` (a scorer shard per host),
2. replays a bursty interleaved feed through the bounded ingestion queue,
   draining every burst as one micro-batched forward pass across shards,
3. alerts per stream, and reads the router's stats surface (per-stream
   lag, scored/dropped counters, queue depth) — the numbers an operator
   would export to a dashboard.
"""

import numpy as np

from repro.core import RAE
from repro.serve import StreamRouter


def make_traffic(seed, length, incidents=()):
    rng = np.random.default_rng(seed)
    t = np.arange(length)
    values = (
        np.sin(2 * np.pi * t / 48)
        + 0.3 * np.sin(2 * np.pi * t / 12)
        + 0.08 * rng.standard_normal(length)
    )
    for pos, magnitude in incidents:
        values[pos] += magnitude
    return values[:, None]


def main():
    hosts = ["web-%02d" % i for i in range(12)]
    history = make_traffic(seed=0, length=480)
    live = {
        host: make_traffic(seed=10 + i, length=180,
                           incidents=((110, 5.0),) if host == "web-07" else ())
        for i, host in enumerate(hosts)
    }

    print("training one RAE on %d shared historical points ..." % len(history))
    detector = RAE(max_iterations=12).fit(history)

    # One shard per host, all sharing the fitted detector — which is what
    # lets every drain group their forward passes into one batch.
    router = StreamRouter(detector, window=96, queue_limit=2048)
    for host in hosts:
        router.add_stream(host).seed(history[-96:])

    # Calibrate one alert threshold on the history (shared process).
    baseline = router.stream(hosts[0]).rescore()
    threshold = 2.0 * baseline.max()
    print("serving %d streams, alert threshold %.4f" % (len(hosts), threshold))

    # --- bursty replay: arrivals enqueue, drains score ------------------ #
    alerts = []
    burst = 8  # arrivals buffered before each drain (per stream)
    length = len(next(iter(live.values())))
    for lo in range(0, length, burst):
        for host in hosts:
            router.submit_many(host, live[host][lo : lo + burst])
        for host, scores in router.drain().items():
            for offset, score in enumerate(scores):
                if score > threshold:
                    alerts.append((host, lo + offset, float(score)))

    for host, step, score in alerts:
        print("ALERT %-8s t=%3d score=%8.4f (threshold %.4f)"
              % (host, step, score, threshold))
    stats = router.stats()
    print("router: %d streams, %d scored, %d dropped, %d drains, "
          "queue depth %d"
          % (stats["streams"], stats["scored"], stats["dropped"],
             stats["drains"], stats["queue_depth"]))
    worst = max(stats["per_stream"].items(), key=lambda kv: kv[1]["lag"])
    print("max per-stream lag: %s (%d queued)" % (worst[0], worst[1]["lag"]))

    assert any(host == "web-07" for host, __, __s in alerts), (
        "the planted incident on web-07 should have alerted"
    )
    print("done: the planted incident on web-07 was caught.")


if __name__ == "__main__":
    main()
