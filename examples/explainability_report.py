"""Explainability analysis: reproduce the Fig. 1 / Fig. 16 story end to end.

Run:  python examples/explainability_report.py

Fits a robust method (RDAE) and a standard autoencoder (RNNAE) on the same
contaminated series, then (i) renders both clean series as text sparklines
so the visual contrast of Fig. 1 is evident, and (ii) quantifies the
contrast with the post-hoc explainability scores ES_PRM and ES_SSA of
Section IV.
"""

import numpy as np

from repro import RDAE
from repro.baselines import RNNAE
from repro.explain import analyze_methods
from repro.metrics import roc_auc
from repro.tsops import standardize
from repro.viz import sparkline


def make_series(length=500, seed=13):
    rng = np.random.default_rng(seed)
    t = np.arange(length)
    values = np.sin(2 * np.pi * t / 50) + 0.15 * rng.standard_normal(length)
    labels = np.zeros(length, dtype=int)
    for pos in rng.choice(length, 6, replace=False):
        values[pos] += rng.choice([-1, 1]) * rng.uniform(4, 7)
        labels[pos] = 1
    return values[:, None], labels


def main():
    values, labels = make_series()
    arr = standardize(values)

    rdae = RDAE(window=50, max_outer=2, inner_iterations=6,
                series_iterations=6).fit(values)
    # Train the plain AE to convergence: an under-trained RNNAE outputs an
    # amplitude-collapsed, near-flat reconstruction that trivially games the
    # RMSE-based scores — the paper's "framework C" pathology (Fig. 5d).
    rnnae = RNNAE(epochs=25, hidden=32).fit(values)

    print("input series          |%s|" % sparkline(arr, 100))
    print("RDAE clean series T_L |%s|" % sparkline(rdae.clean_series, 100))
    from repro.explain import extract_clean_series

    rnnae_clean = extract_clean_series(rnnae, values)
    print("RNNAE reconstruction  |%s|" % sparkline(rnnae_clean, 100))

    print()
    print("accuracy (ROC): RDAE %.3f, RNNAE %.3f" % (
        roc_auc(labels, rdae.score(values)),
        roc_auc(labels, rnnae.fit_score(values)),
    ))

    report = analyze_methods(
        {"RDAE": rdae, "RNNAE": rnnae}, values, gamma_prm=0.5, gamma_ssa=0.15
    )
    print()
    print("post-hoc explainability (smaller N = simpler clean series):")
    for name, entry in report.scores.items():
        print("  %-6s ES_PRM=%-4s ES_SSA=%-4s" % (
            name,
            entry["ES_PRM"] if entry["ES_PRM"] is not None else ">9",
            entry["ES_SSA"] if entry["ES_SSA"] is not None else ">9",
        ))
    print("  PHE-PRM RMSE curves (N: RMSE):")
    for name, curve in report.prm_curves.items():
        pretty = ", ".join("%d: %.3f" % (n, curve[n]) for n in sorted(curve))
        print("    %-6s %s" % (name, pretty))
    print()
    print("ranking (most explainable first): %s"
          % " > ".join(report.ranking("ES_PRM")))


if __name__ == "__main__":
    main()
