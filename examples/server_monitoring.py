"""Server-workload monitoring: the paper's motivating S5/KPI scenario.

Run:  python examples/server_monitoring.py

Generates a Yahoo-S5-style service-workload series (seasonal pattern, mild
trend, sparse incidents), compares RDAE against representative baselines
from each family (density: LOF; decomposition: SSA; deep: CNN autoencoder),
and prints a small leaderboard plus per-incident detection detail.
"""

import numpy as np

from repro import RDAE
from repro.baselines import CNNAE, LOF, SSADetector
from repro.datasets import load_dataset
from repro.metrics import best_f1, pr_auc, roc_auc


def main():
    dataset = load_dataset("S5", seed=11, scale=0.25, num_series=3)
    print(dataset.summary())

    detectors = {
        "RDAE": lambda: RDAE(window=40, max_outer=2, inner_iterations=5,
                             series_iterations=5),
        "LOF": lambda: LOF(n_neighbors=20, context=3),
        "SSA": lambda: SSADetector(n_components=3),
        "CNNAE": lambda: CNNAE(epochs=10),
    }

    print()
    print("%-8s %8s %8s %8s" % ("method", "PR", "ROC", "bestF1"))
    leaderboard = {}
    for name, factory in detectors.items():
        prs, rocs, f1s = [], [], []
        for ts in dataset:
            if ts.labels.sum() == 0:
                continue
            scores = factory().fit_score(ts)
            prs.append(pr_auc(ts.labels, scores))
            rocs.append(roc_auc(ts.labels, scores))
            f1s.append(best_f1(ts.labels, scores))
        leaderboard[name] = (np.mean(prs), np.mean(rocs), np.mean(f1s))
        print("%-8s %8.3f %8.3f %8.3f" % (name, *leaderboard[name]))

    # Per-incident drill-down with RDAE on the first series.
    ts = dataset[0]
    detector = detectors["RDAE"]()
    scores = detector.fit_score(ts)
    incidents = np.flatnonzero(ts.labels)
    if incidents.size:
        print()
        print("RDAE per-incident detail (series %s):" % ts.name)
        threshold = np.quantile(scores, 0.99)
        for pos in incidents:
            flag = "DETECTED" if scores[pos] > threshold else "missed"
            print("  t=%-5d score=%8.4f  %s" % (pos, scores[pos], flag))


if __name__ == "__main__":
    main()
