"""ECG arrhythmia detection: 2-lead electrocardiogram discords.

Run:  python examples/ecg_anomaly.py

Uses the ECG surrogate (quasi-periodic PQRST trains with arrhythmic beats
and electrode spikes) to show RAE against the classic similarity-based
discord detector (Matrix Profile) — the two ends of the paper's method
spectrum — and renders a text "strip chart" of scores around a detected
anomaly.
"""

import numpy as np

from repro import RAE
from repro.baselines import MatrixProfile
from repro.datasets import load_dataset
from repro.metrics import pr_auc, roc_auc
from repro.viz import score_strip


def main():
    dataset = load_dataset("ECG", seed=3, scale=0.12)
    ts = dataset[0]
    print(dataset.summary())
    print("patient series %s: %d observations, %d leads, %d outlier points"
          % (ts.name, ts.length, ts.dims, ts.labels.sum()))

    rae = RAE(lam=0.1, max_iterations=25)
    rae_scores = rae.fit_score(ts)
    mp_scores = MatrixProfile(pattern_size=25).fit_score(ts)

    print()
    print("%-14s %8s %8s" % ("method", "PR", "ROC"))
    for name, scores in (("RAE", rae_scores), ("MatrixProfile", mp_scores)):
        print("%-14s %8.3f %8.3f"
              % (name, pr_auc(ts.labels, scores), roc_auc(ts.labels, scores)))

    peak = int(np.argmax(rae_scores))
    print()
    print("score strip around the strongest RAE detection (t=%d):" % peak)
    print("  waveform: 'o'   score bar: '#'   true outlier: '!'")
    print(score_strip(np.asarray(ts.values), rae_scores, ts.labels,
                      start=max(peak - 15, 0), stop=peak + 15))


if __name__ == "__main__":
    main()
