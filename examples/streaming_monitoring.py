"""Streaming monitoring: serve a trained detector against live traffic.

Run:  python examples/streaming_monitoring.py

The offline pipeline (fit + score the same series) covers the paper's
experiments; production monitoring instead trains once on history and scores
points as they arrive.  This example

1. trains an RAE on a day of clean-ish history,
2. streams "live" points through :class:`repro.stream.StreamScorer`,
   alerting when the score crosses a threshold calibrated on the history,
3. scores a whole fleet of series in one shot with
   :class:`repro.eval.BatchScoringEngine` (micro-batched forward passes),
   warm-started from a detector saved to disk.
"""

import os
import tempfile

import numpy as np

from repro.core import RAE, save_detector
from repro.eval import BatchScoringEngine
from repro.stream import StreamScorer


def make_traffic(seed, length, incidents=()):
    rng = np.random.default_rng(seed)
    t = np.arange(length)
    values = (
        np.sin(2 * np.pi * t / 48)                  # daily seasonality
        + 0.3 * np.sin(2 * np.pi * t / 12)          # intra-day ripple
        + 0.08 * rng.standard_normal(length)
    )
    for pos, magnitude in incidents:
        values[pos] += magnitude
    return values[:, None]


def main():
    history = make_traffic(seed=0, length=480)
    live = make_traffic(seed=1, length=240,
                        incidents=((60, 4.5), (150, -5.0), (200, 3.8)))

    print("training RAE on %d historical points ..." % len(history))
    detector = RAE(max_iterations=12).fit(history)

    # Calibrate an alert threshold on the history's streamed scores,
    # replaying it in window-sized chunks so every point gets a real score
    # (a single oversized chunk would zero-score all but the last window).
    calibration = StreamScorer(detector, window=96)
    baseline = np.concatenate([calibration.push_many(history[lo : lo + 96])
                               for lo in range(0, len(history), 96)])
    threshold = 2.0 * baseline[96:].max()
    print("alert threshold (2x historical peak): %.4f" % threshold)

    # --- live loop: one push per arrival, bounded work per point ---------
    scorer = StreamScorer(detector, window=96)
    scorer.seed(history[-96:])           # recent context, no scoring pass
    alerts = []
    for step, point in enumerate(live):
        score = scorer.push(point)
        if score > threshold:
            alerts.append(step)
            print("  ALERT t=%-4d score=%8.4f value=%+.3f"
                  % (step, score, float(point[0])))
    print("streamed %d live points, %d alerts at %s"
          % (len(live), len(alerts), alerts))

    # --- fleet scoring: one engine, many series --------------------------
    fleet = [make_traffic(seed=10 + i, length=240,
                          incidents=((30 + 17 * i, 5.0),))
             for i in range(6)]
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "rae.npz")
        save_detector(detector, path)           # ship the trained model
        engine = BatchScoringEngine.from_saved(path, batch_size=8)
        all_scores = engine.score_many(fleet)
    print("\nfleet of %d series scored through batched forward passes:"
          % len(fleet))
    for i, scores in enumerate(all_scores):
        peak = int(np.argmax(scores))
        print("  series %d: peak score %8.4f at t=%d (incident at t=%d)"
              % (i, scores[peak], peak, 30 + 17 * i))


if __name__ == "__main__":
    main()
