"""Spec-driven pipelines: JSON in, fitted/served/recovered scorers out.

Run:  python examples/pipeline_specs.py

The whole protocol — preprocess -> detector -> threshold -> explain — is
one JSON document (:class:`repro.api.PipelineSpec`).  This example walks
the full life of such a spec:

1. write a pipeline spec as JSON (the artefact you would code-review and
   deploy),
2. build + fit the :class:`repro.api.Pipeline`, detect and explain
   anomalies on a seeded series,
3. persist the fitted pipeline (spec sidecar + npz weights) and reload it
   into an identical scorer,
4. hang a :class:`repro.serve.StreamRouter` fleet off the restored
   pipeline's detector, then save the router mid-stream and
   ``StreamRouter.restore`` it — the recovered shards resume scoring
   exactly where the originals stopped.
"""

import json
import os
import tempfile

import numpy as np

from repro.api import Pipeline
from repro.core import load_pipeline
from repro.serve import StreamRouter

SPEC = {
    "detector": {"method": "RAE", "params": {"max_iterations": 10}},
    "preprocess": [{"kind": "clip", "lo": -6.0, "hi": 6.0}],
    "threshold": {"kind": "quantile", "q": 0.98},
    "explain": {"normalize": True},
}


def make_series(seed, length, incidents=()):
    rng = np.random.default_rng(seed)
    t = np.arange(length)
    values = np.sin(2 * np.pi * t / 40) + 0.08 * rng.standard_normal(length)
    for pos, magnitude in incidents:
        values[pos] += magnitude
    return np.stack([values, 0.5 * np.cos(2 * np.pi * t / 40)], axis=1)


def main():
    workdir = tempfile.mkdtemp(prefix="repro-specs-")

    # 1. The spec is plain JSON — write it like any other config artefact.
    spec_path = os.path.join(workdir, "pipeline.json")
    with open(spec_path, "w") as handle:
        json.dump(SPEC, handle, indent=2)
    print("wrote spec to %s" % spec_path)

    # 2. Spec -> fitted pipeline -> detection + explanation.
    history = make_series(seed=0, length=400, incidents=((150, 5.0),))
    pipeline = Pipeline(SPEC)
    print("capabilities: %s" % ", ".join(sorted(pipeline.capabilities())))
    result = pipeline.detect(history)
    flagged = np.flatnonzero(result["labels"])
    print("threshold %.4f flags positions %s" % (result["threshold"],
                                                 flagged.tolist()))
    report = pipeline.explain(flagged)
    for pos, channel in zip(flagged, report["dominant_channels"]):
        print("  position %d: dominant channel %d" % (pos, channel))

    # 3. Persist (spec sidecar + weights) and reload: same scorer, new
    #    process.
    saved = pipeline.save(os.path.join(workdir, "model"))
    restored = load_pipeline(saved)
    assert np.array_equal(restored.score(history), pipeline.score(history))
    print("saved + restored pipeline reproduces scores exactly (%s)" % saved)

    # 4. Serve a fleet with the restored detector, then recover the router.
    router = StreamRouter(restored.detector, window=96)
    for host in ("web-01", "web-02"):
        router.add_stream(host).seed(history[-96:])
    live = make_series(seed=1, length=64)
    for host in router.streams():
        router.submit_many(host, live)
    router.drain()

    state_dir = os.path.join(workdir, "router-state")
    router.save(state_dir)
    recovered = StreamRouter.restore(state_dir)
    print("recovered %d shard(s) from %s" % (len(recovered), state_dir))

    tail = make_series(seed=2, length=48, incidents=((30, 6.0),))
    for host in router.streams():
        router.submit_many(host, tail)
        recovered.submit_many(host, tail)
    original, resumed = router.drain(), recovered.drain()
    for host in original:
        assert np.array_equal(original[host], resumed[host])
    print("restored shards score the replayed tail identically "
          "(peak score %.3f at position %d)"
          % (resumed["web-01"].max(), int(resumed["web-01"].argmax())))


if __name__ == "__main__":
    main()
