"""Quickstart: detect outliers in a time series with RAE and RDAE.

Run:  python examples/quickstart.py

Builds a small seasonal series with planted anomalies, fits the two
frameworks from the paper, prints the top-scored observations and the
threshold-free accuracy metrics, and shows the clean/outlier decomposition
that makes the methods explainable.
"""

import numpy as np

from repro import RAE, RDAE
from repro.metrics import pr_auc, roc_auc


def make_series(length=400, period=40, seed=7):
    """Seasonal signal + noise with three point and one collective outlier."""
    rng = np.random.default_rng(seed)
    t = np.arange(length)
    values = np.sin(2 * np.pi * t / period) + 0.1 * rng.standard_normal(length)
    labels = np.zeros(length, dtype=int)
    for pos in (90, 210, 330):
        values[pos] += rng.choice([-1, 1]) * rng.uniform(4, 6)
        labels[pos] = 1
    values[150:160] += 2.5  # a level-shift segment
    labels[150:160] = 1
    return values[:, None], labels


def main():
    values, labels = make_series()
    print("series: %d observations, %d labelled outliers" % (len(values), labels.sum()))

    for detector in (
        RAE(lam=0.1, max_iterations=25),
        RDAE(window=40, max_outer=3, inner_iterations=6, series_iterations=6),
    ):
        scores = detector.fit_score(values)
        print()
        print("%s:" % detector.name)
        print("  PR-AUC  = %.3f" % pr_auc(labels, scores))
        print("  ROC-AUC = %.3f" % roc_auc(labels, scores))
        top = np.argsort(-scores)[:5]
        print("  top-5 scored positions: %s" % sorted(top.tolist()))
        clean = detector.clean_series
        outlier = detector.outlier_series
        print(
            "  decomposition: T = T_L + T_S with %d/%d non-zero outlier entries"
            % (np.count_nonzero(outlier), outlier.size)
        )
        print(
            "  clean-series roughness (mean |diff|): %.3f vs input %.3f"
            % (
                np.abs(np.diff(clean[:, 0])).mean(),
                np.abs(np.diff(values[:, 0])).mean(),
            )
        )


if __name__ == "__main__":
    main()
