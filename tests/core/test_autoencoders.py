"""Core autoencoder building blocks: shapes, training helper, conversions."""

import numpy as np
import pytest

from repro import nn
from repro.core.autoencoders import (
    ConvMatrixAE,
    ConvSeriesAE,
    ConvTransform1d,
    ConvTransform2d,
    FCMatrixAE,
    FCSeriesAE,
    matrix_to_tensor,
    series_to_tensor,
    tensor_to_matrix,
    tensor_to_series,
    train_reconstruction,
)

RNG = np.random.default_rng(0)


def test_series_tensor_roundtrip():
    series = RNG.standard_normal((50, 3))
    tensor = series_to_tensor(series)
    assert tensor.shape == (1, 3, 50)
    assert np.array_equal(tensor_to_series(tensor), series)


def test_series_tensor_accepts_1d():
    series = RNG.standard_normal(20)
    assert series_to_tensor(series).shape == (1, 1, 20)


def test_matrix_tensor_roundtrip():
    matrix = RNG.standard_normal((8, 12, 2))
    tensor = matrix_to_tensor(matrix)
    assert tensor.shape == (1, 2, 8, 12)
    assert np.array_equal(tensor_to_matrix(tensor), matrix)


@pytest.mark.parametrize("length", [20, 33, 64])
def test_conv_series_ae_preserves_shape(length):
    model = ConvSeriesAE(2, kernels=8, num_layers=2)
    x = nn.Tensor(RNG.standard_normal((1, 2, length)))
    assert model(x).shape == (1, 2, length)


@pytest.mark.parametrize("shape", [(6, 9), (12, 17), (7, 7)])
def test_conv_matrix_ae_preserves_shape(shape):
    model = ConvMatrixAE(1, kernels=4, num_layers=2)
    x = nn.Tensor(RNG.standard_normal((1, 1) + shape))
    assert model(x).shape == (1, 1) + shape


def test_fc_series_ae_handles_nonmultiple_length():
    model = FCSeriesAE(2, chunk=16, hidden=32)
    x = nn.Tensor(RNG.standard_normal((1, 2, 37)))
    assert model(x).shape == (1, 2, 37)


def test_fc_series_ae_short_series():
    model = FCSeriesAE(1, chunk=64, hidden=32)
    x = nn.Tensor(RNG.standard_normal((1, 1, 10)))
    assert model(x).shape == (1, 1, 10)


def test_fc_matrix_ae_shape():
    model = FCMatrixAE(2, window=6, hidden=32)
    x = nn.Tensor(RNG.standard_normal((1, 2, 6, 11)))
    assert model(x).shape == (1, 2, 6, 11)


def test_transforms_preserve_shape():
    t1 = ConvTransform1d(3, kernels=4)
    assert t1(nn.Tensor(RNG.standard_normal((1, 3, 25)))).shape == (1, 3, 25)
    t2 = ConvTransform2d(2, kernels=4)
    assert t2(nn.Tensor(RNG.standard_normal((1, 2, 9, 14)))).shape == (1, 2, 9, 14)


def test_kernel_ladder_narrows():
    from repro.core.autoencoders import _kernel_ladder

    ladder = _kernel_ladder(32, 4)
    assert ladder == [32, 16, 8, 4]
    assert _kernel_ladder(4, 6)[-1] >= 2  # floors at 2


def test_train_reconstruction_decreases_loss():
    model = ConvSeriesAE(1, kernels=8, num_layers=2)
    optimizer = nn.Adam(model.parameters(), lr=1e-2)
    target = np.sin(np.arange(60) / 5.0)[None, None, :]
    first = train_reconstruction(model, optimizer, target, epochs=1)
    loss_first = float(np.mean((first - target) ** 2))
    last = train_reconstruction(model, optimizer, target, epochs=30)
    loss_last = float(np.mean((last - target) ** 2))
    assert loss_last < loss_first


def test_train_reconstruction_with_separate_target():
    model = ConvSeriesAE(1, kernels=4, num_layers=1)
    optimizer = nn.Adam(model.parameters(), lr=1e-2)
    inputs = RNG.standard_normal((1, 1, 30))
    target = np.zeros((1, 1, 30))
    out = train_reconstruction(model, optimizer, inputs, epochs=20, target=target)
    assert np.abs(out).mean() < np.abs(inputs).mean()


def test_train_reconstruction_returns_post_update_output():
    """The returned reconstruction reflects the final parameters."""
    model = ConvSeriesAE(1, kernels=4, num_layers=1)
    optimizer = nn.Adam(model.parameters(), lr=1e-2)
    inputs = RNG.standard_normal((1, 1, 24))
    out = train_reconstruction(model, optimizer, inputs, epochs=2)
    with nn.no_grad():
        fresh = model(nn.Tensor(inputs)).data
    assert np.allclose(out, fresh)
