"""RDAE (Algorithm 2): dual-view decomposition and ablation switches."""

import numpy as np
import pytest

from repro.core import RDAE
from repro.metrics import roc_auc

FAST = dict(window=30, max_outer=2, inner_iterations=4, series_iterations=4)


def test_detects_planted_spikes(spiky_series):
    values, labels = spiky_series
    det = RDAE(**FAST)
    scores = det.fit_score(values)
    assert roc_auc(labels, scores) > 0.9


def test_decomposition_shapes(spiky_series):
    values, __ = spiky_series
    det = RDAE(**FAST).fit(values)
    assert det.clean_series.shape == values.shape
    assert det.outlier_series.shape == values.shape


def test_outlier_series_sparse(spiky_series):
    values, __ = spiky_series
    det = RDAE(lam1=0.3, lam2=0.3, **FAST).fit(values)
    assert np.mean(det.outlier_series != 0) < 0.3


def test_window_clipped_to_half_length():
    short = np.sin(np.arange(40) / 3.0)[:, None]
    det = RDAE(window=500, max_outer=1, inner_iterations=2, series_iterations=2)
    det.fit(short)  # must not raise
    assert det.clean_series.shape == short.shape


@pytest.mark.parametrize(
    "flags",
    [
        {"use_f1": False},
        {"use_f2": False},
        {"use_f1": False, "use_f2": False},
        {"use_f1": False, "input_smoother": "ma"},
    ],
    ids=["no-f1", "no-f2", "no-f1f2", "ma"],
)
def test_ablation_switches_work(flags, spiky_series):
    values, labels = spiky_series
    det = RDAE(**FAST, **flags)
    assert roc_auc(labels, det.fit_score(values)) > 0.8


def test_fc_architecture(spiky_series):
    values, labels = spiky_series
    det = RDAE(arch="fc", **FAST)
    assert roc_auc(labels, det.fit_score(values)) > 0.8


def test_invalid_smoother_rejected():
    with pytest.raises(ValueError):
        RDAE(input_smoother="median")


def test_invalid_arch_rejected():
    with pytest.raises(ValueError):
        RDAE(arch="gru")


def test_convergence_trace(spiky_series):
    values, __ = spiky_series
    det = RDAE(**FAST).fit(values)
    assert det.trace_.iterations >= 1
    assert all(np.isfinite(det.trace_.rmse))


def test_seconds_per_epoch(spiky_series):
    values, __ = spiky_series
    det = RDAE(**FAST).fit(values)
    assert det.seconds_per_epoch > 0


def test_seed_reproducibility(spiky_series):
    values, __ = spiky_series
    a = RDAE(seed=9, **FAST).fit_score(values)
    b = RDAE(seed=9, **FAST).fit_score(values)
    assert np.allclose(a, b)


def test_multivariate(spiky_multivariate):
    values, labels = spiky_multivariate
    det = RDAE(**FAST)
    assert roc_auc(labels, det.fit_score(values)) > 0.75


def test_l0_prox(spiky_series):
    values, labels = spiky_series
    det = RDAE(prox="l0", lam1=0.5, lam2=0.5, **FAST)
    assert roc_auc(labels, det.fit_score(values)) > 0.85


def test_endpoint_dehankel_variant(spiky_series):
    values, labels = spiky_series
    det = RDAE(dehankel="endpoint", **FAST)
    assert roc_auc(labels, det.fit_score(values)) > 0.8


def test_invalid_dehankel_rejected():
    with pytest.raises(ValueError):
        RDAE(dehankel="median")
