"""RobustEnsemble (the Section VII ensemble-learning extension)."""

import numpy as np
import pytest

from repro.core import RobustEnsemble
from repro.metrics import roc_auc


def test_detects_spikes(spiky_series):
    values, labels = spiky_series
    ens = RobustEnsemble(base="rae", n_members=3, max_iterations=8)
    assert roc_auc(labels, ens.fit_score(values)) > 0.9


def test_member_count_and_diversity(spiky_series):
    values, __ = spiky_series
    ens = RobustEnsemble(base="rae", n_members=4, max_iterations=3).fit(values)
    assert len(ens.members_) == 4
    seeds = {m.seed for m in ens.members_}
    assert len(seeds) == 4  # all members differ


def test_jitter_varies_architecture(spiky_series):
    values, __ = spiky_series
    ens = RobustEnsemble(base="rae", n_members=6, max_iterations=2,
                         jitter=True, seed=1).fit(values)
    architectures = {(m.kernels, m.kernel_size) for m in ens.members_}
    assert len(architectures) > 1


def test_no_jitter_uses_fixed_architecture(spiky_series):
    values, __ = spiky_series
    ens = RobustEnsemble(base="rae", n_members=3, max_iterations=2,
                         jitter=False, kernels=8).fit(values)
    assert all(m.kernels == 8 for m in ens.members_)


def test_mean_combiner(spiky_series):
    values, labels = spiky_series
    ens = RobustEnsemble(base="rae", n_members=3, combine="mean",
                         max_iterations=6)
    assert roc_auc(labels, ens.fit_score(values)) > 0.9


def test_rdae_base(spiky_series):
    values, labels = spiky_series
    ens = RobustEnsemble(
        base="rdae", n_members=2, window=30, max_outer=1,
        inner_iterations=3, series_iterations=3,
    )
    assert roc_auc(labels, ens.fit_score(values)) > 0.8
    assert ens.name == "RDAE-Ens"


def test_clean_series_is_member_mean(spiky_series):
    values, __ = spiky_series
    ens = RobustEnsemble(base="rae", n_members=2, max_iterations=3).fit(values)
    manual = np.mean([m.clean_series for m in ens.members_], axis=0)
    assert np.allclose(ens.clean_series, manual)


def test_validation():
    with pytest.raises(ValueError):
        RobustEnsemble(base="vae")
    with pytest.raises(ValueError):
        RobustEnsemble(combine="max")
    with pytest.raises(RuntimeError):
        RobustEnsemble().score(np.zeros((10, 1)))


def test_ensemble_no_worse_than_worst_member(spiky_series):
    values, labels = spiky_series
    ens = RobustEnsemble(base="rae", n_members=3, max_iterations=8,
                         seed=2).fit(values)
    member_aucs = [roc_auc(labels, m.score(values)) for m in ens.members_]
    ens_auc = roc_auc(labels, ens.score(values))
    assert ens_auc >= min(member_aucs) - 0.05
