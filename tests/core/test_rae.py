"""RAE (Algorithm 1): decomposition semantics, sparsity, convergence."""

import numpy as np
import pytest

from repro.core import RAE
from repro.metrics import roc_auc
from repro.tsops import standardize


def test_detects_planted_spikes(spiky_series):
    values, labels = spiky_series
    det = RAE(max_iterations=20)
    scores = det.fit_score(values)
    assert roc_auc(labels, scores) > 0.9


def test_decomposition_shapes(spiky_series):
    values, __ = spiky_series
    det = RAE(max_iterations=10).fit(values)
    assert det.clean_series.shape == values.shape
    assert det.outlier_series.shape == values.shape


def test_outlier_series_is_sparse(spiky_series):
    values, __ = spiky_series
    det = RAE(lam=0.3, max_iterations=15).fit(values)
    nonzero_frac = np.mean(det.outlier_series != 0)
    assert nonzero_frac < 0.2


def test_lambda_controls_sparsity(spiky_series):
    values, __ = spiky_series
    loose = RAE(lam=0.01, max_iterations=10, seed=1).fit(values)
    tight = RAE(lam=0.5, max_iterations=10, seed=1).fit(values)
    assert np.count_nonzero(tight.outlier_series) <= np.count_nonzero(
        loose.outlier_series
    )


def test_convergence_trace_recorded(spiky_series):
    values, __ = spiky_series
    det = RAE(max_iterations=12).fit(values)
    trace = det.trace_
    assert 1 <= trace.iterations <= 12
    assert len(trace.rmse) == trace.iterations
    assert all(np.isfinite(trace.rmse))
    # Reconstruction improves from start to finish.
    assert trace.rmse[-1] <= trace.rmse[0]


def test_rmse_bounded_by_constraint(spiky_series):
    """T_L + T_S stays close to T: condition1 is small at the end."""
    values, __ = spiky_series
    det = RAE(max_iterations=20).fit(values)
    arr = standardize(values)
    residual = np.linalg.norm(arr - det.clean_series - det.outlier_series)
    # The prox leaves sub-threshold residual; it must be bounded by lam
    # per element.
    per_element = np.abs(arr - det.clean_series - det.outlier_series)
    assert per_element.max() <= det.lam + 1e-9


def test_score_usable_even_when_everything_thresholded(spiky_series):
    """With an absurd lam the prox zeroes all of T_S; scores must still be a
    usable (finite, non-constant) ranking from the sub-threshold residual.

    Note this degenerate setting turns RAE into a plain AE trained on the
    contaminated series — accuracy is *expected* to collapse (that is the
    paper's motivating robustness failure), so only the ranking mechanics
    are asserted here."""
    values, labels = spiky_series
    det = RAE(lam=5.0, max_iterations=10).fit(values)  # everything thresholded
    assert np.count_nonzero(det.outlier_series) == 0
    scores = det.score(values)
    assert np.isfinite(scores).all()
    assert scores.std() > 0


def test_epochs_per_iteration(spiky_series):
    values, __ = spiky_series
    det = RAE(max_iterations=5, epochs_per_iteration=3).fit(values)
    assert det.trace_.iterations <= 5


def test_l0_prox_variant(spiky_series):
    values, labels = spiky_series
    det = RAE(prox="l0", lam=0.5, max_iterations=10)
    assert roc_auc(labels, det.fit_score(values)) > 0.9
    # Hard thresholding keeps surviving entries un-shrunk.
    surviving = det.outlier_series[det.outlier_series != 0]
    assert np.abs(surviving).min() > 0.5


def test_invalid_prox_rejected(spiky_series):
    values, __ = spiky_series
    with pytest.raises(ValueError):
        RAE(prox="l2", max_iterations=2).fit(values)


def test_fc_architecture(spiky_series):
    values, labels = spiky_series
    det = RAE(arch="fc", max_iterations=10)
    assert roc_auc(labels, det.fit_score(values)) > 0.8


def test_invalid_arch_rejected():
    with pytest.raises(ValueError):
        RAE(arch="rnn")


def test_seed_reproducibility(spiky_series):
    values, __ = spiky_series
    a = RAE(max_iterations=5, seed=3).fit_score(values)
    b = RAE(max_iterations=5, seed=3).fit_score(values)
    assert np.allclose(a, b)


def test_properties_require_fit():
    det = RAE()
    with pytest.raises(RuntimeError):
        __ = det.clean_series
    with pytest.raises(RuntimeError):
        __ = det.outlier_series
    with pytest.raises(RuntimeError):
        det.score(np.zeros((10, 1)))


def test_multivariate(spiky_multivariate):
    values, labels = spiky_multivariate
    det = RAE(max_iterations=15)
    assert roc_auc(labels, det.fit_score(values)) > 0.8
