"""score_new: the streaming (train-once, score-unseen) deployment mode."""

import numpy as np
import pytest

from repro.core import RAE, RDAE
from repro.metrics import roc_auc


def make_stream(seed, length=240, period=24, spikes=((60, 5.0), (180, -5.0))):
    rng = np.random.default_rng(seed)
    t = np.arange(length)
    values = np.sin(2 * np.pi * t / period) + 0.05 * rng.standard_normal(length)
    labels = np.zeros(length, dtype=int)
    for pos, magnitude in spikes:
        values[pos] += magnitude
        labels[pos] = 1
    return values[:, None], labels


def test_rae_scores_unseen_series():
    train, __ = make_stream(seed=0, spikes=((40, 4.0),))
    test, labels = make_stream(seed=1)
    det = RAE(max_iterations=15).fit(train)
    scores = det.score_new(test)
    assert scores.shape == (len(test),)
    assert roc_auc(labels, scores) > 0.9


def test_rdae_scores_unseen_series():
    train, __ = make_stream(seed=2, spikes=((40, 4.0),))
    test, labels = make_stream(seed=3)
    det = RDAE(window=30, max_outer=2, inner_iterations=4,
               series_iterations=4).fit(train)
    scores = det.score_new(test)
    assert roc_auc(labels, scores) > 0.85


def test_rdae_score_new_without_f2():
    train, __ = make_stream(seed=4)
    test, labels = make_stream(seed=5)
    det = RDAE(window=30, max_outer=1, inner_iterations=4,
               series_iterations=4, use_f2=False).fit(train)
    scores = det.score_new(test)
    assert scores.shape == (len(test),)
    assert np.isfinite(scores).all()


def test_score_new_uses_training_scaler():
    """A shifted/scaled copy of the training series must still be scored in
    the training frame — mean shift shows up as anomaly mass, as it should
    for a detector monitoring a stationary process."""
    train, __ = make_stream(seed=6)
    det = RAE(max_iterations=10).fit(train)
    shifted = train + 100.0
    scores = det.score_new(shifted)
    baseline = det.score_new(train)
    assert scores.mean() > baseline.mean()


def test_score_new_requires_fit():
    with pytest.raises(RuntimeError):
        RAE().score_new(np.zeros((50, 1)))
    with pytest.raises(RuntimeError):
        RDAE().score_new(np.zeros((50, 1)))


def test_score_new_deterministic():
    train, __ = make_stream(seed=7)
    test, __ = make_stream(seed=8)
    det = RAE(max_iterations=5, seed=3).fit(train)
    assert np.allclose(det.score_new(test), det.score_new(test))


# ------------------- grouped session refresh (serve drains) -------------- #

def test_iter_key_batches_groups_and_chunks():
    from repro.core import iter_key_batches

    keys = ["a", "b", "a", "a", "b", "a"]
    batches = list(iter_key_batches(keys, batch_size=2))
    assert batches == [[0, 2], [3, 5], [1, 4]]
    # Order within a group is input order; batch_size=1 degenerates cleanly.
    assert list(iter_key_batches(keys, batch_size=10)) == [[0, 2, 3, 5], [1, 4]]


def test_batched_session_scores_matches_solo_sessions():
    """One grouped forward pass must reproduce each session's solo scores
    (same-detector same-shape sessions are the sharded-serving drain)."""
    from repro.core import ScoringSession, batched_session_scores

    train, __ = make_stream(seed=9)
    det = RAE(max_iterations=4).fit(train)
    chunks = [make_stream(seed=20 + i, length=60, spikes=((30, 4.0),))[0]
              for i in range(6)]

    solo = []
    for chunk in chunks:
        session = ScoringSession(det, window=64)
        session.ingest(chunk)
        solo.append(session.scores().copy())

    batched_sessions = []
    for chunk in chunks:
        session = ScoringSession(det, window=64)
        session.ingest(chunk)
        batched_sessions.append(session)
    refreshed = batched_session_scores(batched_sessions, batch_size=4)
    for got, expected in zip(refreshed, solo):
        assert np.allclose(got, expected)
    # The refresh installed the memo: scores() reads are now free.
    for session in batched_sessions:
        assert session.scores() is not None
        assert session._cache_total == session.total


def test_batched_session_scores_mixed_shapes_and_warmup():
    """Different window fills group separately; still-warming sessions and
    lagged-matrix sessions fall back to their solo paths."""
    from repro.core import ScoringSession, batched_session_scores

    train, __ = make_stream(seed=10)
    rae = RAE(max_iterations=4).fit(train)
    rdae = RDAE(window=20, max_outer=1, inner_iterations=2,
                series_iterations=2, use_f2=False).fit(train)

    full = ScoringSession(rae, window=32)
    full.ingest(make_stream(seed=30, length=50, spikes=())[0])
    short = ScoringSession(rae, window=32)
    short.ingest(make_stream(seed=31, length=10, spikes=())[0])
    warming = ScoringSession(rae, window=32)
    warming.ingest(make_stream(seed=32, length=2, spikes=())[0][:1])
    lagged = ScoringSession(rdae, window=40)
    lagged.ingest(make_stream(seed=33, length=40, spikes=())[0])

    sessions = [full, short, warming, lagged]
    expected = []
    for seed, window, det, length in ((30, 32, rae, 50), (31, 32, rae, 10),
                                      (32, 32, rae, 1), (33, 40, rdae, 40)):
        ref = ScoringSession(det, window=window)
        ref.ingest(make_stream(seed=seed, length=max(length, 2),
                               spikes=())[0][:length])
        expected.append(ref.scores().copy())
    refreshed = batched_session_scores(sessions)
    for got, ref in zip(refreshed, expected):
        assert got.shape == ref.shape
        assert np.allclose(got, ref)
    assert refreshed[2].shape == (1,) and refreshed[2][0] == 0.0
