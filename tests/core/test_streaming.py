"""score_new: the streaming (train-once, score-unseen) deployment mode."""

import numpy as np
import pytest

from repro.core import RAE, RDAE
from repro.metrics import roc_auc


def make_stream(seed, length=240, period=24, spikes=((60, 5.0), (180, -5.0))):
    rng = np.random.default_rng(seed)
    t = np.arange(length)
    values = np.sin(2 * np.pi * t / period) + 0.05 * rng.standard_normal(length)
    labels = np.zeros(length, dtype=int)
    for pos, magnitude in spikes:
        values[pos] += magnitude
        labels[pos] = 1
    return values[:, None], labels


def test_rae_scores_unseen_series():
    train, __ = make_stream(seed=0, spikes=((40, 4.0),))
    test, labels = make_stream(seed=1)
    det = RAE(max_iterations=15).fit(train)
    scores = det.score_new(test)
    assert scores.shape == (len(test),)
    assert roc_auc(labels, scores) > 0.9


def test_rdae_scores_unseen_series():
    train, __ = make_stream(seed=2, spikes=((40, 4.0),))
    test, labels = make_stream(seed=3)
    det = RDAE(window=30, max_outer=2, inner_iterations=4,
               series_iterations=4).fit(train)
    scores = det.score_new(test)
    assert roc_auc(labels, scores) > 0.85


def test_rdae_score_new_without_f2():
    train, __ = make_stream(seed=4)
    test, labels = make_stream(seed=5)
    det = RDAE(window=30, max_outer=1, inner_iterations=4,
               series_iterations=4, use_f2=False).fit(train)
    scores = det.score_new(test)
    assert scores.shape == (len(test),)
    assert np.isfinite(scores).all()


def test_score_new_uses_training_scaler():
    """A shifted/scaled copy of the training series must still be scored in
    the training frame — mean shift shows up as anomaly mass, as it should
    for a detector monitoring a stationary process."""
    train, __ = make_stream(seed=6)
    det = RAE(max_iterations=10).fit(train)
    shifted = train + 100.0
    scores = det.score_new(shifted)
    baseline = det.score_new(train)
    assert scores.mean() > baseline.mean()


def test_score_new_requires_fit():
    with pytest.raises(RuntimeError):
        RAE().score_new(np.zeros((50, 1)))
    with pytest.raises(RuntimeError):
        RDAE().score_new(np.zeros((50, 1)))


def test_score_new_deterministic():
    train, __ = make_stream(seed=7)
    test, __ = make_stream(seed=8)
    det = RAE(max_iterations=5, seed=3).fit(train)
    assert np.allclose(det.score_new(test), det.score_new(test))
