"""Tape-vs-eager contract over the robust detector family.

The tape-compiled training path (repro.nn.tape) promises bit-identical
fits: for any fixed seed, scores, decomposition, and convergence trace must
match the eager reference exactly — for every RAE/RDAE registry method and
every ablation variant.  The ensemble's threaded fit makes the same promise
against its serial path, and (tape v2) so do the stochastic neural
baselines — softmax/dropout/reparameterisation draws now record through
the tape's buffer protocol instead of declining — and the ensemble's
``compile="batched"`` replay against its serial member fits.
"""

import numpy as np
import pytest

from repro.core import RAE, RobustEnsemble
from repro.core.variants import make_ablation
from repro.eval import make_detector
from repro.nn import tape as nntape


def small_series(length=180, dims=1, seed=0):
    rng = np.random.default_rng(seed)
    t = np.arange(length)
    base = np.sin(2 * np.pi * t / 25)[:, None] * np.ones((1, dims))
    return base + 0.1 * rng.standard_normal((length, dims))


def fit_with_tape(make, series, enabled):
    previous = nntape.set_tape_enabled(enabled)
    try:
        return make().fit(series)
    finally:
        nntape.set_tape_enabled(previous)


# Registry methods with a train_reconstruction loop, trimmed for test speed.
REGISTRY_CASES = {
    "RAE": {"max_iterations": 4},
    "RDAE": {"window": 20, "max_outer": 1, "inner_iterations": 2,
             "series_iterations": 2},
    "N-RAE": {"epochs": 4},
    "N-RDAE": {"window": 20, "epochs": 2},
}

ABLATION_CASES = {
    "RAE_FC": {"max_iterations": 3},
    "RDAE-f1": {"window": 20, "max_outer": 1, "inner_iterations": 2,
                "series_iterations": 2},
    "RDAE-f2": {"window": 20, "max_outer": 1, "inner_iterations": 2},
    "RDAE+MA": {"window": 20, "max_outer": 1, "inner_iterations": 2,
                "series_iterations": 2},
    "RDAE_FC": {"window": 20, "max_outer": 1, "inner_iterations": 2,
                "series_iterations": 2},
}


def assert_identical_fit(a, b, series):
    assert np.array_equal(a.score(series), b.score(series))
    assert np.array_equal(a.clean_series, b.clean_series)
    if getattr(a, "trace_", None) is not None:
        assert a.trace_.rmse == b.trace_.rmse
        assert a.trace_.condition1 == b.trace_.condition1
        assert a.trace_.condition2 == b.trace_.condition2
        assert a.trace_.converged == b.trace_.converged


@pytest.mark.parametrize("name", sorted(REGISTRY_CASES))
def test_registry_method_tape_bit_equal(name):
    series = small_series(dims=1 if "RDAE" in name else 2)
    make = lambda: make_detector(name, seed=3, **REGISTRY_CASES[name])
    taped = fit_with_tape(make, series, True)
    eager = fit_with_tape(make, series, False)
    assert_identical_fit(taped, eager, series)


@pytest.mark.parametrize("name", sorted(ABLATION_CASES))
def test_ablation_tape_bit_equal(name):
    series = small_series(seed=5)
    make = lambda: make_ablation(name, seed=7, **ABLATION_CASES[name])
    taped = fit_with_tape(make, series, True)
    eager = fit_with_tape(make, series, False)
    assert_identical_fit(taped, eager, series)


def test_rae_tape_actually_replays(monkeypatch):
    """Guard for the whole contract suite: the default fit path really goes
    through recorded-tape replays (otherwise the equality tests compare
    eager with eager)."""
    replays = []
    original = nntape.TrainStepTape._replay_step

    def counting(self, inputs, target):
        replays.append(1)
        return original(self, inputs, target)

    monkeypatch.setattr(nntape.TrainStepTape, "_replay_step", counting)
    series = small_series()
    detector = fit_with_tape(lambda: RAE(max_iterations=4, seed=1),
                             series, True)
    assert len(replays) > 0
    # Fit releases the recorded graph once done (it retains MBs of buffers).
    assert detector.model_.__dict__.get("_tape_cache") is None


def test_tape_and_eager_state_dicts_match():
    series = small_series()
    taped = fit_with_tape(lambda: RAE(max_iterations=3, seed=2), series, True)
    eager = fit_with_tape(lambda: RAE(max_iterations=3, seed=2), series, False)
    st, se = taped.model_.state_dict(), eager.model_.state_dict()
    assert st.keys() == se.keys()
    for key in st:
        assert np.array_equal(st[key], se[key]), key


def test_score_new_unaffected_by_training_mode():
    series = small_series()
    fresh = small_series(seed=11)
    taped = fit_with_tape(lambda: RAE(max_iterations=3, seed=4), series, True)
    eager = fit_with_tape(lambda: RAE(max_iterations=3, seed=4), series, False)
    assert np.array_equal(taped.score_new(fresh), eager.score_new(fresh))


# --------------------------------------------------------------------- #
# Parallel ensemble fits
# --------------------------------------------------------------------- #

def test_ensemble_n_jobs_matches_serial():
    series = small_series(length=150)
    kwargs = dict(base="rae", n_members=3, max_iterations=2, seed=9)
    serial = RobustEnsemble(n_jobs=1, **kwargs).fit(series)
    threaded = RobustEnsemble(n_jobs=3, **kwargs).fit(series)
    assert np.array_equal(serial.score(series), threaded.score(series))
    assert np.array_equal(serial.clean_series, threaded.clean_series)
    for a, b in zip(serial.members_, threaded.members_):
        assert a.seed == b.seed
        assert a.kernels == b.kernels and a.kernel_size == b.kernel_size
        assert np.array_equal(a.score(series), b.score(series))


def test_ensemble_n_jobs_all_cpus():
    series = small_series(length=120)
    ens = RobustEnsemble(base="rae", n_members=2, max_iterations=1,
                         n_jobs=-1, seed=1).fit(series)
    assert len(ens.members_) == 2
    assert np.isfinite(ens.score(series)).all()


def test_ensemble_member_failure_propagates():
    with pytest.raises(ValueError):
        RobustEnsemble(base="rae", n_members=2, n_jobs=2,
                       max_iterations=1).fit(np.zeros((2, 2, 2)))


# --------------------------------------------------------------------- #
# Tape v2: stochastic neural baselines record and replay
# --------------------------------------------------------------------- #

# The PR 5 tape declined these four: softmax (TAE's attention, BeatGAN's
# discriminator head), dropout (TAE), and reparameterisation noise (Donut)
# baked record-time data into the recorded graph.  Tape v2's buffered
# primitives redraw per replayed epoch, so their fits must now record,
# replay, and stay bit-identical to eager.
NEURAL_CASES = {
    "RNNAE": {"window": 16, "epochs": 2, "batch_size": 16},
    "TAE": {"window": 16, "epochs": 2, "batch_size": 16},
    "BGAN": {"window": 16, "epochs": 2, "batch_size": 16},
    "DONUT": {"window": 16, "epochs": 2, "batch_size": 16, "mc_samples": 2},
}


@pytest.mark.parametrize("name", sorted(NEURAL_CASES))
def test_neural_baseline_tape_bit_equal_and_replays(name, monkeypatch):
    replays = []
    original = nntape.TrainStepTape._replay_step

    def counting(self, inputs, target):
        replays.append(1)
        return original(self, inputs, target)

    monkeypatch.setattr(nntape.TrainStepTape, "_replay_step", counting)
    series = small_series(length=120)
    make = lambda: make_detector(name, seed=3, **NEURAL_CASES[name])
    taped = fit_with_tape(make, series, True)
    taped_replays = len(replays)
    eager = fit_with_tape(make, series, False)
    # The fit really recorded and replayed (not a silent eager fallback,
    # which would make the equality below vacuous) ...
    assert taped_replays > 0
    assert len(replays) == taped_replays  # ... and eager never replays.
    assert np.array_equal(taped.score(series), eager.score(series))
    assert np.array_equal(taped.loss_history_, eager.loss_history_)


# --------------------------------------------------------------------- #
# Batched ensemble replay (compile="batched")
# --------------------------------------------------------------------- #

def fit_ensemble(series, compile=None, **kwargs):
    return fit_with_tape(
        lambda: RobustEnsemble(compile=compile, **kwargs), series, True
    )


def assert_identical_ensembles(a, b, series):
    assert np.array_equal(a.score(series), b.score(series))
    assert np.array_equal(a.clean_series, b.clean_series)
    for ma, mb in zip(a.members_, b.members_):
        assert ma.seed == mb.seed
        assert_identical_fit(ma, mb, series)


def test_ensemble_batched_matches_serial_bit_for_bit():
    series = small_series(length=150)
    kwargs = dict(base="rae", n_members=4, jitter=False, kernels=8,
                  max_iterations=3, seed=9)
    serial = fit_ensemble(series, **kwargs)
    batched = fit_ensemble(series, compile="batched", **kwargs)
    assert batched.compile_fallback_ == []  # the whole group batched
    assert_identical_ensembles(serial, batched, series)


def test_ensemble_batched_freezes_converged_members_exactly():
    """Members of one batched group converge at different iterations (and
    some never); each converged member's parameters freeze at its own
    convergence point exactly as its serial fit would have stopped."""
    series = small_series(length=150)
    kwargs = dict(base="rae", n_members=4, jitter=False, kernels=8,
                  max_iterations=8, epsilon=0.003, seed=0)
    serial = fit_ensemble(series, **kwargs)
    batched = fit_ensemble(series, compile="batched", **kwargs)
    iterations = [len(m.trace_.rmse) for m in batched.members_]
    converged = [m.trace_.converged for m in batched.members_]
    assert len(set(iterations)) > 1  # the freezing path really ran
    assert any(converged) and not all(converged)
    assert_identical_ensembles(serial, batched, series)


def test_ensemble_batched_jitter_groups_and_singletons():
    """With jittered architectures only identical-spec members batch;
    spec-singletons fall back to the serial fit with a recorded reason —
    and the combined result is still bit-identical to the serial ensemble."""
    series = small_series(length=150)
    kwargs = dict(base="rae", n_members=6, jitter=True,
                  max_iterations=2, seed=3)
    serial = fit_ensemble(series, **kwargs)
    batched = fit_ensemble(series, compile="batched", **kwargs)
    # Some members batched, some fell back (else this test proves nothing
    # about the mixed path).
    assert 0 < len(batched.compile_fallback_) < batched.n_members
    for reason in batched.compile_fallback_:
        assert "peer" in reason
    assert_identical_ensembles(serial, batched, series)


def test_ensemble_batched_rdae_falls_back_serial():
    series = small_series(length=150)
    kwargs = dict(base="rdae", n_members=2, window=20, max_outer=1,
                  inner_iterations=2, series_iterations=2, seed=5)
    serial = fit_ensemble(series, **kwargs)
    batched = fit_ensemble(series, compile="batched", **kwargs)
    assert len(batched.compile_fallback_) == 2
    for reason in batched.compile_fallback_:
        assert "no batched program" in reason
    assert_identical_ensembles(serial, batched, series)


def test_ensemble_compile_argument_is_validated():
    with pytest.raises(ValueError, match="compile"):
        RobustEnsemble(compile="jit")
