"""Stopping conditions and the convergence trace (Algorithm 1/2 plumbing)."""

import numpy as np
import pytest

from repro.core import ConvergenceTrace, stopping_conditions


def test_condition1_zero_when_constraint_holds():
    original = np.ones((10, 1))
    clean = 0.6 * original
    outlier = 0.4 * original
    c1, c2, current = stopping_conditions(original, clean, outlier, original * 2)
    assert c1 == pytest.approx(0.0)
    assert np.allclose(current, original)


def test_condition2_zero_when_split_static():
    original = np.ones((10, 1))
    clean = 0.7 * original
    outlier = 0.2 * original
    previous = clean + outlier
    __, c2, __ = stopping_conditions(original, clean, outlier, previous)
    assert c2 == pytest.approx(0.0)


def test_conditions_relative_to_input_norm():
    original = np.full((10, 1), 100.0)
    clean = original - 1.0
    outlier = np.zeros_like(original)
    c1, __, __ = stopping_conditions(original, clean, outlier, original)
    # ||residual|| / ||T||: residual 1 per element over magnitude-100 input.
    assert c1 == pytest.approx(0.01)


def test_trace_recording():
    trace = ConvergenceTrace()
    trace.record(0.5, 0.1, 0.2)
    trace.record(0.4, 0.05, 0.1)
    assert trace.iterations == 2
    assert trace.rmse == [0.5, 0.4]
    assert trace.final_rmse == 0.4
    assert not trace.converged


def test_trace_final_rmse_requires_records():
    with pytest.raises(RuntimeError):
        __ = ConvergenceTrace().final_rmse
