"""Save/load round-trips for fitted detectors."""

import numpy as np
import pytest

from repro.core import RAE, RDAE
from repro.core.persistence import load_detector, save_detector


def test_rae_roundtrip(tmp_path, spiky_series):
    values, __ = spiky_series
    det = RAE(max_iterations=8, seed=1).fit(values)
    path = tmp_path / "rae.npz"
    save_detector(det, path)
    loaded = load_detector(path)
    assert np.allclose(loaded.score(values), det.score(values))
    assert np.allclose(loaded.clean_series, det.clean_series)


def test_rae_streaming_after_load(tmp_path, spiky_series):
    values, __ = spiky_series
    det = RAE(max_iterations=8).fit(values)
    path = tmp_path / "rae.npz"
    save_detector(det, path)
    loaded = load_detector(path)
    unseen = values[::-1].copy()
    assert np.allclose(loaded.score_new(unseen), det.score_new(unseen))


def test_rdae_roundtrip(tmp_path, spiky_series):
    values, __ = spiky_series
    det = RDAE(window=30, max_outer=1, inner_iterations=3,
               series_iterations=3).fit(values)
    path = tmp_path / "rdae.npz"
    save_detector(det, path)
    loaded = load_detector(path)
    assert np.allclose(loaded.score(values), det.score(values))
    unseen = values[::-1].copy()
    assert np.allclose(loaded.score_new(unseen), det.score_new(unseen))


def test_rdae_ablation_flags_survive(tmp_path, spiky_series):
    values, __ = spiky_series
    det = RDAE(window=30, max_outer=1, inner_iterations=3,
               series_iterations=3, use_f1=False).fit(values)
    path = tmp_path / "rdae.npz"
    save_detector(det, path)
    loaded = load_detector(path)
    assert loaded.use_f1 is False
    assert loaded._f1 is None


def test_save_requires_fit(tmp_path):
    with pytest.raises(RuntimeError):
        save_detector(RAE(), tmp_path / "x.npz")
    with pytest.raises(RuntimeError):
        save_detector(RDAE(), tmp_path / "x.npz")


def test_is_fitted_is_the_single_source_of_truth(tmp_path, spiky_series):
    """Every fitted-state consumer (engine, scoring session, persistence)
    keys on is_fitted(); it must flip on fit() and survive a load."""
    values, __ = spiky_series
    for det in (RAE(max_iterations=3),
                RDAE(window=30, max_outer=1, inner_iterations=2,
                     series_iterations=2)):
        assert not det.is_fitted()
        det.fit(values)
        assert det.is_fitted()
        path = tmp_path / "det.npz"
        save_detector(det, path)
        assert load_detector(path).is_fitted()


def test_save_rejects_other_types(tmp_path):
    from repro.baselines import EMADetector

    with pytest.raises(TypeError):
        save_detector(EMADetector(), tmp_path / "x.npz")
