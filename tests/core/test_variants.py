"""Non-robust variants and the ablation factory."""

import numpy as np
import pytest

from repro.core import ABLATION_NAMES, NRAE, NRDAE, make_ablation
from repro.core.rae import RAE
from repro.core.rdae import RDAE
from repro.metrics import roc_auc


def test_nrae_detects_spikes(spiky_series):
    # Few epochs: the non-robust AE has not yet overfitted the spikes.  (At
    # higher epoch counts its accuracy oscillates — the very vulnerability
    # Fig. 9 demonstrates — so this test pins the early-training regime.)
    values, labels = spiky_series
    det = NRAE(epochs=10)
    assert roc_auc(labels, det.fit_score(values)) > 0.8
    assert det.clean_series.shape == values.shape


def test_nrdae_detects_spikes(spiky_series):
    values, labels = spiky_series
    det = NRDAE(window=30, epochs=4)
    assert roc_auc(labels, det.fit_score(values)) > 0.8


def test_nrae_requires_fit():
    with pytest.raises(RuntimeError):
        NRAE().score(np.zeros((10, 1)))
    with pytest.raises(RuntimeError):
        __ = NRDAE().clean_series


def test_factory_builds_every_name():
    for name in ABLATION_NAMES:
        det = make_ablation(name)
        assert isinstance(det, (RAE, RDAE))


def test_factory_flags():
    assert make_ablation("RDAE-f1").use_f1 is False
    assert make_ablation("RDAE-f2").use_f2 is False
    ab = make_ablation("RDAE-f1f2")
    assert ab.use_f1 is False and ab.use_f2 is False
    assert make_ablation("RDAE+MA").input_smoother == "ma"
    assert make_ablation("RAE_FC").arch == "fc"
    assert make_ablation("RDAE_CNN").arch == "cnn"


def test_factory_forwards_kwargs():
    det = make_ablation("RDAE-f1", window=17, max_outer=1)
    assert det.window == 17 and det.max_outer == 1


def test_factory_unknown_name():
    with pytest.raises(KeyError):
        make_ablation("RDAE-f3")


def test_nrae_less_robust_than_rae_on_contaminated_data():
    """The Fig. 9 claim at unit scale: with heavy contamination the robust
    decomposition scores outliers better than the plain AE."""
    rng = np.random.default_rng(0)
    t = np.arange(400)
    values = np.sin(2 * np.pi * t / 40)
    labels = np.zeros(400, dtype=int)
    # 10% contamination with large-magnitude segments.
    for start in (50, 150, 250, 350):
        values[start : start + 10] += rng.uniform(4, 6)
        labels[start : start + 10] = 1
    values = values[:, None]
    rae_auc = roc_auc(labels, RAE(max_iterations=20, seed=1).fit_score(values))
    nrae_auc = roc_auc(labels, NRAE(epochs=20, seed=1).fit_score(values))
    assert rae_auc >= nrae_auc - 0.05  # robust never much worse
