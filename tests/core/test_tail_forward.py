"""Receptive-field-bounded tail forwards: exactness, locality, fallbacks.

The tentpole contract of the serving refactor: a :class:`ScoringSession`
push that re-forwards only the window tail must be *bit-identical* to the
full re-forward it replaces, across every regime (growing window, sliding
window, aligned and misaligned chunk sizes), and the ``tail_context()``
each detector reports must be a sound locality bound — perturbing the last
arrival may only change scores within it.  Architectures without a bound
(FC ablations, the lagged-matrix path) must fall back transparently.
"""

import numpy as np
import pytest

from repro.core import RAE, RDAE, ScoringSession, batched_session_scores
from repro.eval import available_methods, make_detector

SPEED_OVERRIDES = {
    "RAE": {"max_iterations": 3},
    "RDAE": {"window": 20, "max_outer": 1, "inner_iterations": 2,
             "series_iterations": 2},
    "N-RAE": {"epochs": 2},
    "N-RDAE": {"window": 20, "epochs": 2},
}


def make_series(seed, length=400):
    rng = np.random.default_rng(seed)
    t = np.arange(length)
    return (np.sin(2 * np.pi * t / 25)
            + 0.05 * rng.standard_normal(length))[:, None]


@pytest.fixture(scope="module")
def conv_rae():
    return RAE(max_iterations=3, kernels=16, num_layers=3,
               kernel_size=5).fit(make_series(0))


@pytest.fixture(scope="module")
def rdae_series():
    return RDAE(window=30, max_outer=1, inner_iterations=2,
                series_iterations=2).fit(make_series(1))


@pytest.fixture(scope="module")
def rdae_matrix():
    return RDAE(window=30, max_outer=1, inner_iterations=2,
                series_iterations=2, use_f2=False).fit(make_series(2))


# --------------------------- tail_context() --------------------------- #

def test_tail_context_values(conv_rae, rdae_series, rdae_matrix):
    assert isinstance(conv_rae.tail_context(), int)
    assert 0 < conv_rae.tail_context() < 200  # bounded and window-scale small
    assert isinstance(rdae_series.tail_context(), int)
    # f2 is a shallow conv transform: much tighter than the pooled RAE.
    assert rdae_series.tail_context() < conv_rae.tail_context()
    assert rdae_matrix.tail_context() is None  # Hankel spreads every arrival
    assert RAE(max_iterations=2, arch="fc").fit(
        make_series(3)).tail_context() is None


def test_tail_context_requires_fit():
    with pytest.raises(RuntimeError):
        RAE().tail_context()
    with pytest.raises(RuntimeError):
        RDAE().tail_context()


# ------------------- bit-identity against full forwards ---------------- #

@pytest.mark.parametrize("window", [64, 65, 128])
@pytest.mark.parametrize("chunks", [
    [1] * 40,                       # single pushes (period-misaligned half)
    [2] * 20,                       # aligned chunks
    [5, 1, 2, 1, 3, 7, 1, 1, 50, 1, 2, 1],  # mixed, incl. window-sized
])
def test_tail_scores_bit_identical_to_full(conv_rae, window, chunks):
    tail = ScoringSession(conv_rae, window=window).seed(make_series(4)[:40])
    full = ScoringSession(conv_rae, window=window,
                          tail_forward=False).seed(make_series(4)[:40])
    series = make_series(5, length=sum(chunks))
    index = 0
    for chunk in chunks:
        got = tail.extend(series[index:index + chunk])
        expected = full.extend(series[index:index + chunk])
        assert np.array_equal(got, expected)
        index += chunk
    # The full window vector must agree too (exercises the splice path).
    assert np.array_equal(tail.scores(), full.scores())


def test_rdae_series_tail_bit_identical(rdae_series):
    tail = ScoringSession(rdae_series, window=96)
    full = ScoringSession(rdae_series, window=96, tail_forward=False)
    series = make_series(6, length=200)
    for i in range(0, 200, 1):
        assert tail.push(series[i]) == full.push(series[i])
    assert np.array_equal(tail.scores(), full.scores())


def test_unbounded_architectures_fall_back(rdae_matrix):
    fc = RAE(max_iterations=2, arch="fc").fit(make_series(7))
    assert not ScoringSession(fc, window=32).tail_supported
    assert not ScoringSession(rdae_matrix, window=40).tail_supported
    # tail_forward=True on an unbounded architecture is a silent no-op.
    session = ScoringSession(fc, window=32)
    reference = ScoringSession(fc, window=32, tail_forward=False)
    series = make_series(8, length=60)
    assert np.array_equal(session.extend(series), reference.extend(series))


def test_last_scores_matches_scores_suffix(conv_rae):
    session = ScoringSession(conv_rae, window=64).seed(make_series(9)[:64])
    session.ingest(make_series(9)[64:70])
    tail = session.last_scores(6).copy()
    assert np.array_equal(tail, session.scores()[-6:])
    # Memoised: a second read with a fresh cache is the same object slice.
    assert np.array_equal(session.last_scores(3), tail[-3:])


def test_batched_tail_drain_matches_solo(conv_rae, rdae_series):
    """Grouped tail forwards == each session's solo tail path, bitwise."""
    detectors = [conv_rae, conv_rae, rdae_series, conv_rae]
    solo = [ScoringSession(d, window=64).seed(make_series(20 + i)[:64])
            for i, d in enumerate(detectors)]
    grouped = [ScoringSession(d, window=64).seed(make_series(20 + i)[:64])
               for i, d in enumerate(detectors)]
    for step in range(6):
        chunk_sizes = [1, 2, 1, 3]
        expected = []
        for i, session in enumerate(solo):
            chunk = make_series(30 + i)[step * 4:step * 4 + chunk_sizes[i]]
            expected.append(session.extend(chunk).copy())
        for i, session in enumerate(grouped):
            chunk = make_series(30 + i)[step * 4:step * 4 + chunk_sizes[i]]
            session.ingest(chunk)
        tails = batched_session_scores(grouped, tail=chunk_sizes)
        for got, want in zip(tails, expected):
            assert np.array_equal(got, want[-got.shape[0]:])


def test_batched_refresh_handles_duplicate_sessions(conv_rae):
    """The same session object listed twice must refresh exactly once.

    Regression: splice plans are computed from pre-refresh state, so a
    second apply to the same object would re-shift the already-refreshed
    cache and silently corrupt every later read.
    """
    session = ScoringSession(conv_rae, window=64)
    reference = ScoringSession(conv_rae, window=64, tail_forward=False)
    history = make_series(16, length=80)
    session.ingest(history)
    session.scores()  # anchor the splice cache past the window
    reference.ingest(history)
    fresh = make_series(17, length=4)
    session.ingest(fresh)
    reference.ingest(fresh)

    once, twice = batched_session_scores([session, session])
    assert once is twice or np.array_equal(once, twice)
    assert np.array_equal(once, reference.scores())
    assert np.array_equal(session.scores(), reference.scores())

    # Tail mode: duplicates may ask for different counts; the larger
    # refresh serves both.
    session.ingest(fresh)
    reference.ingest(fresh)
    short, long_ = batched_session_scores([session, session], tail=[2, 4])
    expected = reference.scores()
    assert np.array_equal(long_, expected[-4:])
    assert np.array_equal(short, expected[-2:])


def test_state_dict_round_trips_splice_cache(conv_rae):
    """A restored session resumes tail forwards with identical scores."""
    from repro.stream import StreamScorer

    live = StreamScorer(conv_rae, window=64)
    live.push_many(make_series(10, length=80))
    state = live.state_dict()
    assert "cache_scores" in state and state["cache_total"] == 80

    restored = StreamScorer(conv_rae, window=64).load_state_dict(state)
    assert restored._session._cache_total == 80
    follow = make_series(11, length=20)
    for point in follow:
        assert restored.push(point) == live.push(point)


# ----------------- perturbation contract (all registry AEs) ------------ #

def _streaming_detectors():
    """Every registry method served through the warm session path."""
    names = []
    for name in available_methods():
        detector = make_detector(name, **SPEED_OVERRIDES.get(name, {}))
        if isinstance(detector, (RAE, RDAE)) and not getattr(
                detector, "transductive_only", False):
            names.append(name)
    return names


@pytest.mark.parametrize("method", _streaming_detectors())
def test_perturbation_stays_inside_tail_context(method):
    """Perturbing the last arrival only moves scores inside tail_context,
    and the tail-forward path equals the full re-forward bit for bit."""
    detector = make_detector(method, **SPEED_OVERRIDES.get(method, {}))
    detector.fit(make_series(12, length=200))
    context = detector.tail_context()

    window = make_series(13, length=96)
    bumped = window.copy()
    bumped[-1] += 4.0

    base = ScoringSession(detector, window=96, tail_forward=False)
    base.ingest(window)
    moved = ScoringSession(detector, window=96, tail_forward=False)
    moved.ingest(bumped)

    if context is None:
        # Unbounded architectures promise nothing about locality; the
        # session must simply refuse the tail path.
        assert not ScoringSession(detector, window=96).tail_supported
        return

    scores = base.scores()
    perturbed = moved.scores()
    # Scores strictly outside the reported tail context are bit-unchanged.
    assert np.array_equal(scores[:-context], perturbed[:-context])
    # ... and the perturbation is visible where it should be.
    assert scores[-1] != perturbed[-1]

    # Tail forwards reproduce the full re-forward exactly on both windows.
    for content in (window, bumped):
        tail = ScoringSession(detector, window=96)
        assert tail.tail_supported
        streamed = np.concatenate([
            tail.extend(content[:50]), tail.extend(content[50:])
        ])
        reference = ScoringSession(detector, window=96, tail_forward=False)
        expected = np.concatenate([
            reference.extend(content[:50]), reference.extend(content[50:])
        ])
        assert np.array_equal(streamed, expected)


# -------------------- rdae_matrix warm-up divergence -------------------- #

def test_rdae_matrix_warmup_lag_clamp_divergence(rdae_matrix):
    """Pin the documented warm-up behaviour of the lagged-matrix path.

    The session fixes its Hankel lag from the window *capacity* (that is
    what makes incremental column updates possible); ``score_new`` clamps
    from the *content length*.  While the ring is filling the two clamps
    disagree, so scores legitimately diverge — and must converge exactly
    to the documented agreement once the ring holds a full window.  The
    tail-forward refactor must not silently change either side.
    """
    capacity = 40
    session = ScoringSession(rdae_matrix, window=capacity)
    # Capacity-based clamp: fixed at construction, independent of content.
    assert session._lag == int(np.clip(rdae_matrix.window, 2,
                                       capacity // 2 - 1))

    filling = make_series(14, length=30)
    session.ingest(filling)
    one_shot_lag = int(np.clip(rdae_matrix.window, 2, len(filling) // 2 - 1))
    assert one_shot_lag != session._lag  # the clamps disagree while filling
    warm = session.scores()
    one_shot = rdae_matrix.score_new(filling)
    assert warm.shape == one_shot.shape
    assert not np.allclose(warm, one_shot)  # the documented divergence

    # Once the ring holds a full window the paths agree exactly.
    session.ingest(make_series(15, length=capacity))
    assert np.allclose(
        session.scores(),
        rdae_matrix.score_new(np.asarray(session._ring.view())
                              * rdae_matrix._scale_std
                              + rdae_matrix._scale_mean),
    )
