"""Principal component pursuit: recovery guarantees and edge cases."""

import numpy as np
import pytest

from repro.rpca import robust_pca


def make_low_rank_plus_sparse(m, n, rank, sparse_frac, magnitude, seed):
    rng = np.random.default_rng(seed)
    low = rng.standard_normal((m, rank)) @ rng.standard_normal((rank, n))
    sparse = np.zeros((m, n))
    mask = rng.random((m, n)) < sparse_frac
    sparse[mask] = rng.uniform(-magnitude, magnitude, mask.sum())
    return low, sparse


def test_exact_recovery_easy_instance():
    low, sparse = make_low_rank_plus_sparse(40, 60, 3, 0.05, 10.0, 0)
    result = robust_pca(low + sparse)
    assert result.converged
    assert np.linalg.norm(result.low_rank - low) / np.linalg.norm(low) < 1e-4
    assert np.linalg.norm(result.sparse - sparse) / np.linalg.norm(sparse) < 1e-3


def test_recovered_rank_matches():
    low, sparse = make_low_rank_plus_sparse(30, 30, 2, 0.03, 8.0, 1)
    result = robust_pca(low + sparse)
    assert result.rank == 2


def test_constraint_satisfied_at_convergence():
    low, sparse = make_low_rank_plus_sparse(25, 35, 2, 0.05, 5.0, 2)
    m = low + sparse
    result = robust_pca(m)
    residual = np.linalg.norm(m - result.low_rank - result.sparse)
    assert residual / np.linalg.norm(m) < 1e-5


def test_zero_matrix_short_circuits():
    result = robust_pca(np.zeros((5, 5)))
    assert result.converged
    assert result.iterations == 0
    assert np.allclose(result.low_rank, 0) and np.allclose(result.sparse, 0)


def test_rejects_non_2d():
    with pytest.raises(ValueError):
        robust_pca(np.zeros((2, 2, 2)))


def test_residuals_monotone_tail():
    low, sparse = make_low_rank_plus_sparse(30, 30, 3, 0.05, 6.0, 3)
    result = robust_pca(low + sparse)
    residuals = np.asarray(result.residuals)
    # Not necessarily monotone step-by-step, but the tail must descend.
    assert residuals[-1] <= residuals[max(len(residuals) // 2 - 1, 0)]


def test_lam_controls_sparsity():
    low, sparse = make_low_rank_plus_sparse(30, 30, 3, 0.08, 6.0, 4)
    m = low + sparse
    sparse_small_lam = robust_pca(m, lam=0.01, max_iter=100).sparse
    sparse_big_lam = robust_pca(m, lam=0.5, max_iter=100).sparse
    assert np.count_nonzero(sparse_big_lam) < np.count_nonzero(sparse_small_lam)


def test_max_iter_respected():
    low, sparse = make_low_rank_plus_sparse(20, 20, 2, 0.05, 5.0, 5)
    result = robust_pca(low + sparse, max_iter=3, tol=1e-12)
    assert result.iterations == 3
    assert not result.converged
