"""Proximal operators: closed-form properties, hypothesis invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import array_shapes, arrays

from repro.rpca import (
    group_soft_threshold,
    hard_threshold,
    singular_value_threshold,
    soft_threshold,
)

finite_arrays = arrays(
    np.float64,
    array_shapes(min_dims=1, max_dims=2, min_side=1, max_side=8),
    elements=st.floats(-100, 100),
)


def test_soft_threshold_known_values():
    x = np.array([-3.0, -1.0, 0.0, 0.5, 2.0])
    out = soft_threshold(x, 1.0)
    assert np.allclose(out, [-2.0, 0.0, 0.0, 0.0, 1.0])


def test_hard_threshold_known_values():
    x = np.array([-3.0, -1.0, 0.0, 0.5, 2.0])
    out = hard_threshold(x, 1.0)
    assert np.allclose(out, [-3.0, 0.0, 0.0, 0.0, 2.0])


@given(finite_arrays, st.floats(0.0, 50.0))
@settings(max_examples=50, deadline=None)
def test_soft_threshold_shrinks_magnitude(x, threshold):
    out = soft_threshold(x, threshold)
    assert np.all(np.abs(out) <= np.abs(x) + 1e-12)
    assert np.all(np.sign(out) * np.sign(x) >= 0)


@given(finite_arrays, st.floats(0.0, 50.0))
@settings(max_examples=50, deadline=None)
def test_soft_threshold_kills_small_entries(x, threshold):
    out = soft_threshold(x, threshold)
    small = np.abs(x) <= threshold
    assert np.allclose(out[small], 0.0)


@given(finite_arrays, st.floats(0.0, 50.0))
@settings(max_examples=50, deadline=None)
def test_hard_threshold_keeps_survivors_exact(x, threshold):
    out = hard_threshold(x, threshold)
    survivors = np.abs(x) > threshold
    assert np.array_equal(out[survivors], x[survivors])
    assert np.allclose(out[~survivors], 0.0)


def test_soft_threshold_is_l1_prox():
    """prox minimises 0.5||y - x||^2 + t||y||_1 — check against grid search."""
    x = np.array([1.7])
    t = 0.6
    candidates = np.linspace(-3, 3, 20001)
    objective = 0.5 * (candidates - x) ** 2 + t * np.abs(candidates)
    best = candidates[np.argmin(objective)]
    assert np.isclose(soft_threshold(x, t)[0], best, atol=1e-3)


def test_group_soft_threshold_kills_weak_rows():
    x = np.array([[3.0, 4.0], [0.1, 0.1]])
    out = group_soft_threshold(x, 1.0, axis=1)
    # Row norms: 5 and ~0.14; the weak row dies, the strong shrinks by 1/5.
    assert np.allclose(out[1], 0.0)
    assert np.allclose(out[0], x[0] * (1 - 1.0 / 5.0))


def test_svt_zero_rank_when_threshold_large():
    rng = np.random.default_rng(0)
    m = rng.standard_normal((6, 6))
    out, rank = singular_value_threshold(m, 1e6)
    assert rank == 0
    assert np.allclose(out, 0.0)


def test_svt_identity_when_threshold_zero():
    rng = np.random.default_rng(1)
    m = rng.standard_normal((5, 7))
    out, rank = singular_value_threshold(m, 0.0)
    assert rank == 5
    assert np.allclose(out, m, atol=1e-10)


def test_svt_reduces_nuclear_norm():
    rng = np.random.default_rng(2)
    m = rng.standard_normal((8, 8))
    out, __ = singular_value_threshold(m, 0.5)
    s_before = np.linalg.svd(m, compute_uv=False).sum()
    s_after = np.linalg.svd(out, compute_uv=False).sum()
    assert s_after < s_before
