"""Neural baselines: training works, spikes are detected, runtimes recorded."""

import numpy as np
import pytest

from repro import baselines
from repro.metrics import roc_auc

NEURAL = [
    lambda: baselines.CNNAE(epochs=8, kernels=8),
    lambda: baselines.RNNAE(epochs=4, hidden=12),
    lambda: baselines.RandNet(n_models=3, epochs=4, hidden=32),
    lambda: baselines.BeatGAN(epochs=5, kernels=8),
    lambda: baselines.Donut(epochs=8, hidden=32, latent=4),
    lambda: baselines.OmniAnomaly(epochs=3, hidden=12, latent=4),
    lambda: baselines.TransformerAE(epochs=4, d_model=16, num_heads=2),
    lambda: baselines.RDA(outer_iterations=3, inner_epochs=3),
]


@pytest.mark.parametrize("factory", NEURAL, ids=lambda f: f().name)
def test_detects_planted_spikes(factory, spiky_series):
    values, labels = spiky_series
    det = factory()
    scores = det.fit_score(values)
    assert scores.shape == (len(values),)
    assert np.isfinite(scores).all()
    assert roc_auc(labels, scores) > 0.8


@pytest.mark.parametrize("factory", NEURAL, ids=lambda f: f().name)
def test_seconds_per_epoch_recorded(factory, spiky_series):
    values, __ = spiky_series
    det = factory().fit(values)
    assert det.seconds_per_epoch > 0


def test_runtime_before_fit_raises():
    with pytest.raises(RuntimeError):
        __ = baselines.CNNAE().seconds_per_epoch


def test_score_before_fit_raises():
    with pytest.raises(RuntimeError):
        baselines.CNNAE().score(np.zeros((50, 1)))


def test_training_reduces_loss(spiky_series):
    values, __ = spiky_series
    det = baselines.CNNAE(epochs=12, kernels=8)
    det.fit(values)
    losses = det.loss_history_
    assert losses[-1] < losses[0]


def test_seed_reproducibility(spiky_series):
    values, __ = spiky_series
    a = baselines.CNNAE(epochs=3, seed=5).fit_score(values)
    b = baselines.CNNAE(epochs=3, seed=5).fit_score(values)
    assert np.allclose(a, b)


def test_different_seed_differs(spiky_series):
    values, __ = spiky_series
    a = baselines.CNNAE(epochs=3, seed=1).fit_score(values)
    b = baselines.CNNAE(epochs=3, seed=2).fit_score(values)
    assert not np.allclose(a, b)


def test_multivariate_neural(spiky_multivariate):
    values, labels = spiky_multivariate
    det = baselines.CNNAE(epochs=8, kernels=8)
    assert roc_auc(labels, det.fit_score(values)) > 0.7


def test_rnnae_window_shorter_than_series():
    values = np.sin(np.arange(40) / 3.0)[:, None]
    det = baselines.RNNAE(window=64, epochs=2, hidden=8)
    scores = det.fit_score(values)  # window is clipped to series length
    assert scores.shape == (40,)


def test_randnet_ensemble_size(spiky_series):
    values, __ = spiky_series
    det = baselines.RandNet(n_models=4, epochs=2).fit(values)
    assert len(det.models_) == 4


def test_randnet_masks_distinct():
    det = baselines.RandNet(n_models=2, epochs=1)
    det.fit(np.sin(np.arange(120) / 5.0)[:, None])
    mask_a = det.models_[0].net[0]._mask
    mask_b = det.models_[1].net[0]._mask
    assert not np.array_equal(mask_a, mask_b)


def test_donut_scores_are_nll_shaped(spiky_series):
    values, labels = spiky_series
    det = baselines.Donut(epochs=6, hidden=32, latent=4)
    scores = det.fit_score(values)
    # NLL scores may be negative but must still rank outliers first.
    assert roc_auc(labels, scores) > 0.8


def test_tae_head_rounding():
    det = baselines.TransformerAE(d_model=32, num_heads=5)
    assert 32 % det.num_heads == 0
    assert det.num_heads <= 5
