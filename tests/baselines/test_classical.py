"""Classical baselines: each must rank planted outliers high, plus API checks."""

import numpy as np
import pytest

from repro import baselines
from repro.metrics import roc_auc

CLASSICAL = [
    lambda: baselines.LOF(n_neighbors=10, context=3),
    lambda: baselines.IsolationForest(n_trees=30, subsample=64),
    lambda: baselines.OneClassSVM(window=12, iterations=120),
    lambda: baselines.EMADetector(pattern_size=10),
    lambda: baselines.STLDetector(),
    lambda: baselines.SSADetector(window=30, n_components=3),
    lambda: baselines.MatrixProfile(pattern_size=12),
    lambda: baselines.RSSADetector(window=30),
]


@pytest.mark.parametrize("factory", CLASSICAL, ids=lambda f: f().name)
def test_detects_planted_spikes(factory, spiky_series):
    values, labels = spiky_series
    scores = factory().fit_score(values)
    assert scores.shape == (len(values),)
    assert np.isfinite(scores).all()
    assert roc_auc(labels, scores) > 0.8


@pytest.mark.parametrize("factory", CLASSICAL, ids=lambda f: f().name)
def test_multivariate_support(factory, spiky_multivariate):
    values, labels = spiky_multivariate
    scores = factory().fit_score(values)
    assert scores.shape == (len(values),)
    assert roc_auc(labels, scores) > 0.6


def test_score_before_fit_raises():
    det = baselines.LOF()
    with pytest.raises(RuntimeError):
        det.score(np.zeros((20, 1)))
    with pytest.raises(RuntimeError):
        baselines.OneClassSVM().score(np.zeros((20, 1)))
    with pytest.raises(RuntimeError):
        baselines.IsolationForest().score(np.zeros((20, 1)))


def test_lof_uniform_data_scores_near_one(rng):
    grid = np.linspace(0, 1, 200)[:, None]
    det = baselines.LOF(n_neighbors=5, context=1)
    scores = det.fit_score(grid + 0.001 * rng.standard_normal((200, 1)))
    assert np.median(scores) < 1.5


def test_isolation_forest_more_trees_more_stable(spiky_series):
    values, labels = spiky_series
    aucs = []
    for n_trees in (5, 60):
        run = [
            roc_auc(
                labels,
                baselines.IsolationForest(n_trees=n_trees, seed=s).fit_score(values),
            )
            for s in range(3)
        ]
        aucs.append(np.std(run))
    assert aucs[1] <= aucs[0] + 0.02


def test_ocsvm_poly_kernel(spiky_series):
    values, labels = spiky_series
    det = baselines.OneClassSVM(window=12, kernel="poly", degree=3, iterations=100)
    assert roc_auc(labels, det.fit_score(values)) > 0.7


def test_ocsvm_rejects_unknown_kernel():
    with pytest.raises(ValueError):
        baselines.OneClassSVM(kernel="sigmoid")


def test_matrix_profile_discord_location():
    t = np.arange(400)
    series = np.sin(2 * np.pi * t / 40)
    series[200:210] += 2.5  # one discord
    det = baselines.MatrixProfile(pattern_size=20)
    scores = det.fit_score(series)
    assert 190 <= int(np.argmax(scores)) <= 220


def test_mass_distance_profile_self_match_zero():
    from repro.baselines import mass_distance_profile

    series = np.sin(np.arange(100) / 5.0)
    dist = mass_distance_profile(series[10:30], series)
    assert dist[10] < 1e-5


def test_ema_detector_pattern_size_controls_smoothing(spiky_series):
    values, __ = spiky_series
    fast = baselines.EMADetector(pattern_size=2).fit_score(values)
    slow = baselines.EMADetector(pattern_size=100).fit_score(values)
    # Slower EMA follows the signal less -> larger residual mass overall.
    assert slow.sum() > fast.sum()


def test_rssa_detector_exposes_clean_series(spiky_series):
    values, __ = spiky_series
    det = baselines.RSSADetector(window=30).fit(values)
    assert det.clean_series.shape == values.shape


def test_base_detector_repr_shows_params():
    text = repr(baselines.EMADetector(pattern_size=7))
    assert "pattern_size=7" in text


def test_as_series_validation():
    from repro.baselines import as_series

    with pytest.raises(ValueError):
        as_series(np.zeros((2, 2, 2)))
    with pytest.raises(ValueError):
        as_series(np.zeros(1))
    assert as_series(np.zeros(5)).shape == (5, 1)
