"""Related-work extras (Section VI): HOT SAX and Series2Graph."""

import numpy as np
import pytest

from repro.baselines import HotSAX, Series2Graph, sax_word
from repro.baselines.hotsax import paa
from repro.metrics import roc_auc


def test_paa_means():
    segment = np.array([1.0, 1.0, 2.0, 2.0, 3.0, 3.0])
    assert np.allclose(paa(segment, 3), [1.0, 2.0, 3.0])


def test_paa_uneven_split():
    out = paa(np.arange(7, dtype=float), 3)
    assert out.shape == (3,)
    assert np.isfinite(out).all()


def test_sax_word_properties():
    rng = np.random.default_rng(0)
    word = sax_word(rng.standard_normal(32), n_pieces=4, alphabet=3)
    assert len(word) == 4
    assert all(c in "abc" for c in word)


def test_sax_word_shift_invariant():
    segment = np.sin(np.arange(24) / 3.0)
    assert sax_word(segment) == sax_word(segment + 100.0)
    assert sax_word(segment) == sax_word(segment * 5.0)


def test_sax_distinguishes_shapes():
    up = np.linspace(-1, 1, 16)
    down = np.linspace(1, -1, 16)
    assert sax_word(up) != sax_word(down)


def test_hotsax_finds_spikes(spiky_series):
    values, labels = spiky_series
    scores = HotSAX(pattern_size=12).fit_score(values)
    assert roc_auc(labels, scores) > 0.8


def test_hotsax_finds_discord_segment():
    t = np.arange(400)
    series = np.sin(2 * np.pi * t / 40)
    series[200:210] += 2.5
    labels = np.zeros(400, dtype=int)
    labels[200:210] = 1
    scores = HotSAX(pattern_size=20).fit_score(series)
    assert roc_auc(labels, scores) > 0.8


def test_hotsax_multivariate(spiky_multivariate):
    values, labels = spiky_multivariate
    scores = HotSAX(pattern_size=15).fit_score(values)
    assert scores.shape == (len(values),)
    assert roc_auc(labels, scores) > 0.6


def test_series2graph_finds_spikes(spiky_series):
    values, labels = spiky_series
    scores = Series2Graph(pattern_size=12).fit_score(values)
    assert scores.shape == (len(values),)
    assert roc_auc(labels, scores) > 0.7


def test_series2graph_builds_graph(spiky_series):
    values, __ = spiky_series
    det = Series2Graph(pattern_size=12)
    det.fit_score(values)
    assert det.graph_ is not None
    assert det.graph_.number_of_nodes() >= 2
    assert det.graph_.number_of_edges() >= 1


def test_series2graph_normal_path_low_score():
    """A perfectly periodic series travels one cycle of well-worn edges, so
    the anomaly scores concentrate on (at most) boundary effects."""
    t = np.arange(300)
    series = np.sin(2 * np.pi * t / 30)
    scores = Series2Graph(pattern_size=15).fit_score(series)
    interior = scores[30:-30]
    assert interior.std() < scores.std() + 1e-9
