"""Shared fixtures for the test suite."""

import numpy as np
import pytest


@pytest.fixture
def rng():
    return np.random.default_rng(0)


@pytest.fixture
def spiky_series():
    """Periodic univariate series with three planted point outliers."""
    t = np.arange(240)
    values = np.sin(2 * np.pi * t / 24).astype(float)
    labels = np.zeros(240, dtype=int)
    for pos, magnitude in ((40, 5.0), (120, -6.0), (200, 4.5)):
        values[pos] += magnitude
        labels[pos] = 1
    return values[:, None], labels


@pytest.fixture
def spiky_multivariate():
    """3-dimensional periodic series with planted point + collective outliers."""
    rng = np.random.default_rng(7)
    t = np.arange(300)
    base = np.stack(
        [
            np.sin(2 * np.pi * t / 30),
            np.cos(2 * np.pi * t / 30),
            np.sin(2 * np.pi * t / 60),
        ],
        axis=1,
    )
    values = base + 0.05 * rng.standard_normal(base.shape)
    labels = np.zeros(300, dtype=int)
    values[60] += np.array([4.0, -4.0, 5.0])
    labels[60] = 1
    values[180:190] += 3.0
    labels[180:190] = 1
    return values, labels
