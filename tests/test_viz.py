"""Text visualisation helpers."""

import numpy as np
import pytest

from repro.viz import render_decomposition, score_strip, sparkline


def test_sparkline_length_and_charset():
    out = sparkline(np.sin(np.arange(500) / 10.0), width=60)
    assert len(out) == 60
    assert set(out) <= set(" .:-=+*#%@")


def test_sparkline_short_series():
    out = sparkline(np.array([1.0, 2.0]), width=80)
    assert len(out) == 2


def test_sparkline_empty():
    assert sparkline(np.array([])) == ""


def test_sparkline_constant_series():
    out = sparkline(np.ones(50), width=20)
    assert len(set(out)) == 1


def test_sparkline_extremes_map_to_extreme_chars():
    series = np.array([0.0, 1.0, 0.0, 1.0])
    out = sparkline(series, width=4)
    assert out[0] == " " and out[1] == "@"


def test_score_strip_rows_and_markers():
    values = np.sin(np.arange(50) / 5.0)
    scores = np.zeros(50)
    scores[10] = 1.0
    labels = np.zeros(50, dtype=int)
    labels[10] = 1
    out = score_strip(values, scores, labels, start=5, stop=15)
    lines = out.splitlines()
    assert len(lines) == 10
    flagged = [line for line in lines if line.endswith("!")]
    assert len(flagged) == 1 and "t=10" in flagged[0]
    assert "#" in flagged[0]


def test_score_strip_2d_values():
    values = np.stack([np.arange(20.0), np.zeros(20)], axis=1)
    out = score_strip(values, np.ones(20))
    assert len(out.splitlines()) == 20


def test_render_decomposition_three_rows():
    t = np.arange(100)
    original = np.sin(t / 5.0)
    out = render_decomposition(original, original * 0.9, original * 0.1)
    lines = out.splitlines()
    assert len(lines) == 3
    assert lines[0].startswith("input T")
    assert lines[1].startswith("clean T_L")
    assert lines[2].startswith("outlier T_S")
    assert all("|" in line for line in lines)
