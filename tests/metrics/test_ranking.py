"""Ranking metrics vs hand-computed values and rank-invariance properties."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import (
    best_f1,
    pr_auc,
    precision_at_k,
    precision_recall_curve,
    roc_auc,
    roc_curve,
)


def test_perfect_ranking():
    labels = np.array([0, 0, 0, 1, 1])
    scores = np.array([0.1, 0.2, 0.3, 0.8, 0.9])
    assert roc_auc(labels, scores) == 1.0
    assert pr_auc(labels, scores) == 1.0


def test_inverted_ranking():
    labels = np.array([0, 0, 0, 1, 1])
    scores = np.array([0.9, 0.8, 0.7, 0.2, 0.1])
    assert roc_auc(labels, scores) == 0.0


def test_roc_hand_computed():
    # scores order: 0.9(+), 0.8(-), 0.7(+), 0.6(-)
    labels = np.array([1, 0, 1, 0])
    scores = np.array([0.9, 0.8, 0.7, 0.6])
    # ROC points: (0,0) (0,.5) (.5,.5) (.5,1) (1,1); area = 0.75
    assert np.isclose(roc_auc(labels, scores), 0.75)


def test_pr_hand_computed():
    labels = np.array([1, 0, 1, 0])
    scores = np.array([0.9, 0.8, 0.7, 0.6])
    # AP = 1 * 0.5 + (2/3) * 0.5 = 0.8333...
    assert np.isclose(pr_auc(labels, scores), 5.0 / 6.0)


def test_ties_handled_by_grouping():
    labels = np.array([1, 0, 1, 0])
    scores = np.array([0.5, 0.5, 0.5, 0.5])
    assert np.isclose(roc_auc(labels, scores), 0.5)


def test_random_scores_roc_near_half():
    rng = np.random.default_rng(0)
    labels = (rng.random(5000) < 0.1).astype(int)
    scores = rng.random(5000)
    assert abs(roc_auc(labels, scores) - 0.5) < 0.05


def test_pr_baseline_is_prevalence():
    rng = np.random.default_rng(1)
    prevalence = 0.15
    labels = (rng.random(5000) < prevalence).astype(int)
    scores = rng.random(5000)
    assert abs(pr_auc(labels, scores) - prevalence) < 0.05


def test_single_class_raises():
    with pytest.raises(ValueError):
        roc_auc(np.zeros(10), np.arange(10))
    with pytest.raises(ValueError):
        pr_auc(np.zeros(10), np.arange(10))


def test_length_mismatch_raises():
    with pytest.raises(ValueError):
        roc_auc(np.zeros(5), np.zeros(4))


def test_non_binary_labels_raise():
    with pytest.raises(ValueError):
        roc_auc(np.array([0, 1, 2]), np.zeros(3))


def test_curves_endpoints():
    labels = np.array([0, 1, 0, 1, 1])
    scores = np.array([0.1, 0.9, 0.3, 0.8, 0.7])
    fpr, tpr = roc_curve(labels, scores)
    assert fpr[0] == 0 and tpr[0] == 0
    assert fpr[-1] == 1 and tpr[-1] == 1
    precision, recall = precision_recall_curve(labels, scores)
    assert recall[-1] == 1.0


def test_precision_at_k():
    labels = np.array([1, 1, 0, 0, 0])
    scores = np.array([0.9, 0.8, 0.7, 0.2, 0.1])
    assert precision_at_k(labels, scores, 2) == 1.0
    assert np.isclose(precision_at_k(labels, scores, 4), 0.5)


def test_best_f1_perfect_detector():
    labels = np.array([0, 0, 1, 1])
    scores = np.array([0.0, 0.1, 0.9, 1.0])
    assert np.isclose(best_f1(labels, scores), 1.0)


@given(st.integers(0, 10_000))
@settings(max_examples=30, deadline=None)
def test_roc_invariant_to_monotone_transform(seed):
    rng = np.random.default_rng(seed)
    labels = (rng.random(100) < 0.2).astype(int)
    if labels.sum() in (0, 100):
        labels[0], labels[1] = 0, 1
    scores = rng.standard_normal(100)
    base = roc_auc(labels, scores)
    assert np.isclose(base, roc_auc(labels, 3 * scores + 7))
    assert np.isclose(base, roc_auc(labels, np.exp(scores / 5)))


@given(st.integers(0, 10_000))
@settings(max_examples=30, deadline=None)
def test_aucs_in_unit_interval(seed):
    rng = np.random.default_rng(seed)
    labels = (rng.random(60) < 0.3).astype(int)
    if labels.sum() in (0, 60):
        labels[0], labels[1] = 0, 1
    scores = rng.standard_normal(60)
    assert 0.0 <= roc_auc(labels, scores) <= 1.0
    assert 0.0 <= pr_auc(labels, scores) <= 1.0
