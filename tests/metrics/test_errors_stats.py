"""RMSE/MAE/relative-Frobenius and significance tests."""

import numpy as np
import pytest

from repro.metrics import mae, paired_t_test, relative_frobenius, rmse, welch_t_test


def test_rmse_known_value():
    assert np.isclose(rmse(np.array([0.0, 0.0]), np.array([3.0, 4.0])),
                      np.sqrt(12.5))


def test_rmse_zero_on_identical():
    x = np.random.default_rng(0).standard_normal((4, 3))
    assert rmse(x, x) == 0.0


def test_rmse_shape_mismatch_raises():
    with pytest.raises(ValueError):
        rmse(np.zeros(3), np.zeros(4))


def test_mae_known_value():
    assert np.isclose(mae(np.array([1.0, -1.0]), np.zeros(2)), 1.0)


def test_relative_frobenius_scale_free():
    a = np.random.default_rng(1).standard_normal((5, 5))
    b = a * 1.1
    assert np.isclose(relative_frobenius(a, b), relative_frobenius(10 * a, 10 * b))


def test_paired_t_test_detects_consistent_improvement():
    rng = np.random.default_rng(2)
    base = rng.random(20)
    improved = base + 0.1 + 0.01 * rng.standard_normal(20)
    __, p = paired_t_test(improved, base)
    assert p < 0.005


def test_paired_t_test_no_difference():
    rng = np.random.default_rng(3)
    a = rng.random(30)
    b = a + 0.001 * rng.standard_normal(30)
    __, p = paired_t_test(a, b)
    assert p > 0.05


def test_paired_t_test_validates_length():
    with pytest.raises(ValueError):
        paired_t_test(np.zeros(3), np.zeros(4))


def test_welch_t_test_distinct_means():
    rng = np.random.default_rng(4)
    a = rng.normal(1.0, 0.1, 50)
    b = rng.normal(0.0, 0.5, 50)
    __, p = welch_t_test(a, b)
    assert p < 1e-6
