"""Threshold-selection utilities."""

import numpy as np
import pytest

from repro.metrics import (
    apply_threshold,
    mad_threshold,
    pot_threshold,
    quantile_threshold,
)


@pytest.fixture
def contaminated_scores():
    rng = np.random.default_rng(0)
    scores = rng.exponential(1.0, 2000)
    scores[:20] += 30.0  # clear outliers
    return scores


def test_quantile_threshold_flags_expected_fraction(contaminated_scores):
    threshold = quantile_threshold(contaminated_scores, 0.99)
    flagged = apply_threshold(contaminated_scores, threshold)
    assert 0.005 < flagged.mean() < 0.02


def test_quantile_validates_q():
    with pytest.raises(ValueError):
        quantile_threshold(np.ones(10), 1.5)


def test_mad_threshold_robust_to_outliers(contaminated_scores):
    clean = contaminated_scores[20:]
    t_clean = mad_threshold(clean)
    t_dirty = mad_threshold(contaminated_scores)
    # Adding 1% extreme outliers barely moves a median/MAD threshold.
    assert abs(t_dirty - t_clean) / t_clean < 0.2


def test_mad_threshold_catches_planted(contaminated_scores):
    threshold = mad_threshold(contaminated_scores, k=5.0)
    flagged = apply_threshold(contaminated_scores, threshold)
    assert flagged[:20].all()


def test_pot_threshold_orders_with_risk(contaminated_scores):
    strict = pot_threshold(contaminated_scores, risk=1e-4)
    loose = pot_threshold(contaminated_scores, risk=1e-2)
    assert strict >= loose


def test_pot_threshold_separates_outliers(contaminated_scores):
    threshold = pot_threshold(contaminated_scores, risk=1e-3)
    flagged = apply_threshold(contaminated_scores, threshold)
    # The planted outliers exceed any sensible tail threshold.
    assert flagged[:20].mean() == 1.0
    # And the threshold keeps the false-flag rate low (the trimmed fit is
    # conservatively calibrated, so allow a small multiple of the risk).
    assert flagged[20:].mean() < 0.03


def test_pot_falls_back_on_degenerate_tail():
    scores = np.ones(100)
    threshold = pot_threshold(scores, risk=1e-3)
    assert np.isfinite(threshold)


def test_pot_validates_risk():
    with pytest.raises(ValueError):
        pot_threshold(np.ones(10), risk=2.0)


def test_apply_threshold_binary():
    out = apply_threshold(np.array([0.1, 0.9]), 0.5)
    assert out.tolist() == [0, 1]
