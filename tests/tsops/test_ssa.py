"""Singular spectrum analysis: exactness, ordering, component semantics."""

import numpy as np
import pytest

from repro.tsops import default_window, ssa_decompose, ssa_reconstruct


def test_full_reconstruction_is_exact():
    rng = np.random.default_rng(0)
    series = rng.standard_normal((60, 1))
    decomposition = ssa_decompose(series, window=10)
    full = decomposition.reconstruct(decomposition.components.shape[0])
    assert np.allclose(full, series, atol=1e-8)


def test_components_ordered_by_energy():
    t = np.arange(200)
    series = 5 * np.sin(2 * np.pi * t / 50) + 0.5 * np.sin(2 * np.pi * t / 7)
    decomposition = ssa_decompose(series, window=60)
    energies = decomposition.singular_values.sum(axis=1)
    assert np.all(np.diff(energies) <= 1e-9)


def test_top_components_capture_dominant_period():
    t = np.arange(300)
    clean = np.sin(2 * np.pi * t / 30)
    noisy = clean + 0.2 * np.random.default_rng(1).standard_normal(300)
    smooth = ssa_reconstruct(noisy, window=60, top_n=2)[:, 0]
    # Smoothing must reduce distance to the clean signal.
    assert np.mean((smooth - clean) ** 2) < np.mean((noisy - clean) ** 2)


def test_trend_in_first_component():
    t = np.arange(200, dtype=float)
    series = 0.05 * t + np.sin(2 * np.pi * t / 20)
    decomposition = ssa_decompose(series, window=50)
    trend = decomposition.reconstruct(1)[:, 0]
    # First component must be increasing overall (captures the trend).
    assert trend[-20:].mean() > trend[:20].mean()


def test_reconstruct_zero_components():
    decomposition = ssa_decompose(np.arange(30, dtype=float), window=5)
    zero = decomposition.reconstruct(0)
    assert np.allclose(zero, 0.0)


def test_reconstruct_clamps_top_n():
    decomposition = ssa_decompose(np.arange(30, dtype=float), window=5)
    capped = decomposition.reconstruct(999)
    assert capped.shape == (30, 1)


def test_multivariate_decomposition_shapes():
    rng = np.random.default_rng(2)
    series = rng.standard_normal((80, 3))
    decomposition = ssa_decompose(series, window=12, max_components=5)
    assert decomposition.components.shape == (5, 80, 3)
    assert decomposition.singular_values.shape == (5, 3)


def test_default_window_heuristic():
    assert 2 <= default_window(100) <= 50
    assert default_window(1400) >= default_window(100)
    with pytest.raises(ValueError):
        default_window(100, psi=5.0)
