"""EMA, moving average and loess smoothers."""

import numpy as np
import pytest

from repro.tsops import ema, loess, moving_average


def test_ema_recursion_matches_definition():
    x = np.array([1.0, 2.0, 3.0, 4.0])
    out = ema(x, alpha=0.5)
    expected = [1.0, 1.5, 2.25, 3.125]
    assert np.allclose(out, expected)


def test_ema_alpha_one_is_identity():
    x = np.random.default_rng(0).standard_normal(50)
    assert np.allclose(ema(x, alpha=1.0), x)


def test_ema_validates_alpha():
    with pytest.raises(ValueError):
        ema(np.ones(5), alpha=0.0)
    with pytest.raises(ValueError):
        ema(np.ones(5), alpha=1.5)


def test_ema_multivariate_shape():
    x = np.random.default_rng(1).standard_normal((30, 3))
    assert ema(x, 0.3).shape == (30, 3)


def test_moving_average_constant_signal_unchanged():
    x = np.full(40, 3.0)
    assert np.allclose(moving_average(x, 7), 3.0)


def test_moving_average_reduces_noise_variance():
    x = np.random.default_rng(2).standard_normal(500)
    smoothed = moving_average(x, 11)
    assert smoothed.var() < x.var() / 3


def test_moving_average_window_one_is_identity():
    x = np.random.default_rng(3).standard_normal(20)
    assert np.allclose(moving_average(x, 1), x)


def test_loess_fits_line_exactly():
    t = np.arange(50, dtype=float)
    y = 2.0 * t + 1.0
    fitted = loess(y, window=15, degree=1)
    assert np.allclose(fitted, y, atol=1e-6)


def test_loess_smooths_noise():
    rng = np.random.default_rng(4)
    t = np.arange(200, dtype=float)
    clean = np.sin(2 * np.pi * t / 100)
    noisy = clean + 0.3 * rng.standard_normal(200)
    fitted = loess(noisy, window=41)
    assert np.mean((fitted - clean) ** 2) < np.mean((noisy - clean) ** 2)


def test_loess_rejects_2d():
    with pytest.raises(ValueError):
        loess(np.zeros((5, 2)), window=3)
