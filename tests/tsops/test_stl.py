"""STL decomposition: additivity, seasonality capture, residual spikes."""

import numpy as np

from repro.tsops import estimate_period, stl_decompose


def seasonal_series(length=240, period=24, trend_slope=0.01, noise=0.05, seed=0):
    rng = np.random.default_rng(seed)
    t = np.arange(length, dtype=float)
    return (
        np.sin(2 * np.pi * t / period)
        + trend_slope * t
        + noise * rng.standard_normal(length)
    )


def test_components_sum_to_series():
    series = seasonal_series()
    result = stl_decompose(series, period=24)
    assert np.allclose(
        result.trend + result.seasonal + result.residual, series, atol=1e-10
    )


def test_trend_captures_slope():
    series = seasonal_series(trend_slope=0.05)
    result = stl_decompose(series, period=24)
    # Trend must rise by roughly slope * length over the series.
    rise = result.trend[-1] - result.trend[0]
    assert 0.5 * 0.05 * 240 < rise < 1.5 * 0.05 * 240


def test_seasonal_component_is_periodic():
    series = seasonal_series(noise=0.0)
    result = stl_decompose(series, period=24)
    seasonal = result.seasonal
    lagged_diff = np.abs(seasonal[24:] - seasonal[:-24])
    assert lagged_diff.mean() < 0.2


def test_residual_spikes_at_outliers():
    series = seasonal_series()
    series[100] += 6.0
    result = stl_decompose(series, period=24)
    assert np.argmax(np.abs(result.residual)) == 100


def test_estimate_period_finds_true_period():
    series = seasonal_series(noise=0.02)
    estimated = estimate_period(series)
    assert abs(estimated - 24) <= 2


def test_estimate_period_noise_fallback():
    noise = np.random.default_rng(1).standard_normal(200)
    estimated = estimate_period(noise, min_period=4)
    assert estimated >= 4


def test_multivariate_decomposition():
    series = np.stack([seasonal_series(seed=0), seasonal_series(seed=1)], axis=1)
    result = stl_decompose(series, period=24)
    assert result.trend.shape == (240, 2)
    assert np.allclose(
        result.trend + result.seasonal + result.residual, series, atol=1e-10
    )


def test_period_estimated_when_omitted():
    series = seasonal_series()
    result = stl_decompose(series)
    assert abs(result.period - 24) <= 2
