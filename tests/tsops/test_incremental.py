"""Incremental lagged-matrix maintenance vs full re-embedding."""

import numpy as np
import pytest

from repro.tsops import SlidingLagged, append_lagged, embed_lagged


@pytest.fixture
def series(rng):
    return rng.standard_normal((64, 2))


def test_append_lagged_equals_reembedding(series):
    matrix = embed_lagged(series[:-1], 9)
    extended = append_lagged(matrix, series[-1])
    assert np.allclose(extended, embed_lagged(series, 9))


def test_append_lagged_2d_squeeze(rng):
    values = rng.standard_normal(20)
    matrix = embed_lagged(values[:-1], 5)[:, :, 0]
    extended = append_lagged(matrix, values[-1])
    assert extended.ndim == 2
    assert np.allclose(extended, embed_lagged(values, 5)[:, :, 0])


def test_append_lagged_rejects_bad_obs(series):
    matrix = embed_lagged(series, 4)
    with pytest.raises(ValueError):
        append_lagged(matrix, np.zeros(3))


def test_growing_matches_embed_lagged(series):
    sliding = SlidingLagged(8, 2)
    emitted = [sliding.append(row) for row in series]
    # No column exists until the first full lag window.
    assert emitted[:7] == [False] * 7 and all(emitted[7:])
    assert np.allclose(sliding.matrix, embed_lagged(series, 8))


def test_sliding_window_keeps_last_columns(series):
    sliding = SlidingLagged(8, 2, max_columns=12)
    sliding.extend(series)
    # K=12 columns over lag 8 cover the last 8+12-1 observations.
    assert np.allclose(sliding.matrix, embed_lagged(series[-19:], 8))


def test_many_appends_amortised_compaction(rng):
    # Push far beyond the double-buffer width to exercise compaction.
    data = rng.standard_normal((500, 1))
    sliding = SlidingLagged(6, 1, max_columns=10)
    sliding.extend(data)
    assert np.allclose(sliding.matrix, embed_lagged(data[-15:], 6))


def test_rebuild_then_append_continues_seamlessly(series, rng):
    sliding = SlidingLagged(8, 2, max_columns=20).rebuild(series)
    extra = rng.standard_normal((15, 2))
    sliding.extend(extra)
    combined = np.vstack([series, extra])
    assert np.allclose(sliding.matrix, embed_lagged(combined[-27:], 8))


def test_rebuild_with_short_history(rng):
    short = rng.standard_normal((5, 1))
    sliding = SlidingLagged(8, 1).rebuild(short)
    assert len(sliding) == 0
    # The short history still counts toward the lag tail.
    for row in rng.standard_normal((3, 1)):
        sliding.append(row)
    assert len(sliding) == 1


def test_matrix_is_view_not_copy(series):
    sliding = SlidingLagged(4, 2)
    sliding.extend(series[:10])
    assert sliding.matrix.base is not None
