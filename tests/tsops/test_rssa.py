"""Robust SSA: spike isolation and decomposition quality."""

import numpy as np

from repro.tsops import rssa_decompose


def spiked_signal(length=300, period=30, spikes=(50, 150, 250), magnitude=6.0):
    t = np.arange(length)
    series = np.sin(2 * np.pi * t / period)
    for pos in spikes:
        series[pos] += magnitude
    return series


def test_scores_peak_at_spikes():
    series = spiked_signal()
    result = rssa_decompose(series, window=40)
    top3 = set(np.argsort(-result.scores)[:3])
    assert top3 == {50, 150, 250}


def test_decomposition_sums_to_input():
    series = spiked_signal()
    result = rssa_decompose(series, window=40)
    assert np.allclose(
        result.clean[:, 0] + result.outlier[:, 0], series, atol=1e-8
    )


def test_clean_part_close_to_underlying_signal():
    t = np.arange(300)
    clean_truth = np.sin(2 * np.pi * t / 30)
    series = clean_truth.copy()
    series[[50, 150]] += 7.0
    result = rssa_decompose(series, window=40)
    err_clean = np.mean((result.clean[:, 0] - clean_truth) ** 2)
    err_raw = np.mean((series - clean_truth) ** 2)
    assert err_clean < err_raw


def test_multivariate_support():
    rng = np.random.default_rng(0)
    t = np.arange(200)
    series = np.stack(
        [np.sin(2 * np.pi * t / 25), np.cos(2 * np.pi * t / 25)], axis=1
    )
    series += 0.02 * rng.standard_normal(series.shape)
    series[100] += 5.0
    result = rssa_decompose(series, window=30)
    assert result.scores.shape == (200,)
    assert np.argmax(result.scores) == 100


def test_window_defaults_applied():
    series = spiked_signal()
    result = rssa_decompose(series)
    assert 2 <= result.window <= 150
