"""Scaling transforms."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tsops import minmax_scale, robust_scale, standardize


def test_standardize_moments():
    rng = np.random.default_rng(0)
    arr = rng.standard_normal((500, 3)) * 7 + 3
    out = standardize(arr)
    assert np.allclose(out.mean(axis=0), 0.0, atol=1e-9)
    assert np.allclose(out.std(axis=0), 1.0, atol=1e-9)


def test_standardize_constant_dimension_safe():
    arr = np.ones((50, 2))
    out = standardize(arr)
    assert np.isfinite(out).all()


def test_minmax_range():
    rng = np.random.default_rng(1)
    out = minmax_scale(rng.uniform(-5, 9, (100, 2)))
    assert np.isclose(out.min(), 0.0)
    assert np.isclose(out.max(), 1.0)


def test_robust_scale_ignores_outliers():
    rng = np.random.default_rng(2)
    arr = rng.standard_normal((500, 1))
    contaminated = arr.copy()
    contaminated[:10] = 1000.0
    out_clean = robust_scale(arr)[10:]
    out_dirty = robust_scale(contaminated)[10:]
    # Median/IQR scaling barely moves for the uncontaminated bulk.
    assert np.abs(out_clean - out_dirty).max() < 0.2


@given(st.integers(0, 1000))
@settings(max_examples=30, deadline=None)
def test_scaling_preserves_shape_and_finiteness(seed):
    rng = np.random.default_rng(seed)
    arr = rng.standard_normal((40, 2)) * rng.uniform(0.1, 100)
    for transform in (standardize, minmax_scale, robust_scale):
        out = transform(arr)
        assert out.shape == arr.shape
        assert np.isfinite(out).all()
