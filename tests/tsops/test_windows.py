"""Sliding windows and overlap averaging, with hypothesis coverage."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tsops import overlap_average, sliding_windows, window_count


def test_window_count_examples():
    assert window_count(10, 4, 2) == 4
    assert window_count(10, 10, 1) == 1
    assert window_count(5, 6, 1) == 0


def test_sliding_windows_cover_tail():
    series = np.arange(10, dtype=float)
    windows, starts = sliding_windows(series, 4, stride=3)
    assert starts[-1] == 6  # final window ends at the last observation
    assert np.allclose(windows[-1][:, 0], [6, 7, 8, 9])


def test_sliding_windows_stride_one_contiguous():
    series = np.arange(8, dtype=float)
    windows, starts = sliding_windows(series, 3, stride=1)
    assert len(starts) == 6
    assert np.allclose(windows[2][:, 0], [2, 3, 4])


def test_width_longer_than_series_raises():
    with pytest.raises(ValueError):
        sliding_windows(np.zeros(5), 6)


@given(
    st.integers(min_value=4, max_value=60),
    st.integers(min_value=2, max_value=20),
    st.integers(min_value=1, max_value=10),
)
@settings(max_examples=60, deadline=None)
def test_every_position_covered(length, width, stride):
    width = min(width, length)
    series = np.zeros(length)
    windows, starts = sliding_windows(series, width, stride)
    covered = np.zeros(length, dtype=bool)
    for s in starts:
        covered[s : s + width] = True
    assert covered.all()


def test_overlap_average_constant_scores():
    """If every window reports the same value, all observations get it."""
    length, width = 12, 4
    __, starts = sliding_windows(np.zeros(length), width, stride=2)
    values = np.full((len(starts), width), 7.0)
    out = overlap_average(values, starts, width, length)
    assert np.allclose(out, 7.0)


def test_overlap_average_single_window():
    out = overlap_average(np.array([[1.0, 2.0, 3.0]]), np.array([2]), 3, 6)
    assert np.allclose(out[2:5], [1, 2, 3])
    assert np.allclose(out[:2], 0.0)


@given(st.integers(min_value=6, max_value=40), st.integers(0, 10_000))
@settings(max_examples=40, deadline=None)
def test_overlap_average_bounded_by_extremes(length, seed):
    rng = np.random.default_rng(seed)
    width = int(rng.integers(2, length))
    stride = int(rng.integers(1, width + 1))
    windows, starts = sliding_windows(np.zeros(length), width, stride)
    values = rng.uniform(0, 1, size=(len(starts), width))
    out = overlap_average(values, starts, width, length)
    assert out.min() >= values.min() - 1e-12
    assert out.max() <= values.max() + 1e-12
