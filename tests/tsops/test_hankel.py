"""Hankel embedding invariants, including hypothesis round-trip properties."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tsops import deembed_lagged, embed_lagged, hankel_weights, hankelize


def test_embed_shape_and_content():
    series = np.arange(6, dtype=float)
    m = embed_lagged(series, 3)
    assert m.shape == (3, 4, 1)
    # M[i, j] = s_{i+j}
    for i in range(3):
        for j in range(4):
            assert m[i, j, 0] == i + j


def test_anti_diagonals_constant():
    series = np.arange(10, dtype=float)[:, None]
    m = embed_lagged(series, 4)
    for t in range(10):
        cells = [m[i, t - i, 0] for i in range(4) if 0 <= t - i < m.shape[1]]
        assert len(set(cells)) == 1


@given(
    st.integers(min_value=2, max_value=40),
    st.integers(min_value=1, max_value=3),
    st.integers(min_value=0, max_value=10_000),
)
@settings(max_examples=60, deadline=None)
def test_roundtrip_property(length, dims, seed):
    rng = np.random.default_rng(seed)
    series = rng.standard_normal((length, dims))
    window = int(rng.integers(1, length + 1))
    restored = deembed_lagged(embed_lagged(series, window))
    assert np.allclose(restored, series, atol=1e-10)


def test_window_bounds_validated():
    series = np.zeros((10, 1))
    with pytest.raises(ValueError):
        embed_lagged(series, 0)
    with pytest.raises(ValueError):
        embed_lagged(series, 11)


def test_hankel_weights_sum_to_cells():
    window, k = 5, 8
    weights = hankel_weights(window, k)
    assert weights.sum() == window * k
    assert weights.max() == min(window, k)
    assert weights[0] == 1 and weights[-1] == 1


def test_hankelize_idempotent():
    rng = np.random.default_rng(3)
    arbitrary = rng.standard_normal((6, 9, 2))
    once = hankelize(arbitrary)
    twice = hankelize(once)
    assert np.allclose(once, twice, atol=1e-12)


def test_hankelize_identity_on_hankel():
    series = np.random.default_rng(4).standard_normal((20, 1))
    m = embed_lagged(series, 6)
    assert np.allclose(hankelize(m), m, atol=1e-12)


def test_hankelize_is_projection_toward_hankel():
    """Averaging anti-diagonals must not increase distance to the true
    Hankel matrix of any series (least-squares projection property)."""
    rng = np.random.default_rng(5)
    series = rng.standard_normal((15, 1))
    m = embed_lagged(series, 5)
    noisy = m + 0.1 * rng.standard_normal(m.shape)
    projected = hankelize(noisy)
    assert np.linalg.norm(projected - m) <= np.linalg.norm(noisy - m) + 1e-12


def test_deembed_2d_input_accepted():
    m = embed_lagged(np.arange(8, dtype=float), 3)[:, :, 0]
    restored = deembed_lagged(m)
    assert restored.shape == (8, 1)
    assert np.allclose(restored[:, 0], np.arange(8))


def test_endpoint_readout_exact_on_hankel():
    series = np.random.default_rng(6).standard_normal((25, 2))
    m = embed_lagged(series, 7)
    assert np.allclose(deembed_lagged(m, method="endpoint"), series)


def test_endpoint_vs_average_on_noisy_matrix():
    """On non-Hankel input the average readout is the least-squares choice:
    it must be at least as close to the underlying series as the endpoint
    readout on average."""
    rng = np.random.default_rng(7)
    series = rng.standard_normal((30, 1))
    m = embed_lagged(series, 8)
    noisy = m + 0.3 * rng.standard_normal(m.shape)
    err_avg = np.linalg.norm(deembed_lagged(noisy) - series)
    err_end = np.linalg.norm(deembed_lagged(noisy, method="endpoint") - series)
    assert err_avg <= err_end + 1e-9


def test_deembed_unknown_method():
    m = embed_lagged(np.arange(10, dtype=float), 3)
    with pytest.raises(ValueError):
        deembed_lagged(m, method="middle")
