"""Shared helpers for the static-analysis suite (not a test module)."""

import os

from repro.analysis import rules_by_id, run_lint

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")


def fixture_path(name):
    return os.path.join(FIXTURES, name)


def marked_lines(path):
    """1-indexed lines tagged ``# FIRES`` — the fixture's expected findings."""
    with open(path) as handle:
        return {
            number for number, line in enumerate(handle, start=1)
            if "# FIRES" in line
        }


def lint_fixture(name, rule_id):
    """Lint one fixture with one rule; returns the report."""
    return run_lint([fixture_path(name)], rules=rules_by_id([rule_id]))
