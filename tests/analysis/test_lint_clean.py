"""Tier-1 gate: the shipped package passes its own invariant checker.

This is the test that turns ``repro lint`` from a tool into a contract —
any PR that introduces a global-RNG draw, an unguarded declared-guarded
attribute, a tape poisoner, or a leaked resource fails here, not in a
flaky downstream reproduction run.
"""

import os

import repro
from repro.analysis import run_lint

PACKAGE_DIR = os.path.dirname(os.path.abspath(repro.__file__))


def test_src_is_finding_free():
    report = run_lint([PACKAGE_DIR])
    assert report.ok, "repro lint found violations:\n%s" % "\n".join(
        "%s:%d [%s] %s" % (f.path, f.line, f.rule, f.message)
        for f in report.findings
    )


def test_lint_actually_covered_the_tree():
    # Guard against a silent walk regression reporting "clean" on nothing.
    report = run_lint([PACKAGE_DIR])
    assert len(report.files) > 80
    linted = {os.path.relpath(path, PACKAGE_DIR) for path in report.files}
    for expected in (
        "cli.py",
        os.path.join("nn", "functional.py"),
        os.path.join("serve", "router.py"),
        os.path.join("serve", "workers.py"),
        os.path.join("analysis", "engine.py"),
    ):
        assert expected in linted


def test_in_tree_suppressions_are_used_and_justified():
    # The einsum pragmas in nn/functional.py are the package's only
    # sanctioned suppressions: each must still match a live finding
    # (otherwise suppression-unused fires and test_src_is_finding_free
    # already failed) and carry a reason.
    report = run_lint([PACKAGE_DIR])
    assert report.suppressed, "expected the einsum-order pragmas to be live"
    for finding, suppression in report.suppressed:
        assert suppression.reason.strip()
        assert finding.rule in suppression.rule_ids
