"""Fixture for the resource-close rule; linted, never imported."""

import mmap
import socket
from concurrent.futures import ThreadPoolExecutor


def leaks_file(path):
    handle = open(path)  # FIRES
    data = handle.read()
    return data


def leaks_socket():
    sock = socket.socket()  # FIRES
    sock.connect(("127.0.0.1", 9))


def leaks_pool(jobs):
    pool = ThreadPoolExecutor(2)  # FIRES
    list(pool.map(str, jobs))


def leaks_mmap(handle):
    view = mmap.mmap(handle.fileno(), 0)  # FIRES
    head = bytes(view[:4])
    return head


def with_managed(path):
    with open(path) as handle:
        return handle.read()


def finally_closed(path):
    handle = open(path)
    try:
        return handle.read()
    finally:
        handle.close()


def custody_returned(path):
    handle = open(path)
    return handle


def custody_stored(self, path):
    handle = open(path)
    self._handle = handle


def custody_passed(path, registry):
    handle = open(path)
    registry.adopt(handle)


def entered_later(path):
    handle = open(path)
    with handle:
        return handle.read()


def waved(path):
    handle = open(path)  # repro: lint-ok[resource-close] fixture: exercising suppression
    text = handle.read()
    return text
