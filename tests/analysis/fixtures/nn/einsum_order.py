"""Fixture for the einsum-order rule; path contains an nn segment."""

import numpy as np


def free_order(a, b):
    return np.einsum("ij,jk->ik", a, b)  # FIRES


def optimizer_on(a, b):
    return np.einsum("ij,jk->ik", a, b, optimize=True)  # FIRES


def fixed_order(a, b):
    return np.einsum("ij,jk->ik", a, b, optimize=False)


def waved_through(a, b):
    return np.einsum("ij,jk->ik", a, b, optimize=True)  # repro: lint-ok[einsum-order] fixture: exercising suppression
