"""Fixture for the tape-out-alloc rule; linted, never imported."""

import numpy as np

scratch = [None]


def forward(x, out=None):
    tmp = np.zeros(x.shape)  # FIRES
    return tmp + x


def forward_guarded(x, out=None):
    def forward(inp, out=None):
        if out is None:
            out = np.empty(inp.shape)
        np.copyto(out, inp)
        return out
    return forward(x, out=out)


def forward_scratch_cache(x, out=None):
    def forward(inp, out=None):
        tmp = scratch[0]
        if tmp is None or tmp.shape != inp.shape:
            tmp = scratch[0] = np.empty(inp.shape)
        np.multiply(inp, 2.0, out=tmp)
        return tmp
    return forward(x, out=out)


def not_a_forward(x, out=None):
    pass


def helper(x):
    # No out= parameter: not a replayable closure, allocate freely.
    return np.zeros(x.shape)


class WavedThrough:
    def forward(self, x, out=None):
        tmp = np.empty(x.shape)  # repro: lint-ok[tape-out-alloc] fixture: exercising suppression
        return tmp
