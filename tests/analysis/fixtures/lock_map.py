"""Fixture for the lock-map rule; linted, never imported."""

import threading


class NotADict:
    _GUARDED_BY = ["_count"]  # FIRES

    def __init__(self):
        self._count = 0


class GhostEntries:
    _GUARDED_BY = {"_ghost": "_lock", "_count": "_missing_lock"}  # FIRES

    def __init__(self):
        self._lock = threading.Lock()
        self._count = 0


class Valid:
    _GUARDED_BY = {"_count": "_lock"}

    def __init__(self):
        self._lock = threading.Lock()
        self._count = 0


class NoInitToValidate:
    # Mixin style: without an __init__ the assignment check is skipped.
    _GUARDED_BY = {"_count": "_lock"}


class Waved:
    _GUARDED_BY = ["_count"]  # repro: lint-ok[lock-map] fixture: exercising suppression

    def __init__(self):
        self._count = 0
