"""Fixture for the set-reduction rule; linted, never imported."""

import math


def reduce_literal():
    return sum({1.0, 2.0, 3.0})  # FIRES


def reduce_comprehension(values):
    return sum(v * v for v in {float(v) for v in values})  # FIRES


def reduce_fsum(values):
    return math.fsum(set(values))  # FIRES


def loop_accumulate(values):
    total = 0.0
    for v in set(values):  # FIRES
        total += v
    return total


def ordered_is_fine(values):
    return sum(sorted(set(values)))


def non_numeric_loop(values):
    names = []
    for v in set(values):
        names.append(v)
    return names


def waved_through(values):
    return sum(set(values))  # repro: lint-ok[set-reduction] fixture: exercising suppression
