"""Fixture for the stacked-weight-mutation rule; linted, never imported."""

import numpy as np


class StackedProgram:
    """Declares its stacked buffers; may mutate them in its own methods."""

    _STACKED_BUFFERS = ("weights", "biases")

    def __init__(self, members):
        self.weights = [np.stack([m.w for m in members])]
        self.biases = [np.stack([m.b for m in members])]

    def refresh(self, members):
        # Inside the declaring class: sanctioned.
        for j, member in enumerate(members):
            self.weights[0][j] = member.w
            self.biases[0][j] += 0.0


def hot_swap_badly(program, member_index, new_weights):
    program.weights[0][member_index] = new_weights  # FIRES
    program.biases[0][member_index] *= 0.0  # FIRES


def rebind_whole_buffer(program, stacked):
    program.weights = stacked  # FIRES


def unrelated_attribute(model, new_weights):
    # `weights` on a class with no _STACKED_BUFFERS declaration in this
    # module would still match by name — but `replays` never appears in
    # any declaration, so writes to it stay quiet.
    model.replays = 0
    model.replays += 1


def read_only_access(program):
    # Reads are fine; only mutation desynchronises the replay.
    return program.weights[0].sum() + program.biases[0].sum()


def waved_through(program):
    program.weights = []  # repro: lint-ok[stacked-weight-mutation] fixture: exercising suppression
