"""Fixture for the lock-guarded rule; linted, never imported."""

import threading


class Counter:
    _GUARDED_BY = {"_count": "_lock", "_events": "_lock"}

    def __init__(self):
        self._lock = threading.Lock()
        self._count = 0
        self._events = []

    def bump(self):
        with self._lock:
            self._count += 1

    def peek(self):
        return self._count  # FIRES

    def wrong_lock(self):
        with self._other:
            return self._count  # FIRES

    def closure_escapes_lock(self):
        with self._lock:
            def later():
                return self._count  # FIRES
            return later

    def closure_takes_its_own(self):
        def later():
            with self._lock:
                return self._count
        return later

    def _peek_locked(self):
        # *_locked suffix: the documented caller-holds-the-lock escape.
        return self._count

    def snapshot(self):
        with self._lock:
            return (self._count, list(self._events))

    def waved(self):
        return self._count  # repro: lint-ok[lock-guarded] fixture: exercising suppression


class Undeclared:
    def __init__(self):
        self._count = 0

    def peek(self):
        # No _GUARDED_BY map: the rule has no contract to enforce.
        return self._count
