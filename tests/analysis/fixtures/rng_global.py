"""Fixture for the rng-global rule; linted, never imported.

Lines carrying the FIRES tag must produce a finding; lines with a
lint-ok pragma must land in the suppressed list.
"""

import random

import numpy as np


def legacy_api():
    np.random.seed(0)  # FIRES
    return np.random.rand(3)  # FIRES


def unseeded():
    return np.random.default_rng()  # FIRES


def stdlib_global():
    return random.random()  # FIRES


def forward(x, out=None):
    rng = np.random.default_rng(0)  # FIRES
    return x + rng.standard_normal(x.shape)


def sanctioned_fallback(rng=None):
    # A seeded fallback outside kernel scope is the blessed idiom.
    rng = np.random.default_rng(0) if rng is None else rng
    return rng.standard_normal(4)


def waved_through():
    return np.random.default_rng()  # repro: lint-ok[rng-global] fixture: exercising suppression
