"""Fixture for the tape-poison rule; linted, never imported."""

from somewhere import dropout, relu, softmax  # noqa: F401 - fixture only


class PledgesButPoisons:
    tape_safe = True

    def forward(self, x):
        return softmax(x)  # FIRES

    def regularise(self, x):
        return dropout(x, 0.5)  # FIRES


class HonestEager:
    tape_safe = False

    def forward(self, x):
        return softmax(x)


class NoPledge:
    def forward(self, x):
        return dropout(x, 0.1)


class PledgesAndKeepsIt:
    tape_safe = True

    def forward(self, x):
        return relu(x)


class WavedThrough:
    tape_safe = True

    def forward(self, x):
        return softmax(x)  # repro: lint-ok[tape-poison] fixture: exercising suppression
