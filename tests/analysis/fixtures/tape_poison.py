"""Fixture for the tape-poison rule; linted, never imported."""

from somewhere import Tensor, as_tensor, sampled_normal, softmax  # noqa: F401 - fixture only


class PledgesButBakesDraws:
    tape_safe = True

    def forward(self, x):
        noise = Tensor(self.rng.standard_normal(x.shape))  # FIRES
        return x + noise

    def corrupt(self, x):
        mask = as_tensor(self._rng.random(x.shape) > 0.5)  # FIRES
        return x * mask


class HonestEager:
    tape_safe = False

    def forward(self, x):
        return Tensor(self.rng.standard_normal(x.shape))


class NoPledge:
    def forward(self, x):
        return as_tensor(self.rng.random(x.shape))


class PledgesAndKeepsIt:
    tape_safe = True

    def forward(self, x):
        # Draws through the buffer protocol re-sample on every replay,
        # and plain deterministic primitives (softmax records through its
        # fixed-order closure since tape v2) are fine.
        noise = sampled_normal(x.shape, self.rng)
        return softmax(x) + noise


class WavedThrough:
    tape_safe = True

    def forward(self, x):
        return Tensor(self.rng.normal(size=x.shape))  # repro: lint-ok[tape-poison] fixture: exercising suppression
