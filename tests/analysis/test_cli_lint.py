"""The ``repro lint`` CLI surface: exit codes, JSON, rule selection,
and the suppression inventory."""

import json
import textwrap

import pytest

from lintutil import fixture_path

from repro.cli import main


def write(tmp_path, source, name="sample.py"):
    path = tmp_path / name
    path.write_text(textwrap.dedent(source))
    return str(path)


def test_clean_tree_exits_zero(tmp_path, capsys):
    path = write(tmp_path, "def fine():\n    return 1\n")
    assert main(["lint", path]) == 0
    out = capsys.readouterr().out
    assert "1 file checked, 0 findings" in out


def test_findings_exit_nonzero_with_location_and_hint(capsys):
    assert main(["lint", fixture_path("rng_global.py")]) == 1
    out = capsys.readouterr().out
    assert "[rng-global]" in out
    assert "rng_global.py:" in out
    assert "hint:" in out


def test_json_report_is_machine_readable(capsys):
    assert main(["lint", "--json", fixture_path("set_reduction.py")]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["files"] == 1
    assert payload["findings"]
    for finding in payload["findings"]:
        assert finding["rule"] == "set-reduction"
        assert set(finding) == {"rule", "path", "line", "col",
                                "message", "hint"}
    assert payload["suppressed"]  # the fixture's waved-through line


def test_rules_flag_selects_a_subset(capsys):
    # The rng fixture is dirty, but a set-reduction-only run passes it.
    code = main(["lint", "--rules", "set-reduction",
                 fixture_path("rng_global.py")])
    capsys.readouterr()
    assert code == 0


def test_rules_list_prints_the_catalog(capsys):
    assert main(["lint", "--rules", "list"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("rng-global", "set-reduction", "einsum-order",
                    "tape-poison", "tape-out-alloc", "lock-guarded",
                    "lock-map", "resource-close"):
        assert rule_id in out


def test_unknown_rule_id_exits_two(tmp_path, capsys):
    path = write(tmp_path, "x = 1\n")
    assert main(["lint", "--rules", "no-such-rule", path]) == 2
    assert "unknown rule id" in capsys.readouterr().err


def test_list_suppressions_enumerates_pragmas(capsys):
    assert main(["lint", "--list-suppressions",
                 fixture_path("rng_global.py")]) == 0
    out = capsys.readouterr().out
    assert "[rng-global]" in out
    assert "fixture: exercising suppression" in out
    assert "1 suppression" in out


def test_list_suppressions_fails_on_missing_reason(tmp_path, capsys):
    path = write(tmp_path, """\
        import numpy as np

        def f():
            return np.random.default_rng()  # repro: lint-ok[rng-global]
    """)
    assert main(["lint", "--list-suppressions", path]) == 1
    err = capsys.readouterr().err
    assert "suppression-reason" in err


def test_list_suppressions_fails_on_unknown_rule(tmp_path, capsys):
    path = write(tmp_path, """\
        def f():
            return 1  # repro: lint-ok[rng-globall] typo
    """)
    assert main(["lint", "--list-suppressions", path]) == 1
    assert "unknown rule" in capsys.readouterr().err


def test_default_path_is_the_installed_package(capsys):
    # No paths: lints the shipped repro package, which must be clean —
    # the CLI default and the tier-1 gate enforce the same contract.
    assert main(["lint"]) == 0
    out = capsys.readouterr().out
    assert "0 findings" in out


@pytest.mark.parametrize("fixture,expected_rule", [
    ("tape_poison.py", "tape-poison"),
    ("lock_guarded.py", "lock-guarded"),
    ("resource_close.py", "resource-close"),
])
def test_each_family_reaches_the_cli(fixture, expected_rule, capsys):
    assert main(["lint", fixture_path(fixture)]) == 1
    assert "[%s]" % expected_rule in capsys.readouterr().out
