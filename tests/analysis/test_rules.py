"""Per-rule fixture tests: every rule fires where it must, stays quiet
where it must, and honours a same-line lint-ok suppression.

Each fixture file under ``fixtures/`` tags its violation lines with
``# FIRES`` and carries exactly one pragma-suppressed violation; the
shared assertion checks the finding lines equal the tagged lines and the
suppressed list holds exactly the pragma line.
"""

import pytest

from lintutil import fixture_path, lint_fixture, marked_lines

from repro.analysis import all_rules, rules_by_id

CASES = [
    ("rng-global", "rng_global.py"),
    ("set-reduction", "set_reduction.py"),
    ("einsum-order", "nn/einsum_order.py"),
    ("tape-poison", "tape_poison.py"),
    ("tape-out-alloc", "tape_out_alloc.py"),
    ("stacked-weight-mutation", "stacked_weight_mutation.py"),
    ("lock-guarded", "lock_guarded.py"),
    ("lock-map", "lock_map.py"),
    ("resource-close", "resource_close.py"),
]


@pytest.mark.parametrize("rule_id,fixture", CASES, ids=[c[0] for c in CASES])
def test_rule_fires_on_marked_lines_only(rule_id, fixture):
    report = lint_fixture(fixture, rule_id)
    expected = marked_lines(fixture_path(fixture))
    assert expected, "fixture %s has no # FIRES markers" % fixture
    assert {f.line for f in report.findings} == expected
    assert all(f.rule == rule_id for f in report.findings)


@pytest.mark.parametrize("rule_id,fixture", CASES, ids=[c[0] for c in CASES])
def test_rule_honours_suppression(rule_id, fixture):
    report = lint_fixture(fixture, rule_id)
    assert len(report.suppressed) == 1, (
        "fixture %s must carry exactly one suppressed violation" % fixture
    )
    finding, suppression = report.suppressed[0]
    assert finding.rule == rule_id
    assert rule_id in suppression.rule_ids
    assert suppression.reason  # the audit requires one; fixtures model it
    # The suppressed line must not also appear as an active finding.
    assert finding.line not in {f.line for f in report.findings}


@pytest.mark.parametrize("rule_id,fixture", CASES, ids=[c[0] for c in CASES])
def test_findings_carry_location_message_and_hint(rule_id, fixture):
    report = lint_fixture(fixture, rule_id)
    for finding in report.findings:
        assert finding.path.endswith(fixture.split("/")[-1])
        assert finding.line > 0
        assert finding.message
        assert finding.hint  # every rule ships a fix hint
        payload = finding.to_dict()
        assert payload["rule"] == rule_id
        assert payload["line"] == finding.line


def test_registry_covers_the_contract_catalog():
    rules = all_rules()
    assert len(rules) >= 8
    assert [r.id for r in rules] == sorted(r.id for r in rules)
    categories = {r.category for r in rules}
    assert {"determinism", "tape-safety", "lock-discipline",
            "resources"} <= categories
    for rule in rules:
        assert rule.description and rule.hint


def test_unknown_rule_id_is_a_loud_error():
    with pytest.raises(KeyError, match="no-such-rule"):
        rules_by_id(["no-such-rule"])


def test_rule_subset_runs_only_selected(tmp_path):
    # The rng fixture violates rng-global, but a set-reduction-only run
    # must not report it.
    report = lint_fixture("rng_global.py", "set-reduction")
    assert report.findings == []
