"""Perf budget: ``repro lint`` answers in seconds, cold or warm.

The checker only stays in developers' loops (and cheap in CI) if a full
run over the package is near-instant.  The budget is generous for slow
CI machines; the cache assertion is the real regression tripwire — a
second run over an unchanged tree must not re-parse anything.
"""

import os
import time

import pytest

import repro
from repro.analysis import clear_cache, run_lint
from repro.analysis.walker import module_context

PACKAGE_DIR = os.path.dirname(os.path.abspath(repro.__file__))


@pytest.mark.slow
def test_full_lint_fits_the_budget():
    clear_cache()
    start = time.perf_counter()
    report = run_lint([PACKAGE_DIR])
    cold = time.perf_counter() - start
    assert len(report.files) > 80
    assert cold < 5.0, "cold lint took %.2fs (budget 5s)" % cold

    start = time.perf_counter()
    run_lint([PACKAGE_DIR])
    warm = time.perf_counter() - start
    assert warm < 5.0, "warm lint took %.2fs (budget 5s)" % warm


def test_cache_returns_the_same_context_for_unchanged_files():
    clear_cache()
    path = os.path.join(PACKAGE_DIR, "cli.py")
    first = module_context(path)
    second = module_context(path)
    assert second is first  # stat-keyed hit: no re-parse, no re-index


def test_cache_invalidates_on_modification(tmp_path):
    path = tmp_path / "mutating.py"
    path.write_text("x = 1\n")
    first = module_context(str(path))
    path.write_text("x = 2\n")
    # Force a distinct mtime even on coarse-grained filesystems.
    stat = os.stat(path)
    os.utime(path, ns=(stat.st_atime_ns, stat.st_mtime_ns + 1_000_000))
    second = module_context(str(path))
    assert second is not first
    assert second.source == "x = 2\n"
