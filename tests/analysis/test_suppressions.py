"""The suppression audit: pragmas are contracts, not opt-outs.

A ``# repro: lint-ok[...]`` pragma must name a known rule, give a
reason, and still match a live finding — and none of those audit
findings can themselves be suppressed.
"""

import textwrap

from repro.analysis import NON_SUPPRESSIBLE, run_lint


def write(tmp_path, source, name="sample.py"):
    path = tmp_path / name
    path.write_text(textwrap.dedent(source))
    return str(path)


def rules_fired(report):
    return {f.rule for f in report.findings}


def test_missing_reason_is_a_finding(tmp_path):
    path = write(tmp_path, """\
        import numpy as np

        def f():
            return np.random.default_rng()  # repro: lint-ok[rng-global]
    """)
    report = run_lint([path])
    assert "suppression-reason" in rules_fired(report)
    # The violation itself is still waved through — the audit flags the
    # pragma's hygiene, it does not revoke the suppression.
    assert "rng-global" not in rules_fired(report)


def test_whitespace_reason_counts_as_missing(tmp_path):
    path = write(tmp_path, """\
        import numpy as np

        def f():
            return np.random.default_rng()  # repro: lint-ok[rng-global]
    """)
    report = run_lint([path])
    assert "suppression-reason" in rules_fired(report)


def test_unknown_rule_id_is_a_finding(tmp_path):
    path = write(tmp_path, """\
        def f():
            return 1  # repro: lint-ok[rng-globall] typo'd rule id
    """)
    report = run_lint([path])
    assert "suppression-reason" in rules_fired(report)


def test_stale_pragma_is_a_finding(tmp_path):
    path = write(tmp_path, """\
        def f():
            return 1  # repro: lint-ok[rng-global] nothing to suppress here
    """)
    report = run_lint([path])
    assert "suppression-unused" in rules_fired(report)


def test_stale_audit_skipped_under_rule_subset(tmp_path):
    from repro.analysis import rules_by_id

    path = write(tmp_path, """\
        import numpy as np

        def f():
            return np.random.default_rng()  # repro: lint-ok[rng-global] justified: fixture
    """)
    # Under a set-reduction-only run the rng-global pragma is idle by
    # selection, not stale — the unused audit must stay quiet.
    report = run_lint([path], rules=rules_by_id(["set-reduction"]))
    assert "suppression-unused" not in rules_fired(report)


def test_audit_findings_cannot_be_suppressed(tmp_path):
    path = write(tmp_path, """\
        def f():
            return 1  # repro: lint-ok[suppression-unused] self-excusing pragma
    """)
    report = run_lint([path])
    # The pragma matches nothing suppressible; the unused audit fires on
    # its own line despite naming itself.
    assert "suppression-unused" in rules_fired(report)
    assert report.suppressed == []


def test_empty_rule_list_is_a_finding(tmp_path):
    path = write(tmp_path, """\
        def f():
            return 1  # repro: lint-ok[] no rules named
    """)
    report = run_lint([path])
    assert "suppression-reason" in rules_fired(report)


def test_parse_error_is_reported_not_raised(tmp_path):
    path = write(tmp_path, "def broken(:\n    pass\n")
    report = run_lint([path])
    assert rules_fired(report) == {"parse-error"}
    assert not report.ok


def test_non_suppressible_set_is_the_audit_rules():
    assert NON_SUPPRESSIBLE == {
        "suppression-reason", "suppression-unused", "parse-error"
    }


def test_report_inventories_every_pragma(tmp_path):
    path = write(tmp_path, """\
        import numpy as np

        def f():
            return np.random.default_rng()  # repro: lint-ok[rng-global] justified: fixture

        def g():
            return 1  # repro: lint-ok[set-reduction] stale on purpose
    """)
    report = run_lint([path])
    assert len(report.suppressions) == 2
    reasons = {s.reason for s in report.suppressions}
    assert reasons == {"justified: fixture", "stale on purpose"}
    payload = report.to_dict()
    assert len(payload["suppressions"]) == 2
    assert len(payload["suppressed"]) == 1  # only the rng pragma matched
