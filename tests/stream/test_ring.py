"""RingBuffer: contiguous views, eviction, and chunked appends."""

import numpy as np
import pytest

from repro.stream import RingBuffer


def test_fills_then_evicts_oldest():
    ring = RingBuffer(4, 1)
    for i in range(6):
        ring.append([float(i)])
    assert len(ring) == 4
    assert ring.total == 6
    assert np.allclose(ring.view()[:, 0], [2, 3, 4, 5])


def test_view_is_contiguous_and_ordered_across_wraps():
    rng = np.random.default_rng(0)
    data = rng.standard_normal((57, 3))
    ring = RingBuffer(10, 3)
    for i, row in enumerate(data):
        ring.append(row)
        view = ring.view()
        assert view.flags.c_contiguous
        expected = data[max(0, i - 9) : i + 1]
        assert np.allclose(view, expected)


def test_extend_matches_repeated_append():
    rng = np.random.default_rng(1)
    data = rng.standard_normal((33, 2))
    one = RingBuffer(7, 2)
    two = RingBuffer(7, 2)
    for row in data:
        one.append(row)
    # Mixed chunk sizes, including one larger than the capacity.
    two.extend(data[:20]).extend(data[20:25]).extend(data[25:])
    assert one.total == two.total
    assert np.allclose(one.view(), two.view())


def test_oversized_chunk_keeps_only_tail():
    data = np.arange(30, dtype=float)[:, None]
    ring = RingBuffer(5, 1)
    ring.extend(data)
    assert np.allclose(ring.view()[:, 0], [25, 26, 27, 28, 29])
    assert ring.total == 30


def test_view_is_read_only():
    ring = RingBuffer(3, 1)
    ring.append([1.0])
    with pytest.raises(ValueError):
        ring.view()[0, 0] = 9.0


def test_scalar_and_1d_inputs():
    ring = RingBuffer(3, 1)
    ring.append(1.5)
    ring.extend(np.array([2.5, 3.5]))
    assert np.allclose(ring.view()[:, 0], [1.5, 2.5, 3.5])


def test_dimension_mismatch_raises():
    ring = RingBuffer(3, 2)
    with pytest.raises(ValueError):
        ring.append([1.0])
    with pytest.raises(ValueError):
        ring.extend(np.zeros((4, 3)))
