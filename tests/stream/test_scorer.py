"""StreamScorer: modes, warmup, bounded windows, and scoring equivalence."""

import numpy as np
import pytest

from repro.baselines import EMADetector, LOF
from repro.core import RAE, RDAE, ScoringSession
from repro.stream import StreamScorer


def make_series(seed, length=200, spike=None):
    rng = np.random.default_rng(seed)
    t = np.arange(length)
    values = np.sin(2 * np.pi * t / 25) + 0.05 * rng.standard_normal(length)
    if spike is not None:
        values[spike] += 6.0
    return values[:, None]


@pytest.fixture(scope="module")
def fitted_rae():
    return RAE(max_iterations=5).fit(make_series(0))


def test_auto_mode_selection(fitted_rae):
    assert StreamScorer(fitted_rae, window=32).mode == "score_new"
    assert StreamScorer(EMADetector(), window=32).mode == "score"
    from repro.baselines import RSSADetector
    from repro.core import NRAE, NRDAE

    # Detectors whose score() ignores its argument must be refitted on the
    # live window, never served their frozen training scores.
    assert StreamScorer(RSSADetector(), window=32).mode == "refit"
    assert StreamScorer(NRAE(), window=32).mode == "refit"
    assert StreamScorer(NRDAE(), window=32).mode == "refit"


def test_transductive_only_detector_reacts_to_live_outliers():
    """Regression: N-RAE's score() returns fit-time scores regardless of
    input; streamed through auto mode it must still notice a live spike."""
    from repro.core import NRAE

    train = make_series(20, length=120)
    det = NRAE(epochs=3).fit(train)
    scorer = StreamScorer(det, window=48)
    scorer.push_many(make_series(21, length=60))
    calm = scorer.push(0.5)
    spiked = scorer.push(9.0)
    assert spiked > 10 * max(calm, 1e-12)


def test_invalid_arguments(fitted_rae):
    with pytest.raises(ValueError):
        StreamScorer(fitted_rae, window=1)
    with pytest.raises(ValueError):
        StreamScorer(fitted_rae, mode="bogus")


def test_warmup_scores_are_zero(fitted_rae):
    scorer = StreamScorer(fitted_rae, window=32, min_points=4)
    assert scorer.push(0.1) == 0.0
    assert scorer.push(0.2) == 0.0


def test_unfitted_session_detector_raises():
    with pytest.raises(RuntimeError):
        StreamScorer(RAE(), window=32).push(0.0)


def test_spike_scores_highest(fitted_rae):
    live = make_series(3, spike=120)
    scorer = StreamScorer(fitted_rae, window=64)
    scores = np.array([scorer.push(x) for x in live])
    assert int(np.argmax(scores)) == 120


def test_session_matches_score_new_on_full_window(fitted_rae):
    live = make_series(4)
    scorer = StreamScorer(fitted_rae, window=len(live))
    scorer.push_many(live)
    assert np.allclose(scorer.rescore(), fitted_rae.score_new(live))


def test_window_bounds_context(fitted_rae):
    """Once the window slides, only the retained context feeds the score."""
    live = make_series(5, length=300)
    scorer = StreamScorer(fitted_rae, window=50)
    scorer.push_many(live)
    assert len(scorer) == 50
    assert scorer.total == 300
    # Scoring the retained window directly must agree with the session.
    assert np.allclose(scorer.rescore(), fitted_rae.score_new(live[-50:]))


def test_score_mode_uses_fitted_state():
    series = make_series(6)
    det = LOF(n_neighbors=10).fit(series)
    scorer = StreamScorer(det, window=len(series))
    streamed = scorer.push_many(series)
    assert np.allclose(streamed, det.score(series))


def test_refit_mode_clones_per_window():
    from repro.baselines import RSSADetector

    series = make_series(7, length=80)
    det = RSSADetector(max_iter=10)
    scorer = StreamScorer(det, window=80, mode="refit")
    streamed = scorer.push_many(series)
    fresh = RSSADetector(max_iter=10).fit_score(series)
    assert np.allclose(streamed, fresh)
    # The wrapped detector itself must stay untouched by streaming.
    assert det.result_ is None


def test_seed_fills_context_without_scoring(fitted_rae):
    history = make_series(13, length=500)
    seeded = StreamScorer(fitted_rae, window=64).seed(history)
    assert len(seeded) == 64 and seeded.total == 500
    # Scores after seeding equal scores after pushing the same history.
    pushed = StreamScorer(fitted_rae, window=64)
    pushed.push_many(history[-64:])
    assert np.allclose(seeded.rescore(), pushed.rescore())


def test_seed_matrix_path_matches_pushed_state():
    series = make_series(14, length=200)
    det = RDAE(window=20, max_outer=1, inner_iterations=2,
               series_iterations=2, use_f2=False).fit(series)
    seeded = StreamScorer(det, window=80).seed(series)
    pushed = StreamScorer(det, window=80)
    pushed.push_many(series[-80:])
    live = make_series(15, length=5)
    assert np.allclose(seeded.push_many(live), pushed.push_many(live))


def test_push_many_oversized_chunk_zeroes_evicted_points(fitted_rae):
    """A chunk larger than the window (the seeding idiom) reports 0.0 for
    its self-evicted prefix and real scores for the retained tail."""
    live = make_series(12, length=100)
    scorer = StreamScorer(fitted_rae, window=40)
    out = scorer.push_many(live)
    assert np.allclose(out[:60], 0.0)
    assert np.allclose(out[60:], fitted_rae.score_new(live[-40:]))


def test_push_many_chunks_match_running_window(fitted_rae):
    live = make_series(8, length=90)
    scorer = StreamScorer(fitted_rae, window=40)
    out = np.concatenate([scorer.push_many(live[:50]),
                          scorer.push_many(live[50:70]),
                          scorer.push_many(live[70:])])
    assert out.shape == (90,)
    assert np.isfinite(out).all()


def test_multivariate_stream():
    rng = np.random.default_rng(9)
    series = np.stack([np.sin(np.arange(150) / 7.0),
                       np.cos(np.arange(150) / 11.0)], axis=1)
    series += 0.05 * rng.standard_normal(series.shape)
    det = RAE(max_iterations=4).fit(series)
    scorer = StreamScorer(det, window=60)
    scores = scorer.push_many(series)
    assert scores.shape == (150,)
    assert np.isfinite(scores).all()


def test_matrix_path_cold_start_point_by_point():
    """Regression: streaming an f2-less RDAE from an empty window must
    survive the arrival that emits the first lagged column (K=1 would pool
    to width zero inside the inner AE)."""
    series = make_series(16, length=120)
    det = RDAE(window=20, max_outer=1, inner_iterations=2,
               series_iterations=2, use_f2=False).fit(series)
    scorer = StreamScorer(det, window=60)
    scores = [scorer.push(x) for x in series[:30]]
    assert np.isfinite(scores).all()
    # Warmup (fewer than lag+1 arrivals) reports zero evidence, then real
    # scores take over.
    assert scores[-1] != 0.0 or any(s != 0.0 for s in scores)


def test_session_rdae_matrix_path_incremental_consistency():
    series = make_series(10, length=160)
    det = RDAE(window=20, max_outer=1, inner_iterations=2,
               series_iterations=2, use_f2=False).fit(series)
    session = ScoringSession(det, window=len(series))
    session.extend(series)
    assert np.allclose(session.scores(), det.score_new(series))


def test_min_points_agrees_across_paths_and_chunkings(fitted_rae):
    """Regression: the session path keyed its warmup threshold on the
    window-capped session size plus the incoming chunk while the ring path
    keyed on the window-capped ring size, so with min_points above the
    window the ring path zeroed forever while the session path scored (and
    whether it scored depended on the chunk size).  Both paths now count
    total arrivals: the first min_points-1 arrivals are the warmup, the
    chunk containing arrival #min_points scores its retained points."""
    series = make_series(17, length=20)
    ring_det = LOF(n_neighbors=3).fit(series)
    for detector in (fitted_rae, ring_det):
        point_wise = StreamScorer(detector, window=4, min_points=8)
        chunked = StreamScorer(detector, window=4, min_points=8)
        out_points = np.array([point_wise.push(x) for x in series])
        out_chunks = np.concatenate([chunked.push_many(series[:3]),
                                     chunked.push_many(series[3:6]),
                                     chunked.push_many(series[6:])])
        # Warmup arrivals score 0.0 regardless of path or chunking.
        assert np.allclose(out_points[:7], 0.0)
        assert np.allclose(out_chunks[:7], 0.0)
        # Scoring starts at arrival #min_points in both paths, even though
        # min_points exceeds the window capacity.
        assert np.all(out_points[7:] != 0.0)
        assert np.all(out_chunks[-4:] != 0.0)  # the final chunk's window


def test_warmup_chunks_run_no_forward_pass(fitted_rae):
    """Regression: warmup chunks on the session path used to pay a full
    forward pass whose scores were discarded; they must now only seed."""
    scorer = StreamScorer(fitted_rae, window=32, min_points=10)
    scorer.push_many(make_series(18, length=4))
    scorer.push_many(make_series(18, length=4))
    assert scorer._session._cache_total == -1  # no forward ever ran
    assert scorer.total == 8
    out = scorer.push_many(make_series(18, length=4))  # crosses: scores now
    assert scorer._session._cache_total == scorer._session.total
    assert np.all(out != 0.0)


def test_session_rdae_matrix_matches_one_shot_once_ring_full():
    """The documented lag-clamp caveat, pinned: the matrix path fixes its
    lag from the window *capacity*, so once the ring holds a full window
    the session scores equal one-shot score_new of the retained window."""
    series = make_series(19, length=200)
    det = RDAE(window=20, max_outer=1, inner_iterations=2,
               series_iterations=2, use_f2=False).fit(series)
    window = 80
    session = ScoringSession(det, window=window)
    for point in series:
        session.push(point)
    assert len(session) == window
    assert np.allclose(session.scores(), det.score_new(series[-window:]))


def test_session_caches_forward_between_reads(fitted_rae):
    session = ScoringSession(fitted_rae, window=64)
    session.extend(make_series(11, length=64))
    first = session.scores()
    assert session.scores() is first  # memoised until the next arrival
    session.push(0.5)
    assert session.scores() is not first
