"""Cross-detector contract suite.

Every method in the :mod:`repro.eval.methods` registry must honour the same
``fit``/``score`` contract regardless of family (classical, decomposition,
deep, robust): per-observation score shapes, finite values, determinism
under a fixed seed, and agreement between one-shot and streamed scoring of
the same series.  The suite is what lets refactors of the scoring paths
(streaming, batching, warm starts) prove they broke no baseline.
"""

import inspect

import numpy as np
import pytest

from repro.api import DetectorSpec, Pipeline, PipelineSpec
from repro.core import load_pipeline
from repro.eval import available_methods, make_detector
from repro.stream import StreamScorer

LENGTH = 72

# Speed overrides: keep each method's structure but shrink the training work
# so the whole zoo stays tier-1 fast.
CONTRACT_OVERRIDES = {
    "OCSVM": {"iterations": 40, "max_points": 200},
    "LOF": {"n_neighbors": 10},
    "ISF": {"n_trees": 10, "subsample": 48},
    "RN": {"n_models": 2, "epochs": 2},
    "CNNAE": {"epochs": 2},
    "RNNAE": {"epochs": 2, "hidden": 8},
    "BGAN": {"epochs": 2},
    "DONUT": {"epochs": 2},
    "OMNI": {"epochs": 2, "hidden": 8},
    "TAE": {"epochs": 2, "d_model": 16, "num_heads": 2},
    "RDA": {"outer_iterations": 2, "inner_epochs": 2},
    "RAE": {"max_iterations": 4},
    "RDAE": {"window": 20, "max_outer": 1, "inner_iterations": 2,
             "series_iterations": 2},
    "RSSA": {"max_iter": 15},
    "N-RAE": {"epochs": 4},
    "N-RDAE": {"window": 20, "epochs": 2},
}

METHOD_NAMES = available_methods()


def build(method):
    return make_detector(method, **CONTRACT_OVERRIDES.get(method, {}))


@pytest.fixture(scope="module")
def series():
    rng = np.random.default_rng(11)
    t = np.arange(LENGTH)
    values = np.sin(2 * np.pi * t / 18) + 0.05 * rng.standard_normal(LENGTH)
    values[30] += 5.0
    values[55] -= 4.0
    return values[:, None]


@pytest.fixture(scope="module")
def one_shot_scores(series):
    """One fit_score per method, shared by the shape/finiteness checks."""
    return {method: build(method).fit_score(series)
            for method in METHOD_NAMES}


@pytest.mark.parametrize("method", METHOD_NAMES)
def test_score_shape_and_finite(method, one_shot_scores):
    scores = one_shot_scores[method]
    assert isinstance(scores, np.ndarray)
    assert scores.shape == (LENGTH,)
    assert np.isfinite(scores).all()


@pytest.mark.parametrize("method", METHOD_NAMES)
def test_accepts_1d_input(method, series, one_shot_scores):
    scores = build(method).fit_score(series[:, 0])
    assert scores.shape == (LENGTH,)
    assert np.allclose(scores, one_shot_scores[method])


@pytest.mark.parametrize("method", METHOD_NAMES)
def test_deterministic_under_fixed_seed(method, series, one_shot_scores):
    again = build(method).fit_score(series)
    assert np.allclose(again, one_shot_scores[method]), (
        "%s is not deterministic under its default seed" % method
    )


@pytest.mark.parametrize("method", METHOD_NAMES)
def test_streamed_agrees_with_one_shot(method, series):
    """Streaming the series through a full-length window must reproduce the
    one-shot scores: the streaming layer may reorganise *how* scoring runs,
    never *what* it computes."""
    reference_det = build(method)
    if hasattr(reference_det, "score_new"):
        reference = reference_det.fit(series).score_new(series)
    else:
        reference = reference_det.fit_score(series)

    streamed_det = build(method).fit(series)
    scorer = StreamScorer(streamed_det, window=LENGTH)
    streamed = scorer.push_many(series)
    assert streamed.shape == (LENGTH,)
    assert np.allclose(streamed, reference), (
        "%s: streamed scores diverge from one-shot scores" % method
    )


@pytest.mark.parametrize("method", METHOD_NAMES)
def test_point_by_point_pushes_are_finite(method, series):
    detector = build(method).fit(series[:-3])
    scorer = StreamScorer(detector, window=48)
    scorer.push_many(series[:-3])
    for point in series[-3:]:
        score = scorer.push(point)
        assert isinstance(score, float)
        assert np.isfinite(score)


# ------------------------- spec-driven construction ---------------------- #

@pytest.mark.parametrize("method", METHOD_NAMES)
def test_spec_round_trip_is_lossless(method):
    """Every registry method must round-trip DetectorSpec -> build ->
    to_spec: the projected spec rebuilds a detector with identical public
    configuration (the contract persistence and shard recovery rely on)."""
    spec = DetectorSpec(method, CONTRACT_OVERRIDES.get(method, {}))
    detector = spec.build()
    projected = DetectorSpec.from_detector(detector)
    assert projected.method == method
    # Explicit overrides survive the projection...
    for key, value in spec.params.items():
        assert projected.params[key] == pytest.approx(value)
    # ...and the rebuild is configuration-identical AND projection-stable.
    rebuilt = projected.build()
    assert type(rebuilt) is type(detector)
    assert DetectorSpec.from_detector(rebuilt) == projected
    # JSON is a faithful transport.
    assert DetectorSpec.from_json(projected.to_json()) == projected


@pytest.mark.parametrize("method", METHOD_NAMES)
def test_repr_renders_every_constructor_param(method):
    """__repr__ must show the full configuration — including params whose
    value is None or a tuple, which np.isscalar used to drop."""
    detector = build(method)
    text = repr(detector)
    assert text.startswith(type(detector).__name__ + "(")
    for name in inspect.signature(type(detector).__init__).parameters:
        if name == "self":
            continue
        assert "%s=" % name in text, (
            "%s.__repr__ omits %r: %s" % (method, name, text)
        )


@pytest.mark.parametrize("method", METHOD_NAMES)
def test_capabilities_are_declared(method):
    caps = build(method).capabilities()
    assert caps  # every detector declares something
    assert caps <= {"streamable", "warm_startable", "transductive",
                    "explainable"}
    # transductive and streamable are mutually exclusive by definition.
    assert not {"transductive", "streamable"} <= caps


@pytest.mark.parametrize("method", ["RAE", "RDAE"])
def test_saved_pipeline_reproduces_scores_bit_for_bit(method, series,
                                                      tmp_path):
    """A saved+restored Pipeline must score a seeded series identically to
    the pipeline that never left memory — not just close, bit-for-bit."""
    pipeline = Pipeline(PipelineSpec(
        DetectorSpec(method, CONTRACT_OVERRIDES[method])
    ))
    pipeline.fit(series)
    reference = pipeline.score(series)
    pipeline.save(tmp_path / "pipe")
    restored = load_pipeline(tmp_path / "pipe")
    assert restored.is_fitted()
    assert np.array_equal(restored.score(series), reference)
    assert restored.to_spec().detector == pipeline.to_spec().detector
