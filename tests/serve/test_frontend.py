"""TCP/HTTP serving frontends: protocol round-trips, bad input, shutdown.

All sockets bind port 0 (ephemeral) and talk over loopback; every test
tears its frontend down, so the suite is safe to run anywhere.  Malformed
traffic must surface as counted, per-stream error events and ``ERR``/400
replies — never as a dropped connection or a crashed serving loop.
"""

import json
import socket
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.serve import (
    DrainError,
    FrontendEngine,
    HttpFrontend,
    StreamRouter,
    TcpFrontend,
)

POISON = -86486486.0


class AbsDetector:
    """score = |x| summed per row: cheap, deterministic, stateless."""

    stateless_scoring = True

    def fit(self, X):
        return self

    def score(self, X):
        X = np.asarray(X, dtype=np.float64)
        if np.any(X == POISON):
            raise RuntimeError("tripwire: poison value in window")
        return np.abs(X).sum(axis=1)


def make_engine(drain_every=100, **router_kwargs):
    router = StreamRouter(AbsDetector(), window=16, min_points=2,
                          **router_kwargs)
    return FrontendEngine(router, drain_every=drain_every)


def wait_pending(engine, n, timeout=5.0):
    """Block until ``n`` arrivals are queued (cross-connection ordering)."""
    import time

    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if engine.router.stats()["queue_depth"] >= n:
            return
        time.sleep(0.01)
    raise AssertionError("queue never reached %d arrivals" % n)


# ---------------------------------------------------------------------- #
# FrontendEngine


def test_engine_routes_each_origin_its_own_scores():
    engine = make_engine()
    got_a, got_b = [], []
    engine.register("a", got_a.extend)
    engine.register("b", got_b.extend)
    # Interleaved submissions to one stream: attribution must follow the
    # submission order, and indices are global per stream.
    engine.submit_rows("a", "s", [[1.0], [2.0]])
    engine.submit_rows("b", "s", [[3.0]])
    engine.submit_rows("a", "s", [[4.0]])
    engine.submit_rows("b", "t", [[5.0], [6.0]])
    engine.drain()
    assert got_a == [("s", 0, 1.0), ("s", 1, 2.0), ("s", 3, 4.0)]
    assert got_b == [("s", 2, 3.0), ("t", 0, 5.0), ("t", 1, 6.0)]

    # Indices continue across drains.
    engine.submit_rows("b", "s", [[7.0]])
    engine.drain()
    assert got_b[-1] == ("s", 4, 7.0)
    assert engine.stats()["frontend"]["pending"] == 0


def test_engine_maybe_drain_honours_threshold():
    engine = make_engine(drain_every=3)
    got = []
    engine.register("o", got.extend)
    engine.submit_rows("o", "s", [[1.0], [2.0]])
    assert engine.maybe_drain() == {}
    assert got == []
    engine.submit_rows("o", "s", [[3.0]])
    delivered = engine.maybe_drain()
    assert [row[2] for row in delivered["o"]] == [1.0, 2.0, 3.0]


def test_engine_counts_malformed_lines_instead_of_raising():
    engine = make_engine()
    engine.register("o", lambda rows: None)
    assert engine.submit_line("o", "s,1.5,2.5") is None
    assert "malformed" in engine.submit_line("o", "garbage")
    assert "non-numeric" in engine.submit_line("o", "s,notafloat")
    assert engine.submit_line("o", "   ") is None  # blank lines are no-ops
    front = engine.stats()["frontend"]
    assert front["errors"] == {"garbage": 1, "s": 1}
    assert front["error_total"] == 2
    # The well-formed arrival still scores.
    delivered = engine.drain()
    assert [row[:2] for row in delivered["o"]] == [("s", 0)]


def test_engine_keeps_segments_of_failed_streams_for_the_retry():
    engine = make_engine()
    got = []
    engine.register("o", got.extend)
    engine.submit_rows("o", "bad", [[1.0], [POISON]])
    engine.submit_rows("o", "good", [[2.0], [3.0]])
    delivered = engine.drain()  # DrainError is absorbed, not raised
    assert [row[0] for row in delivered["o"]] == ["good", "good"]
    front = engine.stats()["frontend"]
    assert "tripwire" in front["failed_streams"]["bad"]
    assert front["pending"] == 2  # the re-queued arrivals

    # Flush the poison out of the window: the retry delivers the whole
    # re-queued chunk to the same origin, attribution intact.
    engine.submit_rows("o", "bad", np.full((16, 1), 4.0))
    engine.drain()
    bad_rows = [row for row in got if row[0] == "bad"]
    assert len(bad_rows) == 18
    assert [row[1] for row in bad_rows] == list(range(18))
    assert engine.stats()["frontend"]["failed_streams"] == {}


# ---------------------------------------------------------------------- #
# TCP


class LineClient:
    def __init__(self, address):
        self.sock = socket.create_connection(address, timeout=5)
        self.reader = self.sock.makefile("r", encoding="utf-8")

    def send(self, line):
        self.sock.sendall(("%s\n" % line).encode())

    def readline(self):
        return self.reader.readline().rstrip("\n")

    def close(self):
        self.reader.close()
        self.sock.close()


@pytest.fixture()
def tcp_frontend():
    engine = make_engine()
    frontend = TcpFrontend(engine, port=0).start()
    yield frontend
    frontend.stop()
    engine.router.close()


def test_tcp_round_trip_scores_own_submissions(tcp_frontend):
    client = LineClient(tcp_frontend.address)
    try:
        client.send("s,1.5")
        client.send("s,2.5")
        client.send("t,3.0")
        client.send("t,4.0")
        client.send("?drain")
        lines = [client.readline() for __ in range(5)]
        assert lines[-1] == "OK"
        assert set(lines[:4]) == {"s,0,1.5", "s,1,2.5", "t,0,3", "t,1,4"}
    finally:
        client.close()


def test_tcp_malformed_lines_get_err_replies_not_disconnects(tcp_frontend):
    client = LineClient(tcp_frontend.address)
    try:
        client.send("garbage")
        assert client.readline().startswith("ERR malformed line")
        client.send("s,notafloat")
        assert "non-numeric" in client.readline()
        client.send("?bogus")
        assert client.readline().startswith("ERR unknown command")
        # The connection survived all three; a real round-trip still works.
        client.send("s,4.0")
        client.send("s,5.0")
        client.send("?drain")
        assert client.readline() == "s,0,4"
        assert client.readline() == "s,1,5"
        assert client.readline() == "OK"
        client.send("?stats")
        stats = json.loads(client.readline())
        assert stats["frontend"]["errors"] == {"garbage": 1, "s": 1}
        assert stats["per_stream"]["s"]["scored"] == 2
    finally:
        client.close()


def test_tcp_second_client_never_sees_first_clients_scores(tcp_frontend):
    one = LineClient(tcp_frontend.address)
    two = LineClient(tcp_frontend.address)
    try:
        one.send("s,1.0")
        one.send("s,2.0")
        two.send("s,3.0")
        wait_pending(tcp_frontend.engine, 3)
        one.send("?drain")
        # Client one gets exactly its own rows (indices 0 and 1) ...
        assert one.readline() == "s,0,1"
        assert one.readline() == "s,1,2"
        assert one.readline() == "OK"
        # ... and client two got index 2, delivered by the same drain.
        assert two.readline() == "s,2,3"
    finally:
        one.close()
        two.close()


def test_tcp_stop_mid_connection_delivers_tail_then_eof(tcp_frontend):
    client = LineClient(tcp_frontend.address)
    try:
        client.send("s,1.0")
        client.send("s,2.0")
        client.send("s,9.0")
        # No ?drain: the arrivals are still buffered when stop() begins.
        # Graceful shutdown must score them and deliver before EOF.  (Wait
        # until the handler has queued all three — SHUT_RD resets a
        # connection with data still in flight.)
        wait_pending(tcp_frontend.engine, 3)
        tcp_frontend.stop()
        lines = []
        while True:
            line = client.reader.readline()
            if not line:
                break  # clean EOF, not a reset
            lines.append(line.rstrip("\n"))
        assert lines == ["s,0,1", "s,1,2", "s,2,9"]
    finally:
        client.close()


# ---------------------------------------------------------------------- #
# HTTP


@pytest.fixture()
def http_frontend():
    engine = make_engine()
    frontend = HttpFrontend(engine, port=0).start()
    yield frontend
    frontend.stop()
    engine.router.close()


def http_post(address, path, body, headers=None):
    request = urllib.request.Request(
        "http://%s:%d%s" % (address[0], address[1], path),
        data=body, method="POST",
        headers={"Content-Type": "application/json", **(headers or {})},
    )
    with urllib.request.urlopen(request, timeout=5) as response:
        return response.status, json.loads(response.read())


def http_get(address, path):
    with urllib.request.urlopen(
        "http://%s:%d%s" % (address[0], address[1], path), timeout=5
    ) as response:
        return response.status, json.loads(response.read())


def test_http_submit_batch_returns_scores_and_per_arrival_errors(
        http_frontend):
    body = json.dumps({"arrivals": [
        {"stream": "web", "values": [1.0, 2.0]},
        {"stream": "db", "values": 3.0},
        {"values": [4.0]},                       # missing stream
        {"stream": "db", "values": "notanumber"},  # rejected by the router
    ]}).encode()
    status, reply = http_post(http_frontend.address, "/submit", body)
    assert status == 200
    assert reply["accepted"] == 3
    # "db" got a single arrival, still inside the min_points=2 warmup —
    # context-only, scored 0.0 by the streaming contract.
    assert reply["scores"] == [
        {"stream": "web", "index": 0, "score": 1.0},
        {"stream": "web", "index": 1, "score": 2.0},
        {"stream": "db", "index": 0, "score": 0.0},
    ]
    assert len(reply["errors"]) == 2
    assert reply["errors"][0]["arrival"] == 2
    assert reply["errors"][1]["stream"] == "db"

    status, stats = http_get(http_frontend.address, "/stats")
    assert status == 200
    assert stats["per_stream"]["web"]["scored"] == 2
    assert stats["frontend"]["error_total"] == 2


def test_http_drain_false_defers_scoring_to_a_later_drain(http_frontend):
    body = json.dumps({"arrivals": [{"stream": "s", "values": [1.0]}],
                       "drain": False}).encode()
    status, reply = http_post(http_frontend.address, "/submit", body)
    assert status == 200
    assert reply["accepted"] == 1
    assert reply["scores"] == []
    assert http_frontend.engine.stats()["frontend"]["pending"] == 1
    # The next draining batch scores the backlog too, but receives only
    # its own row — the deferred arrival's score belongs to the finished
    # first request (whose sink is gone), never to a later client.
    body = json.dumps({"arrivals": [{"stream": "s", "values": [2.0]}]}).encode()
    __, reply = http_post(http_frontend.address, "/submit", body)
    assert reply["scores"] == [{"stream": "s", "index": 1, "score": 2.0}]
    assert http_frontend.engine.stats()["per_stream"]["s"]["scored"] == 2


def test_http_invalid_json_and_unknown_paths(http_frontend):
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        http_post(http_frontend.address, "/submit", b"{not json")
    assert excinfo.value.code == 400
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        http_post(http_frontend.address, "/submit",
                  json.dumps({"rows": []}).encode())
    assert excinfo.value.code == 400
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        http_get(http_frontend.address, "/nope")
    assert excinfo.value.code == 404
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        http_post(http_frontend.address, "/nope", b"{}")
    assert excinfo.value.code == 404
    # The server survived every bad request.
    status, __ = http_get(http_frontend.address, "/stats")
    assert status == 200


def test_http_and_tcp_share_one_engine_and_stream_indices():
    engine = make_engine()
    tcp = TcpFrontend(engine, port=0).start()
    http = HttpFrontend(engine, port=0).start()
    client = LineClient(tcp.address)
    try:
        client.send("s,1.0")
        client.send("s,2.0")
        wait_pending(engine, 2)
        body = json.dumps({"arrivals": [
            {"stream": "s", "values": [3.0]}]}).encode()
        __, reply = http_post(http.address, "/submit", body)
        # The HTTP drain scored the TCP rows too — but delivered the HTTP
        # batch only its own row, at the shared stream's next index.
        assert reply["scores"] == [{"stream": "s", "index": 2, "score": 3.0}]
        assert client.readline() == "s,0,1"
        assert client.readline() == "s,1,2"
    finally:
        client.close()
        http.stop()
        tcp.stop()
        engine.router.close()
