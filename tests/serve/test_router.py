"""StreamRouter: shard isolation, determinism vs solo scorers, backpressure."""

import numpy as np
import pytest

from repro.baselines import EMADetector
from repro.core import RAE, RDAE
from repro.serve import DrainError, QueueFullError, StreamRouter
from repro.stream import StreamScorer


def make_series(seed, length=300, spike=None):
    rng = np.random.default_rng(seed)
    t = np.arange(length)
    values = np.sin(2 * np.pi * t / 25) + 0.05 * rng.standard_normal(length)
    if spike is not None:
        values[spike] += 6.0
    return values[:, None]


@pytest.fixture(scope="module")
def fitted_rae():
    return RAE(max_iterations=4).fit(make_series(0))


@pytest.fixture(scope="module")
def live_streams():
    """Ten independent live series (one per stream id)."""
    return {f"s{i}": make_series(100 + i, length=90) for i in range(10)}


def test_stream_lifecycle(fitted_rae):
    router = StreamRouter(fitted_rae, window=32)
    router.add_stream("a")
    assert "a" in router and len(router) == 1
    assert router.streams() == ["a"]
    with pytest.raises(ValueError):
        router.add_stream("a")
    # Auto-created on first submit when a default detector exists.
    router.submit("b", 0.1)
    assert "b" in router and len(router) == 2


def test_unknown_stream_without_default_detector(fitted_rae):
    router = StreamRouter(window=32)
    with pytest.raises(ValueError):
        router.add_stream("a")
    with pytest.raises(KeyError):
        router.submit("a", 0.1)
    # Per-stream detectors still work without a router default.
    router.add_stream("a", fitted_rae)
    router.submit("a", 0.1)
    assert router.drain()["a"].shape == (1,)


def test_invalid_arguments(fitted_rae):
    with pytest.raises(ValueError):
        StreamRouter(fitted_rae, queue_limit=0)
    with pytest.raises(ValueError):
        StreamRouter(fitted_rae, on_full="bogus")


def test_drain_matches_dedicated_scorers_point_by_point(fitted_rae,
                                                        live_streams):
    """The acceptance bar: >=8 concurrent streams, per-stream scores equal
    to a dedicated StreamScorer fed the same points one at a time."""
    router = StreamRouter(fitted_rae, window=48)
    solos = {sid: StreamScorer(fitted_rae, window=48) for sid in live_streams}
    routed = {sid: [] for sid in live_streams}
    solo = {sid: [] for sid in live_streams}
    length = len(next(iter(live_streams.values())))
    for step in range(length):
        for sid, series in live_streams.items():
            router.submit(sid, series[step])
        results = router.drain()
        for sid, series in live_streams.items():
            routed[sid].append(float(results[sid][0]))
            solo[sid].append(solos[sid].push(series[step]))
    assert len(router) >= 8
    for sid in live_streams:
        assert np.allclose(routed[sid], solo[sid]), sid


def test_drain_matches_dedicated_scorers_chunked(fitted_rae, live_streams):
    """Burst ingestion: each drain's per-stream chunk must reproduce the
    dedicated scorer's push_many of the same chunk."""
    router = StreamRouter(fitted_rae, window=48)
    solos = {sid: StreamScorer(fitted_rae, window=48) for sid in live_streams}
    for lo, hi in ((0, 30), (30, 37), (37, 90)):
        for sid, series in live_streams.items():
            router.submit_many(sid, series[lo:hi])
        results = router.drain()
        for sid, series in live_streams.items():
            expected = solos[sid].push_many(series[lo:hi])
            assert np.allclose(results[sid], expected), sid


def test_shard_isolation(fitted_rae):
    """A spike on one stream must not perturb any other stream's scores."""
    calm = make_series(7, length=80)
    router_clean = StreamRouter(fitted_rae, window=48)
    router_spiked = StreamRouter(fitted_rae, window=48)
    spiked = make_series(8, length=80, spike=60)
    for step in range(80):
        router_clean.submit("calm", calm[step])
        router_clean.submit("other", calm[step] * 0.5)
        router_spiked.submit("calm", calm[step])
        router_spiked.submit("other", spiked[step])
    clean = router_clean.drain()
    with_spike = router_spiked.drain()
    # The calm stream's scores are identical whether its neighbour spiked
    # or not: shards share the detector, never window state.
    assert np.allclose(clean["calm"], with_spike["calm"])
    assert with_spike["other"].max() > 10 * clean["other"].max()


def test_min_points_warmup_matches_scorer(fitted_rae):
    router = StreamRouter(fitted_rae, window=32, min_points=6)
    solo = StreamScorer(fitted_rae, window=32, min_points=6)
    series = make_series(9, length=12)
    routed = []
    for point in series:
        router.submit("s", point)
        routed.append(float(router.drain()["s"][0]))
    expected = [solo.push(point) for point in series]
    assert np.allclose(routed, expected)
    assert np.allclose(routed[:5], 0.0)


def test_mixed_detector_shards(fitted_rae):
    """Session-backed and ring-backed shards coexist in one drain."""
    series = make_series(10, length=120)
    ema = EMADetector().fit(series)
    router = StreamRouter(window=64)
    router.add_stream("deep", fitted_rae)
    router.add_stream("classic", ema)
    router.submit_many("deep", series[:80])
    router.submit_many("classic", series[:80])
    results = router.drain()
    assert np.allclose(
        results["deep"], StreamScorer(fitted_rae, window=64).push_many(series[:80])
    )
    assert np.allclose(
        results["classic"], StreamScorer(ema, window=64).push_many(series[:80])
    )


def test_rdae_matrix_shards_fall_back_to_solo_path():
    """Lagged-matrix shards can't batch across streams but must still agree
    with a dedicated scorer through the router."""
    series = make_series(11, length=160)
    det = RDAE(window=20, max_outer=1, inner_iterations=2,
               series_iterations=2, use_f2=False).fit(series)
    router = StreamRouter(det, window=60)
    solos = {sid: StreamScorer(det, window=60) for sid in ("a", "b")}
    live = {"a": make_series(12, length=70), "b": make_series(13, length=70)}
    for lo, hi in ((0, 40), (40, 70)):
        for sid in solos:
            router.submit_many(sid, live[sid][lo:hi])
        results = router.drain()
        for sid in solos:
            assert np.allclose(results[sid],
                               solos[sid].push_many(live[sid][lo:hi])), sid


def test_submit_rejects_mismatched_dims(fitted_rae):
    """A malformed arrival is rejected at submission — it must never reach
    the queue and poison a whole drained burst."""
    router = StreamRouter(fitted_rae, window=32)
    router.submit("a", 1.0)
    with pytest.raises(ValueError, match="dimensional"):
        router.submit("a", [1.0, 2.0])
    router.submit("b", 0.5)
    results = router.drain()
    assert results["a"].shape == (1,) and results["b"].shape == (1,)


def test_submit_dims_follow_seeded_shard(fitted_rae):
    router = StreamRouter(fitted_rae, window=32)
    router.add_stream("a").seed(make_series(5, length=40))
    with pytest.raises(ValueError, match="dimensional"):
        router.submit("a", [1.0, 2.0])
    router.submit("a", 0.5)
    assert router.drain()["a"].shape == (1,)


def test_drain_isolates_faulty_shards(fitted_rae):
    """A shard that cannot ingest (unfitted detector) must not destroy the
    burst: healthy streams score, the faulty stream's arrivals re-queue."""
    router = StreamRouter(window=32)
    router.add_stream("ok", fitted_rae)
    router.add_stream("broken", RAE())  # unfitted: fails on first ingest
    router.submit("ok", 0.3)
    router.submit("broken", 0.3)
    with pytest.raises(DrainError) as excinfo:
        router.drain()
    err = excinfo.value
    assert set(err.failures) == {"broken"}
    assert err.results["ok"].shape == (1,)
    stats = router.stats()
    assert stats["queue_depth"] == 1  # the faulty arrival survived
    assert stats["per_stream"]["broken"]["lag"] == 1
    assert stats["per_stream"]["ok"]["scored"] == 1


def test_queue_overflow_error_policy(fitted_rae):
    router = StreamRouter(fitted_rae, window=32, queue_limit=5)
    for i in range(5):
        router.submit("s", float(i))
    with pytest.raises(QueueFullError):
        router.submit("s", 5.0)
    # Draining frees capacity again.
    router.drain()
    router.submit("s", 5.0)
    assert router.stats()["queue_depth"] == 1


def test_queue_overflow_drop_oldest_policy(fitted_rae):
    router = StreamRouter(fitted_rae, window=32, queue_limit=4,
                          on_full="drop_oldest")
    router.submit_many("a", np.arange(4.0))
    router.submit("b", 9.0)  # evicts a's oldest queued arrival
    results = router.drain()
    assert results["a"].shape == (3,)
    assert results["b"].shape == (1,)
    stats = router.stats()
    assert stats["dropped"] == 1
    assert stats["per_stream"]["a"]["dropped"] == 1
    assert stats["per_stream"]["a"]["lag"] == 0


def test_partial_drain_respects_fifo(fitted_rae):
    router = StreamRouter(fitted_rae, window=32)
    router.submit_many("a", np.arange(6.0))
    results = router.drain(max_points=4)
    assert results["a"].shape == (4,)
    assert router.stats()["queue_depth"] == 2
    rest = router.drain()
    assert rest["a"].shape == (2,)
    assert router.drain() == {}


def test_stats_surface(fitted_rae, live_streams):
    router = StreamRouter(fitted_rae, window=48)
    for sid, series in live_streams.items():
        router.submit_many(sid, series[:20])
    router.drain()
    for sid, series in live_streams.items():
        router.submit_many(sid, series[20:25])
    stats = router.stats()
    assert stats["streams"] == len(live_streams)
    assert stats["scored"] == 20 * len(live_streams)
    assert stats["submitted"] == 25 * len(live_streams)
    assert stats["queue_depth"] == 5 * len(live_streams)
    assert stats["drains"] == 1
    per = stats["per_stream"]["s0"]
    assert per["lag"] == 5 and per["scored"] == 20 and per["total"] == 20


# ------------------- drain backends & concurrency contract -------------- #

def test_drain_backend_validation(fitted_rae):
    with pytest.raises(ValueError):
        StreamRouter(fitted_rae, drain_backend="bogus")
    assert StreamRouter(fitted_rae).drain_backend == "serial"
    # workers > 1 implies the threaded backend when none is named.
    router = StreamRouter(fitted_rae, workers=4)
    assert router.drain_backend == "threaded" and router.workers == 4
    assert StreamRouter(fitted_rae, workers=1).drain_backend == "serial"
    explicit = StreamRouter(fitted_rae, drain_backend="threaded")
    assert explicit.workers == 4  # sensible pool default
    explicit.close()


def test_threaded_drain_matches_serial_bitwise():
    """The backend changes where forwards run, never what they compute —
    including across independent per-stream detectors (separate groups)
    and the shared-detector grouped-forward path."""
    detectors = [RAE(max_iterations=2, kernels=8, num_layers=2,
                     seed=i).fit(make_series(i)) for i in range(3)]
    shared = detectors[0]

    def build(**kwargs):
        router = StreamRouter(shared, window=40, **kwargs)
        for i, det in enumerate(detectors):
            router.add_stream(f"own{i}", detector=det)
        for i in range(3):
            router.add_stream(f"shared{i}")
        return router

    serial = build()
    threaded = build(drain_backend="threaded", workers=3)
    try:
        for step in range(8):
            for router in (serial, threaded):
                for i in range(3):
                    router.submit(f"own{i}", make_series(50 + i)[step])
                    router.submit(f"shared{i}", make_series(60 + i)[step])
            expected, got = serial.drain(), threaded.drain()
            assert set(expected) == set(got)
            for sid in expected:
                assert np.array_equal(expected[sid], got[sid])
    finally:
        threaded.close()
    assert serial.stats()["scored"] == threaded.stats()["scored"]


def test_threaded_drain_isolates_faulty_shards(fitted_rae):
    """DrainError semantics survive the threaded backend: healthy groups
    score, the faulty stream's arrivals re-queue."""
    router = StreamRouter(fitted_rae, window=32,
                          drain_backend="threaded", workers=2)
    router.add_stream("bad", detector=RAE())  # unfitted -> ingest fails
    try:
        router.submit("ok", [0.5]).submit("bad", [0.5]).submit("ok", [0.7])
        with pytest.raises(DrainError) as excinfo:
            router.drain()
        assert set(excinfo.value.results) == {"ok"}
        assert set(excinfo.value.failures) == {"bad"}
        assert router.stats()["queue_depth"] == 1  # re-queued arrival
    finally:
        router.close()


def test_concurrent_submits_never_lose_arrivals(fitted_rae):
    """submit()/submit_many() are thread-safe: racing producers must land
    every arrival exactly once, with consistent counters."""
    import threading

    router = StreamRouter(fitted_rae, window=32, queue_limit=100_000)
    per_thread, threads = 400, 6

    def produce(tid):
        for j in range(per_thread):
            if j % 10 == 0:
                router.submit_many(f"t{tid}", [[0.1], [0.2]])
            else:
                router.submit(f"t{tid}", [float(j) / per_thread])

    workers = [threading.Thread(target=produce, args=(t,))
               for t in range(threads)]
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join()

    expected = threads * (per_thread + per_thread // 10)
    stats = router.stats()
    assert stats["submitted"] == expected
    assert stats["queue_depth"] == expected
    results = router.drain()
    assert sum(len(v) for v in results.values()) == expected
    assert router.stats()["scored"] == expected


def test_stats_snapshot_is_consistent_under_load(fitted_rae):
    """stats() under one lock: the submitted == scored + dropped + lag
    invariant must hold in every snapshot taken while producers and a
    drain loop run concurrently (field-by-field reads could tear)."""
    import threading

    router = StreamRouter(fitted_rae, window=32, queue_limit=100_000)
    stop = threading.Event()
    violations = []

    def produce():
        j = 0
        while not stop.is_set():
            router.submit(f"p{j % 4}", [0.1])
            j += 1

    def watch():
        while not stop.is_set():
            snapshot = router.stats()
            total = 0
            for per in snapshot["per_stream"].values():
                if per["submitted"] != (per["scored"] + per["dropped"]
                                        + per["lag"]):
                    violations.append(per)
                total += per["submitted"]
            if total != snapshot["submitted"]:
                violations.append(snapshot)

    producer = threading.Thread(target=produce)
    watcher = threading.Thread(target=watch)
    producer.start()
    watcher.start()
    for __ in range(10):
        router.drain()
    stop.set()
    producer.join()
    watcher.join()
    router.drain()
    assert not violations
    assert router.stats()["scored"] == router.stats()["submitted"]
