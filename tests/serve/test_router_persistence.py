"""Shard recovery: a restored router must be indistinguishable from one
that never restarted — same per-stream scores on the same replayed
arrivals, same stats, same queue. (The ROADMAP's persistence-backed shard
recovery item.)"""

import numpy as np
import pytest

from repro.api import DetectorSpec
from repro.core import RAE
from repro.eval import make_detector
from repro.serve import StreamRouter


@pytest.fixture(scope="module")
def history():
    rng = np.random.default_rng(21)
    t = np.arange(320)
    values = np.sin(2 * np.pi * t / 24) + 0.05 * rng.standard_normal(320)
    return values[:, None]


@pytest.fixture(scope="module")
def fitted_rae(history):
    return RAE(max_iterations=4).fit(history)


def _feed(router, chunks):
    for stream_id, chunk in chunks.items():
        router.submit_many(stream_id, chunk)
    return router.drain()


def test_restored_router_matches_never_restarted(fitted_rae, history,
                                                 tmp_path):
    """The acceptance scenario: save mid-stream, restore, replay the same
    arrivals into both routers — per-stream scores must match exactly."""
    live = StreamRouter(fitted_rae, window=48, min_points=2)
    for stream_id in ("web", "db"):
        live.add_stream(stream_id).seed(history[-48:])
    _feed(live, {"web": history[:40] + 0.01, "db": history[20:70]})

    live.save(tmp_path / "state")
    restored = StreamRouter.restore(tmp_path / "state")

    assert restored.streams() == live.streams()
    replay = {"web": history[100:130] + 0.4, "db": history[150:190]}
    live_scores = _feed(live, dict(replay))
    restored_scores = _feed(restored, dict(replay))
    for stream_id in live_scores:
        assert np.array_equal(live_scores[stream_id],
                              restored_scores[stream_id]), stream_id


def test_restore_preserves_stats_and_counters(fitted_rae, history, tmp_path):
    live = StreamRouter(fitted_rae, window=32)
    live.add_stream("a").seed(history[-32:])
    _feed(live, {"a": history[:25]})
    live.save(tmp_path / "state")
    restored = StreamRouter.restore(tmp_path / "state")
    assert restored.stats() == live.stats()
    assert restored.stream("a").total == live.stream("a").total
    assert len(restored.stream("a")) == len(live.stream("a"))


def test_queued_arrivals_survive_restart(fitted_rae, history, tmp_path):
    live = StreamRouter(fitted_rae, window=32)
    live.add_stream("q").seed(history[-32:])
    live.submit_many("q", history[:12])  # queued, never drained
    live.save(tmp_path / "state")
    restored = StreamRouter.restore(tmp_path / "state")
    assert restored.stats()["queue_depth"] == 12
    assert np.array_equal(live.drain()["q"], restored.drain()["q"])


def test_spec_only_restore_for_stateless_fit_detector(history, tmp_path):
    """Ring-path shards whose detector has no hidden fitted state (MP's fit
    is a no-op) round-trip through the spec alone — no weights needed."""
    live = StreamRouter(make_detector("MP", pattern_size=10), window=30,
                        mode="score")
    live.add_stream("m").seed(history[:30])
    _feed(live, {"m": history[30:60]})
    live.save(tmp_path / "state")
    restored = StreamRouter.restore(tmp_path / "state")
    assert restored.stream("m").mode == "score"
    a = _feed(live, {"m": history[60:85]})["m"]
    b = _feed(restored, {"m": history[60:85]})["m"]
    assert np.array_equal(a, b)


def test_restore_rebuilds_how_it_was_built(fitted_rae, history, tmp_path):
    """The sidecar records method + params, not just weights: the restored
    default detector carries the original configuration."""
    live = StreamRouter(fitted_rae, window=40)
    live.add_stream("s").seed(history[-40:])
    live.save(tmp_path / "state")
    restored = StreamRouter.restore(tmp_path / "state")
    assert isinstance(restored.detector, RAE)
    assert restored.detector.max_iterations == fitted_rae.max_iterations
    assert DetectorSpec.from_detector(restored.detector) == \
        DetectorSpec.from_detector(fitted_rae)
    # Shards share ONE restored instance, preserving grouped drains.
    assert restored.stream("s").detector is restored.detector


def test_saved_weights_win_over_override(fitted_rae, history, tmp_path):
    """The retained session windows were scaled by the SAVED detector;
    substituting another would silently change scores, so weights beat the
    detector= override (which exists for spec-only saves)."""
    live = StreamRouter(fitted_rae, window=40)
    live.add_stream("s").seed(history[-40:])
    _feed(live, {"s": history[:30]})
    live.save(tmp_path / "state")
    replacement = RAE(max_iterations=2, kernels=8).fit(history[::2])
    restored = StreamRouter.restore(tmp_path / "state", detector=replacement)
    assert restored.detector is not replacement
    a = _feed(live, {"s": history[60:80]})["s"]
    b = _feed(restored, {"s": history[60:80]})["s"]
    assert np.array_equal(a, b)


def test_per_stream_unpersistable_score_shard_rejected_at_save(history,
                                                               tmp_path):
    """A weightless score-mode detector on a NON-default stream has no
    restore-time remedy (the override only replaces the default), so save
    must refuse instead of writing an unrecoverable state."""
    router = StreamRouter(make_detector("MP"), window=32, mode="score")
    lof = make_detector("LOF", n_neighbors=5).fit(history)
    router.add_stream("ok")
    router.add_stream("dead-end", detector=lof)
    with pytest.raises(ValueError, match="no restore\\(\\) override"):
        router.save(tmp_path / "state")


def test_unpersistable_detector_raises_on_save(history, tmp_path):
    class Foreign:
        def fit(self, series):
            return self

        def score(self, series):
            return np.zeros(len(series))

    router = StreamRouter(Foreign(), window=16, mode="score")
    router.add_stream("f")
    with pytest.raises(ValueError, match="cannot persist"):
        router.save(tmp_path / "state")


def test_spec_only_restore_of_stateful_score_shard_fails_fast(history,
                                                              tmp_path):
    """A LOF shard scores through fitted state that cannot be persisted;
    restore must reject it up front with the remedy, not hand back a
    router that crashes on its first drain."""
    live = StreamRouter(make_detector("LOF", n_neighbors=5).fit(history),
                        window=32)
    live.add_stream("l").seed(history[-32:])
    _feed(live, {"l": history[:20]})
    live.save(tmp_path / "state")
    with pytest.raises(ValueError, match="rebuilt unfitted from its spec"):
        StreamRouter.restore(tmp_path / "state")
    # The documented remedy — a fitted override — resumes scoring.
    override = make_detector("LOF", n_neighbors=5).fit(history)
    restored = StreamRouter.restore(tmp_path / "state", detector=override)
    a = _feed(live, {"l": history[40:60]})["l"]
    b = _feed(restored, {"l": history[40:60]})["l"]
    assert np.array_equal(a, b)


def test_refit_shard_restores_spec_only(history, tmp_path):
    """Transductive shards refit a clone per window, so an unfitted spec
    rebuild resumes exactly."""
    live = StreamRouter(make_detector("RSSA", max_iter=15), window=24)
    live.add_stream("r")
    assert live.stream("r").mode == "refit"
    _feed(live, {"r": history[:24]})
    live.save(tmp_path / "state")
    restored = StreamRouter.restore(tmp_path / "state")
    a = _feed(live, {"r": history[24:36]})["r"]
    b = _feed(restored, {"r": history[24:36]})["r"]
    assert np.array_equal(a, b)


def test_router_accepts_specs(history):
    router = StreamRouter(DetectorSpec("MP"), window=30, mode="score")
    router.add_stream("x", detector="EMA")
    assert router.detector.name == "MP"
    assert router.stream("x").detector.name == "EMA"
    router.submit_many("x", history[:30])
    scores = router.drain()["x"]
    assert scores.shape == (30,)


def test_restore_carries_drain_backend_and_cache(fitted_rae, history,
                                                 tmp_path):
    """The execution config and each session's tail-forward splice cache
    survive the round trip: a restored shard resumes bounded pushes
    immediately, scoring subsequent arrivals bit-identically."""
    router = StreamRouter(fitted_rae, window=48,
                          drain_backend="threaded", workers=3)
    _feed(router, {"a": history[:60], "b": history[60:120]})
    router.save(tmp_path / "state")
    router.close()

    restored = StreamRouter.restore(tmp_path / "state")
    try:
        assert restored.drain_backend == "threaded" and restored.workers == 3
        for sid in ("a", "b"):
            live_session = router.stream(sid)._session
            back_session = restored.stream(sid)._session
            assert back_session._cache_total == live_session._cache_total
            assert np.array_equal(back_session._cache_scores,
                                  live_session._cache_scores)
        live = _feed(router, {"a": history[120:125], "b": history[125:130]})
        back = _feed(restored, {"a": history[120:125], "b": history[125:130]})
        for sid in live:
            assert np.array_equal(live[sid], back[sid])
        # Execution knobs are overridable at restore time.
        serial = StreamRouter.restore(tmp_path / "state",
                                      drain_backend="serial", workers=1)
        assert serial.drain_backend == "serial"
    finally:
        restored.close()
