"""Compiled-vs-eager drain contract, cross-detector grouping, counters.

The compiled inference path (grad-free score tapes + stacked-weight
programs, cached per router in :class:`repro.core.InferencePrograms`)
promises **bit-identical** drains: for every registry RAE/RDAE method,
per-stream scores AND per-stream stats must match the eager drain exactly
— including when each stream holds its *own* fitted detector of the same
spec, which is precisely the case the architecture-fingerprint group keys
exist for.  A weight hot-swap that desynchronises a cached program must be
detected (invalidation counter), and a botched hot-swap inside a
cross-detector group must fail only its own stream while groupmates score.
"""

import numpy as np
import pytest

from repro.core import (
    InferencePrograms,
    architecture_fingerprint,
    batched_session_scores,
    drain_group_key,
)
from repro.core.scoring import ScoringSession
from repro.eval import make_detector
from repro.nn import tape as nntape
from repro.serve import DrainError, StreamRouter


def training_series(length=140, dims=1, seed=0):
    rng = np.random.default_rng(seed)
    t = np.arange(length)
    base = np.sin(2 * np.pi * t / 25)[:, None] * np.ones((1, dims))
    return base + 0.1 * rng.standard_normal((length, dims))


# Registry RAE/RDAE methods, trimmed for test speed.  The N- variants are
# transductive-only and serve in refit mode (no sessions, so the compiled
# inference path never engages — their drains exercise the *training*
# tape's bit-identity instead); only RAE and RDAE score through sessions.
REGISTRY_CASES = {
    "RAE": {"max_iterations": 2},
    "RDAE": {"window": 20, "max_outer": 1, "inner_iterations": 2,
             "series_iterations": 2},
    "N-RAE": {"epochs": 2},
    "N-RDAE": {"window": 20, "epochs": 1},
}


def fitted_fleet(name, count=3):
    series = training_series()
    return [
        make_detector(name, seed=seed, **REGISTRY_CASES[name]).fit(series)
        for seed in range(count)
    ]


def serve_chunks(seed=1, chunks=3, rows=30, dims=1):
    rng = np.random.default_rng(seed)
    return [rng.standard_normal((rows, dims)) for __ in range(chunks)]


def run_scenario(detectors, compiled, backend="serial"):
    """Drain the same burst sequence through a fresh router; returns
    (per-drain results, final stats)."""
    previous = nntape.set_tape_enabled(compiled)
    try:
        router = StreamRouter(window=64, min_points=2,
                              drain_backend=backend, workers=2)
        for index, detector in enumerate(detectors):
            router.add_stream("s%d" % index, detector)
        drained = []
        for chunk in serve_chunks():
            for index in range(len(detectors)):
                router.submit_many("s%d" % index, chunk + 0.01 * index)
            drained.append(
                {sid: scores.copy()
                 for sid, scores in router.drain().items()}
            )
        stats = router.stats()
        router.close()
        return drained, stats
    finally:
        nntape.set_tape_enabled(previous)


def assert_identical_runs(eager, compiled):
    eager_drains, eager_stats = eager
    compiled_drains, compiled_stats = compiled
    for a, b in zip(eager_drains, compiled_drains):
        assert set(a) == set(b)
        for sid in a:
            assert np.array_equal(a[sid], b[sid]), sid
    # Per-stream stats are part of the contract, not just scores.
    assert eager_stats["per_stream"] == compiled_stats["per_stream"]
    assert eager_stats["scored"] == compiled_stats["scored"]
    assert eager_stats["drains"] == compiled_stats["drains"]


@pytest.mark.parametrize("name", sorted(REGISTRY_CASES))
def test_registry_method_compiled_drain_bit_equal(name):
    detectors = fitted_fleet(name)
    eager = run_scenario(detectors, compiled=False)
    compiled = run_scenario(detectors, compiled=True)
    assert_identical_runs(eager, compiled)
    cache = compiled[1]["program_cache"]
    assert eager[1]["program_cache"] == {
        "hits": 0, "misses": 0, "invalidations": 0,
    }
    if name in ("RAE", "RDAE"):  # session-served: compiled path engages
        assert cache["misses"] + cache["hits"] > 0


@pytest.mark.parametrize("backend", ["serial", "threaded", "process"])
def test_compiled_drain_bit_equal_across_backends(backend):
    detectors = fitted_fleet("RAE")
    eager = run_scenario(detectors, compiled=False, backend="serial")
    compiled = run_scenario(detectors, compiled=True, backend=backend)
    assert_identical_runs(eager, compiled)
    cache = compiled[1]["program_cache"]
    assert cache["misses"] + cache["hits"] > 0, backend


# --------------------------------------------------------------------- #
# cross-detector grouping (the id() -> fingerprint re-key)
# --------------------------------------------------------------------- #

def test_distinct_same_spec_detectors_share_one_group():
    a, b = fitted_fleet("RAE", count=2)
    assert a is not b
    assert architecture_fingerprint(a) == architecture_fingerprint(b)
    assert drain_group_key(a) == drain_group_key(b)

    def drained_sessions(programs):
        sessions = [ScoringSession(det, window=64, programs=programs)
                    for det in (a, b)]
        chunk = training_series(seed=7)[:64]
        for session in sessions:
            session.ingest(chunk)
            session.scores()
        for session in sessions:
            session.ingest(np.full((8, 1), 0.25))
        return batched_session_scores(sessions, tail=[8, 8],
                                      programs=programs)

    programs = InferencePrograms()
    eager = drained_sessions(None)
    stacked = drained_sessions(programs)
    for x, y in zip(eager, stacked):
        assert np.array_equal(x, y)
    counters = programs.counters()
    # The two distinct detectors really shared one stacked program (a
    # per-id() grouping would never consult the stacked cache at all).
    assert counters["misses"] >= 1
    again = drained_sessions(programs)
    for x, y in zip(eager, again):
        assert np.array_equal(x, y)
    assert programs.counters()["hits"] > counters["hits"]


def test_unfitted_detectors_keep_identity_group_keys():
    unfitted = make_detector("RAE", **REGISTRY_CASES["RAE"])
    key = drain_group_key(unfitted)
    assert key == ("id", id(unfitted))
    assert key != drain_group_key(make_detector("RAE",
                                                **REGISTRY_CASES["RAE"]))


# --------------------------------------------------------------------- #
# counters: stats, save/restore persistence
# --------------------------------------------------------------------- #

def test_program_cache_counters_persist_across_save_restore(tmp_path):
    detectors = fitted_fleet("RAE", count=2)
    previous = nntape.set_tape_enabled(True)
    try:
        router = StreamRouter(window=64, min_points=2)
        for index, detector in enumerate(detectors):
            router.add_stream("s%d" % index, detector)
        for chunk in serve_chunks():
            for index in range(len(detectors)):
                router.submit_many("s%d" % index, chunk)
            router.drain()
        before = router.stats()["program_cache"]
        assert before["misses"] + before["hits"] > 0
        router.save(tmp_path)
        router.close()

        restored = StreamRouter.restore(tmp_path)
        assert restored.stats()["program_cache"] == before
        # Counters keep accumulating on top of the restored totals (the
        # programs themselves recompile, so at least one fresh miss).
        for index in range(len(detectors)):
            restored.submit_many(
                "s%d" % index, np.full((8, 1), 0.5)
            )
        restored.drain()
        after = restored.stats()["program_cache"]
        assert after["misses"] + after["hits"] > (
            before["misses"] + before["hits"]
        )
        restored.close()
    finally:
        nntape.set_tape_enabled(previous)


def test_eager_mode_records_no_cache_activity():
    detectors = fitted_fleet("RAE", count=2)
    __, stats = run_scenario(detectors, compiled=False)
    assert stats["program_cache"] == {
        "hits": 0, "misses": 0, "invalidations": 0,
    }


# --------------------------------------------------------------------- #
# fault injection: a botched hot-swap inside a cross-detector group
# --------------------------------------------------------------------- #

def test_botched_hot_swap_fails_only_its_stream():
    """A member whose weights were hot-swapped to a mismatched shape must
    fail alone: the stale fingerprint keeps it in the batched group, the
    member-token change invalidates the cached stacked program, replanning
    declines (shape divergence), and the partitioned eager fallback fails
    only the broken detector's stream — groupmates score, the broken
    stream's arrivals re-queue, and fixing the weights recovers it."""
    detectors = fitted_fleet("RAE", count=3)
    previous = nntape.set_tape_enabled(True)
    try:
        router = StreamRouter(window=32, min_points=2)
        for index, detector in enumerate(detectors):
            router.add_stream("s%d" % index, detector)
        # Warm until the windows are full and slice shapes repeat, so a
        # stacked program is cached (and hit) before the hot-swap.
        for chunk in serve_chunks(chunks=4, rows=16):
            for index in range(3):
                router.submit_many("s%d" % index, chunk)
            router.drain()
        warm_cache = router.stats()["program_cache"]
        assert warm_cache["hits"] > 0

        victim = detectors[1]
        good_weights = victim.model_.readout.weight.data
        victim.model_.readout.weight.data = np.zeros((3, 3, 3))
        fresh = serve_chunks(seed=9, chunks=1, rows=16)[0]
        for index in range(3):
            router.submit_many("s%d" % index, fresh)
        with pytest.raises(DrainError) as excinfo:
            router.drain()
        assert set(excinfo.value.failures) == {"s1"}
        assert set(excinfo.value.results) == {"s0", "s2"}
        for scores in excinfo.value.results.values():
            assert scores.shape == (16,)
            assert np.isfinite(scores).all()
        stats = router.stats()
        # The member-token change was detected on the cached program.
        assert stats["program_cache"]["invalidations"] >= 1
        # The failed stream's arrivals went back to the queue...
        assert stats["per_stream"]["s1"]["lag"] == 16
        assert stats["queue_depth"] == 16

        # ...and scoring resumes once the weights are fixed.
        victim.model_.readout.weight.data = good_weights
        recovered = router.drain()
        assert set(recovered) == {"s1"}
        assert recovered["s1"].shape == (16,)
        assert np.isfinite(recovered["s1"]).all()
        assert router.stats()["per_stream"]["s1"]["lag"] == 0
        router.close()
    finally:
        nntape.set_tape_enabled(previous)
