"""Fault injection for the serving layer: failing shards and dying workers.

Two fault models, both triggered by a magic POISON value travelling *in
the data* (a process worker holds its own unpickled detector copy, so
flipping a flag on the parent's instance would never reach it):

* :class:`TripwireDetector` raises from ``score`` whenever the live
  window contains POISON — an ordinary in-process scoring fault.  All
  three drain backends must isolate it identically: healthy streams score,
  the faulty stream's arrivals return to the queue front, state is rolled
  back so nothing is double-ingested, and once the poison ages out of the
  window the stream recovers with zero lost or duplicated arrivals.
* :class:`KamikazeDetector` SIGKILLs its own worker process mid-drain —
  the process backend's hard-crash path.  The parent must convert the
  dead pipe into a :class:`WorkerCrashError` for exactly that group,
  score the groups on surviving workers, respawn the slot, and recover.

Everything here is deterministic on a single-core host: faults fire on
data content, never on timing.
"""

import os
import signal

import numpy as np
import pytest

from repro.serve import DrainError, StreamRouter, WorkerCrashError

POISON = -86486486.0  # exact in float64, never produced by clean feeds


class TripwireDetector:
    """Deterministic scorer (|x| summed per row) that trips on POISON."""

    stateless_scoring = True

    def fit(self, X):
        return self

    def score(self, X):
        X = np.asarray(X, dtype=np.float64)
        if np.any(X == POISON):
            raise RuntimeError("tripwire: poison value in window")
        return np.abs(X).sum(axis=1)


class KamikazeDetector(TripwireDetector):
    """Kills its own process on POISON — only ever score this in a worker."""

    def score(self, X):
        X = np.asarray(X, dtype=np.float64)
        if np.any(X == POISON):
            os.kill(os.getpid(), signal.SIGKILL)
        return np.abs(X).sum(axis=1)


def clean_rows(seed, n):
    rng = np.random.default_rng(seed)
    return rng.uniform(1.0, 9.0, size=(n, 1))


def make_router(backend, doomed_detector):
    router = StreamRouter(window=4, min_points=2, drain_backend=backend,
                          workers=2)
    # Distinct instances: two shard groups, so the process backend can
    # land them on different workers and prove isolation between slots.
    router.add_stream("healthy", TripwireDetector())
    router.add_stream("doomed", doomed_detector)
    return router


def total_counts(router):
    per_stream = router.stats()["per_stream"]
    return {sid: (entry["submitted"], entry["scored"])
            for sid, entry in per_stream.items()}


@pytest.mark.parametrize("backend", ["serial", "threaded", "process"])
def test_scoring_fault_is_isolated_requeued_and_recovered(backend):
    healthy_rows = clean_rows(0, 7)
    doomed_rows = clean_rows(1, 6)
    router = make_router(backend, TripwireDetector())
    try:
        # Warm both streams past min_points.
        router.submit_many("healthy", healthy_rows[:3])
        router.submit_many("doomed", doomed_rows[:2])
        first = router.drain()
        assert set(first) == {"healthy", "doomed"}

        # Poison the doomed stream; the healthy one keeps scoring.
        router.submit_many("doomed", np.array([[POISON]]))
        router.submit_many("healthy", healthy_rows[3:5])
        with pytest.raises(DrainError) as excinfo:
            router.drain()
        err = excinfo.value
        assert set(err.failures) == {"doomed"}
        assert "tripwire" in str(err.failures["doomed"])
        assert set(err.results) == {"healthy"}
        assert err.results["healthy"].shape == (2,)

        # The poison was re-queued, not ingested: counters untouched,
        # and a second drain trips identically (no duplication either).
        stats = router.stats()
        assert stats["queue_depth"] == 1
        assert stats["per_stream"]["doomed"]["scored"] == 2
        assert stats["per_stream"]["doomed"]["submitted"] == 3
        with pytest.raises(DrainError):
            router.drain()
        assert router.stats()["per_stream"]["doomed"]["scored"] == 2

        # Recovery: four clean rows push the poison out of the window=4
        # ring, so the re-queued arrival finally drains.  Evicted rows
        # score 0.0 by the chunk>window contract.
        router.submit_many("doomed", doomed_rows[2:6])
        recovered = router.drain()
        assert recovered["doomed"].shape == (5,)
        assert recovered["doomed"][0] == 0.0
        assert np.array_equal(recovered["doomed"][1:],
                              np.abs(doomed_rows[2:6]).sum(axis=1))

        # Zero lost, zero duplicated: every submitted arrival was scored
        # exactly once on both streams.
        assert total_counts(router) == {"healthy": (5, 5), "doomed": (7, 7)}
        assert router.stats()["queue_depth"] == 0

        # The healthy stream never noticed: its scores match an
        # uninterrupted solo run fed the same arrivals.
        solo = StreamRouter(TripwireDetector(), window=4, min_points=2)
        solo.submit_many("healthy", healthy_rows[:3])
        expected_first = solo.drain()["healthy"]
        solo.submit_many("healthy", healthy_rows[3:5])
        expected_second = solo.drain()["healthy"]
        assert np.array_equal(first["healthy"], expected_first)
        assert np.array_equal(err.results["healthy"], expected_second)
    finally:
        router.close()


@pytest.mark.parametrize("backend", ["serial", "threaded", "process"])
def test_fault_during_warmup_chunk_rolls_back_cleanly(backend):
    """A chunk that fails mid-protocol must not leave partial state: the
    retry (after recovery is possible) scores as if the fault never ran."""
    rows = clean_rows(2, 4)
    router = make_router(backend, TripwireDetector())
    try:
        # Poison arrives inside the very first chunk for "doomed".
        chunk = np.vstack([rows[:1], [[POISON]]])
        router.submit_many("doomed", chunk)
        router.submit_many("healthy", rows[:3])
        with pytest.raises(DrainError) as excinfo:
            router.drain()
        assert set(excinfo.value.failures) == {"doomed"}
        # Both rows of the failed chunk are back in the queue, in order.
        assert router.stats()["queue_depth"] == 2
        assert router.stats()["per_stream"]["doomed"]["scored"] == 0

        # Flush the poison out of the window and drain everything.
        router.submit_many("doomed", rows)
        recovered = router.drain()
        assert recovered["doomed"].shape == (6,)
        assert total_counts(router)["doomed"] == (6, 6)
    finally:
        router.close()


def test_worker_sigkill_is_isolated_and_slot_respawned():
    """Process backend only: a SIGKILLed worker surfaces WorkerCrashError
    for its group, healthy groups still score, the slot respawns, and the
    re-queued arrivals replay with nothing lost or duplicated."""
    healthy_rows = clean_rows(3, 7)
    doomed_rows = clean_rows(4, 6)
    router = make_router("process", KamikazeDetector())
    try:
        router.submit_many("healthy", healthy_rows[:3])
        router.submit_many("doomed", doomed_rows[:2])
        first = router.drain()
        assert set(first) == {"healthy", "doomed"}
        pool = router._procs
        pids_before = sorted(worker.proc.pid for worker in pool._workers)

        router.submit_many("doomed", np.array([[POISON]]))
        router.submit_many("healthy", healthy_rows[3:5])
        with pytest.raises(DrainError) as excinfo:
            router.drain()
        err = excinfo.value
        assert isinstance(err.failures["doomed"], WorkerCrashError)
        assert np.array_equal(err.results["healthy"],
                              np.abs(healthy_rows[3:5]).sum(axis=1))

        # The dead slot was respawned: two live workers again, and the
        # killed pid is gone from the pool.
        pids_after = sorted(worker.proc.pid for worker in pool._workers)
        assert len(pids_after) == 2
        assert all(worker.proc.is_alive() for worker in pool._workers)
        assert pids_before != pids_after

        # Parent state is authoritative: the crashed drain ingested
        # nothing, so the poison is still queued and counters are intact.
        stats = router.stats()
        assert stats["queue_depth"] == 1
        assert stats["per_stream"]["doomed"]["scored"] == 2

        # Recovery on the fresh worker, poison evicted from the window.
        router.submit_many("doomed", doomed_rows[2:6])
        recovered = router.drain()
        assert recovered["doomed"].shape == (5,)
        assert recovered["doomed"][0] == 0.0
        assert total_counts(router) == {"healthy": (5, 5), "doomed": (7, 7)}
    finally:
        router.close()


def test_repeated_worker_crashes_do_not_exhaust_the_pool():
    """Every crash respawns: three poison drains in a row still leave a
    healthy pool that scores the eventual clean burst."""
    rows = clean_rows(5, 6)
    router = make_router("process", KamikazeDetector())
    try:
        router.submit_many("doomed", rows[:2])
        router.drain()
        router.submit_many("doomed", np.array([[POISON]]))
        for __ in range(3):
            with pytest.raises(DrainError) as excinfo:
                router.drain()
            assert isinstance(excinfo.value.failures["doomed"],
                              WorkerCrashError)
        router.submit_many("doomed", rows[2:6])
        recovered = router.drain()
        assert recovered["doomed"].shape == (5,)
        assert total_counts(router)["doomed"] == (7, 7)
    finally:
        router.close()
