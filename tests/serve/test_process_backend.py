"""Process drain backend: bit-identity and stats parity vs serial.

Correctness never skips: every test here runs with ``workers=2`` on ANY
host — a single-core machine exercises exactly the same protocol (state
shipping, weight-store mmap, result splicing), it just doesn't overlap the
work.  Only wall-clock speedup ratios belong in
``benchmarks/test_serve_throughput.py`` (slow-marked, multi-core-gated).
"""

import numpy as np
import pytest

from repro.core import RAE
from repro.eval import make_detector
from repro.serve import StreamRouter
from repro.serve.workers import ProcessDrainPool

# The registry's RAE/RDAE family (the detectors the weight store serves),
# trimmed for test speed — same idiom as tests/core/test_tape_contract.py.
REGISTRY_CASES = {
    "RAE": {"max_iterations": 3},
    "RDAE": {"window": 20, "max_outer": 1, "inner_iterations": 2,
             "series_iterations": 2},
    "N-RAE": {"epochs": 3},
    "N-RDAE": {"window": 20, "epochs": 2},
}


def make_series(seed, length=240):
    rng = np.random.default_rng(seed)
    t = np.arange(length)
    return (np.sin(2 * np.pi * t / 25)
            + 0.05 * rng.standard_normal(length))[:, None]


def feed_and_drain(router, streams, chunks=4, chunk_size=6):
    """Interleave per-stream chunks with drains; concatenated scores."""
    out = {stream_id: [] for stream_id in streams}
    for chunk in range(chunks):
        lo, hi = chunk * chunk_size, (chunk + 1) * chunk_size
        for stream_id, series in streams.items():
            router.submit_many(stream_id, series[lo:hi])
        for stream_id, scores in router.drain().items():
            out[stream_id].append(scores)
    return {stream_id: np.concatenate(parts)
            for stream_id, parts in out.items()}


@pytest.mark.parametrize("name", sorted(REGISTRY_CASES))
def test_process_backend_bit_identical_on_registry_methods(name):
    """Every registry RAE/RDAE method: process(2 workers) == serial, bit
    for bit, plus identical stats — on any host, no cpu_count gate."""
    detector = make_detector(name, seed=3, **REGISTRY_CASES[name])
    detector.fit(make_series(0))
    streams = {"s%d" % i: make_series(10 + i) for i in range(4)}

    serial_router = StreamRouter(detector, window=48, min_points=4)
    serial = feed_and_drain(serial_router, streams)
    serial_stats = serial_router.stats()

    process_router = StreamRouter(detector, window=48, min_points=4,
                                  drain_backend="process", workers=2)
    try:
        process = feed_and_drain(process_router, streams)
        process_stats = process_router.stats()
    finally:
        process_router.close()

    assert sorted(serial) == sorted(process)
    for stream_id in serial:
        assert np.array_equal(serial[stream_id], process[stream_id]), \
            stream_id
    assert process_stats == serial_stats


def test_threaded_backend_bit_identical_with_two_workers():
    """The threaded sibling of the same guarantee, equally ungated."""
    detectors = {
        "a": RAE(max_iterations=3, seed=1).fit(make_series(1)),
        "b": RAE(max_iterations=3, seed=2).fit(make_series(2)),
    }
    streams = {"a": make_series(20), "b": make_series(21)}

    def run(**kwargs):
        router = StreamRouter(window=48, min_points=4, **kwargs)
        for stream_id, det in detectors.items():
            router.add_stream(stream_id, det)
        try:
            scores = feed_and_drain(router, streams)
            return scores, router.stats()
        finally:
            router.close()

    serial, serial_stats = run()
    threaded, threaded_stats = run(drain_backend="threaded", workers=2)
    for stream_id in serial:
        assert np.array_equal(serial[stream_id], threaded[stream_id])
    assert threaded_stats == serial_stats


def test_process_backend_groups_across_distinct_detectors():
    """Groups (one per distinct detector) round-robin across workers;
    same-detector shards still share state correctly."""
    shared = RAE(max_iterations=3, seed=5).fit(make_series(5))
    solo = RAE(max_iterations=3, seed=6).fit(make_series(6))
    streams = {"s%d" % i: make_series(30 + i) for i in range(3)}

    def run(backend, workers=None):
        router = StreamRouter(window=48, min_points=4,
                              drain_backend=backend, workers=workers)
        router.add_stream("s0", shared)
        router.add_stream("s1", shared)
        router.add_stream("s2", solo)
        try:
            return feed_and_drain(router, streams)
        finally:
            router.close()

    serial = run("serial")
    process = run("process", workers=2)
    for stream_id in serial:
        assert np.array_equal(serial[stream_id], process[stream_id])


def test_process_backend_serves_non_rae_detectors_via_pickle():
    """Detectors outside the weight-store family travel by pickle, once
    per worker, and still score identically."""
    from repro.eval import make_detector as make

    detector = make("EMA")
    streams = {"e%d" % i: make_series(40 + i, length=60) for i in range(3)}

    def run(backend, workers=None):
        router = StreamRouter(detector, window=32, min_points=4,
                              drain_backend=backend, workers=workers)
        try:
            return feed_and_drain(router, streams, chunks=3, chunk_size=5)
        finally:
            router.close()

    serial = run("serial")
    process = run("process", workers=2)
    for stream_id in serial:
        assert np.array_equal(serial[stream_id], process[stream_id])


def test_backend_choice_persists_through_save_restore(tmp_path):
    detector = RAE(max_iterations=3, seed=7).fit(make_series(7))
    router = StreamRouter(detector, window=48, min_points=4,
                          drain_backend="process", workers=2)
    streams = {"p0": make_series(50), "p1": make_series(51)}
    try:
        before = feed_and_drain(router, streams, chunks=2)
        router.submit_many("p0", streams["p0"][12:15])  # left queued
        router.save(tmp_path / "state")
    finally:
        router.close()

    restored = StreamRouter.restore(tmp_path / "state")
    assert restored.drain_backend == "process"
    assert restored.workers == 2
    try:
        # The re-queued arrivals + fresh ones score exactly as an
        # uninterrupted process-backend router would.
        restored.submit_many("p0", streams["p0"][15:18])
        resumed = restored.drain()
    finally:
        restored.close()

    reference = StreamRouter(detector, window=48, min_points=4)
    feed_and_drain(reference, streams, chunks=2)
    reference.submit_many("p0", streams["p0"][12:18])
    expected = reference.drain()
    assert np.array_equal(resumed["p0"], expected["p0"])
    assert list(before) == ["p0", "p1"]

    # The execution override still applies on restore.
    overridden = StreamRouter.restore(tmp_path / "state",
                                      drain_backend="serial", workers=1)
    assert overridden.drain_backend == "serial"
    overridden.close()


def test_invalid_backend_rejected():
    with pytest.raises(ValueError, match="drain_backend"):
        StreamRouter(drain_backend="fork-bomb")


def test_pool_close_is_idempotent_and_removes_spool():
    import os

    pool = ProcessDrainPool(2)
    spool = pool._spool
    assert os.path.isdir(spool)
    pool.close()
    pool.close()
    assert not os.path.exists(spool)
