"""PRM explainability score (Eq. 18)."""

import numpy as np

from repro.explain import es_prm, polynomial_fit, prm_rmse_curve


def test_polynomial_fit_exact_on_polynomials():
    t = np.linspace(0, 1, 100)
    series = 2.0 + 3.0 * t - 1.5 * t**2
    fitted = polynomial_fit(series, 2)
    assert np.allclose(fitted, series, atol=1e-8)


def test_polynomial_fit_multivariate():
    t = np.linspace(0, 1, 50)
    series = np.stack([t, t**2], axis=1)
    fitted = polynomial_fit(series, 3)
    assert fitted.shape == (50, 2)
    assert np.allclose(fitted, series, atol=1e-8)


def test_rmse_curve_monotone_nonincreasing():
    rng = np.random.default_rng(0)
    series = np.cumsum(rng.standard_normal(200))
    curve = prm_rmse_curve(series, degrees=(1, 3, 5, 7, 9))
    values = [curve[n] for n in sorted(curve)]
    assert all(a >= b - 1e-9 for a, b in zip(values, values[1:]))


def test_es_prm_line_is_one():
    t = np.linspace(0, 1, 100)
    assert es_prm(5.0 * t + 2.0, gamma=0.01) == 1


def test_es_prm_cubic_needs_three():
    t = np.linspace(0, 1, 200)
    series = 10.0 * (t - 0.5) ** 3
    score = es_prm(series, gamma=0.01, degrees=(1, 2, 3, 4))
    assert score == 3


def test_es_prm_none_when_unreachable():
    rng = np.random.default_rng(1)
    noise = rng.standard_normal(300)
    assert es_prm(noise, gamma=1e-6) is None


def test_smaller_gamma_larger_score():
    t = np.linspace(0, 1, 300)
    series = np.sin(2 * np.pi * 3 * t)
    loose = es_prm(series, gamma=1.0)
    tight = es_prm(series, gamma=0.05)
    assert loose is not None
    assert tight is None or tight >= loose


def test_simple_series_scores_better_than_complex():
    """The Fig. 5 intuition: a trend+period series needs a lower degree than
    one with arbitrary variation."""
    rng = np.random.default_rng(2)
    t = np.linspace(0, 1, 400)
    simple = 0.5 * t
    complex_series = 0.5 * t + 0.4 * rng.standard_normal(400)
    gamma = 0.2
    simple_score = es_prm(simple, gamma)
    complex_score = es_prm(complex_series, gamma)
    assert simple_score == 1
    assert complex_score is None or complex_score > simple_score
