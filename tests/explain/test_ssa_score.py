"""SSA explainability score (Eq. 19)."""

import numpy as np

from repro.explain import es_ssa, ssa_rmse_curve


def test_curve_monotone_nonincreasing():
    rng = np.random.default_rng(0)
    t = np.arange(300)
    series = np.sin(2 * np.pi * t / 30) + 0.1 * rng.standard_normal(300)
    curve = ssa_rmse_curve(series, components=(1, 3, 5, 7, 9))
    values = [curve[n] for n in sorted(curve)]
    assert all(a >= b - 1e-9 for a, b in zip(values, values[1:]))


def test_pure_trend_needs_one_component():
    t = np.arange(200, dtype=float)
    series = 0.01 * t
    assert es_ssa(series, gamma=0.05) == 1


def test_trend_plus_period_needs_few_components():
    t = np.arange(400, dtype=float)
    series = 0.002 * t + np.sin(2 * np.pi * t / 50)
    score = es_ssa(series, gamma=0.05, components=(1, 2, 3, 4, 5))
    assert score is not None and score <= 4


def test_noise_not_explainable_at_tight_gamma():
    noise = np.random.default_rng(1).standard_normal(300)
    assert es_ssa(noise, gamma=1e-4) is None


def test_window_parameter_forwarded():
    t = np.arange(200, dtype=float)
    series = np.sin(2 * np.pi * t / 20)
    assert es_ssa(series, gamma=0.1, window=40) is not None


def test_periodic_simpler_than_noisy_periodic():
    rng = np.random.default_rng(2)
    t = np.arange(400, dtype=float)
    clean = np.sin(2 * np.pi * t / 40)
    noisy = clean + 0.5 * rng.standard_normal(400)
    gamma = 0.1
    clean_score = es_ssa(clean, gamma)
    noisy_score = es_ssa(noisy, gamma)
    assert clean_score is not None
    assert noisy_score is None or noisy_score >= clean_score
