"""Per-channel attribution of outlier scores."""

import numpy as np
import pytest

from repro.explain import channel_contributions, dominant_channels


def test_contributions_normalized_rows():
    ts = np.array([[3.0, 4.0], [0.0, 2.0], [0.0, 0.0]])
    out = channel_contributions(ts)
    assert np.allclose(out[0], [9 / 25, 16 / 25])
    assert np.allclose(out[1], [0.0, 1.0])
    assert np.allclose(out[2], [0.0, 0.0])


def test_contributions_raw_sum_to_score():
    ts = np.array([[3.0, 4.0]])
    raw = channel_contributions(ts, normalize=False)
    assert np.isclose(raw.sum(), 25.0)


def test_contributions_rejects_1d():
    with pytest.raises(ValueError):
        channel_contributions(np.zeros(5))


def test_dominant_channels_basic():
    ts = np.array([[1.0, 0.1], [0.1, 5.0], [0.0, 0.0]])
    winners = dominant_channels(ts)
    assert winners.tolist() == [0, 1, -1]


def test_dominant_channels_with_mask():
    ts = np.array([[1.0, 0.1], [0.1, 5.0], [2.0, 0.0]])
    mask = np.array([True, False, True])
    assert dominant_channels(ts, mask).tolist() == [0, 0]


def test_dominant_channels_with_indices():
    ts = np.array([[1.0, 0.1], [0.1, 5.0]])
    assert dominant_channels(ts, np.array([1])).tolist() == [1]


def test_end_to_end_with_rae(spiky_multivariate):
    from repro.core import RAE

    values, labels = spiky_multivariate
    det = RAE(max_iterations=12).fit(values)
    winners = dominant_channels(det.outlier_series, labels.astype(bool))
    assert winners.shape == (labels.sum(),)
    assert np.all(winners < values.shape[1])
