"""Fig. 16 analysis machinery: clean-series extraction and method ranking."""

import numpy as np
import pytest

from repro import baselines
from repro.core import NRAE, RAE
from repro.explain import analyze_methods, extract_clean_series


@pytest.fixture
def fitted_pair(spiky_series):
    values, __ = spiky_series
    rae = RAE(max_iterations=15, seed=0).fit(values)
    nrae = NRAE(epochs=10, seed=0).fit(values)
    return values, {"RAE": rae, "N-RAE": nrae}


def test_extract_from_core_methods(fitted_pair):
    values, detectors = fitted_pair
    for det in detectors.values():
        clean = extract_clean_series(det, values)
        assert clean.shape == values.shape


def test_extract_from_neural_window_detector(spiky_series):
    values, __ = spiky_series
    det = baselines.CNNAE(epochs=4, kernels=8).fit(values)
    clean = extract_clean_series(det, values)
    assert clean.shape == values.shape


def test_extract_from_randnet(spiky_series):
    values, __ = spiky_series
    det = baselines.RandNet(n_models=2, epochs=2).fit(values)
    clean = extract_clean_series(det, values)
    assert clean.shape == values.shape


def test_extract_rejects_unknown_detector(spiky_series):
    values, __ = spiky_series
    det = baselines.LOF().fit(values)
    with pytest.raises(TypeError):
        extract_clean_series(det, values)


def test_report_structure(fitted_pair):
    values, detectors = fitted_pair
    report = analyze_methods(detectors, values, gamma_prm=0.5, gamma_ssa=0.15)
    assert set(report.prm_curves) == {"RAE", "N-RAE"}
    assert set(report.ssa_curves) == {"RAE", "N-RAE"}
    for curves in report.prm_curves.values():
        assert set(curves) == {1, 3, 5, 7, 9}
    for entry in report.scores.values():
        assert set(entry) == {"ES_PRM", "ES_SSA"}


def test_ranking_puts_none_last(fitted_pair):
    values, detectors = fitted_pair
    report = analyze_methods(detectors, values)
    ranking = report.ranking("ES_PRM")
    scores = [report.scores[name]["ES_PRM"] for name in ranking]
    # All non-None scores must precede None entries.
    seen_none = False
    for s in scores:
        if s is None:
            seen_none = True
        else:
            assert not seen_none


def test_rae_at_least_as_explainable_as_nonrobust(fitted_pair):
    """The paper's headline explainability claim, on a clean periodic series:
    the robust decomposition's T_L is no harder to fit than the plain AE's
    reconstruction."""
    values, detectors = fitted_pair
    report = analyze_methods(detectors, values, gamma_prm=0.6)
    rae_curve = report.prm_curves["RAE"]
    nrae_curve = report.prm_curves["N-RAE"]
    # Compare mean RMSE across degrees (robust to single-N noise).
    rae_mean = np.mean(list(rae_curve.values()))
    nrae_mean = np.mean(list(nrae_curve.values()))
    assert rae_mean <= nrae_mean * 1.5
