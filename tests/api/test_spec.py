"""DetectorSpec / PipelineSpec: validation, JSON round-trips, coercion."""

import json

import numpy as np
import pytest

from repro.api import (
    DetectorSpec,
    PipelineSpec,
    SpecError,
    as_detector,
    read_spec,
)
from repro.baselines import LOF
from repro.core import RAE
from repro.eval import UnknownMethodError, make_detector


def test_build_matches_make_detector():
    a = DetectorSpec("LOF", {"n_neighbors": 7}).build()
    b = make_detector("LOF", n_neighbors=7)
    assert type(a) is type(b)
    assert a.n_neighbors == b.n_neighbors == 7


def test_params_kwargs_merge():
    spec = DetectorSpec("RAE", {"lam": 0.5}, max_iterations=3)
    assert spec.params == {"lam": 0.5, "max_iterations": 3}


def test_unknown_method_raises():
    with pytest.raises(UnknownMethodError, match="unknown method 'NOPE'"):
        DetectorSpec("NOPE").validate()


def test_unknown_param_raises_with_searchable_hint():
    with pytest.raises(SpecError, match="has no parameter 'frobnicate'"):
        DetectorSpec("RAE", {"frobnicate": 1}).validate()


def test_non_jsonable_param_raises():
    with pytest.raises(SpecError, match="not JSON-serializable"):
        DetectorSpec("RAE", {"lam": object()}).validate()


def test_numpy_scalars_are_coerced():
    spec = DetectorSpec("LOF", {"n_neighbors": np.int64(9)})
    text = spec.to_json()
    assert DetectorSpec.from_json(text).params["n_neighbors"] == 9
    assert json.loads(text)["params"]["n_neighbors"] == 9


def test_from_detector_rejects_unregistered_classes():
    class Foreign:
        pass

    with pytest.raises(SpecError, match="not a registry detector class"):
        DetectorSpec.from_detector(Foreign())


def test_from_detector_captures_derived_params():
    # stride defaults from the window inside the constructor; the projected
    # spec captures the concrete value so the rebuild is behaviourally equal.
    det = make_detector("CNNAE", window=40)
    spec = DetectorSpec.from_detector(det)
    assert spec.params["stride"] == det.stride
    assert spec.build().stride == det.stride


def test_detector_spec_json_round_trip():
    spec = DetectorSpec("RDAE", {"window": 30, "max_outer": 2})
    again = DetectorSpec.from_json(spec.to_json())
    assert again == spec
    assert hash(again) == hash(spec)


def test_sequence_params_hash_and_compare_across_json():
    # Tuples normalize to lists in JSON; equality and hashing must agree
    # across the round-trip (specs are dedup keys in the serving layer).
    spec = DetectorSpec("STL", {"trend": (1, 2)})
    again = DetectorSpec.from_json(spec.to_json())
    assert again.params["trend"] == [1, 2]
    assert again == spec
    assert hash(again) == hash(spec)
    assert len({spec, again}) == 1


def test_search_space_exposed():
    assert "lam" in DetectorSpec("RAE").search_space()
    assert DetectorSpec("N-RAE").search_space() == {}


# ---------------------------- PipelineSpec ---------------------------- #

def test_pipeline_spec_round_trip():
    spec = PipelineSpec(
        DetectorSpec("RAE", {"max_iterations": 4}),
        preprocess=[{"kind": "clip", "lo": -5.0, "hi": 5.0}],
        threshold={"kind": "mad", "k": 4.0},
        explain={"normalize": False},
    )
    spec.validate()
    again = PipelineSpec.from_json(spec.to_json())
    assert again == spec


def test_pipeline_spec_accepts_bare_detector_dict():
    spec = PipelineSpec.from_dict({"method": "LOF", "params": {"context": 2}})
    assert spec.detector == DetectorSpec("LOF", {"context": 2})
    assert spec.threshold is None


def test_pipeline_spec_accepts_method_name():
    assert PipelineSpec("MP").detector.method == "MP"


def test_pipeline_spec_is_hashable():
    a = PipelineSpec("MP", threshold={"kind": "mad", "k": 4.0})
    b = PipelineSpec.from_json(a.to_json())
    assert len({a, b}) == 1


def test_bad_threshold_kind_raises():
    with pytest.raises(SpecError, match="unknown threshold kind"):
        PipelineSpec("RAE", threshold={"kind": "zscore"}).validate()


def test_bad_threshold_param_raises_up_front():
    # 'risk' belongs to pot, not quantile: validation must catch it, not a
    # TypeError deep inside detect().
    with pytest.raises(SpecError, match="'quantile' has no parameter 'risk'"):
        PipelineSpec("RAE",
                     threshold={"kind": "quantile", "risk": 1e-3}).validate()


def test_bad_preprocess_param_raises_up_front():
    with pytest.raises(SpecError, match="'standardize' has no parameter"):
        PipelineSpec("RAE",
                     preprocess=[{"kind": "standardize", "ddof": 1}]).validate()


def test_bad_preprocess_kind_raises():
    with pytest.raises(SpecError, match="unknown preprocess kind"):
        PipelineSpec("RAE", preprocess=[{"kind": "fourier"}]).validate()


def test_unknown_top_level_keys_raise():
    with pytest.raises(SpecError, match="unknown pipeline spec keys"):
        PipelineSpec.from_dict({"detector": {"method": "RAE"}, "tresh": {}})


def test_read_spec_file(tmp_path):
    path = tmp_path / "spec.json"
    PipelineSpec("EMA", threshold={"kind": "quantile", "q": 0.9}).save(path)
    spec = read_spec(path)
    assert spec.detector.method == "EMA"
    assert spec.threshold == {"kind": "quantile", "q": 0.9}


# ----------------------------- as_detector ---------------------------- #

def test_as_detector_coercions():
    lof = LOF()
    assert as_detector(lof) is lof
    assert isinstance(as_detector("RAE"), RAE)
    assert isinstance(as_detector(DetectorSpec("RAE")), RAE)
    assert isinstance(as_detector(PipelineSpec("RAE")), RAE)
    assert isinstance(as_detector({"method": "RAE"}), RAE)


def test_as_detector_unwraps_pipeline():
    from repro.api import Pipeline

    pipeline = Pipeline("LOF")
    assert as_detector(pipeline) is pipeline.detector
