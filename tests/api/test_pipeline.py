"""Pipeline facade: verbs, capabilities, threshold/explain stages, persistence."""

import numpy as np
import pytest

from repro.api import (
    CapabilityError,
    DetectorSpec,
    Pipeline,
    PipelineSpec,
    capabilities,
)
from repro.core import load_pipeline
from repro.metrics import quantile_threshold


@pytest.fixture(scope="module")
def series():
    rng = np.random.default_rng(7)
    t = np.arange(140)
    values = np.sin(2 * np.pi * t / 20) + 0.05 * rng.standard_normal(140)
    values[70] += 5.0
    return values[:, None]


RAE_SPEC = PipelineSpec(DetectorSpec("RAE", {"max_iterations": 4}))


def test_fit_score_matches_raw_detector(series):
    from repro.eval import make_detector

    pipeline = Pipeline(RAE_SPEC)
    raw = make_detector("RAE", max_iterations=4)
    assert np.allclose(pipeline.fit_score(series), raw.fit_score(series))


def test_fit_then_score(series):
    pipeline = Pipeline(RAE_SPEC).fit(series[:100])
    assert pipeline.is_fitted()
    scores = pipeline.score(series)
    assert scores.shape == (140,)
    assert np.isfinite(scores).all()


def test_score_before_fit_raises(series):
    with pytest.raises(RuntimeError, match="fit the pipeline"):
        Pipeline(RAE_SPEC).score(series)


def test_capabilities_sets():
    assert capabilities(DetectorSpec("RAE")) == {
        "streamable", "warm_startable", "explainable",
    }
    assert capabilities(DetectorSpec("RSSA")) == {"transductive"}
    assert capabilities(DetectorSpec("LOF")) == {"streamable"}
    assert "transductive" in Pipeline("N-RAE").capabilities()


def test_detect_applies_spec_threshold(series):
    pipeline = Pipeline(PipelineSpec(
        DetectorSpec("RAE", {"max_iterations": 4}),
        threshold={"kind": "quantile", "q": 0.95},
    ))
    result = pipeline.detect(series)
    assert result["threshold"] == pytest.approx(
        quantile_threshold(result["scores"], q=0.95)
    )
    assert result["labels"].sum() >= 1
    assert result["labels"][70] == 1  # the planted spike is flagged


@pytest.mark.parametrize("kind", ["quantile", "mad", "pot"])
def test_every_threshold_kind_runs(series, kind):
    pipeline = Pipeline(PipelineSpec("EMA", threshold={"kind": kind}))
    result = pipeline.detect(series)
    assert np.isfinite(result["threshold"])
    assert result["labels"].shape == (140,)


def test_detect_with_precomputed_scores(series):
    pipeline = Pipeline(PipelineSpec("EMA"))
    scores = pipeline.fit_score(series)
    result = pipeline.detect(scores=scores)
    assert np.array_equal(result["scores"], scores)
    with pytest.raises(ValueError, match="exactly one"):
        pipeline.detect(series, scores=scores)


def test_preprocess_stages_apply(series):
    pipeline = Pipeline(PipelineSpec(
        "EMA", preprocess=[{"kind": "clip", "lo": -1.0, "hi": 1.0}]
    ))
    arr = pipeline.preprocess(series)
    assert arr.max() <= 1.0 and arr.min() >= -1.0
    # standardize stage centres the data
    std = Pipeline(PipelineSpec("EMA", preprocess=[{"kind": "standardize"}]))
    assert abs(std.preprocess(series).mean()) < 1e-9


def test_explain_requires_capability(series):
    pipeline = Pipeline(PipelineSpec("LOF"))
    pipeline.fit_score(series)
    with pytest.raises(CapabilityError, match="explainable"):
        pipeline.explain()


def test_explain_rejects_indices_beyond_fitted_series(series):
    pipeline = Pipeline(RAE_SPEC).fit(series[:80])
    with pytest.raises(ValueError, match="FITTED on"):
        pipeline.explain([120])


def test_explain_attributes_channels(series):
    two = np.hstack([series, 0.05 * np.ones_like(series)])
    pipeline = Pipeline(RAE_SPEC)
    pipeline.fit_score(two)
    report = pipeline.explain()
    assert report["contributions"].shape == (140, 2)
    assert report["dominant_channels"].shape == (140,)
    # The spike lives in channel 0.
    assert report["dominant_channels"][70] == 0


def test_to_spec_captures_live_params(series):
    pipeline = Pipeline(RAE_SPEC)
    pipeline.detector.lam = 0.25
    spec = pipeline.to_spec()
    assert spec.detector.params["lam"] == 0.25
    assert Pipeline.from_spec(spec).detector.lam == 0.25


def test_pipeline_from_detector_instance(series):
    from repro.eval import make_detector

    det = make_detector("LOF", n_neighbors=5)
    pipeline = Pipeline(detector=det)
    assert pipeline.detector is det
    assert pipeline.to_spec().detector.params["n_neighbors"] == 5


def test_supplied_fitted_instance_is_trusted(series):
    """A caller-fitted detector must be scored with, never silently refitted
    by detect() (mirrors BatchScoringEngine's user-supplied contract)."""
    from repro.eval import make_detector

    det = make_detector("LOF", n_neighbors=5).fit(series[:100])
    reference = det.score(series)
    pipeline = Pipeline(detector=det)
    assert pipeline.is_fitted()
    assert np.array_equal(pipeline.score(series), reference)
    # detect() takes the score() branch, not a behind-your-back fit_score.
    assert np.array_equal(pipeline.detect(series)["scores"], reference)


# ------------------------------ persistence --------------------------- #

def test_save_load_bit_for_bit(series, tmp_path):
    pipeline = Pipeline(PipelineSpec(
        DetectorSpec("RAE", {"max_iterations": 4}),
        threshold={"kind": "quantile", "q": 0.97},
    ))
    pipeline.fit(series[:100])
    reference = pipeline.score(series)
    sidecar = pipeline.save(tmp_path / "model")
    assert str(sidecar).endswith(".json")

    restored = load_pipeline(tmp_path / "model")
    assert restored.is_fitted()
    assert restored.spec.threshold == {"kind": "quantile", "q": 0.97}
    assert np.array_equal(restored.score(series), reference)
    # score_new parity too (the warm-start path)
    assert np.array_equal(
        restored.detector.score_new(series), pipeline.detector.score_new(series)
    )


def test_spec_only_save_for_unpersistable_detector(series, tmp_path):
    pipeline = Pipeline(PipelineSpec("LOF"))
    pipeline.fit_score(series)
    pipeline.save(tmp_path / "lof")
    assert not (tmp_path / "lof.npz").exists()
    restored = Pipeline.load(tmp_path / "lof")
    assert restored.spec.detector.method == "LOF"
    assert not restored.is_fitted()  # weights cannot round-trip; spec does
    assert np.allclose(restored.fit_score(series), pipeline.fit_score(series))


def test_load_rejects_foreign_json(tmp_path):
    path = tmp_path / "other.json"
    path.write_text('{"format": "something-else"}')
    with pytest.raises(ValueError, match="not a pipeline sidecar"):
        load_pipeline(path)
