"""Command-line interface."""

import numpy as np
import pytest

from repro.cli import build_parser, main, read_series_csv, write_scores_csv


@pytest.fixture
def csv_with_header(tmp_path):
    rng = np.random.default_rng(0)
    t = np.arange(160)
    values = np.sin(2 * np.pi * t / 20) + 0.05 * rng.standard_normal(160)
    labels = np.zeros(160, dtype=int)
    values[50] += 5.0
    labels[50] = 1
    path = tmp_path / "series.csv"
    with open(path, "w") as handle:
        handle.write("value,label\n")
        for v, label in zip(values, labels):
            handle.write("%.6f,%d\n" % (v, label))
    return path


def test_read_csv_with_header(csv_with_header):
    values, labels = read_series_csv(csv_with_header, labels_column="label")
    assert values.shape == (160, 1)
    assert labels.sum() == 1


def test_read_csv_without_labels(csv_with_header):
    values, labels = read_series_csv(csv_with_header)
    assert values.shape == (160, 2)  # label column kept as a dimension
    assert labels is None


def test_read_csv_headerless(tmp_path):
    path = tmp_path / "plain.csv"
    with open(path, "w") as handle:
        for i in range(20):
            handle.write("%d,%d\n" % (i, i * 2))
    values, labels = read_series_csv(path, labels_column="1")
    assert values.shape == (20, 1)
    assert labels is not None


def test_read_csv_missing_column(csv_with_header):
    with pytest.raises(KeyError):
        read_series_csv(csv_with_header, labels_column="nope")


def test_read_empty_csv(tmp_path):
    path = tmp_path / "empty.csv"
    path.write_text("")
    with pytest.raises(ValueError):
        read_series_csv(path)


def test_write_scores_roundtrip(tmp_path):
    path = tmp_path / "scores.csv"
    write_scores_csv(path, np.array([1.5, 2.5]))
    content = path.read_text().splitlines()
    assert content[0] == "score"
    assert float(content[1]) == 1.5


def test_list_methods(capsys):
    assert main(["list-methods"]) == 0
    out = capsys.readouterr().out
    assert "RAE" in out and "RDAE" in out and "OCSVM" in out


def test_detect_end_to_end(csv_with_header, tmp_path, capsys):
    out_path = tmp_path / "scores.csv"
    code = main([
        "detect", "--method", "EMA",
        "--input", str(csv_with_header),
        "--output", str(out_path),
        "--labels-column", "label",
    ])
    assert code == 0
    err = capsys.readouterr().err
    assert "ROC-AUC" in err
    scores = out_path.read_text().splitlines()
    assert len(scores) == 161  # header + 160 scores


def test_detect_stdout(csv_with_header, capsys):
    code = main([
        "detect", "--method", "EMA", "--input", str(csv_with_header),
        "--labels-column", "label",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert len(out.splitlines()) == 160


def test_demo_runs(capsys):
    code = main(["demo", "--method", "EMA", "--dataset", "SYN", "--scale", "0.06"])
    assert code == 0
    out = capsys.readouterr().out
    assert "ROC-AUC" in out


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


# --------------------------- repro stream ------------------------------- #

@pytest.fixture
def streaming_csv(tmp_path):
    rng = np.random.default_rng(1)
    t = np.arange(240)
    values = np.sin(2 * np.pi * t / 24) + 0.05 * rng.standard_normal(240)
    values[200] += 6.0  # incident inside the streamed segment
    path = tmp_path / "stream.csv"
    with open(path, "w") as handle:
        handle.write("value\n")
        for v in values:
            handle.write("%.6f\n" % v)
    return path


def test_stream_smoke_stdin(streaming_csv, capsys, monkeypatch):
    """Pipe a synthetic series in, assert one score line per streamed point."""
    with open(streaming_csv) as handle:
        monkeypatch.setattr("sys.stdin", handle)
        code = main([
            "stream", "--method", "EMA", "--input", "-",
            "--train", "120", "--window", "48",
        ])
    assert code == 0
    captured = capsys.readouterr()
    lines = captured.out.splitlines()
    assert len(lines) == 120  # 240 points - 120 training head
    indices, scores = zip(*(line.split(",") for line in lines))
    assert [int(i) for i in indices] == list(range(120, 240))
    values = [float(s) for s in scores]
    assert all(np.isfinite(values))
    # The planted incident at t=200 dominates the streamed scores.
    assert indices[int(np.argmax(values))] == "200"
    assert "streamed 120 points" in captured.err


def test_stream_writes_output_csv(streaming_csv, tmp_path, capsys):
    out_path = tmp_path / "scores.csv"
    code = main([
        "stream", "--method", "EMA", "--input", str(streaming_csv),
        "--train", "120", "--window", "48", "--chunk", "16",
        "--output", str(out_path),
    ])
    assert code == 0
    content = out_path.read_text().splitlines()
    assert content[0] == "index,score"
    assert len(content) == 121
    assert "wrote 120 streamed scores" in capsys.readouterr().out


def test_stream_from_saved_model(streaming_csv, tmp_path, capsys):
    from repro.cli import read_series_csv
    from repro.core import RAE, save_detector

    values, __ = read_series_csv(streaming_csv)
    model_path = tmp_path / "rae.npz"
    save_detector(RAE(max_iterations=4).fit(values[:120]), model_path)
    code = main([
        "stream", "--input", str(streaming_csv),
        "--model", str(model_path), "--window", "48",
    ])
    assert code == 0
    lines = capsys.readouterr().out.splitlines()
    assert len(lines) == 240  # no training head: every point is streamed


# --------------------------- repro serve -------------------------------- #

@pytest.fixture
def serve_setup(tmp_path):
    """A saved RAE plus an interleaved 3-stream feed with one incident."""
    from repro.core import RAE, save_detector

    rng = np.random.default_rng(3)
    t = np.arange(200)
    train = (np.sin(2 * np.pi * t / 24) + 0.05 * rng.standard_normal(200))
    model_path = tmp_path / "rae.npz"
    save_detector(RAE(max_iterations=4).fit(train[:, None]), model_path)

    feed_path = tmp_path / "feed.csv"
    per_stream = 60
    with open(feed_path, "w") as handle:
        handle.write("stream,value\n")
        for i in range(per_stream):
            for sid in ("web", "db", "cache"):
                value = float(np.sin(i / 4.0) + 0.05 * rng.standard_normal())
                if sid == "db" and i == 45:
                    value += 8.0  # the incident
                handle.write("%s,%.6f\n" % (sid, value))
    return model_path, feed_path, per_stream


def test_serve_multiplexes_streams(serve_setup, capsys):
    model_path, feed_path, per_stream = serve_setup
    code = main([
        "serve", "--input", str(feed_path), "--model", str(model_path),
        "--window", "32", "--drain-every", "16",
    ])
    assert code == 0
    captured = capsys.readouterr()
    rows = [line.split(",") for line in captured.out.splitlines()]
    assert len(rows) == 3 * per_stream  # every submitted point was scored
    by_stream = {}
    for sid, index, score in rows:
        by_stream.setdefault(sid, []).append((int(index), float(score)))
    assert sorted(by_stream) == ["cache", "db", "web"]
    for sid, pairs in by_stream.items():
        # Per-stream indices are contiguous and scores finite.
        assert [i for i, __ in pairs] == list(range(per_stream))
        assert np.isfinite([s for __, s in pairs]).all()
    # The planted incident dominates its own stream.
    db_scores = [s for __, s in by_stream["db"]]
    assert int(np.argmax(db_scores)) == 45
    assert "served 3 streams: 180 scored" in captured.err


def test_serve_writes_output_csv(serve_setup, tmp_path, capsys):
    model_path, feed_path, per_stream = serve_setup
    out_path = tmp_path / "scores.csv"
    code = main([
        "serve", "--input", str(feed_path), "--model", str(model_path),
        "--window", "32", "--output", str(out_path),
    ])
    assert code == 0
    content = out_path.read_text().splitlines()
    assert content[0] == "stream,index,score"
    assert len(content) == 1 + 3 * per_stream


def test_serve_stdin_with_trained_head(serve_setup, tmp_path, capsys,
                                       monkeypatch):
    __, feed_path, per_stream = serve_setup
    from repro.cli import read_series_csv

    train_path = tmp_path / "train.csv"
    rng = np.random.default_rng(5)
    with open(train_path, "w") as handle:
        handle.write("value\n")
        for i in range(150):
            handle.write("%.6f\n"
                         % (np.sin(i / 4.0) + 0.05 * rng.standard_normal()))
    with open(feed_path) as handle:
        monkeypatch.setattr("sys.stdin", handle)
        code = main([
            "serve", "--input", "-", "--method", "EMA",
            "--train-input", str(train_path), "--window", "32",
        ])
    assert code == 0
    assert len(capsys.readouterr().out.splitlines()) == 3 * per_stream


def test_serve_queue_limit_below_drain_every(serve_setup, capsys):
    """Regression: drain-every above the queue limit used to crash with an
    unhandled QueueFullError before the first drain; it is clamped now."""
    model_path, feed_path, per_stream = serve_setup
    code = main([
        "serve", "--input", str(feed_path), "--model", str(model_path),
        "--window", "32", "--queue-limit", "8", "--drain-every", "64",
    ])
    assert code == 0
    assert len(capsys.readouterr().out.splitlines()) == 3 * per_stream


def test_serve_requires_a_detector_source(serve_setup):
    __, feed_path, __n = serve_setup
    with pytest.raises(SystemExit, match="--model or --train-input"):
        main(["serve", "--input", str(feed_path)])


def test_serve_prints_per_stream_stats_on_shutdown(serve_setup, capsys):
    model_path, feed_path, per_stream = serve_setup
    assert main([
        "serve", "--input", str(feed_path), "--model", str(model_path),
        "--window", "32",
    ]) == 0
    err = capsys.readouterr().err
    for sid in ("web", "db", "cache"):
        assert "%s: scored=%d dropped=0 lag=0" % (sid, per_stream) in err


def test_serve_state_dir_round_trip(serve_setup, tmp_path, capsys):
    """Two serve runs over a split feed with --state-dir must produce the
    same scores as one run over the whole feed (shard recovery end-to-end)."""
    model_path, feed_path, per_stream = serve_setup
    lines = open(feed_path).read().splitlines()
    header, rows = lines[0], lines[1:]
    # Cut on a drain boundary (default --drain-every 32): scores depend on
    # the window content at drain time, so an off-boundary cut would change
    # micro-batch context, not test recovery.
    half = 96
    first, second = tmp_path / "first.csv", tmp_path / "second.csv"
    first.write_text("\n".join([header] + rows[:half]) + "\n")
    second.write_text("\n".join(rows[half:]) + "\n")
    state = tmp_path / "state"

    assert main(["serve", "--input", str(feed_path),
                 "--model", str(model_path), "--window", "32"]) == 0
    whole = capsys.readouterr().out.splitlines()

    assert main(["serve", "--input", str(first), "--model", str(model_path),
                 "--window", "32", "--state-dir", str(state)]) == 0
    out_a = capsys.readouterr()
    assert "saved router state" in out_a.err
    assert main(["serve", "--input", str(second), "--model", str(model_path),
                 "--window", "32", "--state-dir", str(state)]) == 0
    out_b = capsys.readouterr()
    assert "restored 3 stream(s)" in out_b.err
    resumed = out_a.out.splitlines() + out_b.out.splitlines()
    # Same scores, same per-stream indices — drain boundaries may differ,
    # so compare as sets of (stream, index, score) rows.
    assert sorted(resumed) == sorted(whole)


# --------------------------- spec-driven flows --------------------------- #

@pytest.fixture
def spec_path(tmp_path):
    from repro.api import DetectorSpec, PipelineSpec

    path = tmp_path / "pipeline.json"
    PipelineSpec(
        DetectorSpec("EMA", {"pattern_size": 10}),
        threshold={"kind": "quantile", "q": 0.95},
    ).save(path)
    return path


def test_detect_threshold_emits_labels(csv_with_header, tmp_path, capsys):
    out_path = tmp_path / "scores.csv"
    code = main([
        "detect", "--method", "EMA", "--input", str(csv_with_header),
        "--labels-column", "label", "--threshold", "quantile",
        "--threshold-param", "0.95", "--output", str(out_path),
    ])
    assert code == 0
    content = out_path.read_text().splitlines()
    assert content[0] == "score,label"
    labels = [int(line.split(",")[1]) for line in content[1:]]
    assert 0 < sum(labels) <= 8  # top 5% of 160 points
    assert labels[50] == 1  # the planted spike
    assert "threshold(quantile)" in capsys.readouterr().err


@pytest.mark.parametrize("kind", ["mad", "pot"])
def test_detect_other_threshold_kinds(csv_with_header, kind, capsys):
    code = main([
        "detect", "--method", "EMA", "--input", str(csv_with_header),
        "--labels-column", "label", "--threshold", kind,
    ])
    assert code == 0
    captured = capsys.readouterr()
    assert "threshold(%s)" % kind in captured.err
    assert all("," in line for line in captured.out.splitlines())


def test_detect_builds_from_spec(csv_with_header, spec_path, capsys):
    code = main([
        "detect", "--spec", str(spec_path), "--input", str(csv_with_header),
        "--labels-column", "label",
    ])
    assert code == 0
    captured = capsys.readouterr()
    # The spec file's own threshold stage is honoured without --threshold.
    assert "threshold(quantile)" in captured.err
    assert all(line.count(",") == 1 for line in captured.out.splitlines())


def test_stream_warns_when_spec_preprocess_is_dropped(streaming_csv,
                                                      tmp_path, capsys):
    from repro.api import PipelineSpec

    path = tmp_path / "pre.json"
    PipelineSpec("EMA", preprocess=[{"kind": "standardize"}]).save(path)
    code = main([
        "stream", "--spec", str(path), "--input", str(streaming_csv),
        "--train", "120", "--window", "48",
    ])
    assert code == 0
    assert "preprocess stages are ignored" in capsys.readouterr().err


def test_serve_resume_clamps_drain_to_restored_queue_limit(serve_setup,
                                                           tmp_path,
                                                           capsys):
    """A restored router keeps its saved queue_limit; drain-every must be
    clamped against THAT, or the resumed session hits QueueFullError
    before its first drain."""
    model_path, feed_path, per_stream = serve_setup
    state = tmp_path / "state"
    assert main(["serve", "--input", str(feed_path), "--model",
                 str(model_path), "--window", "32", "--queue-limit", "24",
                 "--state-dir", str(state)]) == 0
    capsys.readouterr()
    # Resume with defaults: --queue-limit 4096, --drain-every 32 > 24.
    assert main(["serve", "--input", str(feed_path), "--window", "32",
                 "--state-dir", str(state)]) == 0
    err = capsys.readouterr().err
    assert "restored 3 stream(s)" in err
    # The operator is told the saved configuration governs, and the stats
    # line reports the ROUTER's window, not this run's flag.
    assert "RESTORED configuration" in err
    assert "queue_limit=24" in err
    assert "window=32" in err


def test_serve_restore_takes_model_as_detector_override(serve_setup,
                                                        tmp_path, capsys):
    """OCSVM shards save spec-only (fitted state not persistable); a
    restart with --state-dir alone must fail with the remedy, and passing
    --train-input as the override must resume."""
    rng = np.random.default_rng(9)
    train_path = tmp_path / "train.csv"
    with open(train_path, "w") as handle:
        handle.write("value\n")
        for i in range(150):
            handle.write("%.6f\n"
                         % (np.sin(i / 4.0) + 0.05 * rng.standard_normal()))
    # Single stream so every drain hands OCSVM at least its fit-time
    # window width (it cannot score shorter series).
    feed_path = tmp_path / "feed.csv"
    with open(feed_path, "w") as handle:
        handle.write("stream,value\n")
        for i in range(64):
            handle.write("web,%.6f\n"
                         % (np.sin(i / 4.0) + 0.05 * rng.standard_normal()))
    state = tmp_path / "state"
    ocsvm = ["serve", "--input", str(feed_path), "--method", "OCSVM",
             "--train-input", str(train_path), "--window", "48",
             "--state-dir", str(state)]
    assert main(ocsvm) == 0
    capsys.readouterr()
    with pytest.raises(ValueError, match="Pass detector="):
        main(["serve", "--input", str(feed_path), "--state-dir", str(state)])
    capsys.readouterr()
    # The remedy is reachable from the CLI: --train-input is the override.
    assert main(ocsvm) == 0
    err = capsys.readouterr().err
    assert "restored 1 stream(s)" in err
    assert "scored=128" in err


def test_serve_failed_save_on_clean_shutdown_raises(serve_setup, tmp_path):
    """A clean run whose state save fails must surface the error, not exit
    0 with the state silently lost."""
    model_path, feed_path, __ = serve_setup
    state = tmp_path / "state"
    state.write_text("not a directory")  # makedirs will fail
    with pytest.raises(Exception, match="[Nn]ot a directory|exists"):
        main(["serve", "--input", str(feed_path), "--model",
              str(model_path), "--window", "32", "--state-dir", str(state)])


def test_serve_saves_state_even_when_an_arrival_crashes(serve_setup,
                                                        tmp_path, capsys):
    """A mid-stream error (wrong arity arrival) must still persist the
    state-dir on the way out."""
    model_path, feed_path, __ = serve_setup
    bad_feed = tmp_path / "bad.csv"
    lines = open(feed_path).read().splitlines()
    bad_feed.write_text("\n".join(lines[:30] + ["web,1.0,2.0"]) + "\n")
    state = tmp_path / "state"
    with pytest.raises(ValueError, match="dimensional"):
        main(["serve", "--input", str(bad_feed), "--model", str(model_path),
              "--window", "32", "--state-dir", str(state)])
    assert (state / "router.json").exists()
    assert "saved router state" in capsys.readouterr().err


def test_serve_state_dir_without_default_detector(serve_setup, tmp_path,
                                                  capsys):
    """A router built with per-stream detectors only (no default) must
    restore, serve, print stats, and re-save — not crash on detector.name."""
    import numpy as np

    from repro.core import load_detector
    from repro.serve import StreamRouter

    model_path, feed_path, __ = serve_setup
    det = load_detector(model_path)
    router = StreamRouter(window=32)
    for sid in ("web", "db", "cache"):
        router.add_stream(sid, detector=det)
    state = tmp_path / "state"
    router.save(state)

    code = main(["serve", "--input", str(feed_path), "--window", "32",
                 "--state-dir", str(state)])
    assert code == 0
    err = capsys.readouterr().err
    assert "method=per-stream" in err
    assert "saved router state" in err


def test_pipeline_load_refuses_explain_on_new_input(csv_with_header,
                                                    tmp_path):
    from repro.api import DetectorSpec, Pipeline, PipelineSpec
    from repro.cli import read_series_csv

    values, __ = read_series_csv(csv_with_header)
    pipeline = Pipeline(PipelineSpec(DetectorSpec("RAE",
                                                  {"max_iterations": 3})))
    pipeline.fit(values[:, :1])
    pipeline.save(tmp_path / "m")
    with pytest.raises(SystemExit, match="fitted on THIS input"):
        main(["pipeline", "--load", str(tmp_path / "m"),
              "--input", str(csv_with_header), "--explain"])


def test_pipeline_subcommand_scores_and_saves(csv_with_header, spec_path,
                                              tmp_path, capsys):
    out_path = tmp_path / "out.csv"
    code = main([
        "pipeline", "--spec", str(spec_path), "--input", str(csv_with_header),
        "--labels-column", "label", "--output", str(out_path),
        "--save", str(tmp_path / "saved"),
    ])
    assert code == 0
    err = capsys.readouterr().err
    assert "threshold = " in err and "flagged" in err
    assert "saved pipeline to" in err
    assert (tmp_path / "saved.json").exists()
    content = out_path.read_text().splitlines()
    assert content[0] == "score,label"
    assert len(content) == 161

    # Reload the saved pipeline and score with it.
    code = main([
        "pipeline", "--load", str(tmp_path / "saved"),
        "--input", str(csv_with_header), "--labels-column", "label",
    ])
    assert code == 0
    assert "loaded EMA pipeline" in capsys.readouterr().err


def test_pipeline_needs_spec_or_load(csv_with_header):
    with pytest.raises(SystemExit, match="--spec or --load"):
        main(["pipeline", "--input", str(csv_with_header)])


def test_pipeline_explain_rejected_up_front_for_unexplainable(
        csv_with_header, tmp_path):
    from repro.api import PipelineSpec

    path = tmp_path / "lof.json"
    PipelineSpec("LOF").save(path)
    with pytest.raises(SystemExit, match="explainable detector"):
        main(["pipeline", "--spec", str(path),
              "--input", str(csv_with_header), "--explain"])


def test_threshold_param_without_threshold_errors(csv_with_header):
    with pytest.raises(SystemExit, match="needs --threshold"):
        main(["detect", "--method", "EMA", "--input", str(csv_with_header),
              "--threshold-param", "4.0"])


def test_stream_builds_from_spec(streaming_csv, spec_path, capsys):
    code = main([
        "stream", "--spec", str(spec_path), "--input", str(streaming_csv),
        "--train", "120", "--window", "48",
    ])
    assert code == 0
    assert "method=EMA" in capsys.readouterr().err


# --------------------------------------------------------------------------- #
# serve: drain backends and network frontends


def test_serve_process_backend_matches_serial_output(serve_setup, capsys):
    """--drain-backend process scores the feed bit-identically to serial."""
    model_path, feed_path, per_stream = serve_setup
    base = ["serve", "--input", str(feed_path), "--model", str(model_path),
            "--window", "32", "--drain-every", "16"]
    assert main(base) == 0
    serial_out = capsys.readouterr().out
    assert main(base + ["--drain-backend", "process", "--workers", "2"]) == 0
    process_out = capsys.readouterr().out
    assert process_out == serial_out
    assert len(serial_out.splitlines()) == 3 * per_stream


def test_serve_drain_backend_flag_is_validated():
    with pytest.raises(SystemExit):
        main(["serve", "--input", "-", "--method", "EMA",
              "--drain-backend", "turbo"])


def _spawn_serve(args, timeout=30.0):
    """Start ``repro serve`` in a subprocess; returns (proc, banners).

    Reads stderr until the readiness line, collecting the ``serving ...``
    banners that carry the ephemeral port numbers.
    """
    import os
    import subprocess
    import sys
    import time

    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro"] + args,
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, env=env, text=True,
    )
    banners, deadline = [], time.monotonic() + timeout
    while time.monotonic() < deadline:
        line = proc.stderr.readline()
        if not line:
            break
        banners.append(line.strip())
        if line.startswith("ready"):
            return proc, banners
    proc.kill()
    raise AssertionError("serve never became ready; stderr: %r" % banners)


def _banner_port(banners, needle):
    for line in banners:
        if needle in line:
            return int(line.rsplit(":", 1)[1])
    raise AssertionError("no %r banner in %r" % (needle, banners))


def test_serve_tcp_frontend_scores_then_drains_on_sigterm(serve_setup,
                                                          tmp_path):
    import signal
    import socket

    model_path, __, __n = serve_setup
    state_dir = tmp_path / "state"
    proc, banners = _spawn_serve([
        "serve", "--model", str(model_path), "--window", "32",
        "--tcp", "0", "--drain-backend", "process", "--workers", "2",
        "--drain-every", "4", "--state-dir", str(state_dir),
    ])
    try:
        port = _banner_port(banners, "TCP line protocol")
        with socket.create_connection(("127.0.0.1", port), timeout=10) as s:
            reader = s.makefile("r")
            for value in (0.1, 0.2, 0.3):
                s.sendall(("web,%s\n" % value).encode())
            s.sendall(b"?drain\n")
            lines = [reader.readline().strip() for __ in range(4)]
            assert lines[3] == "OK"
            assert [line.split(",")[:2] for line in lines[:3]] == [
                ["web", "0"], ["web", "1"], ["web", "2"]]
            # Leave one arrival buffered: SIGTERM must drain it before
            # the connection closes.
            s.sendall(b"web,0.4\n")
            proc.send_signal(signal.SIGTERM)
            tail = reader.readline().strip()
            assert tail.split(",")[:2] == ["web", "3"]
            assert reader.readline() == ""  # clean EOF
        out, err = proc.communicate(timeout=30)
    except BaseException:
        proc.kill()
        raise
    assert proc.returncode == 0
    assert "saved router state" in err
    # The SIGTERM shutdown persisted the router with its backend choice.
    from repro.serve import StreamRouter

    restored = StreamRouter.restore(state_dir)
    assert restored.drain_backend == "process"
    assert restored.stats()["per_stream"]["web"]["scored"] == 4
    restored.close()


def test_serve_http_frontend_round_trip(serve_setup):
    import json as json_mod
    import signal
    import urllib.request

    model_path, __, __n = serve_setup
    proc, banners = _spawn_serve([
        "serve", "--model", str(model_path), "--window", "32",
        "--http", "0",
    ])
    try:
        port = _banner_port(banners, "HTTP batch API")
        body = json_mod.dumps({"arrivals": [
            {"stream": "web", "values": [0.1]},
            {"stream": "web", "values": [0.2]},
            {"stream": "bad"},
        ]}).encode()
        request = urllib.request.Request(
            "http://127.0.0.1:%d/submit" % port, data=body,
            headers={"Content-Type": "application/json"}, method="POST")
        with urllib.request.urlopen(request, timeout=10) as response:
            reply = json_mod.loads(response.read())
        assert reply["accepted"] == 2
        assert [s["index"] for s in reply["scores"]] == [0, 1]
        assert len(reply["errors"]) == 1
        with urllib.request.urlopen(
                "http://127.0.0.1:%d/stats" % port, timeout=10) as response:
            stats = json_mod.loads(response.read())
        assert stats["per_stream"]["web"]["scored"] == 2
        assert stats["frontend"]["error_total"] == 1
        proc.send_signal(signal.SIGTERM)
        out, err = proc.communicate(timeout=30)
    except BaseException:
        proc.kill()
        raise
    assert proc.returncode == 0
