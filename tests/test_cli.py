"""Command-line interface."""

import numpy as np
import pytest

from repro.cli import build_parser, main, read_series_csv, write_scores_csv


@pytest.fixture
def csv_with_header(tmp_path):
    rng = np.random.default_rng(0)
    t = np.arange(160)
    values = np.sin(2 * np.pi * t / 20) + 0.05 * rng.standard_normal(160)
    labels = np.zeros(160, dtype=int)
    values[50] += 5.0
    labels[50] = 1
    path = tmp_path / "series.csv"
    with open(path, "w") as handle:
        handle.write("value,label\n")
        for v, label in zip(values, labels):
            handle.write("%.6f,%d\n" % (v, label))
    return path


def test_read_csv_with_header(csv_with_header):
    values, labels = read_series_csv(csv_with_header, labels_column="label")
    assert values.shape == (160, 1)
    assert labels.sum() == 1


def test_read_csv_without_labels(csv_with_header):
    values, labels = read_series_csv(csv_with_header)
    assert values.shape == (160, 2)  # label column kept as a dimension
    assert labels is None


def test_read_csv_headerless(tmp_path):
    path = tmp_path / "plain.csv"
    with open(path, "w") as handle:
        for i in range(20):
            handle.write("%d,%d\n" % (i, i * 2))
    values, labels = read_series_csv(path, labels_column="1")
    assert values.shape == (20, 1)
    assert labels is not None


def test_read_csv_missing_column(csv_with_header):
    with pytest.raises(KeyError):
        read_series_csv(csv_with_header, labels_column="nope")


def test_read_empty_csv(tmp_path):
    path = tmp_path / "empty.csv"
    path.write_text("")
    with pytest.raises(ValueError):
        read_series_csv(path)


def test_write_scores_roundtrip(tmp_path):
    path = tmp_path / "scores.csv"
    write_scores_csv(path, np.array([1.5, 2.5]))
    content = path.read_text().splitlines()
    assert content[0] == "score"
    assert float(content[1]) == 1.5


def test_list_methods(capsys):
    assert main(["list-methods"]) == 0
    out = capsys.readouterr().out
    assert "RAE" in out and "RDAE" in out and "OCSVM" in out


def test_detect_end_to_end(csv_with_header, tmp_path, capsys):
    out_path = tmp_path / "scores.csv"
    code = main([
        "detect", "--method", "EMA",
        "--input", str(csv_with_header),
        "--output", str(out_path),
        "--labels-column", "label",
    ])
    assert code == 0
    err = capsys.readouterr().err
    assert "ROC-AUC" in err
    scores = out_path.read_text().splitlines()
    assert len(scores) == 161  # header + 160 scores


def test_detect_stdout(csv_with_header, capsys):
    code = main([
        "detect", "--method", "EMA", "--input", str(csv_with_header),
        "--labels-column", "label",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert len(out.splitlines()) == 160


def test_demo_runs(capsys):
    code = main(["demo", "--method", "EMA", "--dataset", "SYN", "--scale", "0.06"])
    assert code == 0
    out = capsys.readouterr().out
    assert "ROC-AUC" in out


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


# --------------------------- repro stream ------------------------------- #

@pytest.fixture
def streaming_csv(tmp_path):
    rng = np.random.default_rng(1)
    t = np.arange(240)
    values = np.sin(2 * np.pi * t / 24) + 0.05 * rng.standard_normal(240)
    values[200] += 6.0  # incident inside the streamed segment
    path = tmp_path / "stream.csv"
    with open(path, "w") as handle:
        handle.write("value\n")
        for v in values:
            handle.write("%.6f\n" % v)
    return path


def test_stream_smoke_stdin(streaming_csv, capsys, monkeypatch):
    """Pipe a synthetic series in, assert one score line per streamed point."""
    with open(streaming_csv) as handle:
        monkeypatch.setattr("sys.stdin", handle)
        code = main([
            "stream", "--method", "EMA", "--input", "-",
            "--train", "120", "--window", "48",
        ])
    assert code == 0
    captured = capsys.readouterr()
    lines = captured.out.splitlines()
    assert len(lines) == 120  # 240 points - 120 training head
    indices, scores = zip(*(line.split(",") for line in lines))
    assert [int(i) for i in indices] == list(range(120, 240))
    values = [float(s) for s in scores]
    assert all(np.isfinite(values))
    # The planted incident at t=200 dominates the streamed scores.
    assert indices[int(np.argmax(values))] == "200"
    assert "streamed 120 points" in captured.err


def test_stream_writes_output_csv(streaming_csv, tmp_path, capsys):
    out_path = tmp_path / "scores.csv"
    code = main([
        "stream", "--method", "EMA", "--input", str(streaming_csv),
        "--train", "120", "--window", "48", "--chunk", "16",
        "--output", str(out_path),
    ])
    assert code == 0
    content = out_path.read_text().splitlines()
    assert content[0] == "index,score"
    assert len(content) == 121
    assert "wrote 120 streamed scores" in capsys.readouterr().out


def test_stream_from_saved_model(streaming_csv, tmp_path, capsys):
    from repro.cli import read_series_csv
    from repro.core import RAE, save_detector

    values, __ = read_series_csv(streaming_csv)
    model_path = tmp_path / "rae.npz"
    save_detector(RAE(max_iterations=4).fit(values[:120]), model_path)
    code = main([
        "stream", "--input", str(streaming_csv),
        "--model", str(model_path), "--window", "48",
    ])
    assert code == 0
    lines = capsys.readouterr().out.splitlines()
    assert len(lines) == 240  # no training head: every point is streamed


# --------------------------- repro serve -------------------------------- #

@pytest.fixture
def serve_setup(tmp_path):
    """A saved RAE plus an interleaved 3-stream feed with one incident."""
    from repro.core import RAE, save_detector

    rng = np.random.default_rng(3)
    t = np.arange(200)
    train = (np.sin(2 * np.pi * t / 24) + 0.05 * rng.standard_normal(200))
    model_path = tmp_path / "rae.npz"
    save_detector(RAE(max_iterations=4).fit(train[:, None]), model_path)

    feed_path = tmp_path / "feed.csv"
    per_stream = 60
    with open(feed_path, "w") as handle:
        handle.write("stream,value\n")
        for i in range(per_stream):
            for sid in ("web", "db", "cache"):
                value = float(np.sin(i / 4.0) + 0.05 * rng.standard_normal())
                if sid == "db" and i == 45:
                    value += 8.0  # the incident
                handle.write("%s,%.6f\n" % (sid, value))
    return model_path, feed_path, per_stream


def test_serve_multiplexes_streams(serve_setup, capsys):
    model_path, feed_path, per_stream = serve_setup
    code = main([
        "serve", "--input", str(feed_path), "--model", str(model_path),
        "--window", "32", "--drain-every", "16",
    ])
    assert code == 0
    captured = capsys.readouterr()
    rows = [line.split(",") for line in captured.out.splitlines()]
    assert len(rows) == 3 * per_stream  # every submitted point was scored
    by_stream = {}
    for sid, index, score in rows:
        by_stream.setdefault(sid, []).append((int(index), float(score)))
    assert sorted(by_stream) == ["cache", "db", "web"]
    for sid, pairs in by_stream.items():
        # Per-stream indices are contiguous and scores finite.
        assert [i for i, __ in pairs] == list(range(per_stream))
        assert np.isfinite([s for __, s in pairs]).all()
    # The planted incident dominates its own stream.
    db_scores = [s for __, s in by_stream["db"]]
    assert int(np.argmax(db_scores)) == 45
    assert "served 3 streams: 180 scored" in captured.err


def test_serve_writes_output_csv(serve_setup, tmp_path, capsys):
    model_path, feed_path, per_stream = serve_setup
    out_path = tmp_path / "scores.csv"
    code = main([
        "serve", "--input", str(feed_path), "--model", str(model_path),
        "--window", "32", "--output", str(out_path),
    ])
    assert code == 0
    content = out_path.read_text().splitlines()
    assert content[0] == "stream,index,score"
    assert len(content) == 1 + 3 * per_stream


def test_serve_stdin_with_trained_head(serve_setup, tmp_path, capsys,
                                       monkeypatch):
    __, feed_path, per_stream = serve_setup
    from repro.cli import read_series_csv

    train_path = tmp_path / "train.csv"
    rng = np.random.default_rng(5)
    with open(train_path, "w") as handle:
        handle.write("value\n")
        for i in range(150):
            handle.write("%.6f\n"
                         % (np.sin(i / 4.0) + 0.05 * rng.standard_normal()))
    with open(feed_path) as handle:
        monkeypatch.setattr("sys.stdin", handle)
        code = main([
            "serve", "--input", "-", "--method", "EMA",
            "--train-input", str(train_path), "--window", "32",
        ])
    assert code == 0
    assert len(capsys.readouterr().out.splitlines()) == 3 * per_stream


def test_serve_queue_limit_below_drain_every(serve_setup, capsys):
    """Regression: drain-every above the queue limit used to crash with an
    unhandled QueueFullError before the first drain; it is clamped now."""
    model_path, feed_path, per_stream = serve_setup
    code = main([
        "serve", "--input", str(feed_path), "--model", str(model_path),
        "--window", "32", "--queue-limit", "8", "--drain-every", "64",
    ])
    assert code == 0
    assert len(capsys.readouterr().out.splitlines()) == 3 * per_stream


def test_serve_requires_a_detector_source(serve_setup):
    __, feed_path, __n = serve_setup
    with pytest.raises(SystemExit, match="--model or --train-input"):
        main(["serve", "--input", str(feed_path)])
