"""Gradient correctness of every autograd primitive vs finite differences."""

import numpy as np
import pytest

from repro import nn
from repro.nn import functional as F
from repro.nn.tensor import concatenate, stack

RNG = np.random.default_rng(42)


def finite_difference_check(fn, x, eps=1e-6, tol=1e-5):
    """Compare autograd gradient against a central finite difference along a
    random direction."""
    xt = nn.Tensor(x, requires_grad=True)
    out = fn(xt)
    (out * out).sum().backward()
    analytic = xt.grad
    direction = RNG.standard_normal(x.shape)

    def scalar(a):
        return float((fn(nn.Tensor(a)).data ** 2).sum())

    numeric = (scalar(x + eps * direction) - scalar(x - eps * direction)) / (2 * eps)
    dotted = float((analytic * direction).sum())
    assert abs(numeric - dotted) <= tol * max(1.0, abs(numeric))


@pytest.mark.parametrize(
    "name,fn",
    [
        ("add", lambda t: t + 2.5),
        ("radd", lambda t: 2.5 + t),
        ("sub", lambda t: t - 1.5),
        ("rsub", lambda t: 1.5 - t),
        ("mul", lambda t: t * 3.0),
        ("div", lambda t: t / 2.0),
        ("rdiv", lambda t: 2.0 / (t + 5.0)),
        ("neg", lambda t: -t),
        ("pow", lambda t: (t + 5.0) ** 3),
        ("relu", lambda t: t.relu()),
        ("leaky", lambda t: t.leaky_relu(0.1)),
        ("tanh", lambda t: t.tanh()),
        ("sigmoid", lambda t: t.sigmoid()),
        ("exp", lambda t: t.exp()),
        ("log", lambda t: (t + 5.0).log()),
        ("sqrt", lambda t: (t + 5.0).sqrt()),
        ("abs", lambda t: (t + 0.3).abs()),
        ("sum", lambda t: t.sum(axis=1, keepdims=True)),
        ("mean", lambda t: t.mean(axis=0)),
        ("reshape", lambda t: t.reshape(6, 4)),
        ("transpose", lambda t: t.transpose(1, 0, 2)),
        ("getitem", lambda t: t[:, 1:3, ::2]),
        ("clip", lambda t: t.clip_value(-0.5, 0.5)),
        ("softmax", lambda t: F.softmax(t, axis=-1)),
    ],
)
def test_elementwise_and_shape_gradients(name, fn):
    x = RNG.standard_normal((2, 3, 4))
    finite_difference_check(fn, x)


def test_matmul_gradients():
    a = RNG.standard_normal((3, 4))
    b = RNG.standard_normal((4, 5))
    finite_difference_check(lambda t: t @ nn.Tensor(b), a)
    finite_difference_check(lambda t: nn.Tensor(a) @ t, b)


def test_batched_matmul_gradients():
    a = RNG.standard_normal((2, 3, 4))
    b = RNG.standard_normal((2, 4, 5))
    finite_difference_check(lambda t: t @ nn.Tensor(b), a)
    finite_difference_check(lambda t: nn.Tensor(a) @ t, b)


def test_broadcast_add_gradients():
    a = RNG.standard_normal((3, 4))
    bias = RNG.standard_normal(4)
    finite_difference_check(lambda t: nn.Tensor(a) + t, bias)
    finite_difference_check(lambda t: t * nn.Tensor(bias), a)


def test_conv1d_gradients():
    x = RNG.standard_normal((2, 3, 12))
    w = RNG.standard_normal((5, 3, 3))
    b = RNG.standard_normal(5)
    finite_difference_check(lambda t: F.conv1d(t, nn.Tensor(w), nn.Tensor(b), padding=1), x)
    finite_difference_check(lambda t: F.conv1d(nn.Tensor(x), t, nn.Tensor(b), padding=1), w)
    finite_difference_check(lambda t: F.conv1d(nn.Tensor(x), nn.Tensor(w), t, padding=1), b)


def test_conv2d_gradients():
    x = RNG.standard_normal((2, 2, 8, 9))
    w = RNG.standard_normal((4, 2, 3, 3))
    b = RNG.standard_normal(4)
    finite_difference_check(lambda t: F.conv2d(t, nn.Tensor(w), nn.Tensor(b), padding=1), x)
    finite_difference_check(lambda t: F.conv2d(nn.Tensor(x), t, nn.Tensor(b), padding=1), w)
    finite_difference_check(lambda t: F.conv2d(nn.Tensor(x), nn.Tensor(w), t, padding=1), b)


def test_pooling_and_upsample_gradients():
    x1 = RNG.standard_normal((2, 3, 13))
    x2 = RNG.standard_normal((2, 3, 9, 11))
    finite_difference_check(lambda t: F.max_pool1d(t, 2), x1)
    finite_difference_check(lambda t: F.max_pool2d(t, 2), x2)
    finite_difference_check(lambda t: F.upsample1d(t, 2, size=27), x1)
    finite_difference_check(lambda t: F.upsample2d(t, 2, size=(19, 23)), x2)
    finite_difference_check(lambda t: F.pad1d(t, 2), x1)
    finite_difference_check(lambda t: F.pad2d(t, 3), x2)


def test_concat_and_stack_gradients():
    a = RNG.standard_normal((2, 3))
    finite_difference_check(lambda t: concatenate([t, t * 2.0], axis=1), a)
    finite_difference_check(lambda t: stack([t, t + 1.0], axis=0), a)


def test_gradient_accumulates_over_reuse():
    x = nn.Tensor(np.array([2.0]), requires_grad=True)
    y = x * x + x * 3.0
    y.backward()
    # d/dx (x^2 + 3x) = 2x + 3 = 7
    assert np.allclose(x.grad, [7.0])


def test_backward_requires_scalar_without_grad():
    x = nn.Tensor(np.ones((2, 2)), requires_grad=True)
    with pytest.raises(ValueError):
        (x * 2.0).backward()


def test_no_grad_blocks_graph():
    x = nn.Tensor(np.ones(3), requires_grad=True)
    with nn.no_grad():
        y = x * 2.0
    assert not y.requires_grad
    assert nn.is_grad_enabled()


def test_detach_cuts_graph():
    x = nn.Tensor(np.ones(3), requires_grad=True)
    y = (x * 2.0).detach() * 3.0
    assert not y.requires_grad


def test_deep_chain_does_not_recurse():
    x = nn.Tensor(np.ones(2), requires_grad=True)
    y = x
    for __ in range(3000):
        y = y + 1.0
    y.sum().backward()
    assert np.allclose(x.grad, [1.0, 1.0])


def test_unbroadcast_sums_to_scalar_shape():
    bias = nn.Tensor(np.array([1.0]), requires_grad=True)
    big = nn.Tensor(np.ones((4, 5)))
    (big + bias).sum().backward()
    assert np.allclose(bias.grad, [20.0])
