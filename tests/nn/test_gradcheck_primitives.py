"""Property-style gradient regression for the conv/pool primitives.

``test_autograd.py`` checks each primitive once, at a single shape, with
bias and padding fixed.  The streaming forward path leans on exactly these
primitives (conv1d/conv2d, pooling, upsampling) across many shapes — odd
lengths, no-bias convolutions, wide kernels, varying pool sizes — and on
inputs arriving in any float dtype.  This module sweeps those axes with
central finite differences.
"""

import numpy as np
import pytest

from repro import nn
from repro.nn import functional as F

RNG = np.random.default_rng(2024)


def central_difference_check(fn, x, eps=1e-6, tol=1e-5):
    """Directional central finite difference vs the autograd gradient."""
    xt = nn.Tensor(x, requires_grad=True)
    (fn(xt) ** 2).sum().backward()
    analytic = xt.grad
    direction = RNG.standard_normal(x.shape)

    def scalar(a):
        return float((fn(nn.Tensor(a)).data ** 2).sum())

    numeric = (scalar(x + eps * direction) - scalar(x - eps * direction)) / (2 * eps)
    dotted = float((analytic * direction).sum())
    assert abs(numeric - dotted) <= tol * max(1.0, abs(numeric))


@pytest.mark.parametrize("dtype", [np.float64, np.float32])
@pytest.mark.parametrize(
    "batch,c_in,length,c_out,kernel,padding,bias",
    [
        (1, 1, 7, 1, 3, 0, True),     # minimal univariate stream window
        (2, 3, 12, 4, 3, 1, True),
        (1, 2, 20, 3, 5, 2, False),   # no-bias path
        (3, 1, 9, 2, 7, 3, True),     # wide kernel on a short window
        (2, 4, 16, 2, 1, 0, False),   # pointwise conv
    ],
)
def test_conv1d_gradients(dtype, batch, c_in, length, c_out, kernel, padding, bias):
    x = RNG.standard_normal((batch, c_in, length)).astype(dtype)
    w = RNG.standard_normal((c_out, c_in, kernel))
    b = RNG.standard_normal(c_out) if bias else None
    bt = None if b is None else nn.Tensor(b)
    central_difference_check(
        lambda t: F.conv1d(t, nn.Tensor(w), bt, padding=padding), np.float64(x)
    )
    central_difference_check(
        lambda t: F.conv1d(nn.Tensor(x), t, bt, padding=padding), w
    )
    if b is not None:
        central_difference_check(
            lambda t: F.conv1d(nn.Tensor(x), nn.Tensor(w), t, padding=padding), b
        )


@pytest.mark.parametrize("dtype", [np.float64, np.float32])
@pytest.mark.parametrize(
    "shape,c_out,kernel,padding,bias",
    [
        ((1, 1, 6, 6), 2, 3, 1, True),
        ((2, 2, 8, 5), 3, 3, 0, False),   # non-square input, no bias
        ((1, 3, 9, 9), 2, 5, 2, True),    # wide kernel
    ],
)
def test_conv2d_gradients(dtype, shape, c_out, kernel, padding, bias):
    x = RNG.standard_normal(shape).astype(dtype)
    w = RNG.standard_normal((c_out, shape[1], kernel, kernel))
    b = RNG.standard_normal(c_out) if bias else None
    bt = None if b is None else nn.Tensor(b)
    central_difference_check(
        lambda t: F.conv2d(t, nn.Tensor(w), bt, padding=padding), np.float64(x)
    )
    central_difference_check(
        lambda t: F.conv2d(nn.Tensor(x), t, bt, padding=padding), w
    )


@pytest.mark.parametrize("dtype", [np.float64, np.float32])
@pytest.mark.parametrize("length,kernel", [(8, 2), (13, 2), (12, 3), (7, 4)])
def test_max_pool1d_gradients(dtype, length, kernel):
    # Distinct values keep the argmax unique, so the subgradient is exact.
    x = RNG.permutation(length * 6).reshape(2, 3, length).astype(dtype)
    central_difference_check(lambda t: F.max_pool1d(t, kernel), np.float64(x) * 0.1)


@pytest.mark.parametrize("dtype", [np.float64, np.float32])
@pytest.mark.parametrize("h,w,kernel", [(6, 6, 2), (9, 11, 2), (9, 6, 3)])
def test_max_pool2d_gradients(dtype, h, w, kernel):
    x = RNG.permutation(h * w * 2).reshape(1, 2, h, w).astype(dtype)
    central_difference_check(lambda t: F.max_pool2d(t, kernel), np.float64(x) * 0.1)


@pytest.mark.parametrize("length,factor,size", [(5, 2, None), (5, 2, 9),
                                                (7, 3, 20), (4, 2, 8)])
def test_upsample1d_gradients(length, factor, size):
    x = RNG.standard_normal((2, 2, length))
    central_difference_check(lambda t: F.upsample1d(t, factor, size=size), x)


@pytest.mark.parametrize("shape,factor,size", [((1, 2, 4, 5), 2, None),
                                               ((1, 1, 3, 3), 2, (5, 7)),
                                               ((2, 2, 4, 4), 3, (11, 9))])
def test_upsample2d_gradients(shape, factor, size):
    x = RNG.standard_normal(shape)
    central_difference_check(lambda t: F.upsample2d(t, factor, size=size), x)


@pytest.mark.parametrize("padding", [1, 2, 5])
def test_pad_gradients(padding):
    central_difference_check(
        lambda t: F.pad1d(t, padding), RNG.standard_normal((2, 2, 6))
    )
    central_difference_check(
        lambda t: F.pad2d(t, padding), RNG.standard_normal((1, 2, 5, 6))
    )


def test_float32_input_promotes_to_float64():
    """The substrate stores float64; lower-precision streams must upcast."""
    x32 = RNG.standard_normal((1, 2, 8)).astype(np.float32)
    out = F.conv1d(nn.Tensor(x32), nn.Tensor(RNG.standard_normal((3, 2, 3))))
    assert out.data.dtype == np.float64


def test_conv_then_pool_composition_gradient():
    """The encoder block the streaming forward path actually runs."""
    w1 = nn.Tensor(RNG.standard_normal((4, 1, 3)))
    w2 = nn.Tensor(RNG.standard_normal((2, 4, 3)))

    def block(t):
        h = F.conv1d(t, w1, padding=1).relu()
        h = F.max_pool1d(h, 2)
        h = F.upsample1d(h, 2, size=t.shape[2])
        return F.conv1d(h, w2, padding=1)

    central_difference_check(block, RNG.standard_normal((1, 1, 16)) * 3.0)
