"""LSTM behaviour: shapes, state threading, gradients, memory."""

import numpy as np

from repro import nn
from repro.nn.recurrent import repeat_hidden


def test_lstm_output_shapes():
    lstm = nn.LSTM(3, 8)
    x = nn.Tensor(np.random.default_rng(0).standard_normal((4, 11, 3)))
    out, (h, c) = lstm(x)
    assert out.shape == (4, 11, 8)
    assert h.shape == (4, 8)
    assert c.shape == (4, 8)


def test_lstm_final_state_matches_last_output():
    lstm = nn.LSTM(2, 5)
    x = nn.Tensor(np.random.default_rng(1).standard_normal((3, 7, 2)))
    out, (h, __) = lstm(x)
    assert np.allclose(out.data[:, -1, :], h.data)


def test_lstm_gradients_reach_input_and_params():
    lstm = nn.LSTM(2, 4)
    x = nn.Tensor(np.random.default_rng(2).standard_normal((2, 6, 2)),
                  requires_grad=True)
    out, __ = lstm(x)
    (out * out).sum().backward()
    assert x.grad is not None and np.abs(x.grad).sum() > 0
    assert lstm.cell.weight_x.grad is not None


def test_lstm_cell_state_threading():
    cell = nn.LSTMCell(2, 3)
    h = nn.Tensor(np.zeros((1, 3)))
    c = nn.Tensor(np.zeros((1, 3)))
    x = nn.Tensor(np.ones((1, 2)))
    h1, c1 = cell(x, (h, c))
    h2, c2 = cell(x, (h1, c1))
    assert not np.allclose(h1.data, h2.data)


def test_forget_gate_bias_initialised_to_one():
    cell = nn.LSTMCell(2, 4)
    assert np.allclose(cell.bias.data[4:8], 1.0)
    assert np.allclose(cell.bias.data[:4], 0.0)


def test_repeat_hidden_tiles_state():
    h = nn.Tensor(np.arange(6, dtype=float).reshape(2, 3))
    tiled = repeat_hidden(h, 4)
    assert tiled.shape == (2, 4, 3)
    assert np.allclose(tiled.data[:, 0, :], h.data)
    assert np.allclose(tiled.data[:, 3, :], h.data)


def test_lstm_deterministic_given_rng():
    rng1 = np.random.default_rng(5)
    rng2 = np.random.default_rng(5)
    x = np.random.default_rng(0).standard_normal((1, 5, 2))
    out1, __ = nn.LSTM(2, 3, rng=rng1)(nn.Tensor(x))
    out2, __ = nn.LSTM(2, 3, rng=rng2)(nn.Tensor(x))
    assert np.array_equal(out1.data, out2.data)
