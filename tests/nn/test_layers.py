"""Module/layer behaviour: shapes, registration, state dicts, modes."""

import numpy as np
import pytest

from repro import nn


def test_linear_shapes_and_params():
    layer = nn.Linear(4, 7)
    out = layer(nn.Tensor(np.ones((3, 4))))
    assert out.shape == (3, 7)
    assert layer.num_parameters() == 4 * 7 + 7


def test_linear_no_bias():
    layer = nn.Linear(4, 7, bias=False)
    assert layer.num_parameters() == 28


def test_conv1d_same_padding_preserves_length():
    layer = nn.Conv1d(3, 6, 5)
    out = layer(nn.Tensor(np.ones((2, 3, 20))))
    assert out.shape == (2, 6, 20)


def test_conv2d_same_padding_preserves_size():
    layer = nn.Conv2d(2, 4, 3)
    out = layer(nn.Tensor(np.ones((1, 2, 9, 13))))
    assert out.shape == (1, 4, 9, 13)


def test_conv_channel_mismatch_raises():
    layer = nn.Conv1d(3, 6, 3)
    with pytest.raises(ValueError):
        layer(nn.Tensor(np.ones((1, 2, 10))))


def test_pool_upsample_roundtrip_shape():
    x = nn.Tensor(np.random.default_rng(0).standard_normal((1, 2, 17)))
    pooled = nn.MaxPool1d(2)(x)
    assert pooled.shape == (1, 2, 8)
    restored = nn.Upsample1d(2, size=17)(pooled)
    assert restored.shape == x.shape


def test_sequential_iteration_and_indexing():
    seq = nn.Sequential(nn.Linear(2, 3), nn.ReLU(), nn.Linear(3, 1))
    assert len(seq) == 3
    assert isinstance(seq[1], nn.ReLU)
    assert len(list(iter(seq))) == 3


def test_named_parameters_nested():
    class Wrapper(nn.Module):
        def __init__(self):
            super().__init__()
            self.blocks = [nn.Linear(2, 2), nn.Linear(2, 2)]
            self.head = nn.Linear(2, 1)

        def forward(self, x):
            return self.head(self.blocks[1](self.blocks[0](x)))

    names = dict(Wrapper().named_parameters())
    assert "blocks.0.weight" in names
    assert "blocks.1.bias" in names
    assert "head.weight" in names


def test_state_dict_roundtrip():
    a = nn.Linear(3, 3)
    b = nn.Linear(3, 3)
    b.load_state_dict(a.state_dict())
    x = np.ones((2, 3))
    assert np.allclose(a(nn.Tensor(x)).data, b(nn.Tensor(x)).data)


def test_load_state_dict_validates():
    a = nn.Linear(3, 3)
    with pytest.raises(KeyError):
        a.load_state_dict({})
    bad = {name: np.zeros((1, 1)) for name, __ in a.named_parameters()}
    with pytest.raises(ValueError):
        a.load_state_dict(bad)


def test_dropout_train_vs_eval():
    rng = np.random.default_rng(0)
    layer = nn.Dropout(0.5, rng=rng)
    x = nn.Tensor(np.ones((100, 10)))
    out_train = layer(x)
    assert (out_train.data == 0).any()
    layer.eval()
    out_eval = layer(x)
    assert np.allclose(out_eval.data, 1.0)


def test_train_mode_propagates():
    seq = nn.Sequential(nn.Dropout(0.5), nn.Linear(2, 2))
    seq.eval()
    assert not seq[0].training
    seq.train()
    assert seq[0].training


def test_layernorm_normalises_last_axis():
    x = nn.Tensor(np.random.default_rng(1).standard_normal((4, 16)) * 7 + 3)
    out = nn.LayerNorm(16)(x)
    assert np.allclose(out.data.mean(axis=-1), 0.0, atol=1e-6)
    assert np.allclose(out.data.std(axis=-1), 1.0, atol=1e-2)


def test_zero_grad_clears_module_grads():
    layer = nn.Linear(2, 2)
    out = layer(nn.Tensor(np.ones((1, 2))))
    out.sum().backward()
    assert layer.weight.grad is not None
    layer.zero_grad()
    assert layer.weight.grad is None


def test_seeded_init_is_deterministic():
    nn.seed(123)
    a = nn.Linear(4, 4)
    nn.seed(123)
    b = nn.Linear(4, 4)
    assert np.array_equal(a.weight.data, b.weight.data)
