"""Receptive-field metadata: primitive extents, composition, soundness.

The tail-forward serving path trusts ``Module.receptive_field()`` to bound
how far a perturbation can travel along the time axis.  These tests check
the reported cones directly against the functional primitives: perturb one
input position, observe which outputs change, and require the observation
to fit inside the reported (over-approximated) cone.
"""

import numpy as np
import pytest

from repro import nn
from repro.nn.receptive import UNBOUNDED, ReceptiveField


def test_primitive_extents():
    assert nn.ReLU().receptive_field().lookback == 0
    conv = nn.Conv1d(3, 4, 5).receptive_field()  # 'same' padding -> 2
    assert (conv.lookback, conv.lookahead) == (2, 2)
    assert conv.period_int == 1
    unpadded = nn.Conv1d(3, 4, 5, padding=0).receptive_field()
    assert (unpadded.lookback, unpadded.lookahead) == (0, 4)
    pool = nn.MaxPool1d(2).receptive_field()
    assert (pool.lookback, pool.lookahead) == (0, 1)
    assert pool.stride == 2 and pool.period_int == 2
    up = nn.Upsample1d(2).receptive_field()
    assert up.stride == pytest.approx(0.5)
    assert up.period_int == 1


def test_unbounded_modules_and_absorption():
    assert nn.Linear(4, 4).receptive_field() is UNBOUNDED
    assert nn.LayerNorm(4).receptive_field() is UNBOUNDED
    assert nn.LSTM(2, 4).receptive_field() is UNBOUNDED
    assert nn.MultiHeadAttention(8, 2).receptive_field() is UNBOUNDED
    assert nn.TransformerEncoderLayer(8, 2).receptive_field() is UNBOUNDED

    class Custom(nn.Module):
        def forward(self, x):  # pragma: no cover - never called
            return x

    # Unknown forwards get the only safe default.
    assert Custom().receptive_field() is UNBOUNDED
    # One unbounded stage poisons the whole chain.
    chain = nn.Sequential(nn.Conv1d(2, 2, 3), nn.Linear(2, 2))
    assert chain.receptive_field() is UNBOUNDED
    assert UNBOUNDED.then(ReceptiveField.pointwise()) is UNBOUNDED
    assert ReceptiveField.pointwise().then(UNBOUNDED) is UNBOUNDED


def test_sequential_composition_grows_monotonically():
    one = nn.Sequential(nn.Conv1d(2, 4, 3), nn.ReLU()).receptive_field()
    two = nn.Sequential(
        nn.Conv1d(2, 4, 3), nn.ReLU(), nn.Conv1d(4, 4, 3), nn.ReLU()
    ).receptive_field()
    assert two.lookback > one.lookback and two.lookahead > one.lookahead
    pooled = nn.Sequential(
        nn.Conv1d(2, 4, 3), nn.MaxPool1d(2)
    ).receptive_field()
    assert pooled.period_int == 2 and pooled.stride == 2


def test_invalid_parameters_rejected():
    with pytest.raises(ValueError):
        ReceptiveField(lookback=-1)
    with pytest.raises(ValueError):
        ReceptiveField(stride=0)


@pytest.mark.parametrize("kernel_size,layers,pool", [
    (3, 1, False), (5, 2, False), (3, 2, True), (7, 3, True), (11, 1, True),
])
def test_reported_cone_contains_observed_dependence(kernel_size, layers, pool):
    """Perturb one position; changed outputs must fit the reported cone."""
    rng = np.random.default_rng(0)
    stages = []
    channels = 2
    for __ in range(layers):
        stages += [nn.Conv1d(channels, 4, kernel_size, rng=rng), nn.ReLU()]
        channels = 4
    if pool:
        stages += [nn.MaxPool1d(2), nn.Upsample1d(2)]
    stages.append(nn.Conv1d(channels, 2, kernel_size, rng=rng))
    net = nn.Sequential(*stages)
    field = net.receptive_field()
    assert field.bounded

    length = 64
    x = rng.standard_normal((1, 2, length))
    where = 40
    bumped = x.copy()
    bumped[0, :, where] += 1.0
    with nn.no_grad():
        base = net(nn.Tensor(x)).data
        changed = net(nn.Tensor(bumped)).data
    moved = np.flatnonzero(np.any(base != changed, axis=(0, 1)))
    assert moved.size  # the perturbation must register somewhere
    # Output position j reads inputs around floor(j*stride): the perturbed
    # input can only move outputs whose projected centre is within the
    # reported extents of `where`.
    stride = float(field.stride)
    lo = (where - field.lookahead) / stride - 1
    hi = (where + field.lookback) / stride + 1
    assert moved.min() >= lo and moved.max() <= hi
