"""Loss values against hand computations and reference formulas."""

import numpy as np

from repro import nn


def test_mse_matches_numpy():
    a = np.array([[1.0, 2.0], [3.0, 4.0]])
    b = np.array([[0.0, 2.0], [3.0, 6.0]])
    loss = nn.mse_loss(nn.Tensor(a), b)
    assert np.isclose(loss.item(), np.mean((a - b) ** 2))


def test_l1_matches_numpy():
    a = np.array([1.0, -2.0, 3.0])
    b = np.array([0.0, 0.0, 0.0])
    loss = nn.l1_loss(nn.Tensor(a), b)
    assert np.isclose(loss.item(), 2.0)


def test_bce_with_logits_matches_reference():
    logits = np.array([-2.0, -0.5, 0.0, 0.5, 2.0])
    target = np.array([0.0, 1.0, 1.0, 0.0, 1.0])
    loss = nn.bce_with_logits(nn.Tensor(logits), target)
    probs = 1.0 / (1.0 + np.exp(-logits))
    reference = -(target * np.log(probs) + (1 - target) * np.log(1 - probs)).mean()
    assert np.isclose(loss.item(), reference)


def test_bce_with_logits_extreme_values_stable():
    logits = np.array([-80.0, 80.0])
    target = np.array([0.0, 1.0])
    loss = nn.bce_with_logits(nn.Tensor(logits), target)
    assert np.isfinite(loss.item())
    assert loss.item() < 1e-10


def test_gaussian_nll_unit_variance_is_half_sq_error_plus_const():
    mean = np.array([0.0, 1.0])
    target = np.array([1.0, 1.0])
    loss = nn.gaussian_nll(nn.Tensor(mean), nn.Tensor(np.zeros(2)), target)
    expected = 0.5 * (np.array([1.0, 0.0]) + np.log(2 * np.pi)).mean()
    assert np.isclose(loss.item(), expected)


def test_kl_zero_for_standard_normal():
    mean = nn.Tensor(np.zeros(5))
    logvar = nn.Tensor(np.zeros(5))
    assert np.isclose(nn.kl_diag_gaussian(mean, logvar).item(), 0.0)


def test_kl_positive_otherwise():
    mean = nn.Tensor(np.ones(5))
    logvar = nn.Tensor(np.full(5, -1.0))
    assert nn.kl_diag_gaussian(mean, logvar).item() > 0.0


def test_losses_backprop_through_prediction():
    pred = nn.Tensor(np.array([1.0, 2.0]), requires_grad=True)
    nn.mse_loss(pred, np.zeros(2)).backward()
    assert np.allclose(pred.grad, pred.data)  # d/dp mean(p^2) = 2p/2 = p
