"""Attention and transformer blocks: shapes, softmax rows, positions."""

import numpy as np
import pytest

from repro import nn
from repro.nn import functional as F


def test_multihead_attention_shape_preserved():
    mha = nn.MultiHeadAttention(16, 4)
    x = nn.Tensor(np.random.default_rng(0).standard_normal((2, 9, 16)))
    out = mha(x)
    assert out.shape == (2, 9, 16)


def test_multihead_rejects_bad_head_count():
    with pytest.raises(ValueError):
        nn.MultiHeadAttention(16, 5)


def test_softmax_rows_sum_to_one():
    x = nn.Tensor(np.random.default_rng(1).standard_normal((3, 7)))
    out = F.softmax(x, axis=-1)
    assert np.allclose(out.data.sum(axis=-1), 1.0)
    assert (out.data > 0).all()


def test_positional_encoding_distinct_positions():
    pe = nn.PositionalEncoding(8, max_len=64)
    x = nn.Tensor(np.zeros((1, 10, 8)))
    out = pe(x).data[0]
    # All rows must differ: positions are distinguishable.
    for i in range(9):
        assert not np.allclose(out[i], out[i + 1])


def test_positional_encoding_values_bounded():
    pe = nn.PositionalEncoding(6, max_len=32)
    out = pe(nn.Tensor(np.zeros((1, 32, 6)))).data
    assert np.abs(out).max() <= 1.0 + 1e-9


def test_encoder_layer_shape_and_gradients():
    layer = nn.TransformerEncoderLayer(8, 2)
    x = nn.Tensor(np.random.default_rng(2).standard_normal((2, 6, 8)),
                  requires_grad=True)
    out = layer(x)
    assert out.shape == (2, 6, 8)
    (out * out).sum().backward()
    assert x.grad is not None
    assert layer.attention.proj_q.weight.grad is not None


def test_attention_permutation_behaviour():
    """Self-attention without positions is permutation-equivariant."""
    mha = nn.MultiHeadAttention(8, 2)
    x = np.random.default_rng(3).standard_normal((1, 5, 8))
    perm = np.array([3, 1, 4, 0, 2])
    out = mha(nn.Tensor(x)).data
    out_perm = mha(nn.Tensor(x[:, perm])).data
    assert np.allclose(out[:, perm], out_perm, atol=1e-10)
