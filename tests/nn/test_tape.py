"""Tape-compiled training: bit-identity to eager, invalidation, fallback."""

import numpy as np
import pytest

from repro import nn
from repro.core.autoencoders import (
    ConvMatrixAE,
    ConvSeriesAE,
    ConvTransform1d,
    FCSeriesAE,
    train_reconstruction,
)
from repro.nn import tape as nntape


@pytest.fixture
def tape_on():
    previous = nntape.set_tape_enabled(True)
    yield
    nntape.set_tape_enabled(previous)


def _train(model_fn, x, calls=3, epochs=4, enabled=True, target=None):
    previous = nntape.set_tape_enabled(enabled)
    try:
        model = model_fn()
        optimizer = nn.Adam(model.parameters(), lr=1e-2)
        outputs = [
            train_reconstruction(model, optimizer, x, epochs=epochs,
                                 target=target).copy()
            for __ in range(calls)
        ]
        return outputs, model
    finally:
        nntape.set_tape_enabled(previous)


MODELS = [
    ("conv1d", lambda: ConvSeriesAE(2, rng=np.random.default_rng(1)), (1, 2, 129)),
    ("fc", lambda: FCSeriesAE(2, rng=np.random.default_rng(1)), (1, 2, 129)),
    ("transform1d", lambda: ConvTransform1d(2, rng=np.random.default_rng(1)), (1, 2, 129)),
    ("conv2d", lambda: ConvMatrixAE(2, rng=np.random.default_rng(1)), (1, 2, 20, 57)),
]


@pytest.mark.parametrize("name,model_fn,shape", MODELS, ids=[m[0] for m in MODELS])
def test_tape_bit_identical_to_eager(tape_on, name, model_fn, shape):
    """Replayed epochs produce byte-for-byte the outputs eager produces —
    across repeated train_reconstruction calls (the ADMM pattern) and
    including every parameter."""
    x = np.random.default_rng(0).standard_normal(shape)
    taped, m_tape = _train(model_fn, x, enabled=True)
    eager, m_eager = _train(model_fn, x, enabled=False)
    for got, want in zip(taped, eager):
        assert np.array_equal(got, want)
    for (name_t, p_t), (name_e, p_e) in zip(
        m_tape.named_parameters(), m_eager.named_parameters()
    ):
        assert name_t == name_e
        assert np.array_equal(p_t.data, p_e.data)
    # The tape actually engaged (otherwise this test proves nothing).
    tape = next(iter(m_tape.__dict__["_tape_cache"].values()))
    assert tape.recorded and tape.replays > 0 and not tape.failed


def test_tape_separate_target_bit_identical(tape_on):
    x = np.random.default_rng(0).standard_normal((1, 1, 64))
    target = np.random.default_rng(1).standard_normal((1, 1, 64))
    taped, __ = _train(lambda: ConvTransform1d(1, rng=np.random.default_rng(2)),
                       x, target=target)
    eager, __ = _train(lambda: ConvTransform1d(1, rng=np.random.default_rng(2)),
                       x, target=target, enabled=False)
    for got, want in zip(taped, eager):
        assert np.array_equal(got, want)


def test_shape_change_records_a_second_tape(tape_on):
    model = ConvTransform1d(1, rng=np.random.default_rng(0))
    optimizer = nn.Adam(model.parameters(), lr=1e-2)
    a = np.random.default_rng(1).standard_normal((1, 1, 64))
    b = np.random.default_rng(2).standard_normal((1, 1, 96))
    train_reconstruction(model, optimizer, a, epochs=2)
    train_reconstruction(model, optimizer, b, epochs=2)
    cache = model.__dict__["_tape_cache"]
    assert len(cache) == 2
    # And replaying the first shape again reuses its tape.
    first = cache[((1, 1, 64), None)]
    train_reconstruction(model, optimizer, a, epochs=2)
    assert first.replays > 0


def test_tape_cache_is_bounded(tape_on):
    model = ConvTransform1d(1, rng=np.random.default_rng(0))
    optimizer = nn.Adam(model.parameters(), lr=1e-2)
    for length in (32, 40, 48, 56, 64, 72):
        x = np.zeros((1, 1, length))
        train_reconstruction(model, optimizer, x, epochs=1)
    assert len(model.__dict__["_tape_cache"]) <= nntape._MAX_TAPES_PER_MODEL


def test_no_tape_under_stable_kernels(tape_on):
    model = ConvTransform1d(1, rng=np.random.default_rng(0))
    x = np.zeros((1, 1, 32))
    with nn.functional.stable_kernels():
        assert nntape.training_tape(model, x, x) is None
    assert nntape.training_tape(model, x, x) is not None


def test_no_tape_under_no_grad(tape_on):
    model = ConvTransform1d(1, rng=np.random.default_rng(0))
    x = np.zeros((1, 1, 32))
    with nn.no_grad():
        assert nntape.training_tape(model, x, x) is None


def test_no_tape_when_disabled(tape_on):
    model = ConvTransform1d(1, rng=np.random.default_rng(0))
    x = np.zeros((1, 1, 32))
    nntape.set_tape_enabled(False)
    assert nntape.training_tape(model, x, x) is None
    nntape.set_tape_enabled(True)
    assert nntape.training_tape(model, x, x) is not None


def test_module_tape_safety_rules():
    safe = nn.Sequential(nn.Linear(4, 4), nn.ReLU(), nn.LayerNorm(4))
    assert nntape.module_tape_safe(safe)
    # Active dropout draws its mask through the tape's persistent-buffer
    # protocol now (tape v2): replayable in train and eval mode alike.
    dropped = nn.Sequential(nn.Linear(4, 4), nn.Dropout(0.5))
    assert nntape.module_tape_safe(dropped)
    assert nntape.module_tape_safe(dropped.eval())
    # Recurrent stacks lower onto pure primitives: safe leaves.
    assert nntape.module_tape_safe(nn.LSTM(4, 4))

    # A subclass may override forward arbitrarily — never auto-safe.
    class Custom(nn.Linear):
        def forward(self, x):  # pragma: no cover - structure-only test
            return super().forward(x)

    assert not nntape.module_tape_safe(Custom(4, 4))

    # Unknown modules are unsafe unless they opt in via tape_safe.
    class Opaque(nn.Module):
        def forward(self, x):  # pragma: no cover - structure-only test
            return x

    assert not nntape.module_tape_safe(Opaque())
    assert nntape.module_tape_safe(ConvSeriesAE(1))


def test_unsupported_model_falls_back_to_eager(tape_on):
    """A model containing an unknown child module trains through the eager
    path and still learns (no tape is recorded, nothing breaks)."""

    class Opaque(nn.Module):
        def __init__(self):
            super().__init__()
            self.lin = nn.Linear(8, 8, rng=np.random.default_rng(0))

        def forward(self, x):
            return self.lin(x)

    class Wrapped(nn.Module):
        tape_safe = True  # claims safety, but contains an unsafe child

        def __init__(self):
            super().__init__()
            self.net = nn.Sequential(
                nn.Linear(8, 8),
                Opaque(),
                nn.Linear(8, 8),
            )

        def forward(self, x):
            return self.net(x)

    model = Wrapped()
    optimizer = nn.Adam(model.parameters(), lr=1e-2)
    x = np.random.default_rng(1).standard_normal((16, 8))
    first = train_reconstruction(model, optimizer, x, epochs=1)
    last = train_reconstruction(model, optimizer, x, epochs=30)
    assert model.__dict__.get("_tape_cache") in (None, {})
    assert np.mean((last - x) ** 2) < np.mean((first - x) ** 2)


def test_stochastic_primitives_record_and_replay(tape_on):
    """Softmax, dropout, and reparameterisation noise — PR 5's poisoners —
    now record through the tape's buffer protocol: replayed training is
    bit-identical to eager, with fresh draws per replayed epoch."""

    class Stochastic(nn.Module):
        tape_safe = True

        def __init__(self):
            super().__init__()
            self.lin = nn.Linear(6, 6, rng=np.random.default_rng(0))
            self.drop = nn.Dropout(0.4, rng=np.random.default_rng(7))
            self._noise_rng = np.random.default_rng(11)

        def forward(self, x):
            h = nn.functional.softmax(self.lin(x), axis=-1)
            h = self.drop(h)
            noise = nn.functional.sampled_normal(h.shape, self._noise_rng)
            return h + noise * 0.01

    x = np.random.default_rng(1).standard_normal((4, 6))

    def run(enabled):
        previous = nntape.set_tape_enabled(enabled)
        try:
            model = Stochastic()
            optimizer = nn.Adam(model.parameters(), lr=1e-2)
            outs = [train_reconstruction(model, optimizer, x, epochs=3).copy()
                    for __ in range(2)]
            return outs, model
        finally:
            nntape.set_tape_enabled(previous)

    taped, model = run(True)
    eager, __ = run(False)
    tape = next(iter(model.__dict__["_tape_cache"].values()))
    assert tape.recorded and tape.replays > 0 and not tape.failed
    for got, want in zip(taped, eager):
        assert np.array_equal(got, want)


def test_poisoned_recording_falls_back_to_eager(tape_on):
    """An op that bakes run-time data into its recorded closure poisons the
    recording (``_poison_tape``): the tape declines, training falls back to
    eager, and results match a pure-eager run exactly."""
    from repro.nn.tensor import _poison_tape

    class SelfPoisoning(nn.Module):
        tape_safe = True

        def __init__(self):
            super().__init__()
            self.lin = nn.Linear(6, 6, rng=np.random.default_rng(0))

        def forward(self, x):
            _poison_tape("test: unreplayable op")
            return self.lin(x)

    x = np.random.default_rng(1).standard_normal((4, 6))

    def run(enabled):
        previous = nntape.set_tape_enabled(enabled)
        try:
            model = SelfPoisoning()
            optimizer = nn.Adam(model.parameters(), lr=1e-2)
            outs = [train_reconstruction(model, optimizer, x, epochs=3).copy()
                    for __ in range(2)]
            return outs, model
        finally:
            nntape.set_tape_enabled(previous)

    taped, model = run(True)
    eager, __ = run(False)
    tape = next(iter(model.__dict__["_tape_cache"].values()))
    assert tape.failed
    for got, want in zip(taped, eager):
        assert np.array_equal(got, want)


def test_clip_grad_norm_handles_adopted_readonly_grad():
    p = nn.Parameter(np.full(5, 3.0))
    p.sum().backward()  # grad adopted as a read-only broadcast view
    total = nn.clip_grad_norm([p], 1.0)
    assert total == pytest.approx(np.sqrt(5.0))
    assert np.allclose(np.sqrt((p.grad**2).sum()), 1.0, atol=1e-9)


def test_repr_states_progress(tape_on):
    model = ConvTransform1d(1, rng=np.random.default_rng(0))
    optimizer = nn.Adam(model.parameters(), lr=1e-2)
    x = np.zeros((1, 1, 32))
    train_reconstruction(model, optimizer, x, epochs=3)
    tape = next(iter(model.__dict__["_tape_cache"].values()))
    assert "replays" in repr(tape)
