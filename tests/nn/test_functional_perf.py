"""Allocation/behaviour regression guards for the structured ops."""

import numpy as np
import pytest

from repro import nn
from repro.nn import functional as F


def test_upsample1d_does_not_materialise_repeat(monkeypatch):
    """upsample1d gathers through an index map; an earlier version also
    computed np.repeat(x, factor) and immediately discarded it.  Guard the
    dead allocation out for good."""

    def banned(*args, **kwargs):  # pragma: no cover - failure path
        raise AssertionError("upsample1d must not call np.repeat")

    monkeypatch.setattr(np, "repeat", banned)
    x = nn.Tensor(np.arange(12.0).reshape(1, 2, 6), requires_grad=True)
    out = F.upsample1d(x, 2)
    assert out.shape == (1, 2, 12)
    out.sum().backward()
    assert x.grad is not None


@pytest.mark.parametrize("factor,size", [(2, None), (2, 11), (2, 17), (3, 10)])
def test_upsample1d_matches_index_gather(factor, size):
    data = np.random.default_rng(0).standard_normal((1, 2, 7))
    out = F.upsample1d(nn.Tensor(data), factor, size)
    target = 7 * factor if size is None else size
    index = np.minimum(np.arange(target) // factor, 6)
    assert np.array_equal(out.data, data[:, :, index])


@pytest.mark.parametrize("factor,size", [(2, None), (2, 11), (2, 17), (3, 10)])
def test_upsample1d_backward_matches_scatter_reference(factor, size):
    """The grouped-sum backward must equal the reference np.add.at scatter
    bit for bit (for factor 2 the two-term group sums are associativity-
    identical; other factors still go through add.at)."""
    rng = np.random.default_rng(1)
    data = rng.standard_normal((1, 2, 7))
    x = nn.Tensor(data, requires_grad=True)
    out = F.upsample1d(x, factor, size)
    grad = rng.standard_normal(out.shape)
    out.backward(grad)

    target = out.shape[2]
    index = np.minimum(np.arange(target) // factor, 6)
    reference = np.zeros_like(data)
    np.add.at(reference, (slice(None), slice(None), index), grad)
    assert np.array_equal(x.grad, reference)


def test_conv1d_single_channel_matches_multichannel_semantics():
    """conv1d dispatches C_in==1 inputs through the im2col einsum and wider
    inputs through per-tap GEMMs; both must agree with the naive direct
    convolution to float tolerance."""
    rng = np.random.default_rng(2)
    for c_in in (1, 3):
        x = rng.standard_normal((1, c_in, 20))
        w = rng.standard_normal((4, c_in, 3))
        b = rng.standard_normal(4)
        out = F.conv1d(nn.Tensor(x), nn.Tensor(w), nn.Tensor(b)).data
        naive = np.zeros((1, 4, 18))
        for f in range(4):
            for c in range(c_in):
                for tap in range(3):
                    naive[0, f] += w[f, c, tap] * x[0, c, tap : tap + 18]
            naive[0, f] += b[f]
        assert np.allclose(out, naive, atol=1e-10)


def test_conv2d_matches_naive_convolution():
    rng = np.random.default_rng(3)
    x = rng.standard_normal((2, 3, 8, 9))
    w = rng.standard_normal((4, 3, 3, 3))
    b = rng.standard_normal(4)
    out = F.conv2d(nn.Tensor(x), nn.Tensor(w), nn.Tensor(b)).data
    naive = np.zeros((2, 4, 6, 7))
    for f in range(4):
        for c in range(3):
            for i in range(3):
                for j in range(3):
                    naive[:, f] += w[f, c, i, j] * x[:, c, i : i + 6, j : j + 7]
        naive[:, f] += b[f]
    assert np.allclose(out, naive, atol=1e-10)
