"""Unit tests for the grad-free inference tapes and stacked programs.

The serving-level contract (bit-identical compiled drains) lives in
``tests/serve/test_compiled_drain.py``; these tests pin the building
blocks directly: :class:`repro.nn.tape.ScoreTape` record/replay,
shape-keyed caching with hot-swap invalidation,
:func:`repro.nn.batched.stacked_score_plan`'s accept/decline decisions,
and :class:`repro.nn.batched.StackedScoreProgram` replay + refresh.
"""

import numpy as np
import pytest

from repro.core import RAE
from repro.nn import batched as nnbatched
from repro.nn import no_grad
from repro.nn import tape as nntape
from repro.nn.functional import stable_kernels
from repro.nn.tensor import Tensor


def fitted_models(count=2, **kwargs):
    rng = np.random.default_rng(0)
    series = (np.sin(np.linspace(0, 20, 160))[:, None]
              + 0.1 * rng.standard_normal((160, 1)))
    params = {"max_iterations": 1, "epochs_per_iteration": 1}
    params.update(kwargs)
    return [RAE(seed=seed, **params).fit(series).model_
            for seed in range(count)]


def eager_forward(module, array):
    with no_grad(), stable_kernels():
        return module(Tensor(np.array(array))).data.copy()


def batch(seed=3, m=2, dims=1, length=48):
    return np.random.default_rng(seed).standard_normal((m, dims, length))


# --------------------------------------------------------------------- #
# ScoreTape
# --------------------------------------------------------------------- #

def test_score_tape_records_then_replays_bit_identically():
    module, = fitted_models(count=1)
    x = batch(m=1)
    tape, event = nntape.score_tape(module, x.shape)
    assert event == "miss" and tape is not None
    recorded = tape.run(x).copy()          # first run records
    assert np.array_equal(recorded, eager_forward(module, x))
    y = batch(seed=4, m=1)
    replayed = tape.run(y).copy()          # second run replays
    assert tape.replays == 1
    assert np.array_equal(replayed, eager_forward(module, y))


def test_score_tape_cache_is_shape_keyed():
    module, = fitted_models(count=1)
    a, __ = nntape.score_tape(module, (1, 1, 48))
    hit, event = nntape.score_tape(module, (1, 1, 48))
    assert hit is a and event == "hit"
    b, event = nntape.score_tape(module, (1, 1, 32))
    assert event == "miss" and b is not a


def test_score_tape_invalidates_on_weight_rebind():
    module, = fitted_models(count=1)
    x = batch(m=1)
    tape, __ = nntape.score_tape(module, x.shape)
    tape.run(x)
    # In-place updates keep the token (closures read .data live) ...
    np.copyto(module.readout.weight.data, module.readout.weight.data * 1.5)
    same, event = nntape.score_tape(module, x.shape)
    assert same is tape and event == "hit"
    assert np.array_equal(same.run(x), eager_forward(module, x))
    # ... a rebind (atomic hot-swap) re-records.
    module.readout.weight.data = module.readout.weight.data * 2.0
    fresh, event = nntape.score_tape(module, x.shape)
    assert event == "invalidated" and fresh is not tape
    assert np.array_equal(fresh.run(x), eager_forward(module, x))


def test_score_tape_declines_when_disabled_and_releases():
    module, = fitted_models(count=1)
    nntape.score_tape(module, (1, 1, 48))
    assert "_score_tape_cache" in module.__dict__
    nntape.release_score_tapes(module)
    assert "_score_tape_cache" not in module.__dict__
    previous = nntape.set_tape_enabled(False)
    try:
        tape, event = nntape.score_tape(module, (1, 1, 48))
        assert tape is None and event is None
    finally:
        nntape.set_tape_enabled(previous)


# --------------------------------------------------------------------- #
# stacked plans and programs
# --------------------------------------------------------------------- #

def test_stacked_plan_accepts_same_spec_members():
    modules = fitted_models(count=3)
    plan = nnbatched.stacked_score_plan(modules)
    assert plan is not None


def test_stacked_plan_declines_mixed_specs_and_fc():
    wide, = fitted_models(count=1, kernels=8)
    narrow, = fitted_models(count=1, kernels=4)
    assert nnbatched.stacked_score_plan([wide, narrow]) is None
    fc = fitted_models(count=2, arch="fc")
    assert nnbatched.stacked_score_plan(fc) is None


def test_stacked_program_matches_solo_forwards_bit_for_bit():
    modules = fitted_models(count=3)
    x = batch(m=3)
    program = nnbatched.StackedScoreProgram(
        nnbatched.stacked_score_plan(modules), x.shape
    )
    stacked = program.run(x).copy()
    for j, module in enumerate(modules):
        assert np.array_equal(stacked[j], eager_forward(module, x[j:j + 1])[0])
    assert program.replays == 1


def test_stacked_program_refresh_follows_hot_swap():
    modules = fitted_models(count=2)
    x = batch(m=2)
    program = nnbatched.StackedScoreProgram(
        nnbatched.stacked_score_plan(modules), x.shape
    )
    program.run(x)
    before = nnbatched.stacked_member_token(modules)
    modules[0].readout.weight.data = modules[0].readout.weight.data * 3.0
    assert nnbatched.stacked_member_token(modules) != before
    program.refresh(modules)
    stacked = program.run(x).copy()
    for j, module in enumerate(modules):
        assert np.array_equal(stacked[j], eager_forward(module, x[j:j + 1])[0])


def test_stacked_program_rejects_wrong_member_count():
    modules = fitted_models(count=2)
    program = nnbatched.StackedScoreProgram(
        nnbatched.stacked_score_plan(modules), (2, 1, 48)
    )
    with pytest.raises(ValueError):
        program.run(batch(m=3))
    with pytest.raises(ValueError):
        program.refresh(modules[:1])
