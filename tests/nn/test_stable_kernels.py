"""Cross-length bit-equality of the stable conv path.

``stable_kernels()`` promises that every output position of a conv forward
sees the exact same floating-point operation sequence regardless of the
input length — the property that lets a tail-slice forward reproduce the
corresponding tail of a full forward bit for bit (the serving session's
contract, see ``repro.core.scoring``).

This suite guards the promise at the kernel level, after the stable path's
accumulation was streamlined (in-place tap adds, broadcast multiply for
single-channel inputs): the fast form must stay bit-equal across lengths.
The per-tap GEMM kernels that speed up *training* forwards must never be
routed here — BLAS tail-block handling makes ``W @ X[:, :L1]`` differ in
its last columns from ``(W @ X)[:, :L1]`` at these architectures' shapes
(measured), which is exactly the instability this mode exists to exclude.
"""

import numpy as np
import pytest

from repro import nn
from repro.nn import functional as F

# (c_in, c_out, k) spanning both stable branches: the single-channel
# broadcast-multiply path and the multi-channel per-tap einsum path, at
# kernel sizes the paper sweeps.
SHAPES = [(1, 8, 3), (1, 4, 7), (4, 8, 5), (8, 2, 3)]


@pytest.mark.parametrize("c_in,c_out,k", SHAPES)
def test_stable_conv1d_tail_slice_bit_equal_across_lengths(c_in, c_out, k):
    rng = np.random.default_rng(0)
    weight = nn.Parameter(rng.standard_normal((c_out, c_in, k)))
    bias = nn.Parameter(rng.standard_normal(c_out))
    full = rng.standard_normal((1, c_in, 400))
    with nn.no_grad(), F.stable_kernels():
        y_full = F.conv1d(nn.Tensor(full), weight, bias).data
        for length in (k, 57, 100, 399):
            tail = np.ascontiguousarray(full[:, :, -length:])
            y_tail = F.conv1d(nn.Tensor(tail), weight, bias).data
            want = y_full[:, :, y_full.shape[2] - y_tail.shape[2]:]
            assert np.array_equal(y_tail, want), length


@pytest.mark.parametrize("c_in,c_out,k", SHAPES)
def test_stable_conv1d_bit_equal_to_tap_by_tap_reference(c_in, c_out, k):
    """The streamlined accumulation (out=/in-place adds, broadcast multiply
    for c_in == 1) is a pure speedup of the original tap-by-tap sum — the
    values must not move at all."""
    rng = np.random.default_rng(1)
    weight = rng.standard_normal((c_out, c_in, k))
    bias = rng.standard_normal(c_out)
    x = rng.standard_normal((2, c_in, 211))
    l_out = x.shape[2] - k + 1
    reference = np.zeros((2, c_out, l_out))
    for tap in range(k):
        reference += np.einsum("fc,ncl->nfl", weight[:, :, tap],
                               x[:, :, tap:tap + l_out], optimize=False)
    reference += bias[None, :, None]
    with nn.no_grad(), F.stable_kernels():
        got = F.conv1d(nn.Tensor(x), nn.Parameter(weight),
                       nn.Parameter(bias)).data
    assert np.array_equal(got, reference)
