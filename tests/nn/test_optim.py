"""Optimiser behaviour: convergence on quadratics, momentum, clipping."""

import numpy as np
import pytest

from repro import nn
from repro.nn.layers import Parameter


def quadratic_loss(param, target):
    diff = param - nn.Tensor(target)
    return (diff * diff).sum()


@pytest.mark.parametrize("optimizer_cls,kwargs", [
    (nn.SGD, {"lr": 0.1}),
    (nn.SGD, {"lr": 0.05, "momentum": 0.9}),
    (nn.Adam, {"lr": 0.2}),
])
def test_converges_on_quadratic(optimizer_cls, kwargs):
    target = np.array([1.0, -2.0, 3.0])
    param = Parameter(np.zeros(3))
    optimizer = optimizer_cls([param], **kwargs)
    for __ in range(200):
        optimizer.zero_grad()
        loss = quadratic_loss(param, target)
        loss.backward()
        optimizer.step()
    assert np.allclose(param.data, target, atol=1e-2)


def test_sgd_weight_decay_shrinks_weights():
    param = Parameter(np.ones(4) * 10.0)
    optimizer = nn.SGD([param], lr=0.1, weight_decay=1.0)
    for __ in range(50):
        optimizer.zero_grad()
        param.grad = np.zeros(4)
        optimizer.step()
    assert np.all(np.abs(param.data) < 1.0)


def test_adam_skips_missing_grads():
    p1 = Parameter(np.zeros(2))
    p2 = Parameter(np.ones(2))
    optimizer = nn.Adam([p1, p2], lr=0.1)
    p1.grad = np.ones(2)
    optimizer.step()
    assert not np.allclose(p1.data, 0.0)
    assert np.allclose(p2.data, 1.0)


def test_empty_parameter_list_raises():
    with pytest.raises(ValueError):
        nn.Adam([])


def test_clip_grad_norm_scales_down():
    params = [Parameter(np.zeros(3)) for __ in range(2)]
    for p in params:
        p.grad = np.ones(3) * 10.0
    total = nn.clip_grad_norm(params, 1.0)
    assert total > 1.0
    new_norm = np.sqrt(sum(float((p.grad**2).sum()) for p in params))
    assert new_norm <= 1.0 + 1e-9


def test_clip_grad_norm_leaves_small_grads():
    param = Parameter(np.zeros(3))
    param.grad = np.full(3, 1e-3)
    before = param.grad.copy()
    nn.clip_grad_norm([param], 1.0)
    assert np.array_equal(param.grad, before)
