"""Surrogate dataset generators: published statistics and determinism."""

import numpy as np
import pytest

from repro.datasets import available_datasets, load_dataset

# Published statistics from Section V-A: (n_series, dims set, phi).
EXPECTED = {
    "GD": (5, {20, 24}, 0.008),
    "HSS": (4, {20}, 0.167),
    "ECG": (7, {2}, 0.049),
    "NAB": (12, {1}, 0.098),
    "S5": (8, {1}, 0.009),
    "2D": (21, {2}, 0.392),
    "SYN": (10, {1}, 0.05),
}


def test_registry_lists_all_seven():
    assert set(available_datasets()) == set(EXPECTED)


@pytest.mark.parametrize("name", sorted(EXPECTED))
def test_dataset_structure(name):
    n_series, dims, phi = EXPECTED[name]
    ds = load_dataset(name, scale=0.05)
    assert len(ds) == n_series
    assert {ts.dims for ts in ds} == dims
    assert abs(ds.outlier_ratio - phi) < max(0.03, phi * 0.5)


@pytest.mark.parametrize("name", sorted(EXPECTED))
def test_deterministic_given_seed(name):
    a = load_dataset(name, seed=42, scale=0.04)
    b = load_dataset(name, seed=42, scale=0.04)
    assert np.array_equal(a[0].values, b[0].values)
    assert np.array_equal(a[0].labels, b[0].labels)


def test_different_seeds_differ():
    a = load_dataset("S5", seed=1, scale=0.05)
    b = load_dataset("S5", seed=2, scale=0.05)
    assert not np.array_equal(a[0].values, b[0].values)


def test_scale_controls_length():
    small = load_dataset("ECG", scale=0.05)
    large = load_dataset("ECG", scale=0.1)
    assert large[0].length > small[0].length


def test_labels_are_binary_and_finite():
    for name in available_datasets():
        ds = load_dataset(name, scale=0.04)
        for ts in ds:
            assert set(np.unique(ts.labels)) <= {0, 1}
            assert np.isfinite(ts.values).all()


def test_syn_outlier_ratio_configurable():
    low = load_dataset("SYN", scale=0.1, outlier_ratio=0.01)
    high = load_dataset("SYN", scale=0.1, outlier_ratio=0.25)
    assert high.outlier_ratio > low.outlier_ratio * 5


def test_unknown_dataset_raises():
    with pytest.raises(KeyError):
        load_dataset("NOPE")


def test_summary_mentions_key_stats():
    ds = load_dataset("S5", scale=0.05)
    text = ds.summary()
    assert "S5" in text and "series" in text and "%" in text


def test_timeseries_validates_label_length():
    from repro.datasets import TimeSeries

    with pytest.raises(ValueError):
        TimeSeries(np.zeros((10, 1)), np.zeros(5))


def test_outlier_ratio_property():
    from repro.datasets import TimeSeries

    ts = TimeSeries(np.zeros((10, 1)), np.array([1, 1] + [0] * 8))
    assert np.isclose(ts.outlier_ratio, 0.2)
