"""Outlier injection: ratios, labels, archetypes."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets import inject_outliers
from repro.datasets.inject import inject_collective_outliers, inject_point_outliers


def clean(length=400, dims=2, seed=0):
    rng = np.random.default_rng(seed)
    t = np.arange(length)
    base = np.stack([np.sin(2 * np.pi * t / 40)] * dims, axis=1)
    return base + 0.05 * rng.standard_normal((length, dims))


def test_ratio_approximately_met():
    values = clean()
    labels = inject_outliers(values, 0.10, np.random.default_rng(1))
    assert abs(labels.mean() - 0.10) < 0.03


def test_zero_ratio_is_noop():
    values = clean()
    before = values.copy()
    labels = inject_outliers(values, 0.0, np.random.default_rng(2))
    assert labels.sum() == 0
    assert np.array_equal(values, before)


def test_labelled_points_actually_modified():
    values = clean()
    before = values.copy()
    labels = inject_outliers(values, 0.05, np.random.default_rng(3))
    changed = np.any(values != before, axis=1)
    # All changes happen at labelled positions (flatline segments may leave
    # the anchor observation numerically equal, so test the inclusion).
    assert np.all(labels[changed] == 1)
    assert changed.sum() > 0


def test_point_outliers_are_large_deviations():
    values = clean()
    before = values.copy()
    labels = np.zeros(len(values), dtype=np.int64)
    inject_point_outliers(values, labels, 10, np.random.default_rng(4))
    deltas = np.abs(values - before).max(axis=1)
    scale = before.std(axis=0).max()
    assert np.all(deltas[labels == 1] > 2.0 * scale)


def test_collective_outliers_are_contiguous():
    values = clean()
    labels = np.zeros(len(values), dtype=np.int64)
    inject_collective_outliers(
        values, labels, 30, np.random.default_rng(5), segment_length=(10, 15)
    )
    # Segments of >= 2 consecutive labels must exist.
    runs = np.diff(np.flatnonzero(labels))
    assert (runs == 1).any()


def test_collective_share_controls_mix():
    values_a = clean(seed=10)
    labels_a = inject_outliers(
        values_a, 0.1, np.random.default_rng(6), collective_share=0.0
    )
    values_b = clean(seed=10)
    labels_b = inject_outliers(
        values_b, 0.1, np.random.default_rng(6), collective_share=1.0
    )
    runs_a = (np.diff(np.flatnonzero(labels_a)) == 1).sum()
    runs_b = (np.diff(np.flatnonzero(labels_b)) == 1).sum()
    assert runs_b > runs_a


@given(st.floats(0.01, 0.3), st.integers(0, 1000))
@settings(max_examples=25, deadline=None)
def test_ratio_property(ratio, seed):
    values = clean(seed=seed)
    labels = inject_outliers(values, ratio, np.random.default_rng(seed))
    assert 0 < labels.mean() <= ratio + 0.05
    assert set(np.unique(labels)) <= {0, 1}
