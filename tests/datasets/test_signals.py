"""Clean-signal building blocks of the surrogate generators."""

import numpy as np

from repro.datasets import signals


def test_sinusoid_mix_single_period():
    out = signals.sinusoid_mix(100, [25], [2.0], phases=[0.0])
    assert out.shape == (100,)
    assert np.isclose(out[0], 0.0)
    assert np.abs(out).max() <= 2.0 + 1e-9


def test_sinusoid_mix_superposition():
    a = signals.sinusoid_mix(200, [20], [1.0], phases=[0.0])
    b = signals.sinusoid_mix(200, [50], [0.5], phases=[0.0])
    both = signals.sinusoid_mix(200, [20, 50], [1.0, 0.5], phases=[0.0, 0.0])
    assert np.allclose(both, a + b)


def test_square_cycle_levels():
    out = signals.square_cycle(200, 40, duty=0.5, smooth=1)
    assert set(np.round(np.unique(out), 6)) <= {-1.0, 1.0}


def test_square_cycle_duty_controls_high_fraction():
    high_frac = (signals.square_cycle(1000, 50, duty=0.8, smooth=1) > 0).mean()
    assert 0.7 < high_frac < 0.9


def test_sawtooth_range_and_period():
    out = signals.sawtooth(100, 20)
    assert out.min() >= -1.0 and out.max() <= 1.0
    assert np.allclose(out[:20], out[20:40])


def test_ar_process_stationary_coeffs_bounded():
    out = signals.ar_process(2000, [0.7], 1.0, np.random.default_rng(0))
    # Stationary AR(1) variance = 1 / (1 - phi^2) ~ 1.96.
    assert 0.5 < out.var() < 6.0


def test_ar_process_reproducible():
    a = signals.ar_process(100, [0.5], 1.0, np.random.default_rng(1))
    b = signals.ar_process(100, [0.5], 1.0, np.random.default_rng(1))
    assert np.array_equal(a, b)


def test_random_walk_grows():
    out = signals.random_walk(5000, 1.0, np.random.default_rng(2))
    assert np.abs(out[-500:]).mean() > np.abs(out[:500]).mean() * 0.1
    assert out.shape == (5000,)


def test_ecg_beat_train_periodicity():
    out = signals.ecg_beat_train(600, beat_period=60,
                                 rng=np.random.default_rng(3), jitter=0.0)
    # R peaks ~1.0 roughly every beat_period samples.
    peaks = np.flatnonzero(out > 0.8)
    assert peaks.size >= 8
    gaps = np.diff([p for p in peaks if True])
    # Consecutive samples within one R wave cluster; gaps between clusters
    # should be near the beat period.
    big_gaps = gaps[gaps > 10]
    assert np.abs(np.median(big_gaps) - 60) < 10


def test_trajectory_2d_smooth():
    xy = signals.trajectory_2d(500, rng=np.random.default_rng(4))
    assert xy.shape == (500, 2)
    steps = np.linalg.norm(np.diff(xy, axis=0), axis=1)
    assert steps.max() < 0.5  # band-limited: no jumps
