"""The unsupervised median-of-random-search protocol."""

import numpy as np
import pytest

from repro.datasets import load_dataset
from repro.eval import (
    SEARCH_SPACES,
    evaluate_on_dataset,
    make_detector,
    random_search_median,
    sample_configurations,
)


def test_sample_configurations_shapes():
    rng = np.random.default_rng(0)
    space = {"a": [1, 2, 3], "b": [10, 20]}
    configs = sample_configurations(space, 5, rng)
    assert len(configs) == 5
    for config in configs:
        assert config["a"] in space["a"] and config["b"] in space["b"]


def test_sample_empty_space():
    configs = sample_configurations({}, 7, np.random.default_rng(0))
    assert configs == [{}]


def test_evaluate_on_dataset_returns_means():
    ds = load_dataset("SYN", scale=0.08, num_series=3)
    pr, roc = evaluate_on_dataset(lambda: make_detector("EMA"), ds)
    assert 0 <= pr <= 1 and 0 <= roc <= 1


def test_evaluate_skips_single_class_series():
    ds = load_dataset("SYN", scale=0.08, num_series=2)
    ds[0].labels[:] = 0  # make one series unevaluable
    pr, roc = evaluate_on_dataset(lambda: make_detector("EMA"), ds)
    assert 0 <= pr <= 1


def test_evaluate_raises_when_nothing_evaluable():
    ds = load_dataset("SYN", scale=0.08, num_series=1)
    ds[0].labels[:] = 0
    with pytest.raises(ValueError):
        evaluate_on_dataset(lambda: make_detector("EMA"), ds)


def test_median_protocol_returns_middle_trial():
    ds = load_dataset("SYN", scale=0.08, num_series=2)
    median, trials = random_search_median("EMA", ds, n_draws=5, seed=0)
    assert len(trials) == 5
    prs = sorted(t.pr for t in trials)
    assert median.pr == prs[2]


def test_median_protocol_deterministic():
    ds = load_dataset("SYN", scale=0.08, num_series=2)
    a, __ = random_search_median("SSA", ds, n_draws=3, seed=1)
    b, __ = random_search_median("SSA", ds, n_draws=3, seed=1)
    assert a.pr == b.pr and a.config == b.config


def test_fixed_overrides_applied():
    ds = load_dataset("SYN", scale=0.08, num_series=1)
    median, trials = random_search_median(
        "RAE", ds, n_draws=2, seed=0, max_iterations=3
    )
    for trial in trials:
        assert trial.config["max_iterations"] == 3


def test_search_spaces_match_methods():
    from repro.eval import METHODS

    for name in SEARCH_SPACES:
        assert name in METHODS


def test_make_detector_unknown():
    with pytest.raises(KeyError):
        make_detector("SVM2000")
