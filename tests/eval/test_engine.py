"""BatchScoringEngine: warm starts, micro-batching, and protocol parity."""

import numpy as np
import pytest

from repro.core import RAE
from repro.datasets import load_dataset
from repro.eval import BatchScoringEngine, evaluate_on_dataset, make_detector


def make_fleet(num=5, length=160, seed=0):
    rng = np.random.default_rng(seed)
    t = np.arange(length)
    fleet = []
    for i in range(num):
        values = np.sin(2 * np.pi * t / 20) + 0.05 * rng.standard_normal(length)
        values[20 + 13 * i] += 5.0
        fleet.append(values[:, None])
    return fleet


@pytest.fixture(scope="module")
def dataset():
    return load_dataset("SYN", seed=0, scale=0.06, num_series=2)


def test_requires_exactly_one_source():
    with pytest.raises(ValueError):
        BatchScoringEngine()
    with pytest.raises(ValueError):
        BatchScoringEngine(method="RAE", detector=RAE())
    with pytest.raises(ValueError):
        BatchScoringEngine(method="RAE", mode="bogus")


def test_engine_accepts_detector_spec():
    from repro.api import DetectorSpec, PipelineSpec

    spec = DetectorSpec("RAE", {"max_iterations": 5, "lam": 0.2})
    engine = BatchScoringEngine(method=spec)
    assert engine.method == "RAE"
    assert engine.detector.max_iterations == 5
    assert engine.detector.lam == 0.2
    # Explicit overrides beat spec params; PipelineSpec contributes its
    # detector stage; from_spec is the classmethod spelling.
    assert BatchScoringEngine(method=spec,
                              overrides={"lam": 0.7}).detector.lam == 0.7
    pipe_spec = PipelineSpec(spec)
    assert BatchScoringEngine.from_spec(pipe_spec).detector.max_iterations == 5
    with pytest.raises(TypeError, match="registry name or a spec"):
        BatchScoringEngine(method=RAE())


def test_warm_batched_matches_per_series_score_new():
    fleet = make_fleet()
    engine = BatchScoringEngine(
        method="RAE", overrides={"max_iterations": 5}, mode="warm", batch_size=2
    )
    engine.fit(fleet[0])
    batched = engine.score_many(fleet)
    assert len(batched) == len(fleet)
    for series, scores in zip(fleet, batched):
        assert scores.shape == (len(series),)
        assert np.allclose(scores, engine.detector.score_new(series))


def test_warm_mode_autofits_on_first_series():
    fleet = make_fleet(num=3)
    engine = BatchScoringEngine(
        method="RAE", overrides={"max_iterations": 4}, mode="warm"
    )
    scores = engine.score_many(fleet)
    assert engine._fitted
    assert all(np.isfinite(s).all() for s in scores)


def test_warm_mode_groups_mixed_lengths():
    fleet = make_fleet(num=2, length=120) + make_fleet(num=2, length=90, seed=5)
    engine = BatchScoringEngine(
        method="RAE", overrides={"max_iterations": 4}, mode="warm"
    )
    engine.fit(fleet[0])
    scores = engine.score_many(fleet)
    assert [len(s) for s in scores] == [120, 120, 90, 90]


def test_warm_mode_with_classical_detector():
    fleet = make_fleet(num=3)
    engine = BatchScoringEngine(method="EMA", mode="warm")
    scores = engine.score_many(fleet)
    assert all(s.shape == (len(f),) for s, f in zip(scores, fleet))


def test_transductive_matches_evaluate_on_dataset(dataset):
    engine = BatchScoringEngine(method="EMA", mode="transductive")
    pr_engine, roc_engine = engine.evaluate(dataset)
    pr_ref, roc_ref = evaluate_on_dataset(lambda: make_detector("EMA"), dataset)
    assert np.isclose(pr_engine, pr_ref)
    assert np.isclose(roc_engine, roc_ref)


def test_evaluate_rejects_unfitted_warm_engine(dataset):
    """Regression: evaluate() on an unfitted warm engine used to silently
    train on the first evaluated series and then score it — evaluation
    leakage.  It must fail loudly instead."""
    engine = BatchScoringEngine(
        method="RAE", overrides={"max_iterations": 3}, mode="warm"
    )
    with pytest.raises(RuntimeError, match="leakage"):
        engine.evaluate(dataset)
    assert not engine._fitted  # nothing was trained behind the caller's back


def test_evaluate_accepts_explicit_reference(dataset):
    reference = make_fleet(num=1, seed=7)[0]
    engine = BatchScoringEngine(method="EMA", mode="warm")
    pr, roc = engine.evaluate(dataset, reference=reference)
    assert np.isfinite(pr) and np.isfinite(roc)
    assert engine._fitted
    # A fitted warm engine evaluates without needing a reference.
    pr_again, __ = engine.evaluate(dataset)
    assert np.isclose(pr_again, pr)


def test_evaluate_rejects_unevaluable_dataset(dataset):
    class AllClean:
        name = "clean"

        def __iter__(self):
            ts = dataset[0]
            ts = type(ts)(name=ts.name, values=ts.values,
                          labels=np.zeros_like(ts.labels))
            return iter([ts])

    with pytest.raises(ValueError):
        BatchScoringEngine(method="EMA").evaluate(AllClean())


def test_persistence_roundtrip(tmp_path):
    fleet = make_fleet(num=2)
    engine = BatchScoringEngine(
        method="RAE", overrides={"max_iterations": 5}, mode="warm"
    )
    engine.fit(fleet[0])
    path = engine.save(tmp_path / "proto.npz")
    revived = BatchScoringEngine.from_saved(path)
    original = engine.score_many(fleet)
    reloaded = revived.score_many(fleet)
    for a, b in zip(original, reloaded):
        assert np.allclose(a, b)


def test_warm_mode_rejects_transductive_only_methods():
    """Regression: RSSA/N-RAE score() ignores its argument — warm serving
    would hand every series the reference's frozen scores."""
    fleet = make_fleet(num=2)
    for method in ("RSSA", "N-RAE"):
        engine = BatchScoringEngine(method=method, mode="warm")
        with pytest.raises(ValueError, match="transductive-only"):
            engine.score_many(fleet)
    # The transductive protocol remains the supported route.
    engine = BatchScoringEngine(method="RSSA", mode="transductive")
    scores = engine.score_many(fleet[:1])
    assert scores[0].shape == (len(fleet[0]),)


def test_transductive_mode_never_builds_a_prototype():
    engine = BatchScoringEngine(method="RAE", mode="transductive")
    engine.score_many(make_fleet(num=1))
    assert engine._detector is None  # lazily skipped entirely


def test_warm_mode_honours_user_fitted_detector():
    """Regression: a caller-fitted non-AE detector must be used as-is —
    never silently refitted on the first scored series."""
    from repro.baselines import LOF

    reference = make_fleet(num=1, seed=3)[0]
    fleet = make_fleet(num=2, seed=4)
    det = LOF(n_neighbors=10).fit(reference)
    engine = BatchScoringEngine(detector=det, mode="warm")
    scores = engine.score_many(fleet)
    assert np.allclose(scores[0], det.score(fleet[0]))
    assert np.allclose(scores[1], det.score(fleet[1]))


def test_detector_instance_transductive_deepcopies():
    fleet = make_fleet(num=2)
    prototype = RAE(max_iterations=4)
    engine = BatchScoringEngine(detector=prototype, mode="transductive")
    engine.score_many(fleet)
    # The prototype itself must never be fitted by the transductive path.
    assert prototype.clean_ is None
