"""Suite runner and table rendering."""

import numpy as np
import pytest

from repro.eval import (
    UnknownMethodError,
    render_sweep,
    render_table,
    run_suite,
    significance_against_best_baseline,
)


@pytest.fixture(scope="module")
def small_suite():
    return run_suite(
        ["EMA", "SSA", "RAE"],
        ["S5", "SYN"],
        scale=0.08,
        max_series=1,
        overrides={"RAE": {"max_iterations": 8}},
        dataset_kwargs={"S5": {"num_series": 1}, "SYN": {"num_series": 1}},
    )


def test_unknown_method_fails_loudly_before_any_work():
    """A typo must raise immediately with a self-explanatory message, not
    surface as a bare KeyError mid-sweep."""
    with pytest.raises(UnknownMethodError, match="unknown method 'EMA2'"):
        run_suite(["EMA", "EMA2"], ["S5"])
    with pytest.raises(ValueError, match="known methods: .*RDAE"):
        run_suite(["nope"], ["S5"])
    # Several typos are all reported at once.
    with pytest.raises(UnknownMethodError, match="'foo', 'bar'"):
        run_suite(["foo", "bar"], ["S5"])


def test_suite_grid_complete(small_suite):
    assert set(small_suite.pr) == {"S5", "SYN"}
    for dataset in small_suite.datasets:
        assert set(small_suite.pr[dataset]) == {"EMA", "SSA", "RAE"}
        for value in small_suite.pr[dataset].values():
            assert 0.0 <= value <= 1.0


def test_averages_row(small_suite):
    avg = small_suite.averages("pr")
    for method in small_suite.methods:
        manual = np.mean([small_suite.pr[d][method] for d in small_suite.datasets])
        assert np.isclose(avg[method], manual)


def test_column_accessor(small_suite):
    column = small_suite.column("EMA", "roc")
    assert len(column) == 2


def test_render_table_contains_all_cells(small_suite):
    text = render_table(small_suite, "pr", title="Table II (PR)")
    assert "Table II" in text
    for method in small_suite.methods:
        assert method in text
    assert "Avg." in text
    assert "*" in text  # best-in-row marker


def test_render_sweep_format():
    sweep = {"RAE": {0.01: 0.5, 0.1: 0.6}, "RDAE": {0.01: 0.55, 0.1: 0.65}}
    text = render_sweep(sweep, value_label="lambda", title="Fig 6")
    assert "lambda" in text and "RAE" in text and "0.65" in text


def test_render_sweep_missing_cells():
    sweep = {"A": {1: 0.5}, "B": {2: 0.7}}
    text = render_sweep(sweep)
    assert "-" in text


def test_significance_structure(small_suite):
    out = significance_against_best_baseline(small_suite, proposed=("RAE",))
    assert set(out) == {"RAE"}
    assert set(out["RAE"]) == {"EMA", "SSA"}
    for p in out["RAE"].values():
        assert 0.0 <= p <= 1.0 or np.isnan(p)
