"""End-to-end integration: data -> detectors -> metrics -> explainability."""

import numpy as np

from repro import RAE, RDAE, baselines, datasets, explain, metrics
from repro.eval import make_detector, render_table, run_suite


def test_full_pipeline_on_s5_surrogate():
    ds = datasets.load_dataset("S5", scale=0.15, num_series=2, seed=5)
    for ts in ds:
        det = RAE(max_iterations=12)
        scores = det.fit_score(ts)
        assert metrics.roc_auc(ts.labels, scores) > 0.7


def test_proposed_vs_nonrobust_on_contaminated_syn():
    """Fig. 12 shape at small scale: robust methods keep accuracy under
    heavier contamination better than a plain AE."""
    ds = datasets.load_dataset("SYN", scale=0.15, outlier_ratio=0.15, seed=2,
                               num_series=3)
    rae_aucs, plain_aucs = [], []
    for ts in ds:
        rae_aucs.append(
            metrics.roc_auc(ts.labels, RAE(max_iterations=15).fit_score(ts))
        )
        plain_aucs.append(
            metrics.roc_auc(
                ts.labels, baselines.CNNAE(epochs=10).fit_score(ts)
            )
        )
    assert np.mean(rae_aucs) > 0.55
    assert np.mean(rae_aucs) >= np.mean(plain_aucs) - 0.1


def test_rdae_pipeline_with_explainability():
    ds = datasets.load_dataset("S5", scale=0.15, num_series=1, seed=7)
    ts = ds[0]
    rdae = RDAE(window=30, max_outer=2, inner_iterations=4,
                series_iterations=4).fit(ts)
    cnnae = baselines.CNNAE(epochs=8).fit(ts)
    report = explain.analyze_methods(
        {"RDAE": rdae, "CNNAE": cnnae}, ts, gamma_prm=0.5, gamma_ssa=0.2
    )
    assert "RDAE" in report.ranking("ES_PRM")


def test_suite_runner_table_round_trip():
    result = run_suite(
        ["EMA", "RAE"],
        ["SYN"],
        scale=0.08,
        max_series=1,
        overrides={"RAE": {"max_iterations": 6}},
        dataset_kwargs={"SYN": {"num_series": 1}},
    )
    text = render_table(result, "roc")
    assert "RAE" in text and "SYN" in text


def test_every_registered_method_instantiates():
    from repro.eval import available_methods

    for name in available_methods():
        det = make_detector(name)
        assert hasattr(det, "fit") and hasattr(det, "score")


def test_detector_api_consistency():
    """All methods accept TimeSeries, 1D and 2D arrays interchangeably."""
    ds = datasets.load_dataset("SYN", scale=0.06, num_series=1, seed=0)
    ts = ds[0]
    det = make_detector("EMA")
    from_ts = det.fit_score(ts)
    from_2d = det.fit_score(ts.values)
    from_1d = det.fit_score(ts.values[:, 0])
    assert np.allclose(from_ts, from_2d)
    assert np.allclose(from_ts, from_1d)
