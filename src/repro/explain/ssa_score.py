"""SSA-based post-hoc explainability score (Section IV-C, Eq. 19).

The clean series is decomposed with Singular Spectrum Analysis; ``T^(N)_SSA``
combines the top-``N`` most important components (trend first, then
periodicities, then noise).  ``ES_SSA`` is the smallest ``N`` with
``RMSE(T_L, T^(N)_SSA) < gamma``.
"""

from __future__ import annotations

import numpy as np

from ..metrics import rmse
from ..tsops import ssa_decompose

__all__ = ["ssa_rmse_curve", "es_ssa"]


def ssa_rmse_curve(clean_series, components=(1, 3, 5, 7, 9), window=None):
    """RMSE of the top-``N`` SSA reconstruction for each ``N`` (Fig. 16b)."""
    arr = np.asarray(clean_series, dtype=np.float64)
    if arr.ndim == 1:
        arr = arr[:, None]
    decomposition = ssa_decompose(arr, window=window, max_components=max(components))
    curve = {}
    for n in components:
        curve[int(n)] = rmse(decomposition.reconstruct(n), arr)
    return curve


def es_ssa(clean_series, gamma, components=(1, 3, 5, 7, 9), window=None):
    """The explainability score of Eq. 19.

    Returns the smallest ``N`` in ``components`` with ``RMSE < gamma``, or
    ``None`` if even the largest tested ``N`` misses the threshold.
    """
    curve = ssa_rmse_curve(clean_series, components, window=window)
    for n in sorted(curve):
        if curve[n] < gamma:
            return n
    return None
