"""Per-channel attribution of multivariate outlier scores.

Section VI discusses unsupervised root-cause methods that "identify the most
anomalous channel for each detected outlier observation" (Rad et al., DEBS
2021).  The paper's own scoring (Eq. 13) makes this attribution free: the
outlier series ``T_S`` is per-channel, so the squared entries decompose the
score ``||s_S_i||^2`` exactly into channel contributions.
"""

from __future__ import annotations

import numpy as np

__all__ = ["channel_contributions", "dominant_channels"]


def channel_contributions(outlier_series, normalize=True):
    """Per-observation, per-channel score contributions ``(C, D)``.

    Parameters
    ----------
    outlier_series: the decomposed ``T_S`` of a fitted RAE/RDAE/RSSA
        (``detector.outlier_series``).
    normalize: when True each row sums to 1 (rows that are all zero stay
        zero), giving a share-of-blame view; when False raw squared values
        are returned and rows sum to the observation's outlier score.
    """
    arr = np.asarray(outlier_series, dtype=np.float64)
    if arr.ndim != 2:
        raise ValueError("outlier series must be 2D (C, D), got %dD" % arr.ndim)
    squared = arr**2
    if not normalize:
        return squared
    totals = squared.sum(axis=1, keepdims=True)
    safe = np.where(totals > 0, totals, 1.0)
    return squared / safe


def dominant_channels(outlier_series, labels_or_indices=None):
    """Most anomalous channel per observation (the Rad et al. output).

    Parameters
    ----------
    outlier_series: the decomposed ``T_S`` ``(C, D)``.
    labels_or_indices: optional — restrict the report to these observation
        indices (e.g. detected outliers); a boolean mask is also accepted.

    Returns an array of channel indices, one per (selected) observation;
    observations with an all-zero ``T_S`` row get channel ``-1``.
    """
    arr = np.asarray(outlier_series, dtype=np.float64)
    if arr.ndim != 2:
        raise ValueError("outlier series must be 2D (C, D), got %dD" % arr.ndim)
    squared = arr**2
    winners = squared.argmax(axis=1)
    winners[squared.sum(axis=1) == 0] = -1
    if labels_or_indices is None:
        return winners
    selector = np.asarray(labels_or_indices)
    if selector.dtype == bool:
        return winners[selector]
    return winners[selector.astype(int)]
