"""PRM-based post-hoc explainability score (Section IV-B, Eq. 18).

The clean series ``T_L`` returned by an AE method is fitted with polynomial
regression models of increasing degree ``N``; the explainability score
``ES_PRM`` is the smallest ``N`` whose fit achieves ``RMSE < gamma``.  A
smaller score means a simpler function explains the clean series, i.e. the
method is more explainable.
"""

from __future__ import annotations

import numpy as np

from ..metrics import rmse

__all__ = ["polynomial_fit", "prm_rmse_curve", "es_prm"]


def polynomial_fit(series, degree):
    """Least-squares polynomial fit ``T^(N)_PRM`` of each dimension.

    Time is rescaled to [0, 1] before building the Vandermonde design so
    high degrees stay numerically stable.
    """
    arr = np.asarray(series, dtype=np.float64)
    squeeze = arr.ndim == 1
    if squeeze:
        arr = arr[:, None]
    length = arr.shape[0]
    t = np.linspace(0.0, 1.0, length)
    design = np.vander(t, int(degree) + 1, increasing=True)
    coeffs, *_ = np.linalg.lstsq(design, arr, rcond=None)
    fitted = design @ coeffs
    return fitted[:, 0] if squeeze else fitted


def prm_rmse_curve(clean_series, degrees=(1, 3, 5, 7, 9)):
    """RMSE of the best degree-``N`` polynomial fit for each ``N``.

    This is the quantity plotted in Fig. 16a (RMSE vs ``N`` per method).
    """
    arr = np.asarray(clean_series, dtype=np.float64)
    return {int(n): rmse(polynomial_fit(arr, n), arr) for n in degrees}


def es_prm(clean_series, gamma, degrees=(1, 3, 5, 7, 9)):
    """The explainability score of Eq. 18.

    Returns the smallest ``N`` in ``degrees`` with ``RMSE < gamma``, or
    ``None`` when no tested degree achieves the threshold (the paper reports
    such methods as "not explainable by up to degree 9").
    """
    curve = prm_rmse_curve(clean_series, degrees)
    for n in sorted(curve):
        if curve[n] < gamma:
            return n
    return None
