"""Post-hoc explainability analysis (Section IV)."""

from .channels import channel_contributions, dominant_channels
from .prm import es_prm, polynomial_fit, prm_rmse_curve
from .report import ExplainabilityReport, analyze_methods, extract_clean_series
from .ssa_score import es_ssa, ssa_rmse_curve

__all__ = [
    "polynomial_fit",
    "prm_rmse_curve",
    "es_prm",
    "ssa_rmse_curve",
    "es_ssa",
    "extract_clean_series",
    "ExplainabilityReport",
    "analyze_methods",
    "channel_contributions",
    "dominant_channels",
]
