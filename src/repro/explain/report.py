"""Post-hoc explainability comparison across AE-based methods (Fig. 16).

The analysis needs each method's *clean series*: for RAE/RDAE/RSSA that is
the decomposed ``T_L``; for plain autoencoders it is the reconstructed
series; for RandNet the ensemble-average reconstruction (Section V-B,
"Explainability").  :func:`extract_clean_series` hides those differences.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from .. import nn
from ..baselines.base import as_series
from ..baselines.neural import NeuralWindowDetector
from ..baselines.randnet import RandNet
from ..baselines.rda import RDA
from ..tsops import overlap_average, standardize
from .prm import es_prm, prm_rmse_curve
from .ssa_score import es_ssa, ssa_rmse_curve

__all__ = ["extract_clean_series", "ExplainabilityReport", "analyze_methods"]


def extract_clean_series(detector, series):
    """Return the clean series a fitted detector implies for ``series``.

    Preference order: an explicit ``clean_series`` attribute (RAE, RDAE,
    N-RAE, N-RDAE, RSSA), a RandNet ensemble-average reconstruction, or the
    overlap-averaged window reconstructions of any neural window detector.
    """
    clean = getattr(detector, "clean_series", None)
    if clean is not None:
        return np.asarray(clean)
    if isinstance(detector, RandNet):
        recons, starts, width, length = detector.reconstructions(series)
        mean_recon = recons.mean(axis=0)  # (num_windows, width, D)
        dims = mean_recon.shape[2]
        out = np.stack(
            [
                overlap_average(mean_recon[:, :, d], starts, width, length)
                for d in range(dims)
            ],
            axis=1,
        )
        return out
    if isinstance(detector, NeuralWindowDetector):
        arr, windows, starts, width = detector._prepare(series)
        with nn.no_grad():
            recon = detector._reconstruct(detector.model_, nn.Tensor(windows)).data
        dims = recon.shape[2]
        return np.stack(
            [
                overlap_average(recon[:, :, d], starts, width, arr.shape[0])
                for d in range(dims)
            ],
            axis=1,
        )
    if isinstance(detector, RDA):
        arr, windows, starts, width = detector._prepare(series)
        flat = windows.reshape(windows.shape[0], -1)
        with nn.no_grad():
            recon = detector.model_(nn.Tensor(flat)).data.reshape(windows.shape)
        dims = recon.shape[2]
        return np.stack(
            [
                overlap_average(recon[:, :, d], starts, width, arr.shape[0])
                for d in range(dims)
            ],
            axis=1,
        )
    raise TypeError(
        "cannot extract a clean series from %s" % type(detector).__name__
    )


@dataclasses.dataclass
class ExplainabilityReport:
    """PRM and SSA explainability results for a set of methods.

    ``prm_curves`` / ``ssa_curves`` map method name -> {N: RMSE};
    ``scores`` maps method name -> {"ES_PRM": n, "ES_SSA": n} for the given
    ``gamma`` thresholds (``None`` = not explainable within tested N).
    """

    prm_curves: dict
    ssa_curves: dict
    scores: dict
    gamma_prm: float
    gamma_ssa: float

    def ranking(self, metric="ES_PRM"):
        """Method names sorted most-explainable first (None ranks last)."""
        def key(name):
            value = self.scores[name][metric]
            return (value is None, value if value is not None else np.inf)

        return sorted(self.scores, key=key)


def analyze_methods(fitted_detectors, series, gamma_prm=0.5, gamma_ssa=0.15,
                    degrees=(1, 3, 5, 7, 9)):
    """Run the full Fig. 16 analysis.

    Parameters
    ----------
    fitted_detectors: mapping name -> fitted detector.
    series: the series the detectors were fitted on.
    gamma_prm / gamma_ssa: RMSE thresholds of Eqs. 18 / 19.
    """
    arr = standardize(as_series(series))
    prm_curves, ssa_curves, scores = {}, {}, {}
    for name, detector in fitted_detectors.items():
        clean = extract_clean_series(detector, series)
        if clean.shape != arr.shape:
            raise ValueError("clean series shape mismatch for %s" % name)
        prm_curves[name] = prm_rmse_curve(clean, degrees)
        ssa_curves[name] = ssa_rmse_curve(clean, degrees)
        scores[name] = {
            "ES_PRM": es_prm(clean, gamma_prm, degrees),
            "ES_SSA": es_ssa(clean, gamma_ssa, degrees),
        }
    return ExplainabilityReport(
        prm_curves=prm_curves,
        ssa_curves=ssa_curves,
        scores=scores,
        gamma_prm=gamma_prm,
        gamma_ssa=gamma_ssa,
    )
