"""The Pipeline facade: one runnable object for the whole protocol.

``Pipeline`` executes a :class:`repro.api.PipelineSpec` — preprocess ->
detector -> threshold -> explain — behind the estimator verbs ``fit`` /
``score`` / ``fit_score`` / ``detect`` / ``explain``, and exposes the
declared capability surface (:func:`capabilities`) that replaces the
scattered ``transductive_only`` / ``is_fitted`` probing the consumers used
to do.  ``to_spec()`` projects the live (possibly reconfigured) pipeline
back to data, and ``save``/``load`` round-trip it through
:mod:`repro.core.persistence` — spec sidecar plus weights.
"""

from __future__ import annotations

import numpy as np

from ..baselines.base import CAPABILITIES, as_series, detector_capabilities
from ..metrics.thresholds import (
    apply_threshold,
    mad_threshold,
    pot_threshold,
    quantile_threshold,
)
from ..tsops import standardize
from .spec import DetectorSpec, PipelineSpec, SpecError

__all__ = ["Pipeline", "CapabilityError", "capabilities", "CAPABILITIES"]

_THRESHOLD_FNS = {
    "quantile": quantile_threshold,
    "mad": mad_threshold,
    "pot": pot_threshold,
}

#: Threshold stage used when a spec declares none.
_DEFAULT_THRESHOLD = {"kind": "quantile", "q": 0.99}


class CapabilityError(RuntimeError):
    """An operation was requested that the detector does not declare."""


def capabilities(obj):
    """Declared capability set of a detector, spec, or pipeline.

    Returns a frozenset drawn from :data:`repro.baselines.CAPABILITIES`
    (``streamable``, ``warm_startable``, ``transductive``, ``explainable``).
    Specs are resolved through a throwaway default build; pipelines and
    detectors answer for themselves.
    """
    own = getattr(obj, "capabilities", None)
    if callable(own):
        return own()
    if isinstance(obj, PipelineSpec):
        obj = obj.detector
    if isinstance(obj, DetectorSpec):
        return detector_capabilities(obj.build())
    return detector_capabilities(obj)


def _apply_preprocess(stages, series):
    arr = as_series(series)
    for stage in stages:
        kind = stage["kind"]
        if kind == "standardize":
            arr = standardize(arr)
        elif kind == "clip":
            arr = np.clip(arr, stage.get("lo"), stage.get("hi"))
        else:  # pragma: no cover - validate() rejects unknown kinds
            raise SpecError("unknown preprocess kind %r" % kind)
    return arr


class Pipeline:
    """Runnable preprocess -> detector -> threshold -> explain pipeline.

    Parameters
    ----------
    spec: a :class:`PipelineSpec`, :class:`DetectorSpec`, spec-shaped dict,
        or registry method name describing how to build the pipeline.
    detector: optionally, an already-constructed (possibly fitted) detector
        instance to run instead of building one from ``spec``'s detector
        stage — the persistence loader uses this to attach restored
        weights.  When only ``detector`` is given, the spec is projected
        from it.
    """

    def __init__(self, spec=None, *, detector=None):
        if spec is None and detector is None:
            raise SpecError("pass a spec, a detector, or both")
        if spec is None:
            spec = PipelineSpec(DetectorSpec.from_detector(detector))
        elif isinstance(spec, dict):
            spec = PipelineSpec.from_dict(spec)
        elif isinstance(spec, (str, DetectorSpec)):
            spec = PipelineSpec(spec)
        elif not isinstance(spec, PipelineSpec):
            raise SpecError("spec must be a PipelineSpec/DetectorSpec/dict/"
                            "method name, got %r" % (spec,))
        spec.validate()
        self.spec = spec
        self.detector = detector if detector is not None else spec.detector.build()
        # A supplied instance is trusted as-is (its fitted state — or lack
        # of it — is the caller's); silently refitting it in detect()
        # would discard whatever the caller trained into it.  Detectors
        # with their own is_fitted() stay authoritative either way.
        self._fitted = detector is not None

    # ------------------------------------------------------------------ #
    # construction round-trip
    @classmethod
    def from_spec(cls, spec):
        """Build from any spec shape (the inverse of :meth:`to_spec`)."""
        return cls(spec)

    def to_spec(self):
        """Project the live pipeline back to a :class:`PipelineSpec`.

        The detector stage is re-derived from the *live* detector instance,
        so parameters changed after construction are captured.
        """
        return PipelineSpec(
            DetectorSpec.from_detector(self.detector),
            preprocess=self.spec.preprocess,
            threshold=self.spec.threshold,
            explain=self.spec.explain,
        )

    def capabilities(self):
        """Declared capability set of the underlying detector."""
        return detector_capabilities(self.detector)

    def is_fitted(self):
        """Whether :meth:`fit` (or a persistence load) has completed."""
        fitted = getattr(self.detector, "is_fitted", None)
        if callable(fitted):
            return bool(fitted())
        return self._fitted

    def _require(self, capability, what):
        if capability not in self.capabilities():
            raise CapabilityError(
                "%s needs the %r capability, but %s declares only {%s}"
                % (what, capability, type(self.detector).__name__,
                   ", ".join(sorted(self.capabilities())))
            )

    # ------------------------------------------------------------------ #
    # estimator verbs
    def preprocess(self, series):
        """The preprocess stages applied to ``series`` (a ``(C, D)`` array)."""
        return _apply_preprocess(self.spec.preprocess, series)

    def fit(self, series):
        """Fit the detector on the preprocessed series; returns ``self``."""
        self.detector.fit(self.preprocess(series))
        self._fitted = True
        return self

    def score(self, series):
        """Per-observation outlier scores from the fitted detector.

        ``warm_startable`` detectors score the passed series through their
        trained state (``score_new`` — the serving path); ``transductive``
        detectors return the fit-time scores (their ``score`` ignores the
        argument by contract); everything else scores the passed series
        with plain ``score``.
        """
        if not self.is_fitted():
            raise RuntimeError("fit the pipeline before scoring")
        arr = self.preprocess(series)
        if "warm_startable" in self.capabilities():
            return self.detector.score_new(arr)
        return self.detector.score(arr)

    def fit_score(self, series):
        """Fit and score the same series (the paper's transductive protocol)."""
        arr = self.preprocess(series)
        scores = self.detector.fit_score(arr)
        self._fitted = True
        return scores

    def threshold(self, scores):
        """The spec's threshold stage evaluated on ``scores`` (a float)."""
        stage = dict(self.spec.threshold or _DEFAULT_THRESHOLD)
        fn = _THRESHOLD_FNS[stage.pop("kind")]
        return float(fn(np.asarray(scores, dtype=np.float64), **stage))

    def detect(self, series=None, *, scores=None):
        """Scores -> threshold -> binary labels, as one call.

        Pass a series (scored via :meth:`fit_score` when the pipeline is
        unfitted, :meth:`score` when it is), or precomputed ``scores``.
        Returns ``{"scores", "threshold", "labels"}``.
        """
        if (series is None) == (scores is None):
            raise ValueError("pass exactly one of series or scores=")
        if scores is None:
            scores = self.score(series) if self.is_fitted() else self.fit_score(series)
        scores = np.asarray(scores, dtype=np.float64)
        threshold = self.threshold(scores)
        return {
            "scores": scores,
            "threshold": threshold,
            "labels": apply_threshold(scores, threshold),
        }

    def explain(self, indices=None):
        """Channel attribution of the fitted decomposition.

        Requires the ``explainable`` capability (a detector exposing the
        decomposed outlier series ``T_S``).  Returns per-observation
        ``contributions`` ``(C, D)`` and ``dominant_channels`` ``(C,)``
        (optionally restricted to ``indices``).
        """
        from ..explain import channel_contributions, dominant_channels

        self._require("explainable", "explain()")
        if not self.is_fitted():
            raise RuntimeError("fit the pipeline before explaining")
        outlier_series = self.detector.outlier_series
        if indices is not None:
            selector = np.asarray(indices)
            if (selector.size and selector.dtype != bool
                    and int(selector.max()) >= outlier_series.shape[0]):
                raise ValueError(
                    "index %d is outside the fitted decomposition (length "
                    "%d): explain() attributes the series the detector was "
                    "FITTED on, not a later warm-scored one — refit on the "
                    "series you want explained"
                    % (int(selector.max()), outlier_series.shape[0])
                )
        options = self.spec.explain or {}
        return {
            "outlier_series": outlier_series,
            "contributions": channel_contributions(
                outlier_series, normalize=bool(options.get("normalize", True))
            ),
            "dominant_channels": dominant_channels(outlier_series, indices),
        }

    # ------------------------------------------------------------------ #
    # persistence
    def save(self, path):
        """Spec sidecar + weights via :func:`repro.core.save_pipeline`."""
        from ..core.persistence import save_pipeline

        return save_pipeline(self, path)

    @classmethod
    def load(cls, path):
        """Rebuild a saved pipeline via :func:`repro.core.load_pipeline`."""
        from ..core.persistence import load_pipeline

        return load_pipeline(path)

    # ------------------------------------------------------------------ #
    def __repr__(self):
        return "Pipeline(%r, fitted=%r, capabilities={%s})" % (
            self.spec, self.is_fitted(), ", ".join(sorted(self.capabilities()))
        )
