"""Spec-driven pipeline API: one construction/persistence/capability surface.

Every way of obtaining a scorer in this package now funnels through here:

* :class:`DetectorSpec` — method name + params, JSON round-trippable,
  validated against the :mod:`repro.eval.methods` registry.
* :class:`PipelineSpec` — the paper's whole protocol as data
  (preprocess -> detector -> threshold -> explain stages).
* :class:`Pipeline` — the runnable facade (``fit`` / ``score`` /
  ``fit_score`` / ``detect`` / ``explain``) with a declared
  :func:`capabilities` set and ``save``/``load`` persistence.
* :func:`as_detector` — the one coercion consumers
  (:class:`repro.stream.StreamScorer`, :class:`repro.eval.BatchScoringEngine`,
  :class:`repro.serve.StreamRouter`) use to accept specs anywhere a
  detector instance is accepted.

``repro.eval.make_detector`` remains as a thin shim over
``DetectorSpec.build()``, so the evaluation protocol and existing call
sites migrate without churn.
"""

from .pipeline import CAPABILITIES, CapabilityError, Pipeline, capabilities
from .spec import (
    PREPROCESS_KINDS,
    THRESHOLD_KINDS,
    DetectorSpec,
    PipelineSpec,
    SpecError,
    as_detector,
    read_spec,
)

__all__ = [
    "DetectorSpec",
    "PipelineSpec",
    "Pipeline",
    "SpecError",
    "CapabilityError",
    "capabilities",
    "CAPABILITIES",
    "as_detector",
    "read_spec",
    "THRESHOLD_KINDS",
    "PREPROCESS_KINDS",
]
