"""Declarative construction specs for detectors and pipelines.

The paper's protocol (fit -> score -> threshold -> explain, Section V-A)
used to be assembled ad hoc at every entry point: the registry factory, raw
class constructors, weights-only persistence, and per-subcommand argparse
plumbing each re-encoded "which method, with which parameters".  A spec is
the single JSON-serializable description of that assembly:

* :class:`DetectorSpec` — a registry method name plus constructor
  parameters, validated against :data:`repro.eval.methods.METHODS` and the
  method's constructor signature (of which the Section V-A search spaces
  are a subset).
* :class:`PipelineSpec` — the full protocol: preprocess stages, a detector
  spec, a threshold stage (:mod:`repro.metrics.thresholds`), and an explain
  stage (:mod:`repro.explain`).

Both round-trip losslessly through ``to_dict``/``from_dict`` (and JSON),
and every fitted detector can be projected back to a spec with
:meth:`DetectorSpec.from_detector` — which is what lets persistence and the
serving layer save *how a scorer was built*, not just its weights.
"""

from __future__ import annotations

import inspect
import json

import numpy as np

from ..eval.methods import METHODS, SEARCH_SPACES, UnknownMethodError

__all__ = [
    "SpecError",
    "DetectorSpec",
    "PipelineSpec",
    "read_spec",
    "as_detector",
]

#: Threshold stages a PipelineSpec may name, with their legal parameters
#: (the keyword arguments of the matching repro.metrics.thresholds
#: estimator).
THRESHOLD_KINDS = {
    "quantile": ("q",),
    "mad": ("k",),
    "pot": ("risk", "tail_fraction", "trim"),
}

#: Preprocess stages a PipelineSpec may name (applied in list order).
PREPROCESS_KINDS = {
    "standardize": (),
    "clip": ("lo", "hi"),
}


class SpecError(ValueError):
    """Raised when a spec does not describe a buildable configuration."""


def _jsonable(value, where):
    """Coerce ``value`` to a JSON-representable equivalent or raise."""
    if isinstance(value, np.generic):
        value = value.item()
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(v, where) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v, where) for k, v in value.items()}
    raise SpecError(
        "%s: value %r (%s) is not JSON-serializable"
        % (where, value, type(value).__name__)
    )


_METHOD_CLASSES = None
_CLASS_BY_NAME = None
_PARAMS_BY_CLASS = {}


def _method_classes():
    """Lazy ``{detector class: registry name}`` map (constructors are cheap:
    they only record parameters; all training happens in ``fit``)."""
    global _METHOD_CLASSES, _CLASS_BY_NAME
    if _METHOD_CLASSES is None:
        _METHOD_CLASSES = {type(factory()): name
                           for name, factory in METHODS.items()}
        _CLASS_BY_NAME = {name: cls for cls, name in _METHOD_CLASSES.items()}
    return _METHOD_CLASSES


def _class_for(name):
    """The detector class registered under ``name``."""
    _method_classes()
    try:
        return _CLASS_BY_NAME[name]
    except KeyError:
        raise UnknownMethodError(
            "unknown method %r; known methods: %s" % (name, ", ".join(METHODS))
        ) from None


def _constructor_params(cls):
    """Names of ``cls.__init__`` keyword parameters (excluding ``self``),
    cached per class — validation runs on every ``build()``."""
    if cls not in _PARAMS_BY_CLASS:
        params = inspect.signature(cls.__init__).parameters
        _PARAMS_BY_CLASS[cls] = {
            name: p for name, p in params.items()
            if name != "self"
            and p.kind in (p.POSITIONAL_OR_KEYWORD, p.KEYWORD_ONLY)
        }
    return _PARAMS_BY_CLASS[cls]


class DetectorSpec:
    """How to build one detector: registry method name + parameters.

    Parameters
    ----------
    method: a name from :data:`repro.eval.methods.METHODS` (the paper's
        Tables II/III column set).
    params: constructor overrides merged over the registry defaults.

    ``build()`` is the one construction path — :func:`repro.eval.make_detector`
    is now a thin shim over it — so anything a spec can express can also be
    persisted, shipped to a serving shard, or rebuilt from a CLI flag.
    """

    __slots__ = ("method", "params")

    def __init__(self, method, params=None, **kwargs):
        self.method = str(method)
        merged = dict(params or {})
        merged.update(kwargs)
        self.params = merged

    # ------------------------------------------------------------------ #
    def validate(self):
        """Check the spec is buildable; returns ``self``.

        Validates the method against the registry, every parameter name
        against the method's constructor signature (the Section V-A search
        spaces name a subset of these), and every value for JSON
        serializability — so a validated spec is guaranteed to round-trip
        through persistence.
        """
        if self.method not in METHODS:
            raise UnknownMethodError(
                "unknown method %r; known methods: %s"
                % (self.method, ", ".join(METHODS))
            )
        allowed = _constructor_params(_class_for(self.method))
        for name, value in self.params.items():
            if name not in allowed:
                raise SpecError(
                    "%s has no parameter %r (searchable: %s; all: %s)"
                    % (self.method, name,
                       ", ".join(SEARCH_SPACES.get(self.method, {})) or "none",
                       ", ".join(allowed))
                )
            _jsonable(value, "%s.%s" % (self.method, name))
        return self

    def build(self):
        """Instantiate the detector (registry defaults merged with params)."""
        self.validate()
        return METHODS[self.method](**self.params)

    def search_space(self):
        """The method's Section V-A hyperparameter ranges (may be empty)."""
        return dict(SEARCH_SPACES.get(self.method, {}))

    # ------------------------------------------------------------------ #
    @classmethod
    def from_detector(cls, detector):
        """Project a (possibly fitted) detector back to its spec.

        The detector's class must be one of the registry classes; its
        constructor parameters are read back from the same-named public
        attributes (the package-wide convention, cf. ``BaseDetector``).
        Derived parameters (e.g. a ``stride`` defaulted from the window)
        are captured at their concrete values, so ``spec.build()`` yields a
        behaviourally identical detector.
        """
        name = _method_classes().get(type(detector))
        if name is None:
            raise SpecError(
                "%s is not a registry detector class; known classes: %s"
                % (type(detector).__name__,
                   ", ".join(sorted(c.__name__ for c in _method_classes())))
            )
        params = {}
        for pname, param in _constructor_params(type(detector)).items():
            value = getattr(detector, pname, param.default)
            if value is inspect.Parameter.empty:  # pragma: no cover
                raise SpecError(
                    "%s.%s is not recoverable from the instance" % (name, pname)
                )
            params[pname] = _jsonable(value, "%s.%s" % (name, pname))
        return cls(name, params)

    # ------------------------------------------------------------------ #
    def to_dict(self):
        return {"method": self.method,
                "params": _jsonable(dict(self.params), self.method)}

    @classmethod
    def from_dict(cls, data):
        if "method" not in data:
            raise SpecError("detector spec needs a 'method' key, got %r" % (data,))
        extra = set(data) - {"method", "params"}
        if extra:
            raise SpecError("unknown detector spec keys: %s" % ", ".join(sorted(extra)))
        return cls(data["method"], data.get("params") or {})

    def to_json(self, indent=2):
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text):
        return cls.from_dict(json.loads(text))

    # ------------------------------------------------------------------ #
    def _canonical(self):
        """JSON-normal form: tuples become lists, keys sorted — two specs
        that serialize identically ARE the same spec (and hashable even
        with sequence-valued params)."""
        return json.dumps(self.to_dict(), sort_keys=True)

    def __eq__(self, other):
        return (isinstance(other, DetectorSpec)
                and self._canonical() == other._canonical())

    def __hash__(self):
        return hash(self._canonical())

    def __repr__(self):
        params = ", ".join("%s=%r" % (k, v)
                           for k, v in sorted(self.params.items()))
        return "DetectorSpec(%r%s)" % (self.method, ", " + params if params else "")


def _validate_stage(stage, kinds, what):
    if not isinstance(stage, dict) or "kind" not in stage:
        raise SpecError("%s stage must be a dict with a 'kind', got %r"
                        % (what, stage))
    if stage["kind"] not in kinds:
        raise SpecError("unknown %s kind %r (choose from %s)"
                        % (what, stage["kind"], ", ".join(kinds)))
    allowed = kinds[stage["kind"]]
    for key, value in stage.items():
        if key != "kind" and key not in allowed:
            # Same up-front contract as DetectorSpec params: a bad name
            # must fail validation, not a TypeError deep in detect().
            raise SpecError(
                "%s kind %r has no parameter %r (allowed: %s)"
                % (what, stage["kind"], key, ", ".join(allowed) or "none")
            )
        _jsonable(value, "%s.%s" % (what, key))
    return stage


class PipelineSpec:
    """The full protocol as data: preprocess -> detector -> threshold -> explain.

    Parameters
    ----------
    detector: a :class:`DetectorSpec`, a ``{"method": ..., "params": ...}``
        dict, or a bare method name.
    preprocess: list of stage dicts applied in order before the detector —
        ``{"kind": "standardize"}`` or ``{"kind": "clip", "lo":, "hi":}``.
    threshold: ``{"kind": "quantile"|"mad"|"pot", ...}`` with the keyword
        arguments of the matching :mod:`repro.metrics.thresholds` function;
        defaults to the 0.99 quantile when omitted.
    explain: ``{"normalize": bool}`` options for the channel-attribution
        stage (:mod:`repro.explain.channels`); only detectors with the
        ``explainable`` capability can run it.
    """

    __slots__ = ("detector", "preprocess", "threshold", "explain")

    def __init__(self, detector, preprocess=None, threshold=None, explain=None):
        if isinstance(detector, str):
            detector = DetectorSpec(detector)
        elif isinstance(detector, dict):
            detector = DetectorSpec.from_dict(detector)
        elif not isinstance(detector, DetectorSpec):
            raise SpecError(
                "detector must be a DetectorSpec, dict, or method name, "
                "got %r" % (detector,)
            )
        self.detector = detector
        self.preprocess = [dict(stage) for stage in (preprocess or [])]
        self.threshold = dict(threshold) if threshold else None
        self.explain = dict(explain) if explain else None

    # ------------------------------------------------------------------ #
    def validate(self):
        """Validate every stage; returns ``self``."""
        self.detector.validate()
        for stage in self.preprocess:
            _validate_stage(stage, PREPROCESS_KINDS, "preprocess")
        if self.threshold is not None:
            _validate_stage(self.threshold, THRESHOLD_KINDS, "threshold")
        if self.explain is not None:
            _jsonable(self.explain, "explain")
        return self

    def build(self):
        """Construct the runnable :class:`repro.api.Pipeline`."""
        from .pipeline import Pipeline

        return Pipeline(self)

    # ------------------------------------------------------------------ #
    def to_dict(self):
        doc = {"detector": self.detector.to_dict()}
        if self.preprocess:
            doc["preprocess"] = _jsonable(self.preprocess, "preprocess")
        if self.threshold is not None:
            doc["threshold"] = _jsonable(self.threshold, "threshold")
        if self.explain is not None:
            doc["explain"] = _jsonable(self.explain, "explain")
        return doc

    @classmethod
    def from_dict(cls, data):
        """Accepts a full pipeline dict or a bare detector spec dict."""
        if "detector" not in data:
            # A DetectorSpec-shaped dict is promoted to a one-stage pipeline.
            return cls(DetectorSpec.from_dict(data))
        extra = set(data) - {"detector", "preprocess", "threshold", "explain"}
        if extra:
            raise SpecError("unknown pipeline spec keys: %s" % ", ".join(sorted(extra)))
        return cls(
            data["detector"],
            preprocess=data.get("preprocess"),
            threshold=data.get("threshold"),
            explain=data.get("explain"),
        )

    def to_json(self, indent=2):
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text):
        return cls.from_dict(json.loads(text))

    def save(self, path):
        """Write the spec as JSON to ``path``; returns the path."""
        with open(path, "w") as handle:
            handle.write(self.to_json() + "\n")
        return path

    @classmethod
    def load(cls, path):
        with open(path) as handle:
            return cls.from_json(handle.read())

    # ------------------------------------------------------------------ #
    def _canonical(self):
        return json.dumps(self.to_dict(), sort_keys=True)

    def __eq__(self, other):
        return (isinstance(other, PipelineSpec)
                and self._canonical() == other._canonical())

    def __hash__(self):
        return hash(self._canonical())

    def __repr__(self):
        extras = []
        if self.preprocess:
            extras.append("preprocess=%r" % (self.preprocess,))
        if self.threshold is not None:
            extras.append("threshold=%r" % (self.threshold,))
        if self.explain is not None:
            extras.append("explain=%r" % (self.explain,))
        return "PipelineSpec(%r%s)" % (
            self.detector, ", " + ", ".join(extras) if extras else ""
        )


def read_spec(path):
    """Load a spec JSON file (pipeline- or detector-shaped) as a PipelineSpec."""
    return PipelineSpec.load(path).validate()


def as_detector(obj):
    """Coerce any construction handle into a detector instance.

    Accepts a detector instance (returned unchanged), a
    :class:`DetectorSpec`, a :class:`PipelineSpec` (its detector stage), a
    :class:`repro.api.Pipeline` (its live detector), a spec-shaped dict, or
    a bare registry method name.  This is the one coercion used by every
    spec-aware consumer (:class:`repro.stream.StreamScorer`,
    :class:`repro.eval.BatchScoringEngine`, :class:`repro.serve.StreamRouter`).
    """
    from .pipeline import Pipeline

    if isinstance(obj, str):
        return DetectorSpec(obj).build()
    if isinstance(obj, dict):
        return PipelineSpec.from_dict(obj).detector.build()
    if isinstance(obj, DetectorSpec):
        return obj.build()
    if isinstance(obj, PipelineSpec):
        return obj.detector.build()
    if isinstance(obj, Pipeline):
        return obj.detector
    return obj
