"""Evaluation metrics: ranking AUCs, reconstruction errors, significance."""

from .errors import mae, relative_frobenius, rmse
from .ranking import (
    best_f1,
    pr_auc,
    precision_at_k,
    precision_recall_curve,
    roc_auc,
    roc_curve,
)
from .stats import paired_t_test, welch_t_test
from .thresholds import (
    apply_threshold,
    mad_threshold,
    pot_threshold,
    quantile_threshold,
)

__all__ = [
    "pr_auc",
    "roc_auc",
    "roc_curve",
    "precision_recall_curve",
    "precision_at_k",
    "best_f1",
    "rmse",
    "mae",
    "relative_frobenius",
    "paired_t_test",
    "welch_t_test",
    "quantile_threshold",
    "mad_threshold",
    "pot_threshold",
    "apply_threshold",
]
