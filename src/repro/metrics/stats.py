"""Statistical significance tests (the t-tests of Section V-B)."""

from __future__ import annotations

import numpy as np
from scipy import stats as sp_stats

__all__ = ["paired_t_test", "welch_t_test"]


def paired_t_test(sample_a, sample_b):
    """Paired two-sided t-test; returns ``(t_statistic, p_value)``.

    The paper reports p-values of the proposed methods against the baselines
    on per-dataset averages; pairs are matched by dataset.
    """
    a = np.asarray(sample_a, dtype=np.float64)
    b = np.asarray(sample_b, dtype=np.float64)
    if a.shape != b.shape:
        raise ValueError("paired samples must have equal length")
    result = sp_stats.ttest_rel(a, b)
    return float(result.statistic), float(result.pvalue)


def welch_t_test(sample_a, sample_b):
    """Welch's unequal-variance t-test; returns ``(t_statistic, p_value)``."""
    a = np.asarray(sample_a, dtype=np.float64)
    b = np.asarray(sample_b, dtype=np.float64)
    result = sp_stats.ttest_ind(a, b, equal_var=False)
    return float(result.statistic), float(result.pvalue)
