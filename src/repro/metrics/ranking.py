"""Threshold-free ranking metrics: ROC-AUC and PR-AUC (Section V-A).

The paper evaluates detectors with the areas under the ROC and
precision-recall curves so that no outlier-score threshold has to be chosen.
Both are implemented from first principles (scikit-learn is unavailable
offline); ties in the scores are handled by grouping, and PR-AUC follows the
step-wise interpolation of Davis & Goadrich (the same convention as
``sklearn.metrics.average_precision_score``).
"""

from __future__ import annotations

import numpy as np

__all__ = ["roc_auc", "pr_auc", "roc_curve", "precision_recall_curve",
           "precision_at_k", "best_f1"]


def _validate(labels, scores):
    labels = np.asarray(labels).astype(np.float64).ravel()
    scores = np.asarray(scores, dtype=np.float64).ravel()
    if labels.shape != scores.shape:
        raise ValueError("labels and scores must have equal length")
    if not np.isin(np.unique(labels), (0.0, 1.0)).all():
        raise ValueError("labels must be binary (0/1)")
    return labels, scores


def roc_curve(labels, scores):
    """False-positive and true-positive rates over all thresholds.

    Returns ``(fpr, tpr)`` arrays, both starting at 0 and ending at 1.
    """
    labels, scores = _validate(labels, scores)
    order = np.argsort(-scores, kind="mergesort")
    labels = labels[order]
    scores = scores[order]
    # Collapse ties: evaluate only at the last index of each distinct score.
    distinct = np.where(np.diff(scores))[0]
    idx = np.concatenate([distinct, [labels.size - 1]])
    tps = np.cumsum(labels)[idx]
    fps = (idx + 1) - tps
    total_pos = labels.sum()
    total_neg = labels.size - total_pos
    tpr = np.concatenate([[0.0], tps / max(total_pos, 1)])
    fpr = np.concatenate([[0.0], fps / max(total_neg, 1)])
    return fpr, tpr


def roc_auc(labels, scores):
    """Area under the ROC curve; 0.5 for random scores, NaN-free by design."""
    labels, scores = _validate(labels, scores)
    if labels.sum() in (0, labels.size):
        raise ValueError("ROC-AUC undefined: labels are single-class")
    fpr, tpr = roc_curve(labels, scores)
    return float(np.trapezoid(tpr, fpr))


def precision_recall_curve(labels, scores):
    """Precision and recall over all thresholds (highest score first)."""
    labels, scores = _validate(labels, scores)
    order = np.argsort(-scores, kind="mergesort")
    labels = labels[order]
    scores = scores[order]
    distinct = np.where(np.diff(scores))[0]
    idx = np.concatenate([distinct, [labels.size - 1]])
    tps = np.cumsum(labels)[idx]
    predicted = idx + 1.0
    precision = tps / predicted
    recall = tps / max(labels.sum(), 1)
    return precision, recall


def pr_auc(labels, scores):
    """Area under the precision-recall curve (average precision).

    Computed as ``sum_k (R_k - R_{k-1}) * P_k`` — the step-function integral
    used by average precision, which avoids the optimism of trapezoidal
    PR interpolation.
    """
    labels, scores = _validate(labels, scores)
    if labels.sum() == 0:
        raise ValueError("PR-AUC undefined: no positive labels")
    precision, recall = precision_recall_curve(labels, scores)
    recall = np.concatenate([[0.0], recall])
    return float(np.sum(np.diff(recall) * precision))


def precision_at_k(labels, scores, k):
    """Fraction of true outliers among the top-``k`` scored observations."""
    labels, scores = _validate(labels, scores)
    k = int(np.clip(k, 1, labels.size))
    top = np.argsort(-scores, kind="mergesort")[:k]
    return float(labels[top].mean())


def best_f1(labels, scores):
    """Best F1 over all thresholds (a common secondary metric)."""
    precision, recall = precision_recall_curve(labels, scores)
    f1 = 2 * precision * recall / np.maximum(precision + recall, 1e-12)
    return float(f1.max())
