"""Reconstruction-error metrics."""

from __future__ import annotations

import numpy as np

__all__ = ["rmse", "mae", "relative_frobenius"]


def rmse(a, b):
    """Root mean squared error between two equal-shape arrays."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.shape != b.shape:
        raise ValueError("shape mismatch: %s vs %s" % (a.shape, b.shape))
    return float(np.sqrt(np.mean((a - b) ** 2)))


def mae(a, b):
    """Mean absolute error."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    return float(np.mean(np.abs(a - b)))


def relative_frobenius(a, b):
    """``||a - b||_F / ||b||_F`` — the stopping-condition quantity of Alg. 1/2."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    denom = np.linalg.norm(b)
    return float(np.linalg.norm(a - b) / max(denom, 1e-12))
