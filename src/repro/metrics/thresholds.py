"""Outlier-score threshold selection.

The paper sidesteps thresholding by reporting threshold-free AUCs, noting
that "choosing the threshold is non-trivial and calls for domain experts or
prior knowledge" (Section V-A).  Deployments still need a threshold; this
module provides the standard unsupervised choices:

* :func:`quantile_threshold` — flag the top ``q`` fraction;
* :func:`mad_threshold` — median + k * MAD, robust to the outliers' own
  influence on the score distribution;
* :func:`pot_threshold` — peaks-over-threshold: fit a generalized Pareto
  distribution to the score tail and place the threshold at a target risk
  level (Siffer et al., KDD 2017 — the SPOT estimator).
"""

from __future__ import annotations

import numpy as np
from scipy import stats as sp_stats

__all__ = ["quantile_threshold", "mad_threshold", "pot_threshold",
           "apply_threshold"]


def quantile_threshold(scores, q=0.99):
    """Score value at quantile ``q`` — flags the top ``(1-q)`` fraction."""
    scores = np.asarray(scores, dtype=np.float64)
    if not 0.0 < q < 1.0:
        raise ValueError("q must be in (0, 1), got %r" % q)
    return float(np.quantile(scores, q))


def mad_threshold(scores, k=5.0):
    """``median + k * MAD`` with the 1.4826 normal-consistency constant."""
    scores = np.asarray(scores, dtype=np.float64)
    median = float(np.median(scores))
    mad = float(np.median(np.abs(scores - median))) * 1.4826
    return median + k * max(mad, 1e-12)


def pot_threshold(scores, risk=1e-3, tail_fraction=0.1, trim=0.02):
    """Peaks-over-threshold via a generalized Pareto tail fit.

    Parameters
    ----------
    scores: outlier scores (larger = more anomalous).
    risk: target probability that a *normal* observation exceeds the
        returned threshold.
    tail_fraction: fraction of the largest scores used as tail excesses.
    trim: fraction of the most extreme scores excluded from the fit — the
        outliers we are hunting would otherwise inflate the fitted tail and
        push the threshold above themselves.

    Falls back to the empirical ``1 - risk`` quantile when the tail is too
    small or degenerate to fit.
    """
    scores = np.asarray(scores, dtype=np.float64)
    if not 0.0 < risk < 1.0:
        raise ValueError("risk must be in (0, 1), got %r" % risk)
    n = scores.size
    anchor = float(np.quantile(scores, 1.0 - tail_fraction))
    cap = float(np.quantile(scores, 1.0 - trim)) if 0.0 < trim < 1.0 else np.inf
    excesses = scores[(scores > anchor) & (scores <= cap)] - anchor
    if excesses.size < 10 or np.ptp(excesses) <= 0:
        return float(np.quantile(scores, 1.0 - risk))
    shape, __, scale = sp_stats.genpareto.fit(excesses, floc=0.0)
    scale = max(scale, 1e-12)
    tail_prob = excesses.size / n
    if risk >= tail_prob:
        return float(np.quantile(scores, 1.0 - risk))
    # Invert the GPD survival function at the rescaled risk level.
    ratio = risk / tail_prob
    if abs(shape) < 1e-9:
        excess_q = -scale * np.log(ratio)
    else:
        excess_q = (scale / shape) * (ratio ** (-shape) - 1.0)
    return float(anchor + excess_q)


def apply_threshold(scores, threshold):
    """Binary predictions from scores and a threshold."""
    scores = np.asarray(scores, dtype=np.float64)
    return (scores > threshold).astype(int)
