"""Network frontends for :class:`repro.serve.StreamRouter`.

The router scores whatever is queued when ``drain()`` runs; a *frontend* is
what stands between remote producers and that queue.  The split here:

:class:`FrontendEngine`
    Transport-agnostic core shared by every frontend (and the CLI's stdin
    loop).  It parses the ``stream_id,value...`` line protocol, counts
    malformed input per stream instead of crashing, triggers drains every
    ``drain_every`` accepted arrivals, and — the part a socket server
    actually needs — *routes scores back to whoever submitted the
    arrivals*: every accepted arrival is attributed to its ``origin`` in a
    per-stream segment list, and after a drain each origin's registered
    sink receives exactly its own ``(stream, index, score)`` rows, in
    order.  Indices continue across restarts (seeded from the router's
    ``scored`` counters), and a stream that fails to drain keeps its
    segments — the router re-queues its arrivals at the queue front, so
    attribution stays aligned for the retry.

:class:`TcpFrontend`
    Line protocol over TCP, one thread per connection: send
    ``stream_id,v1[,v2...]`` lines, receive ``stream,index,score`` lines
    for your own submissions; ``?stats`` returns a JSON stats document,
    ``?drain`` forces a drain; malformed lines get an ``ERR ...`` reply
    and a per-stream error count, never a dropped connection.

:class:`HttpFrontend`
    JSON batch API: ``POST /submit`` with ``{"arrivals": [{"stream": id,
    "values": ...}]}`` scores the batch and answers with its scores;
    ``GET /stats`` returns the same stats document.

Both servers bind ``port=0``-style ephemeral ports (``address`` reports
the real one), run in daemon threads, and ``stop()`` drains the buffered
tail — delivering final scores to still-connected clients — before
closing connections.  Signal wiring (SIGTERM → ``stop()``) lives in the
CLI, which owns the main thread.
"""

from __future__ import annotations

import json
import socket
import socketserver
import threading
import time
from collections import deque
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import numpy as np

from .router import DrainError

__all__ = ["FrontendEngine", "TcpFrontend", "HttpFrontend"]


class FrontendEngine:
    """Shared submit/drain/deliver core for every serving frontend.

    Thread-safe throughout: any number of connection threads may submit
    and trigger drains concurrently (drains serialise on the router's own
    drain lock; segment bookkeeping on the engine lock).
    """

    #: Lock discipline, machine-checked by ``repro lint`` (lock-guarded).
    _GUARDED_BY = {
        "_sinks": "_lock",
        "_segments": "_lock",
        "_emitted": "_lock",
        "_errors": "_lock",
        "_dropped_seen": "_lock",
        "_failed": "_lock",
        "_pending": "_lock",
        "_unrouted": "_lock",
    }

    def __init__(self, router, drain_every=32):
        self.router = router
        self.drain_every = max(int(drain_every), 1)
        self._lock = threading.Lock()
        self._sinks = {}  # origin -> callable(rows)
        self._segments = {}  # stream_id -> deque of [origin, count]
        self._emitted = {}  # stream_id -> next output index
        self._errors = {}  # stream_id -> malformed/rejected submissions
        self._dropped_seen = {}  # stream_id -> router drop count reconciled
        self._failed = {}  # stream_id -> last drain failure (str)
        self._pending = 0  # engine-submitted arrivals not yet drained
        self._unrouted = 0  # scores with no owning origin (pre-engine queue)

    # ------------------------------------------------------------------ #
    # origins
    def register(self, origin, sink):
        """Deliver ``origin``'s future scores to ``sink(rows)``."""
        with self._lock:
            self._sinks[origin] = sink

    def unregister(self, origin):
        with self._lock:
            self._sinks.pop(origin, None)

    # ------------------------------------------------------------------ #
    # ingestion
    def count_error(self, stream_id):
        """Charge one malformed/rejected submission to ``stream_id``."""
        with self._lock:
            self._errors[stream_id] = self._errors.get(stream_id, 0) + 1

    def submit_rows(self, origin, stream_id, rows):
        """Enqueue ``rows`` (``(n, dims)`` or ``(n,)``) for ``stream_id``.

        Returns the number of arrivals accepted.  Rows are submitted one
        by one so that a mid-chunk rejection (queue full, dimension
        mismatch) still attributes the already-accepted prefix to
        ``origin`` before the exception propagates — scores and segments
        can never drift apart.
        """
        rows = np.asarray(rows, dtype=np.float64)
        if rows.ndim == 0:
            rows = rows.reshape(1, 1)
        if rows.ndim == 1:
            rows = rows[:, None]
        accepted = 0
        try:
            for row in rows:
                self.router.submit(stream_id, row)
                accepted += 1
        finally:
            if accepted:
                with self._lock:
                    segments = self._segments.setdefault(stream_id, deque())
                    if segments and segments[-1][0] is origin:
                        segments[-1][1] += accepted
                    else:
                        segments.append([origin, accepted])
                    self._pending += accepted
        return accepted

    def submit_line(self, origin, line):
        """Parse one ``stream_id,v1[,v2...]`` line and enqueue it.

        Returns ``None`` on success, else an error message — malformed
        input is a counted, reported event, never an exception (a bad
        producer must not crash the serving loop).
        """
        line = line.strip()
        if not line:
            return None
        cells = line.split(",")
        stream_id = cells[0].strip()
        if not stream_id or len(cells) < 2:
            self.count_error(stream_id or "<blank>")
            return "malformed line: expected 'stream_id,v1[,v2...]'"
        try:
            row = [float(cell) for cell in cells[1:]]
        except ValueError:
            self.count_error(stream_id)
            return ("malformed line for stream %r: non-numeric value"
                    % stream_id)
        try:
            self.submit_rows(origin, stream_id, [row])
        except Exception as exc:  # noqa: BLE001 - report, don't crash
            self.count_error(stream_id)
            return "rejected arrival for stream %r: %s" % (stream_id, exc)
        return None

    # ------------------------------------------------------------------ #
    # draining
    def maybe_drain(self):
        """Drain when ``drain_every`` arrivals have accumulated."""
        with self._lock:
            due = self._pending >= self.drain_every
        return self.drain() if due else {}

    def drain(self):
        """Drain the router and deliver each origin's scores to its sink.

        Returns ``{origin: [(stream_id, index, score), ...]}``.  Shard
        failures do not raise here — the router has already re-queued the
        failing streams' arrivals (so their segments stay, aligned for the
        retry) and the failures are surfaced through :meth:`stats`.
        """
        try:
            results = self.router.drain()
            failures = {}
        except DrainError as exc:
            results, failures = exc.results, exc.failures
        stats = self.router.stats()
        per_stream = stats["per_stream"]
        deliveries = {}
        with self._lock:
            self._pending = stats["queue_depth"]
            self._failed = {stream_id: str(exc)
                            for stream_id, exc in failures.items()}
            # Reconcile drop_oldest evictions first: the dropped arrivals
            # were the oldest queued, i.e. the front of their segments.
            for stream_id, entry in per_stream.items():
                delta = entry["dropped"] - self._dropped_seen.get(stream_id, 0)
                if delta:
                    self._trim_segments_locked(stream_id, delta)
                self._dropped_seen[stream_id] = entry["dropped"]
            for stream_id, scores in results.items():
                start = self._emitted.get(stream_id)
                if start is None:
                    # First sight of this stream: seed so indices continue
                    # where a previous process (restored router) stopped.
                    start = per_stream[stream_id]["scored"] - len(scores)
                segments = self._segments.get(stream_id)
                offset = 0
                while segments and offset < len(scores):
                    origin, count = segments[0]
                    take = min(count, len(scores) - offset)
                    rows = deliveries.setdefault(origin, [])
                    for k in range(take):
                        rows.append((stream_id, start + offset + k,
                                     float(scores[offset + k])))
                    offset += take
                    if take == count:
                        segments.popleft()
                    else:
                        segments[0][1] = count - take
                if offset < len(scores):
                    # Arrivals queued before this engine existed (e.g. a
                    # restored router's backlog) have no origin to claim
                    # their scores.
                    self._unrouted += len(scores) - offset
                self._emitted[stream_id] = start + len(scores)
            sinks = dict(self._sinks)
        # Deliver outside the engine lock: a sink is a socket write and
        # must never block other producers' submissions.
        for origin, rows in deliveries.items():
            sink = sinks.get(origin)
            if sink is None:
                continue
            try:
                sink(rows)
            except Exception:  # noqa: BLE001 - a dead client loses only
                pass  # its own rows; the frontend unregisters it on exit
        return deliveries

    def _trim_segments_locked(self, stream_id, count):
        segments = self._segments.get(stream_id)
        while segments and count:
            take = min(segments[0][1], count)
            segments[0][1] -= take
            count -= take
            if not segments[0][1]:
                segments.popleft()

    # ------------------------------------------------------------------ #
    def stats(self):
        """Router stats plus a ``frontend`` block; JSON-serialisable."""
        stats = self.router.stats()
        with self._lock:
            stats["frontend"] = {
                "pending": self._pending,
                "errors": dict(self._errors),
                "error_total": sum(self._errors.values()),
                "failed_streams": dict(self._failed),
                "unrouted_scores": self._unrouted,
            }
        return stats


# ---------------------------------------------------------------------- #
# TCP: the stdin line protocol, networked


class _TcpHandler(socketserver.StreamRequestHandler):
    def handle(self):
        frontend = self.server.frontend
        engine = frontend.engine
        self._write_lock = threading.Lock()
        engine.register(self, self._deliver)
        frontend._track(self)
        try:
            for raw in self.rfile:
                line = raw.decode("utf-8", "replace").strip()
                if not line:
                    continue
                if line.startswith("?"):
                    self._command(line, engine)
                    continue
                error = engine.submit_line(self, line)
                if error is not None:
                    self._write_lines(["ERR %s" % error])
                else:
                    engine.maybe_drain()
            # Input exhausted (client half-closed, or a graceful stop shut
            # our read side): score whatever this connection still has in
            # flight and deliver it before the write side goes away.
            engine.drain()
        finally:
            engine.unregister(self)
            frontend._untrack(self)

    def _command(self, line, engine):
        if line == "?stats":
            self._write_lines([json.dumps(engine.stats(), sort_keys=True)])
        elif line == "?drain":
            engine.drain()  # our rows arrive through _deliver
            self._write_lines(["OK"])
        else:
            self._write_lines(["ERR unknown command %r" % line])

    def _deliver(self, rows):
        self._write_lines(
            "%s,%d,%.10g" % (stream_id, index, score)
            for stream_id, index, score in rows
        )

    def _write_lines(self, lines):
        payload = "".join("%s\n" % line for line in lines).encode()
        if not payload:
            return
        with self._write_lock:
            self.wfile.write(payload)
            self.wfile.flush()


class _TcpServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True


class TcpFrontend:
    """Serve the line protocol over TCP; see the module docstring."""

    #: Lock discipline, machine-checked by ``repro lint`` (lock-guarded).
    _GUARDED_BY = {"_clients": "_clients_lock"}

    def __init__(self, engine, host="127.0.0.1", port=0):
        self.engine = engine
        self._server = _TcpServer((host, int(port)), _TcpHandler)
        self._server.frontend = self
        self._clients = set()
        self._clients_lock = threading.Lock()
        self._thread = None

    @property
    def address(self):
        """``(host, port)`` actually bound (port 0 picks an ephemeral one)."""
        return self._server.server_address[:2]

    def _track(self, handler):
        with self._clients_lock:
            self._clients.add(handler)

    def _untrack(self, handler):
        with self._clients_lock:
            self._clients.discard(handler)

    def start(self):
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="repro-tcp-frontend", daemon=True,
        )
        self._thread.start()
        return self

    def stop(self, timeout=5.0):
        """Graceful shutdown: drain-and-deliver, then disconnect.

        Connected clients' *read* sides are shut first, so their handler
        threads see EOF, run the final drain, and deliver every score for
        what the client had submitted over the still-open write side —
        then the connections close cleanly.
        """
        self._server.shutdown()  # stop accepting new connections
        with self._clients_lock:
            clients = list(self._clients)
        for handler in clients:
            try:
                handler.connection.shutdown(socket.SHUT_RD)
            except OSError:
                pass
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            with self._clients_lock:
                if not self._clients:
                    break
            time.sleep(0.01)
        # The tail of any producer that is not a TCP connection (stdin
        # loop, HTTP batches with drain=false).
        self.engine.drain()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=timeout)


# ---------------------------------------------------------------------- #
# HTTP: JSON batch submit + stats


class _HttpHandler(BaseHTTPRequestHandler):
    def log_message(self, *args):  # noqa: D102 - silence default stderr log
        pass

    def _json(self, code, payload):
        body = json.dumps(payload, sort_keys=True).encode()
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self):
        if self.path.split("?")[0] == "/stats":
            self._json(200, self.server.frontend.engine.stats())
        else:
            self._json(404, {"error": "unknown path %r; GET /stats or "
                                      "POST /submit" % self.path})

    def do_POST(self):
        if self.path.split("?")[0] != "/submit":
            self._json(404, {"error": "unknown path %r; POST /submit"
                             % self.path})
            return
        engine = self.server.frontend.engine
        try:
            length = int(self.headers.get("Content-Length") or 0)
            document = json.loads(self.rfile.read(length) or b"{}")
        except (ValueError, TypeError):
            self._json(400, {"error": "body is not valid JSON"})
            return
        arrivals = document.get("arrivals")
        if not isinstance(arrivals, list):
            self._json(400, {"error": "body must be {\"arrivals\": "
                                      "[{\"stream\": id, \"values\": ...}]}"})
            return
        origin = object()
        collected = []
        engine.register(origin, collected.extend)
        errors, accepted = [], 0
        try:
            for i, arrival in enumerate(arrivals):
                stream_id = (arrival.get("stream")
                             if isinstance(arrival, dict) else None)
                values = (arrival.get("values")
                          if isinstance(arrival, dict) else None)
                if not isinstance(stream_id, str) or values is None:
                    engine.count_error(str(stream_id) if stream_id
                                       else "<invalid>")
                    errors.append({"arrival": i, "error":
                                   "need {\"stream\": str, \"values\": ...}"})
                    continue
                try:
                    accepted += engine.submit_rows(origin, stream_id, values)
                except Exception as exc:  # noqa: BLE001 - per-arrival report
                    engine.count_error(stream_id)
                    errors.append({"arrival": i, "stream": stream_id,
                                   "error": str(exc)})
            if document.get("drain", True):
                engine.drain()
        finally:
            engine.unregister(origin)
        self._json(200, {
            "accepted": accepted,
            "scores": [{"stream": stream_id, "index": index, "score": score}
                       for stream_id, index, score in collected],
            "errors": errors,
        })


class _HttpServer(ThreadingHTTPServer):
    daemon_threads = True


class HttpFrontend:
    """Serve the JSON batch API over HTTP; see the module docstring."""

    def __init__(self, engine, host="127.0.0.1", port=0):
        self.engine = engine
        self._server = _HttpServer((host, int(port)), _HttpHandler)
        self._server.frontend = self
        self._thread = None

    @property
    def address(self):
        return self._server.server_address[:2]

    def start(self):
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="repro-http-frontend", daemon=True,
        )
        self._thread.start()
        return self

    def stop(self):
        """Graceful shutdown: drain the buffered tail, then close."""
        self.engine.drain()
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
