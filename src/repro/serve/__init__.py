"""Sharded multi-stream serving: many live series, one scoring engine.

The serving layer over the streaming subsystem: :class:`StreamRouter` keys
one :class:`repro.stream.StreamScorer` shard per named stream, buffers
arrivals in a bounded ingestion queue, and drains bursts as micro-batches —
shards that share a fitted RAE/RDAE are refreshed through one grouped
forward pass per drain (:func:`repro.core.batched_session_scores`), each
contributing only the receptive-field-bounded window tail its arrivals can
change.  ``submit``/``stats`` are thread-safe, and drains come in three
backends — ``serial``, ``threaded`` (same-detector shard groups scored
concurrently on a worker *thread* pool; see the :mod:`.router` concurrency
contract), and ``process`` (a persistent worker-*process* pool fed through
shared-memory arenas and an mmap'd read-only weight store; see
:mod:`.workers`) — all bit-identical in what they score.

Remote traffic reaches the router through :mod:`.frontend`: the ``repro
serve`` CLI subcommand speaks a ``stream_id,value...`` line protocol on
stdin, over TCP (``--tcp PORT``), and as a JSON batch API over HTTP
(``--http PORT``: ``POST /submit`` + ``GET /stats``), with graceful
drain-and-shutdown on SIGTERM.
"""

from .frontend import FrontendEngine, HttpFrontend, TcpFrontend
from .router import (
    DrainError,
    QueueFullError,
    StreamRouter,
    score_shard_group,
)
from .workers import ProcessDrainPool, WorkerCrashError

__all__ = [
    "StreamRouter",
    "QueueFullError",
    "DrainError",
    "score_shard_group",
    "ProcessDrainPool",
    "WorkerCrashError",
    "FrontendEngine",
    "TcpFrontend",
    "HttpFrontend",
]
