"""Sharded multi-stream serving: many live series, one scoring engine.

The serving layer over the streaming subsystem: :class:`StreamRouter` keys
one :class:`repro.stream.StreamScorer` shard per named stream, buffers
arrivals in a bounded ingestion queue, and drains bursts as micro-batches —
shards that share a fitted RAE/RDAE are refreshed through one grouped
forward pass per drain (:func:`repro.core.batched_session_scores`), each
contributing only the receptive-field-bounded window tail its arrivals can
change.  ``submit``/``stats`` are thread-safe, and drains come in two
backends — ``serial`` and ``threaded`` (same-detector shard groups scored
concurrently on a worker pool; see the :mod:`.router` concurrency
contract).  The ``repro serve`` CLI subcommand speaks a
``stream_id,value...`` line protocol over the same router
(``--workers N`` selects the threaded backend).
"""

from .router import DrainError, QueueFullError, StreamRouter

__all__ = ["StreamRouter", "QueueFullError", "DrainError"]
