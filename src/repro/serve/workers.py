"""Process-parallel drain backend: persistent workers, shared-memory arenas.

The ``threaded`` drain backend overlaps NumPy/BLAS work but stays GIL-bound
for the Python glue; on a many-core host that caps out well below the
hardware.  ``drain_backend='process'`` runs each same-detector shard group
on a pool of persistent worker **processes** instead — true CPU parallelism
— while keeping the data movement cheap enough to win:

* **Weights travel zero times.**  Fitted RAE/RDAE detectors are published
  once into an mmap'd read-only :class:`repro.core.WeightStore`; every
  worker maps the same ``.npy`` files, so N workers share one physical copy
  of each detector through the OS page cache instead of unpickling
  per-drain copies.  (Detectors outside that family are pickled once per
  worker and cached under a token.)
* **Arrivals and shard state travel by shared memory.**  Each worker owns a
  file-backed mmap arena (on ``/dev/shm`` when available); the parent
  bump-allocates each request's arrival rows and retained-window arrays
  into it and sends only tiny descriptors over the control pipe.  Arrays
  that outgrow the arena fall back to inline pickling — a slow path, never
  a failure.
* **The parent stays authoritative.**  Every request ships each shard's
  :meth:`repro.stream.StreamScorer.state_dict`; the worker loads it (so its
  cached scorer is *exactly* the parent's shard), scores via the same
  :func:`repro.serve.score_shard_group` the serial backend runs — hence
  bit-identical results — and returns the post-ingest state, which the
  parent installs only on success.  A worker that dies mid-drain (OOM
  killer, segfault, ``kill -9``) therefore loses nothing: its group's
  streams come back as :class:`WorkerCrashError` failures, the router
  re-queues their arrivals, and the pool respawns a replacement before the
  next drain — zero lost or duplicated arrivals.
"""

from __future__ import annotations

import mmap
import os
import pickle
import shutil
import tempfile
import threading

import numpy as np

__all__ = ["ProcessDrainPool", "WorkerCrashError"]

_DEFAULT_ARENA_BYTES = 8 << 20
_STATE_ARRAY_KEYS = ("window", "cache_scores")


class WorkerCrashError(RuntimeError):
    """A drain worker process died mid-drain.

    Appears as the per-stream exception (inside
    :class:`repro.serve.DrainError` failures) for every stream of the group
    the dead worker was scoring.  The contract is already repaired by the
    time the caller sees it: the group's arrivals are back at the front of
    the queue, the parent's shard state never advanced, and the pool has
    respawned a replacement worker — the next ``drain()`` replays the
    arrivals normally.
    """


def _start_method():
    """Worker start method: ``REPRO_SERVE_MP`` override, else prefer fork.

    Fork keeps pickled-by-reference detector classes resolvable (the child
    inherits ``sys.modules``, so even test-local classes work) and makes
    spawning cheap; spawn/forkserver remain available for platforms or
    callers that need them.
    """
    import multiprocessing

    preferred = os.environ.get("REPRO_SERVE_MP")
    if preferred:
        return preferred
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else methods[0]


class _Arena:
    """Bump-allocated shared-memory block, file-backed and mmap'd.

    A plain file on ``/dev/shm`` (tmpfs) mapped by parent and worker gives
    the same page sharing as ``multiprocessing.shared_memory`` without the
    resource-tracker bookkeeping — a SIGKILL'd worker leaks nothing, the
    parent just unlinks the file.  Offsets only grow within one drain and
    :meth:`reset` runs only while no request is outstanding, so parent
    writes and worker reads never overlap.
    """

    def __init__(self, size, directory):
        self.size = int(size)
        fd, self.path = tempfile.mkstemp(prefix="arena-", dir=directory)
        try:
            os.ftruncate(fd, self.size)
            self._file = os.fdopen(fd, "r+b")
        except Exception:
            os.close(fd)
            raise
        self._map = mmap.mmap(self._file.fileno(), self.size)
        self._offset = 0

    def reset(self):
        self._offset = 0

    def place(self, arr):
        """Copy ``arr`` into the arena; descriptor dict, or None when full."""
        arr = np.ascontiguousarray(arr)
        start = (self._offset + 63) & ~63  # keep every block well-aligned
        if start + arr.nbytes > self.size:
            return None
        view = np.frombuffer(
            self._map, dtype=arr.dtype, count=arr.size, offset=start
        ).reshape(arr.shape)
        view[...] = arr
        self._offset = start + arr.nbytes
        return {"o": start, "n": int(arr.size),
                "s": tuple(int(d) for d in arr.shape), "d": arr.dtype.str}

    def close(self):
        self._map.close()
        self._file.close()
        try:
            os.unlink(self.path)
        except OSError:
            pass


class _ArenaReader:
    """Worker-side read-only view of the parent's arena file."""

    def __init__(self, path, size):
        self._file = open(path, "rb")
        self._map = mmap.mmap(
            self._file.fileno(), int(size), access=mmap.ACCESS_READ
        )

    def fetch(self, desc, copy=True):
        arr = np.frombuffer(
            self._map, dtype=np.dtype(desc["d"]), count=desc["n"],
            offset=desc["o"],
        ).reshape(desc["s"])
        if not copy:
            # Zero-copy read-only view for data consumed entirely within
            # this request (pending rows feed the stacked batch buffer and
            # the scalers copy on ingest) — the parent reuses the arena
            # space on the next drain, so nothing may retain this view.
            return arr
        # Copy out: scorer state must outlive this request.
        return arr.copy()


def _ship(arena, arr):
    """Place ``arr`` in the arena; inline the ndarray itself when full."""
    arr = np.ascontiguousarray(arr)
    desc = arena.place(arr)
    return arr if desc is None else desc


def _pack_state(state, arena):
    """Route a scorer state dict's arrays through the arena."""
    packed = dict(state)
    for key in _STATE_ARRAY_KEYS:
        if key in packed:
            packed[key] = _ship(arena, np.asarray(packed[key]))
    return packed


def _unpack_state(packed, fetch):
    state = dict(packed)
    for key in _STATE_ARRAY_KEYS:
        value = state.get(key)
        if isinstance(value, dict):
            state[key] = fetch(value)
    return state


def _picklable(exc):
    """The exception itself when it pickles, else a faithful stand-in."""
    try:
        pickle.loads(pickle.dumps(exc))
        return exc
    except Exception:  # noqa: BLE001 - anything means "cannot travel"
        return RuntimeError("%s: %s" % (type(exc).__name__, exc))


def _worker_main(conn, arena_path, arena_size, store_dir):
    """Worker-process loop: rebuild shards, score groups, ship state back.

    Detectors and scorers are cached across requests — the expensive parts
    (mapping weights, building module graphs) happen once per worker, and
    every request's :func:`reset_scorer_state` load makes the cached scorer
    exactly the parent's shard before scoring, so caching can never cause
    drift (a cached scorer is state-equivalent to a freshly built one).
    """
    from ..core.persistence import WeightStore
    from ..core.scoring import InferencePrograms
    from ..stream import StreamScorer
    from .router import reset_scorer_state, score_shard_group

    store = WeightStore(store_dir)
    reader = None
    detectors, scorers = {}, {}
    # Per-worker compiled-program cache — workers are persistent, so tapes
    # and stacked programs recorded on one request replay on the next.
    # Cache-event deltas ship home with every payload.
    programs = InferencePrograms()

    def fetch(desc, copy=True):
        nonlocal reader
        if isinstance(desc, np.ndarray):
            return desc
        if reader is None:
            reader = _ArenaReader(arena_path, arena_size)
        return reader.fetch(desc, copy=copy)

    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        if message[0] == "stop":
            break
        __, request_id, request = message
        shards, items, failures = {}, [], {}
        for entry in request["streams"]:
            stream_id = entry["id"]
            try:
                handle = entry["detector"]
                if handle["kind"] == "store":
                    det_key = ("store", handle["ref"])
                    if det_key not in detectors:
                        detectors[det_key] = store.load(handle["ref"])
                else:
                    det_key = ("pickle", handle["token"])
                    if handle.get("payload") is not None:
                        detectors[det_key] = pickle.loads(handle["payload"])
                detector = detectors[det_key]
                config = entry["config"]
                shard_key = (stream_id, det_key, config["window"],
                             config["min_points"], config["mode"])
                scorer = scorers.get(shard_key)
                if scorer is None:
                    scorer = StreamScorer(
                        detector, window=config["window"],
                        min_points=config["min_points"], mode=config["mode"],
                        programs=programs,
                    )
                    scorers[shard_key] = scorer
                reset_scorer_state(
                    scorer, _unpack_state(entry["state"], fetch)
                )
                # Zero-copy: pending rows feed the stacked batch buffer
                # directly from the arena mapping (consumed within this
                # request; the scalers copy on ingest).
                rows = fetch(entry["rows"], copy=False)
            except Exception as exc:  # noqa: BLE001 - isolate per stream
                failures[stream_id] = exc
                continue
            shards[stream_id] = scorer
            items.append((stream_id, rows))
        results, states = {}, {}
        if items:
            results, group_failures = score_shard_group(
                shards, items, request["batch_size"], programs=programs
            )
            failures.update(
                {sid: exc for sid, (exc, __) in group_failures.items()}
            )
            for stream_id in results:
                states[stream_id] = shards[stream_id].state_dict()
        try:
            conn.send(("done", request_id, {
                "results": results,
                "failures": {sid: _picklable(exc)
                             for sid, exc in failures.items()},
                "states": states,
                "program_cache": programs.take_counters(),
            }))
        except (OSError, BrokenPipeError, ValueError):
            break
    conn.close()


class _Worker:
    """One pool slot: process + control pipe + arena + pickle-token memory."""

    __slots__ = ("proc", "conn", "arena", "known", "dead")


class ProcessDrainPool:
    """Persistent worker processes that score same-architecture shard groups.

    Built lazily by :class:`repro.serve.StreamRouter` on the first
    ``drain_backend='process'`` drain.  :meth:`score_groups` is the whole
    API surface the router uses; :meth:`close` tears the pool down and
    removes its spool (weight store + arenas).
    """

    #: Lock discipline, machine-checked by ``repro lint`` (lock-guarded).
    #: The router serialises drains, so the lock's real job is making
    #: ``close()`` safe against a concurrent drain — and keeping the
    #: worker registry/token caches consistent if callers ever share a
    #: pool directly.
    _GUARDED_BY = {
        "_workers": "_lock",
        "_closed": "_lock",
        "_store_refs": "_lock",
        "_pickle_tokens": "_lock",
        "_prog_delta": "_lock",
    }

    def __init__(self, workers, *, arena_bytes=_DEFAULT_ARENA_BYTES,
                 start_method=None):
        import multiprocessing

        from ..core.persistence import WeightStore

        self._ctx = multiprocessing.get_context(
            start_method or _start_method()
        )
        self._spool = tempfile.mkdtemp(prefix="repro-serve-")
        self._store = WeightStore(os.path.join(self._spool, "weights"))
        shm = "/dev/shm"
        self._arena_dir = (
            shm if os.path.isdir(shm) and os.access(shm, os.W_OK)
            else self._spool
        )
        self._arena_bytes = int(arena_bytes)
        self._lock = threading.Lock()
        self._store_refs = {}  # id(detector) -> weight-store ref
        self._pickle_tokens = {}  # id(detector) -> token
        # Program-cache deltas collected from worker payloads, awaiting
        # pickup by the router (take_program_counters).
        self._prog_delta = {"hits": 0, "misses": 0, "invalidations": 0}
        self._closed = False
        self._workers = [self._spawn() for __ in range(max(int(workers), 1))]

    # ------------------------------------------------------------------ #
    def _spawn(self):
        worker = _Worker()
        worker.arena = _Arena(self._arena_bytes, self._arena_dir)
        worker.conn, child = self._ctx.Pipe()
        worker.proc = self._ctx.Process(
            target=_worker_main,
            args=(child, worker.arena.path, self._arena_bytes,
                  self._store.directory),
            daemon=True,
            name="repro-drain-worker",
        )
        worker.proc.start()
        # Close the parent's copy of the child end so a dead worker means a
        # broken pipe here, not a silent hang.
        child.close()
        worker.known = set()  # pickle tokens whose payload this worker holds
        worker.dead = False
        return worker

    def _detector_handle_locked(self, detector, worker):
        """How ``worker`` should obtain ``detector``: store ref or pickle.

        Fitted RAE/RDAE go through the weight store (published once,
        mmap-shared by every worker); anything else pickles once per worker
        and is cached under a token.  Raises when the detector cannot
        travel at all — the caller turns that into a per-stream failure.
        """
        from ..core.rae import RAE
        from ..core.rdae import RDAE

        key = id(detector)
        if isinstance(detector, (RAE, RDAE)) and detector.is_fitted():
            ref = self._store_refs.get(key)
            if ref is None:
                ref = self._store.add(detector)
                self._store_refs[key] = ref
            return {"kind": "store", "ref": ref}
        token = self._pickle_tokens.get(key)
        if token is None:
            token = "p%d" % len(self._pickle_tokens)
            self._pickle_tokens[key] = token
        handle = {"kind": "pickle", "token": token}
        if token not in worker.known:
            handle["payload"] = pickle.dumps(detector)
            worker.known.add(token)
        return handle

    def _crashed(self, group, extra):
        """The ``(results, failures, states)`` triple for a dead worker."""
        failures = dict(extra)
        for stream_id, __ in group:
            failures.setdefault(stream_id, WorkerCrashError(
                "drain worker process died while scoring stream %r; its "
                "arrivals were re-queued and a replacement worker spawned"
                % (stream_id,)
            ))
        return {}, failures, {}

    def _recv(self, worker):
        """Next response from ``worker``; WorkerCrashError when it died."""
        conn, proc = worker.conn, worker.proc
        while True:
            try:
                if conn.poll(0.05):
                    return conn.recv()
            except (EOFError, OSError):
                raise WorkerCrashError(
                    "drain worker (pid %s) closed its pipe mid-drain"
                    % proc.pid
                ) from None
            if not proc.is_alive():
                # The worker may have flushed its response right before
                # dying — drain the pipe once before declaring the crash.
                try:
                    if conn.poll(0.2):
                        return conn.recv()
                except (EOFError, OSError):
                    pass
                raise WorkerCrashError(
                    "drain worker (pid %s) died mid-drain (exit code %s)"
                    % (proc.pid, proc.exitcode)
                )

    def _retire(self, worker):
        try:
            worker.conn.close()
        except OSError:
            pass
        if worker.proc.is_alive():
            worker.proc.terminate()
        worker.proc.join(timeout=5)
        worker.arena.close()

    # ------------------------------------------------------------------ #
    def score_groups(self, shards, groups, batch_size):
        """Score ``groups`` (lists of ``(stream_id, rows)``) on the pool.

        Returns one ``(results, failures, states)`` triple per group,
        aligned with ``groups``: per-stream score arrays, per-stream
        exceptions (shard faults or :class:`WorkerCrashError`), and the
        post-ingest :meth:`~repro.stream.StreamScorer.state_dict` of every
        successfully scored shard for the parent to install.  Never raises
        for worker death — crashes become per-stream failures and the dead
        workers are respawned before returning.
        """
        with self._lock:
            if self._closed:
                raise RuntimeError("ProcessDrainPool is closed")
            return self._score_groups_locked(shards, groups, batch_size)

    def _score_groups_locked(self, shards, groups, batch_size):
        workers = self._workers
        for worker in workers:
            if not worker.dead:
                worker.arena.reset()
        outputs = [None] * len(groups)
        extra = [dict() for __ in groups]  # parent-side per-stream failures
        sent = [[] for __ in workers]
        inbox = [[] for __ in workers]  # responses drained during dispatch
        for index, group in enumerate(groups):
            windex = index % len(workers)
            worker = workers[windex]
            if worker.dead:
                outputs[index] = self._crashed(group, extra[index])
                continue
            # Eagerly drain responses the worker already flushed: a send
            # below could otherwise block on a pipe the worker is blocked
            # *writing* a large response into — a classic two-pipe deadlock.
            try:
                while worker.conn.poll(0):
                    inbox[windex].append(worker.conn.recv())
            except (EOFError, OSError):
                worker.dead = True
                outputs[index] = self._crashed(group, extra[index])
                continue
            entries = []
            for stream_id, rows in group:
                scorer = shards[stream_id]
                try:
                    handle = self._detector_handle_locked(
                        scorer.detector, worker
                    )
                except Exception as exc:  # noqa: BLE001 - unpicklable
                    extra[index][stream_id] = exc
                    continue
                entries.append({
                    "id": stream_id,
                    "config": {"window": scorer.window,
                               "min_points": scorer.min_points,
                               "mode": scorer.mode},
                    "detector": handle,
                    "state": _pack_state(scorer.state_dict(), worker.arena),
                    "rows": _ship(worker.arena, np.stack(rows)),
                })
            if not entries:
                outputs[index] = ({}, extra[index], {})
                continue
            try:
                worker.conn.send(("score", index, {
                    "batch_size": batch_size,
                    "streams": entries,
                }))
            except (OSError, BrokenPipeError, ValueError):
                worker.dead = True
                outputs[index] = self._crashed(group, extra[index])
                continue
            sent[windex].append(index)
        for windex, queued in enumerate(sent):
            worker = workers[windex]
            for index in queued:
                if inbox[windex]:
                    __, __rid, payload = inbox[windex].pop(0)
                elif worker.dead:
                    outputs[index] = self._crashed(groups[index], extra[index])
                    continue
                else:
                    try:
                        __, __rid, payload = self._recv(worker)
                    except WorkerCrashError:
                        worker.dead = True
                        outputs[index] = self._crashed(
                            groups[index], extra[index]
                        )
                        continue
                failures = dict(payload["failures"])
                failures.update(extra[index])
                for key, value in payload.get("program_cache", {}).items():
                    self._prog_delta[key] += value
                outputs[index] = (
                    payload["results"], failures, payload["states"]
                )
        for windex, worker in enumerate(workers):
            if worker.dead:
                self._retire(worker)
                workers[windex] = self._spawn()
        return outputs

    def take_program_counters(self):
        """Collected per-worker compiled-program cache deltas; resets them.

        Workers attach their :class:`repro.core.InferencePrograms` deltas
        to every drain payload; the router calls this after a drain (and in
        ``stats()``/``save()``) to fold them into its persistent totals.
        """
        with self._lock:
            out = dict(self._prog_delta)
            for key in self._prog_delta:
                self._prog_delta[key] = 0
            return out

    def close(self):
        """Stop the workers and remove the spool; idempotent.

        The worker list is detached under the lock (so a concurrent
        ``score_groups`` either completed first or sees the pool closed),
        but the joins run outside it — they block for seconds on a wedged
        worker.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            workers, self._workers = self._workers, []
        for worker in workers:
            try:
                worker.conn.send(("stop",))
            except (OSError, BrokenPipeError, ValueError):
                pass
        for worker in workers:
            worker.proc.join(timeout=5)
            self._retire(worker)
        shutil.rmtree(self._spool, ignore_errors=True)
