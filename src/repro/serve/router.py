"""StreamRouter: sharded multi-stream serving with batched drains.

One :class:`repro.stream.StreamScorer` serves one stream.  Production
monitoring serves fleets — thousands of independent series arriving
interleaved and in bursts.  :class:`StreamRouter` owns many named streams
(one scorer shard each, keyed by stream id) behind a bounded ingestion
queue that decouples *arrival* from *scoring*:

* ``submit`` / ``submit_many`` enqueue arrivals in O(1) and never run a
  forward pass; the queue is the backpressure boundary (see ``on_full``).
* ``drain`` pops the queued burst, ingests each stream's pending points as
  one micro-batch, and refreshes every session-backed shard that shares an
  architecture fingerprint and a slice shape through **one** grouped
  forward pass (:func:`repro.core.batched_session_scores`) — with ``S``
  same-spec shards (shared detector *or* per-stream fitted copies), a
  drain pays ~1 forward instead of ``S``.  Shards whose fitted
  architecture reports a bounded receptive field contribute only window
  *tails* to those forwards (O(receptive field) per shard, not O(window)).
  Grouped forwards replay **compiled inference programs** (grad-free score
  tapes; stacked-weight programs for cross-detector groups) cached per
  router — ``repro serve --eager`` / ``REPRO_EAGER=1`` opts back into
  eager forwards, bit-identically.

Per-stream scores are identical (to floating-point batching tolerance) to a
dedicated :class:`StreamScorer` fed the same chunks: the router runs the
scorer's own staged chunk protocol, it only reorganises *when* the forward
passes happen.

Concurrency contract
--------------------

``submit``/``submit_many``/``add_stream`` are thread-safe: queue and
per-stream counter mutation happens under one internal lock, so any number
of producer threads may feed the router while another thread drains.
``stats``/``stream_stats`` take the same lock once and return a consistent
snapshot (counters never tear mid-drain).  ``drain`` itself is serialised —
concurrent calls queue up on a drain lock so per-stream chunk ordering is
preserved — and parallelism *within* a drain comes from the ``threaded``
backend: ``StreamRouter(drain_backend="threaded", workers=4)`` partitions
the burst into same-architecture shard groups (the unit that shares
grouped forwards) and scores the groups concurrently on a worker pool, which
overlaps independent detectors' NumPy/BLAS work.  ``save``/``restore``
must not race an active ``drain`` of the same router.
"""

from __future__ import annotations

import json
import os
import threading
from collections import deque

import numpy as np

from ..core import InferencePrograms, batched_session_scores, drain_group_key
from ..stream import StreamScorer

__all__ = ["StreamRouter", "QueueFullError", "DrainError", "score_shard_group"]

_MANIFEST = "router.json"
_STATE = "state.npz"

_BACKENDS = ("serial", "threaded", "process")


class QueueFullError(RuntimeError):
    """Raised by ``submit`` when the ingestion queue is at capacity."""


class DrainError(RuntimeError):
    """Raised by ``drain`` when one or more shards failed to ingest.

    A faulty shard (most commonly an unfitted detector) must not destroy
    the burst: healthy streams are scored normally and their results are
    attached as :attr:`results`; the failing streams' arrivals are returned
    to the front of the queue and their exceptions collected in
    :attr:`failures` (``{stream_id: exception}``).
    """

    def __init__(self, message, results, failures):
        super().__init__(message)
        self.results = results
        self.failures = failures


def reset_scorer_state(scorer, state):
    """Force ``scorer`` to exactly the retained state ``state``.

    Unlike :meth:`repro.stream.StreamScorer.load_state_dict` (which treats
    an ``empty`` state as "nothing to restore"), this also *clears* live
    state when the target is empty — the semantics both the fault-isolation
    rollback and the process backend's workers need: after it, the scorer
    is indistinguishable from one that only ever saw ``state``.
    """
    if state["kind"] == "empty":
        scorer._session = None
        scorer._ring = None
        return scorer
    return scorer.load_state_dict(state)


def score_shard_group(shards, items, batch_size, programs=None):
    """Score one shard group: ``items = [(stream_id, rows)]``.

    The worker unit of every drain backend — the serial path runs it on the
    calling thread, the threaded pool on worker threads, and the process
    backend ships it (with each shard's state) to a worker process, which
    runs this very function.  Ingests each stream's pending points as one
    micro-batch, then refreshes the group's session-backed shards through
    grouped *tail* forwards (:func:`repro.core.batched_session_scores` with
    the chunk sizes) — bounded slices for receptive-field-capable
    architectures, full windows otherwise.  Touches only the ``shards``
    mapping it is given, never a queue or counters, so groups score
    concurrently without locks.

    Fault isolation covers the whole shard lifecycle: a stream that fails
    to *ingest* (e.g. an unfitted detector) never mutated its shard, and a
    stream whose detector fails while *scoring* is rolled back to its
    pre-chunk state (:func:`reset_scorer_state` of a snapshot), so the
    caller can re-queue its rows without double-ingesting them on the next
    drain.  When a faulty detector poisons a *grouped* forward, the group
    falls back to per-shard scoring so only the faulty stream(s) fail —
    bit-identically for the healthy ones (stable kernels make each
    position's arithmetic independent of the stacked batch).

    ``programs`` (an :class:`repro.core.InferencePrograms`, or None for
    eager) is handed to :func:`repro.core.batched_session_scores`; groups
    whose shards hold *distinct same-spec detectors* then replay one
    stacked compiled forward instead of per-detector eager forwards —
    bit-identically.

    Returns ``(results, failures)`` where failures map stream ids to
    ``(exception, rows)`` so the caller can re-queue.
    """
    results, failures, deferred = {}, {}, []
    for stream_id, rows in items:
        scorer = shards[stream_id]
        # Pre-chunk snapshot: scoring failures must roll the shard back so
        # the re-queued rows are not double-ingested on the next drain.
        # (Ingest failures need no rollback — _ingest_chunk validates
        # before it mutates.)
        snapshot = scorer.state_dict()
        chunk = (rows if isinstance(rows, np.ndarray) and rows.ndim == 2
                 else np.stack(rows))
        try:
            n, needs_scores = scorer._ingest_chunk(chunk)
        except Exception as exc:  # noqa: BLE001 - isolate faulty shards
            failures[stream_id] = (exc, rows)
            continue
        if not needs_scores:
            results[stream_id] = np.zeros(n)
        elif scorer._session is not None:
            deferred.append((stream_id, scorer, n, snapshot))
        else:
            try:
                results[stream_id] = scorer._collect_chunk(
                    n, scorer._window_scores()
                )
            except Exception as exc:  # noqa: BLE001
                reset_scorer_state(scorer, snapshot)
                failures[stream_id] = (exc, rows)
    if deferred:
        sessions = [scorer._session for __, scorer, __n, __s in deferred]
        counts = [n for __, __s, n, __snap in deferred]
        try:
            tails = batched_session_scores(
                sessions, batch_size=batch_size, tail=counts,
                programs=programs,
            )
        except Exception:  # noqa: BLE001 - a faulty detector in the stack
            rows_by_stream = dict(items)
            for stream_id, scorer, n, snapshot in deferred:
                try:
                    results[stream_id] = scorer._collect_chunk(
                        n, scorer._session.last_scores(n)
                    )
                except Exception as exc:  # noqa: BLE001
                    reset_scorer_state(scorer, snapshot)
                    failures[stream_id] = (exc, rows_by_stream[stream_id])
        else:
            for (stream_id, scorer, n, __snap), tail in zip(deferred, tails):
                results[stream_id] = scorer._collect_chunk(n, tail)
    return results, failures


class StreamRouter:
    """Route named streams to scorer shards; score bursts as micro-batches.

    Parameters
    ----------
    detector: default detector for shards created on first sight of a new
        stream id (and by ``add_stream`` calls that pass none).  Sharing one
        fitted RAE/RDAE across shards is what lets a drain group their
        forward passes; per-stream detectors are allowed but score solo.
    window / min_points / mode: per-shard :class:`StreamScorer` defaults,
        overridable per stream in :meth:`add_stream`.
    queue_limit: bound on queued-but-unscored arrivals across all streams.
    on_full: backpressure policy when the queue is at capacity:
        ``'error'`` (default) raises :class:`QueueFullError` — the caller
        must drain; ``'drop_oldest'`` evicts the oldest queued arrival to
        make room and counts it against its stream's ``dropped`` stat.
    batch_size: maximum shards stacked into one grouped forward per drain.
    drain_backend: ``'serial'`` (default — score the burst on the calling
        thread), ``'threaded'`` (score same-architecture shard groups
        concurrently on a worker *thread* pool — overlaps NumPy/BLAS work
        but stays GIL-bound for the Python glue), or ``'process'`` (score
        the groups on a pool of persistent worker **processes** — true
        CPU parallelism; arrivals and shard state travel through
        shared-memory arenas and fitted RAE/RDAE weights through an
        mmap'd read-only :class:`repro.core.WeightStore`, so N workers
        share one physical copy of each detector; see :mod:`.workers`).
        All three backends produce bit-identical scores — they change
        where forwards run, never what they compute.  ``None`` picks
        ``'threaded'`` when ``workers > 1``.
    workers: worker-pool size (default 4 for ``'threaded'``, 2 for
        ``'process'``; ignored by ``'serial'``).
    """

    #: Lock discipline, machine-checked by ``repro lint`` (lock-guarded):
    #: every access to these attributes outside __init__/__del__ and
    #: *_locked helpers must sit inside ``with self._lock:``.
    _GUARDED_BY = {
        "_queue": "_lock",
        "_submitted": "_lock",
        "_scored": "_lock",
        "_dropped": "_lock",
        "_dims": "_lock",
        "_drains": "_lock",
        "_shards": "_lock",
        "_pool": "_lock",
        "_procs": "_lock",
        "_prog_counters": "_lock",
    }

    def __init__(self, detector=None, *, window=256, min_points=2,
                 mode="auto", queue_limit=1024, batch_size=32,
                 on_full="error", drain_backend=None, workers=None):
        if detector is not None:
            from ..api import as_detector

            # Coerce specs/names here (not per shard) so every shard shares
            # ONE built instance — which is what lets drains group forwards.
            detector = as_detector(detector)
        self.detector = detector
        self.window = int(window)
        self.min_points = int(min_points)
        self.mode = mode
        self.queue_limit = int(queue_limit)
        if self.queue_limit < 1:
            raise ValueError("queue_limit must be >= 1")
        if on_full not in ("error", "drop_oldest"):
            raise ValueError(
                "on_full must be 'error' or 'drop_oldest', got %r" % on_full
            )
        self.on_full = on_full
        self.batch_size = max(int(batch_size), 1)
        if drain_backend is None:
            drain_backend = (
                "threaded" if workers is not None and int(workers) > 1
                else "serial"
            )
        if drain_backend not in _BACKENDS:
            raise ValueError(
                "drain_backend must be one of %s, got %r"
                % ("/".join(_BACKENDS), drain_backend)
            )
        self.drain_backend = drain_backend
        if workers is None:
            workers = {"threaded": 4, "process": 2}.get(drain_backend, 1)
        self.workers = max(int(workers), 1)
        self._shards = {}
        self._dims = {}  # per-stream row width, fixed by the first arrival
        self._queue = deque()
        self._submitted = {}
        self._scored = {}
        self._dropped = {}
        self._drains = 0
        # _lock guards the queue, counters and shard registry (submit-side
        # state); _drain_lock serialises whole drains.  Lock order: a drain
        # takes _drain_lock first, then _lock for queue/counter mutation.
        self._lock = threading.RLock()
        self._drain_lock = threading.Lock()
        self._pool = None  # lazily-built worker pool (threaded backend)
        self._procs = None  # lazily-built process pool (process backend)
        # Compiled-inference program cache shared by every shard of this
        # router (internally locked; not in _GUARDED_BY).  _prog_counters
        # holds the persistent totals stats()/save absorb drain deltas
        # into — on the process backend the workers hold their own caches
        # and ship deltas back with each payload.
        self._programs = InferencePrograms()
        self._prog_counters = {"hits": 0, "misses": 0, "invalidations": 0}

    # ------------------------------------------------------------------ #
    # stream management
    def add_stream(self, stream_id, detector=None, *, window=None,
                   min_points=None, mode=None):
        """Create a shard for ``stream_id``; returns its scorer.

        Thread-safe: shard registration happens under the router lock, so
        concurrent producers racing to create the same stream see exactly
        one winner (the loser gets the usual ``ValueError``).
        """
        if detector is not None:
            from ..api import as_detector

            detector = as_detector(detector)
        with self._lock:
            if stream_id in self._shards:
                raise ValueError("stream %r already exists" % (stream_id,))
            detector = detector if detector is not None else self.detector
            if detector is None:
                raise ValueError(
                    "no detector for stream %r: pass one here or give the "
                    "router a default" % (stream_id,)
                )
            scorer = StreamScorer(
                detector,
                window=self.window if window is None else window,
                min_points=self.min_points if min_points is None else min_points,
                mode=self.mode if mode is None else mode,
                programs=self._programs,
            )
            self._shards[stream_id] = scorer
            self._submitted.setdefault(stream_id, 0)
            self._scored.setdefault(stream_id, 0)
            self._dropped.setdefault(stream_id, 0)
            return scorer

    def stream(self, stream_id):
        """The shard scorer serving ``stream_id``."""
        with self._lock:
            return self._shards[stream_id]

    def streams(self):
        """Stream ids currently served, in creation order."""
        with self._lock:
            return list(self._shards)

    def __contains__(self, stream_id):
        with self._lock:
            return stream_id in self._shards

    def __len__(self):
        with self._lock:
            return len(self._shards)

    # ------------------------------------------------------------------ #
    # ingestion
    def _ensure_stream_locked(self, stream_id):
        if stream_id not in self._shards:
            if self.detector is None:
                raise KeyError(
                    "unknown stream %r and the router has no default "
                    "detector; add_stream() it first" % (stream_id,)
                )
            self.add_stream(stream_id)

    def _check_dims_locked(self, stream_id, width):
        # Validate at submission, not at drain: a malformed arrival must be
        # rejected here, never poison a whole drained burst.
        expected = self._dims.get(stream_id)
        if expected is None:
            scorer = self._shards[stream_id]
            if scorer._session is not None:
                expected = scorer._session.dims
            elif scorer._ring is not None:
                expected = scorer._ring.dims
        if expected is not None and width != expected:
            raise ValueError(
                "stream %r expects %d-dimensional observations, got %d"
                % (stream_id, expected, width)
            )
        self._dims[stream_id] = width

    def _enqueue_locked(self, stream_id, row):
        if len(self._queue) >= self.queue_limit:
            if self.on_full == "error":
                raise QueueFullError(
                    "ingestion queue full (%d queued arrivals); drain() the "
                    "router or raise queue_limit" % len(self._queue)
                )
            old_sid, __ = self._queue.popleft()
            self._dropped[old_sid] += 1
        self._queue.append((stream_id, row))
        self._submitted[stream_id] += 1

    def submit(self, stream_id, point):
        """Enqueue one arrival for ``stream_id``; O(1), never scores.

        Thread-safe: validation, enqueueing and counter updates happen
        atomically under the router lock, so concurrent producers never
        tear the queue or the per-stream counters (see the module-level
        concurrency contract).
        """
        row = np.asarray(point, dtype=np.float64).reshape(-1)
        with self._lock:
            self._ensure_stream_locked(stream_id)
            self._check_dims_locked(stream_id, row.shape[0])
            self._enqueue_locked(stream_id, row)
        return self

    def submit_many(self, stream_id, points):
        """Enqueue every row of a ``(n, dims)`` (or ``(n,)``) chunk.

        Thread-safe, and atomic as a chunk: the rows enqueue contiguously
        even when other producers are submitting concurrently.
        """
        arr = np.asarray(points, dtype=np.float64)
        if arr.ndim == 1:
            arr = arr[:, None]
        with self._lock:
            self._ensure_stream_locked(stream_id)
            if arr.shape[0]:
                self._check_dims_locked(stream_id, arr.shape[1])
            for row in arr:
                self._enqueue_locked(stream_id, row)
        return self

    # ------------------------------------------------------------------ #
    # scoring
    def _score_group(self, shards, items):
        """In-process scoring of one shard group (serial/threaded unit).

        ``shards`` is the drain's snapshot of the participating shards,
        cut under the router lock — worker threads must never walk
        ``self._shards`` while producers register new streams.
        """
        return score_shard_group(
            shards, items, self.batch_size, programs=self._programs
        )

    def _drain_pool(self):
        """The threaded backend's worker pool, built on first use."""
        with self._lock:
            if self._pool is None:
                from concurrent.futures import ThreadPoolExecutor

                self._pool = ThreadPoolExecutor(
                    max_workers=self.workers,
                    thread_name_prefix="repro-drain",
                )
            return self._pool

    def _process_pool(self):
        """The process backend's worker-process pool, built on first use."""
        with self._lock:
            if self._procs is None:
                from .workers import ProcessDrainPool

                self._procs = ProcessDrainPool(self.workers)
            return self._procs

    def close(self):
        """Shut down the drain backend's workers (if they ever ran).

        Serial routers need no cleanup; threaded and process routers should
        be closed (or have their process exit) when serving stops — the
        process backend additionally removes its weight-store spool
        directory and shared-memory arenas.  Idempotent.  The pools are
        detached under the lock but torn down outside it — shutdown blocks
        on in-flight work, and holding the router lock across that would
        deadlock a concurrent submit.
        """
        with self._lock:
            pool, self._pool = self._pool, None
            procs, self._procs = self._procs, None
        if pool is not None:
            pool.shutdown(wait=True)
        if procs is not None:
            procs.close()

    def _drain_process(self, shards, group_list):
        """Score the burst's shard groups on the worker-process pool.

        Each group travels to one worker as (stream config, shard state,
        pending rows); the worker rebuilds the shards — detector weights
        from the shared mmap'd store, state from the shipped arrays — runs
        :func:`score_shard_group`, and returns scores plus the post-ingest
        shard states, which are installed back into the parent's shards.
        The parent therefore stays authoritative: shard state advances
        only on success, so a crashed worker (its group's streams come
        back as :class:`repro.serve.workers.WorkerCrashError` failures,
        and the pool has already respawned a replacement) leaves the
        parent exactly as before the drain — re-queued arrivals replay
        with zero loss or duplication.
        """
        packed = self._process_pool().score_groups(
            shards, group_list, self.batch_size
        )
        scored = []
        for group, (results, failures, states) in zip(group_list, packed):
            rows_by_sid = dict(group)
            for stream_id, state in states.items():
                shards[stream_id].load_state_dict(state)
            scored.append((results, {
                stream_id: (exc, rows_by_sid[stream_id])
                for stream_id, exc in failures.items()
            }))
        return scored

    def drain(self, max_points=None):
        """Score queued arrivals; returns ``{stream_id: scores}``.

        Pops up to ``max_points`` arrivals (all by default) in FIFO order,
        ingests each stream's pending points as one micro-batch, then
        refreshes all session-backed shards in grouped forward passes.
        Scores arrive in per-stream submission order; streams appear in
        first-arrival order of this drain.

        Concurrency: drains are serialised against each other (a second
        caller blocks until the first finishes), producers may keep
        submitting throughout, and with ``drain_backend='threaded'`` the
        burst's same-architecture shard groups score concurrently on the
        worker pool.

        A shard that fails to ingest (e.g. an unfitted detector) never
        destroys the burst: the other streams are scored normally, the
        faulty streams' arrivals return to the front of the queue, and a
        :class:`DrainError` carrying both the healthy results and the
        per-stream failures is raised.
        """
        with self._drain_lock:
            with self._lock:
                count = len(self._queue)
                if max_points is not None:
                    count = min(count, max(int(max_points), 0))
                if not count:
                    return {}
                chunks = {}
                for __ in range(count):
                    stream_id, row = self._queue.popleft()
                    chunks.setdefault(stream_id, []).append(row)
                # Snapshot the participating shards while the lock is
                # held: scoring runs lock-free (possibly on worker
                # threads), and must not walk self._shards while a
                # producer's add_stream mutates it.  Shard objects are
                # safe to score unlocked — only this drain touches them
                # (drains are serialised, submit never runs a scorer).
                shards = {stream_id: self._shards[stream_id]
                          for stream_id in chunks}
            # Partition the burst into same-architecture shard groups —
            # the unit that shares grouped forwards, hence the unit of
            # backend parallelism.  Keyed by architecture fingerprint, so
            # distinct same-spec detectors (one per stream) drain through
            # one stacked forward; detectors the fingerprint declines
            # (unfitted, baselines) fall back to identity keys.
            groups = {}
            for stream_id, rows in chunks.items():
                key = drain_group_key(shards[stream_id].detector)
                groups.setdefault(key, []).append((stream_id, rows))
            group_list = list(groups.values())
            if self.drain_backend == "process":
                scored = self._drain_process(shards, group_list)
            elif self.drain_backend == "threaded" and len(group_list) > 1:
                futures = [self._drain_pool().submit(
                               self._score_group, shards, group)
                           for group in group_list]
                scored = [future.result() for future in futures]
            else:
                scored = [self._score_group(shards, group)
                          for group in group_list]
            results, failures = {}, {}
            for group_results, group_failures in scored:
                results.update(group_results)
                failures.update(group_failures)
            with self._lock:
                for stream_id, (__, rows) in failures.items():
                    for row in reversed(rows):
                        self._queue.appendleft((stream_id, row))
                for stream_id, scores in results.items():
                    self._scored[stream_id] += scores.shape[0]
                self._drains += 1
                self._absorb_program_counters_locked()
        # Streams appear in first-arrival order of the drain, exactly as
        # the serial implementation always returned them.
        results = {stream_id: results[stream_id]
                   for stream_id in chunks if stream_id in results}
        if failures:
            raise DrainError(
                "%d stream(s) failed to ingest (%s); their arrivals were "
                "re-queued, %d healthy stream(s) scored (see .results)"
                % (len(failures),
                   ", ".join("%r: %s" % (sid, exc)
                             for sid, (exc, __) in failures.items()),
                   len(results)),
                results,
                {sid: exc for sid, (exc, __) in failures.items()},
            )
        return results

    # ------------------------------------------------------------------ #
    # persistence-backed shard recovery
    def _persistable_detector(self, detector, directory, index):
        """Manifest entry for ``detector``: spec and/or npz weights."""
        from ..api import DetectorSpec, SpecError
        from ..core import RAE, RDAE, save_detector

        entry = {"spec": None, "weights": None}
        try:
            entry["spec"] = DetectorSpec.from_detector(detector).to_dict()
        except SpecError:
            pass  # not a registry class; weights may still carry it
        if isinstance(detector, (RAE, RDAE)) and detector.is_fitted():
            filename = "detector%d.npz" % index
            save_detector(detector, os.path.join(directory, filename))
            entry["weights"] = filename
        if entry["spec"] is None and entry["weights"] is None:
            raise ValueError(
                "cannot persist %s for restore: not a registry method and "
                "not a saveable fitted RAE/RDAE" % type(detector).__name__
            )
        return entry

    def save(self, directory):
        """Persist the router so :meth:`restore` rebuilds it elsewhere.

        Writes ``router.json`` (config, per-detector spec/weights refs,
        per-stream scorer configs + counters, the still-queued arrivals)
        and ``state.npz`` (every shard's retained window) into
        ``directory``.  Each distinct detector is saved once — as a
        :class:`repro.api.DetectorSpec` when it is a registry method, plus
        npz weights when it is a fitted RAE/RDAE — so a restored shard
        round-trips *how it was built*, not just its numbers.

        Returns the manifest path.  Takes the drain and router locks, so
        concurrent producers are held off while the snapshot is cut; do
        not call it from inside a drain.
        """
        os.makedirs(directory, exist_ok=True)
        with self._drain_lock, self._lock:
            return self._save_locked(directory)

    def _save_locked(self, directory):
        self._absorb_program_counters_locked()
        detectors, by_id = [], {}

        def register(detector):
            key = id(detector)
            if key not in by_id:
                by_id[key] = len(detectors)
                detectors.append(
                    self._persistable_detector(detector, directory, len(detectors))
                )
            return by_id[key]

        default = None if self.detector is None else register(self.detector)
        streams, arrays = [], {}
        for i, (stream_id, scorer) in enumerate(self._shards.items()):
            state = scorer.state_dict()
            arrays["s%d::window" % i] = state["window"]
            if "cache_scores" in state:
                # The tail-forward splice cache: restoring it lets the
                # shard resume bounded pushes without a re-anchor forward.
                arrays["s%d::cache" % i] = state["cache_scores"]
            # score/score_new shards evaluate fitted state at drain time;
            # unless the detector is stateless-scoring, only restored
            # weights (or a restore-time override) can resume them.
            needs_fit = (
                scorer.mode in ("score", "score_new")
                and not getattr(scorer.detector, "stateless_scoring", False)
            )
            index = register(scorer.detector)
            if (needs_fit and detectors[index]["weights"] is None
                    and index != default):
                # The restore-time detector= override only replaces the
                # router DEFAULT; a weightless per-stream detector would be
                # a dead end no restore() call could ever rebuild — refuse
                # now, while the caller can still fix the configuration.
                raise ValueError(
                    "stream %r (mode %r) has a per-stream detector whose "
                    "fitted state cannot be persisted (%s, spec-only) and "
                    "which no restore() override could replace. Serve it "
                    "in 'refit' mode, use a persistable RAE/RDAE, or make "
                    "it the router default."
                    % (stream_id, scorer.mode,
                       type(scorer.detector).__name__)
                )
            streams.append({
                "id": stream_id,
                "needs_fitted_detector": needs_fit,
                "detector": index,
                "window": scorer.window,
                "min_points": scorer.min_points,
                "mode": scorer.mode,
                "kind": state["kind"],
                "dims": state["dims"],
                "total": state["total"],
                "cache_total": state.get("cache_total"),
                "submitted": self._submitted[stream_id],
                "scored": self._scored[stream_id],
                "dropped": self._dropped[stream_id],
                "dims_seen": self._dims.get(stream_id),
            })
        manifest = {
            "format": "repro.router",
            "version": 1,
            "config": {
                "window": self.window,
                "min_points": self.min_points,
                "mode": self.mode,
                "queue_limit": self.queue_limit,
                "batch_size": self.batch_size,
                "on_full": self.on_full,
                "drain_backend": self.drain_backend,
                "workers": self.workers,
            },
            "detectors": detectors,
            "default_detector": default,
            "streams": streams,
            # JSON floats round-trip exactly in Python, so re-queued
            # arrivals score identically after a restore.
            "queue": [[stream_id, row.tolist()]
                      for stream_id, row in self._queue],
            "drains": self._drains,
            "program_cache": dict(self._prog_counters),
        }
        np.savez(os.path.join(directory, _STATE), **arrays)
        path = os.path.join(directory, _MANIFEST)
        with open(path, "w") as handle:
            json.dump(manifest, handle, indent=2)
            handle.write("\n")
        return path

    @classmethod
    def restore(cls, directory, detector=None, drain_backend=None,
                workers=None):
        """Rebuild a router saved by :meth:`save`; scoring resumes exactly.

        Every shard is rebuilt from its saved spec/weights and reloaded
        with its retained window, arrival counts, and stats, and the
        still-queued arrivals are re-queued — feeding the restored router
        the same subsequent arrivals as a never-restarted one produces the
        same per-stream scores.

        ``detector=`` substitutes for the saved *default* detector when its
        fitted state could not be persisted (spec-only save); saved npz
        weights always win over the override — the retained session
        windows were scaled by the saved detector, so replacing it would
        silently change scores.  Note a
        spec-only restore rebuilds detectors *unfitted*: fine for ``refit``
        shards (the paper's transductive protocol refits per window
        anyway) and stateless-scoring detectors, but ``score``/
        ``score_new`` shards whose fitted state could not be persisted are
        rejected here, up front, with the remedy — never at first drain.

        ``drain_backend=``/``workers=`` override the saved execution
        backend (they change *where* forwards run, never what they
        compute, so overriding them cannot perturb restored scores).
        """
        with open(os.path.join(directory, _MANIFEST)) as handle:
            manifest = json.load(handle)
        if manifest.get("format") != "repro.router":
            raise ValueError("%s is not a router manifest" % directory)
        config = manifest["config"]
        built, spec_only = {}, set()

        def build(index):
            if index is None:
                return None
            if index not in built:
                entry = manifest["detectors"][index]
                # Saved weights always win: the retained session windows
                # were scaled by THAT detector, so substituting another
                # would silently change scores.  The override is a
                # fallback for a default whose state could not persist.
                if entry["weights"]:
                    from ..core import load_detector

                    built[index] = load_detector(
                        os.path.join(directory, entry["weights"])
                    )
                elif detector is not None and index == manifest["default_detector"]:
                    built[index] = detector
                else:
                    from ..api import DetectorSpec

                    # A spec rebuild is UNFITTED — fine for refit shards
                    # and stateless-scoring detectors, fatal for shards
                    # that score through fitted state (checked below).
                    built[index] = DetectorSpec.from_dict(entry["spec"]).build()
                    spec_only.add(index)
            return built[index]

        router = cls(
            build(manifest["default_detector"]),
            window=config["window"],
            min_points=config["min_points"],
            mode=config["mode"],
            queue_limit=config["queue_limit"],
            batch_size=config["batch_size"],
            on_full=config["on_full"],
            drain_backend=(drain_backend if drain_backend is not None
                           else config.get("drain_backend")),
            workers=(workers if workers is not None
                     else config.get("workers")),
        )
        state_path = os.path.join(directory, _STATE)
        blob = np.load(state_path) if os.path.exists(state_path) else None
        for i, entry in enumerate(manifest["streams"]):
            shard_detector = build(entry["detector"])
            if (entry.get("needs_fitted_detector")
                    and entry["detector"] in spec_only):
                raise ValueError(
                    "stream %r (mode %r) scores through fitted state, but "
                    "its detector could only be rebuilt unfitted from its "
                    "spec (no saved weights) — resuming would fail on the "
                    "first drain. Pass detector= with a fitted instance, "
                    "or serve this method in 'refit' mode."
                    % (entry["id"], entry["mode"])
                )
            scorer = router.add_stream(
                entry["id"],
                detector=shard_detector,
                window=entry["window"],
                min_points=entry["min_points"],
                mode=entry["mode"],
            )
            state = {
                "kind": entry["kind"],
                "dims": entry["dims"],
                "window": blob["s%d::window" % i] if blob is not None
                else np.zeros((0, 0)),
                "total": entry["total"],
            }
            if (entry.get("cache_total") is not None and blob is not None
                    and "s%d::cache" % i in blob):
                state["cache_scores"] = blob["s%d::cache" % i]
                state["cache_total"] = entry["cache_total"]
            scorer.load_state_dict(state)
            router._submitted[entry["id"]] = entry["submitted"]
            router._scored[entry["id"]] = entry["scored"]
            router._dropped[entry["id"]] = entry["dropped"]
            if entry.get("dims_seen") is not None:
                router._dims[entry["id"]] = entry["dims_seen"]
        for stream_id, row in manifest["queue"]:
            # Straight onto the queue: these arrivals were already counted
            # by submit() before the save.
            router._queue.append((stream_id, np.asarray(row, dtype=np.float64)))
        router._drains = manifest["drains"]
        # Program-cache counters persist as observability totals (the
        # compiled programs themselves are process-local and recompile on
        # first drain — a miss, counted on top of the restored totals).
        saved_counters = manifest.get("program_cache")
        if saved_counters:
            router._prog_counters.update(saved_counters)
        return router

    # ------------------------------------------------------------------ #
    # observability
    def _absorb_program_counters_locked(self):
        """Fold pending compiled-path cache deltas into the persistent
        totals; caller must hold ``self._lock``.

        Two delta sources: the in-process :class:`InferencePrograms` shared
        by the serial/threaded backends, and — when the process backend has
        ever run — the per-worker caches, whose deltas the pool collected
        from drain payloads.
        """
        deltas = [self._programs.take_counters()]
        if self._procs is not None:
            deltas.append(self._procs.take_program_counters())
        for delta in deltas:
            for key, value in delta.items():
                self._prog_counters[key] += value

    def _stream_stats_locked(self, stream_id):
        """One stream's counters; caller must hold ``self._lock``."""
        scorer = self._shards[stream_id]
        submitted = self._submitted[stream_id]
        scored = self._scored[stream_id]
        dropped = self._dropped[stream_id]
        return {
            "submitted": submitted,
            "scored": scored,
            "dropped": dropped,
            # Arrivals accepted but not yet scored — the stream's queue lag.
            "lag": submitted - scored - dropped,
            "total": scorer.total,
            "window_fill": len(scorer),
            "mode": scorer.mode,
        }

    def stream_stats(self, stream_id):
        """Counters for one stream: submitted/scored/dropped/lag/total.

        The counters are read under one lock acquisition, so they are a
        consistent snapshot — ``submitted == scored + dropped + lag`` holds
        even while producers submit and a drain commits concurrently
        (field-by-field reads could otherwise tear mid-drain).
        """
        with self._lock:
            return self._stream_stats_locked(stream_id)

    def stats(self):
        """Router-level stats plus a per-stream breakdown.

        Like :meth:`stream_stats`, the whole report — router totals *and*
        every per-stream block — is assembled under a single lock
        acquisition: totals always equal the sum of their per-stream
        rows, and no counter can tear against a concurrent drain.
        """
        with self._lock:
            self._absorb_program_counters_locked()
            return {
                "streams": len(self._shards),
                "queue_depth": len(self._queue),
                "queue_limit": self.queue_limit,
                "drains": self._drains,
                "submitted": sum(self._submitted.values()),
                "scored": sum(self._scored.values()),
                "dropped": sum(self._dropped.values()),
                # Compiled-inference program cache: hits/misses are tape
                # and stacked-program lookups, invalidations are weight
                # hot-swaps detected at replay time.  Aggregated across
                # backends (worker processes ship their deltas home).
                "program_cache": dict(self._prog_counters),
                "per_stream": {
                    stream_id: self._stream_stats_locked(stream_id)
                    for stream_id in self._shards
                },
            }
