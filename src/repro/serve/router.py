"""StreamRouter: sharded multi-stream serving with batched drains.

One :class:`repro.stream.StreamScorer` serves one stream.  Production
monitoring serves fleets — thousands of independent series arriving
interleaved and in bursts.  :class:`StreamRouter` owns many named streams
(one scorer shard each, keyed by stream id) behind a bounded ingestion
queue that decouples *arrival* from *scoring*:

* ``submit`` / ``submit_many`` enqueue arrivals in O(1) and never run a
  forward pass; the queue is the backpressure boundary (see ``on_full``).
* ``drain`` pops the queued burst, ingests each stream's pending points as
  one micro-batch, and refreshes every session-backed shard that shares a
  fitted detector and window shape through **one** grouped forward pass
  (:func:`repro.core.batched_session_scores`) — with ``S`` same-detector
  shards, a drain pays ~1 forward instead of ``S``.

Per-stream scores are identical (to floating-point batching tolerance) to a
dedicated :class:`StreamScorer` fed the same chunks: the router runs the
scorer's own staged chunk protocol, it only reorganises *when* the forward
passes happen.
"""

from __future__ import annotations

import json
import os
from collections import deque

import numpy as np

from ..core import batched_session_scores
from ..stream import StreamScorer

__all__ = ["StreamRouter", "QueueFullError", "DrainError"]

_MANIFEST = "router.json"
_STATE = "state.npz"


class QueueFullError(RuntimeError):
    """Raised by ``submit`` when the ingestion queue is at capacity."""


class DrainError(RuntimeError):
    """Raised by ``drain`` when one or more shards failed to ingest.

    A faulty shard (most commonly an unfitted detector) must not destroy
    the burst: healthy streams are scored normally and their results are
    attached as :attr:`results`; the failing streams' arrivals are returned
    to the front of the queue and their exceptions collected in
    :attr:`failures` (``{stream_id: exception}``).
    """

    def __init__(self, message, results, failures):
        super().__init__(message)
        self.results = results
        self.failures = failures


class StreamRouter:
    """Route named streams to scorer shards; score bursts as micro-batches.

    Parameters
    ----------
    detector: default detector for shards created on first sight of a new
        stream id (and by ``add_stream`` calls that pass none).  Sharing one
        fitted RAE/RDAE across shards is what lets a drain group their
        forward passes; per-stream detectors are allowed but score solo.
    window / min_points / mode: per-shard :class:`StreamScorer` defaults,
        overridable per stream in :meth:`add_stream`.
    queue_limit: bound on queued-but-unscored arrivals across all streams.
    on_full: backpressure policy when the queue is at capacity:
        ``'error'`` (default) raises :class:`QueueFullError` — the caller
        must drain; ``'drop_oldest'`` evicts the oldest queued arrival to
        make room and counts it against its stream's ``dropped`` stat.
    batch_size: maximum shards stacked into one grouped forward per drain.
    """

    def __init__(self, detector=None, *, window=256, min_points=2,
                 mode="auto", queue_limit=1024, batch_size=32,
                 on_full="error"):
        if detector is not None:
            from ..api import as_detector

            # Coerce specs/names here (not per shard) so every shard shares
            # ONE built instance — which is what lets drains group forwards.
            detector = as_detector(detector)
        self.detector = detector
        self.window = int(window)
        self.min_points = int(min_points)
        self.mode = mode
        self.queue_limit = int(queue_limit)
        if self.queue_limit < 1:
            raise ValueError("queue_limit must be >= 1")
        if on_full not in ("error", "drop_oldest"):
            raise ValueError(
                "on_full must be 'error' or 'drop_oldest', got %r" % on_full
            )
        self.on_full = on_full
        self.batch_size = max(int(batch_size), 1)
        self._shards = {}
        self._dims = {}  # per-stream row width, fixed by the first arrival
        self._queue = deque()
        self._submitted = {}
        self._scored = {}
        self._dropped = {}
        self._drains = 0

    # ------------------------------------------------------------------ #
    # stream management
    def add_stream(self, stream_id, detector=None, *, window=None,
                   min_points=None, mode=None):
        """Create a shard for ``stream_id``; returns its scorer."""
        if stream_id in self._shards:
            raise ValueError("stream %r already exists" % (stream_id,))
        if detector is not None:
            from ..api import as_detector

            detector = as_detector(detector)
        detector = detector if detector is not None else self.detector
        if detector is None:
            raise ValueError(
                "no detector for stream %r: pass one here or give the "
                "router a default" % (stream_id,)
            )
        scorer = StreamScorer(
            detector,
            window=self.window if window is None else window,
            min_points=self.min_points if min_points is None else min_points,
            mode=self.mode if mode is None else mode,
        )
        self._shards[stream_id] = scorer
        self._submitted.setdefault(stream_id, 0)
        self._scored.setdefault(stream_id, 0)
        self._dropped.setdefault(stream_id, 0)
        return scorer

    def stream(self, stream_id):
        """The shard scorer serving ``stream_id``."""
        return self._shards[stream_id]

    def streams(self):
        """Stream ids currently served, in creation order."""
        return list(self._shards)

    def __contains__(self, stream_id):
        return stream_id in self._shards

    def __len__(self):
        return len(self._shards)

    # ------------------------------------------------------------------ #
    # ingestion
    def _ensure_stream(self, stream_id):
        if stream_id not in self._shards:
            if self.detector is None:
                raise KeyError(
                    "unknown stream %r and the router has no default "
                    "detector; add_stream() it first" % (stream_id,)
                )
            self.add_stream(stream_id)

    def _check_dims(self, stream_id, width):
        # Validate at submission, not at drain: a malformed arrival must be
        # rejected here, never poison a whole drained burst.
        expected = self._dims.get(stream_id)
        if expected is None:
            scorer = self._shards[stream_id]
            if scorer._session is not None:
                expected = scorer._session.dims
            elif scorer._ring is not None:
                expected = scorer._ring.dims
        if expected is not None and width != expected:
            raise ValueError(
                "stream %r expects %d-dimensional observations, got %d"
                % (stream_id, expected, width)
            )
        self._dims[stream_id] = width

    def _enqueue(self, stream_id, row):
        if len(self._queue) >= self.queue_limit:
            if self.on_full == "error":
                raise QueueFullError(
                    "ingestion queue full (%d queued arrivals); drain() the "
                    "router or raise queue_limit" % len(self._queue)
                )
            old_sid, __ = self._queue.popleft()
            self._dropped[old_sid] += 1
        self._queue.append((stream_id, row))
        self._submitted[stream_id] += 1

    def submit(self, stream_id, point):
        """Enqueue one arrival for ``stream_id``; O(1), never scores."""
        self._ensure_stream(stream_id)
        row = np.asarray(point, dtype=np.float64).reshape(-1)
        self._check_dims(stream_id, row.shape[0])
        self._enqueue(stream_id, row)
        return self

    def submit_many(self, stream_id, points):
        """Enqueue every row of a ``(n, dims)`` (or ``(n,)``) chunk."""
        self._ensure_stream(stream_id)
        arr = np.asarray(points, dtype=np.float64)
        if arr.ndim == 1:
            arr = arr[:, None]
        if arr.shape[0]:
            self._check_dims(stream_id, arr.shape[1])
        for row in arr:
            self._enqueue(stream_id, row)
        return self

    # ------------------------------------------------------------------ #
    # scoring
    def drain(self, max_points=None):
        """Score queued arrivals; returns ``{stream_id: scores}``.

        Pops up to ``max_points`` arrivals (all by default) in FIFO order,
        ingests each stream's pending points as one micro-batch, then
        refreshes all session-backed shards in grouped forward passes.
        Scores arrive in per-stream submission order; streams appear in
        first-arrival order of this drain.

        A shard that fails to ingest (e.g. an unfitted detector) never
        destroys the burst: the other streams are scored normally, the
        faulty streams' arrivals return to the front of the queue, and a
        :class:`DrainError` carrying both the healthy results and the
        per-stream failures is raised.
        """
        count = len(self._queue)
        if max_points is not None:
            count = min(count, max(int(max_points), 0))
        if not count:
            return {}
        chunks = {}
        for __ in range(count):
            stream_id, row = self._queue.popleft()
            chunks.setdefault(stream_id, []).append(row)
        results = {}
        failures = {}
        deferred = []  # session shards: refresh them in grouped forwards
        for stream_id, rows in chunks.items():
            scorer = self._shards[stream_id]
            try:
                n, needs_scores = scorer._ingest_chunk(np.stack(rows))
            except Exception as exc:  # noqa: BLE001 - isolate faulty shards
                for row in reversed(rows):
                    self._queue.appendleft((stream_id, row))
                failures[stream_id] = exc
                continue
            if not needs_scores:
                results[stream_id] = np.zeros(n)
            elif scorer._session is not None:
                deferred.append((stream_id, scorer, n))
            else:
                results[stream_id] = scorer._collect_chunk(
                    n, scorer._window_scores()
                )
        if deferred:
            batched_session_scores(
                [scorer._session for __, scorer, __n in deferred],
                batch_size=self.batch_size,
            )
            for stream_id, scorer, n in deferred:
                results[stream_id] = scorer._collect_chunk(
                    n, scorer._session.scores()
                )
        for stream_id, scores in results.items():
            self._scored[stream_id] += scores.shape[0]
        self._drains += 1
        if failures:
            raise DrainError(
                "%d stream(s) failed to ingest (%s); their arrivals were "
                "re-queued, %d healthy stream(s) scored (see .results)"
                % (len(failures),
                   ", ".join("%r: %s" % (sid, exc)
                             for sid, exc in failures.items()),
                   len(results)),
                results, failures,
            )
        return results

    # ------------------------------------------------------------------ #
    # persistence-backed shard recovery
    def _persistable_detector(self, detector, directory, index):
        """Manifest entry for ``detector``: spec and/or npz weights."""
        from ..api import DetectorSpec, SpecError
        from ..core import RAE, RDAE, save_detector

        entry = {"spec": None, "weights": None}
        try:
            entry["spec"] = DetectorSpec.from_detector(detector).to_dict()
        except SpecError:
            pass  # not a registry class; weights may still carry it
        if isinstance(detector, (RAE, RDAE)) and detector.is_fitted():
            filename = "detector%d.npz" % index
            save_detector(detector, os.path.join(directory, filename))
            entry["weights"] = filename
        if entry["spec"] is None and entry["weights"] is None:
            raise ValueError(
                "cannot persist %s for restore: not a registry method and "
                "not a saveable fitted RAE/RDAE" % type(detector).__name__
            )
        return entry

    def save(self, directory):
        """Persist the router so :meth:`restore` rebuilds it elsewhere.

        Writes ``router.json`` (config, per-detector spec/weights refs,
        per-stream scorer configs + counters, the still-queued arrivals)
        and ``state.npz`` (every shard's retained window) into
        ``directory``.  Each distinct detector is saved once — as a
        :class:`repro.api.DetectorSpec` when it is a registry method, plus
        npz weights when it is a fitted RAE/RDAE — so a restored shard
        round-trips *how it was built*, not just its numbers.

        Returns the manifest path.
        """
        os.makedirs(directory, exist_ok=True)
        detectors, by_id = [], {}

        def register(detector):
            key = id(detector)
            if key not in by_id:
                by_id[key] = len(detectors)
                detectors.append(
                    self._persistable_detector(detector, directory, len(detectors))
                )
            return by_id[key]

        default = None if self.detector is None else register(self.detector)
        streams, arrays = [], {}
        for i, (stream_id, scorer) in enumerate(self._shards.items()):
            state = scorer.state_dict()
            arrays["s%d::window" % i] = state["window"]
            # score/score_new shards evaluate fitted state at drain time;
            # unless the detector is stateless-scoring, only restored
            # weights (or a restore-time override) can resume them.
            needs_fit = (
                scorer.mode in ("score", "score_new")
                and not getattr(scorer.detector, "stateless_scoring", False)
            )
            index = register(scorer.detector)
            if (needs_fit and detectors[index]["weights"] is None
                    and index != default):
                # The restore-time detector= override only replaces the
                # router DEFAULT; a weightless per-stream detector would be
                # a dead end no restore() call could ever rebuild — refuse
                # now, while the caller can still fix the configuration.
                raise ValueError(
                    "stream %r (mode %r) has a per-stream detector whose "
                    "fitted state cannot be persisted (%s, spec-only) and "
                    "which no restore() override could replace. Serve it "
                    "in 'refit' mode, use a persistable RAE/RDAE, or make "
                    "it the router default."
                    % (stream_id, scorer.mode,
                       type(scorer.detector).__name__)
                )
            streams.append({
                "id": stream_id,
                "needs_fitted_detector": needs_fit,
                "detector": index,
                "window": scorer.window,
                "min_points": scorer.min_points,
                "mode": scorer.mode,
                "kind": state["kind"],
                "dims": state["dims"],
                "total": state["total"],
                "submitted": self._submitted[stream_id],
                "scored": self._scored[stream_id],
                "dropped": self._dropped[stream_id],
                "dims_seen": self._dims.get(stream_id),
            })
        manifest = {
            "format": "repro.router",
            "version": 1,
            "config": {
                "window": self.window,
                "min_points": self.min_points,
                "mode": self.mode,
                "queue_limit": self.queue_limit,
                "batch_size": self.batch_size,
                "on_full": self.on_full,
            },
            "detectors": detectors,
            "default_detector": default,
            "streams": streams,
            # JSON floats round-trip exactly in Python, so re-queued
            # arrivals score identically after a restore.
            "queue": [[stream_id, row.tolist()]
                      for stream_id, row in self._queue],
            "drains": self._drains,
        }
        np.savez(os.path.join(directory, _STATE), **arrays)
        path = os.path.join(directory, _MANIFEST)
        with open(path, "w") as handle:
            json.dump(manifest, handle, indent=2)
            handle.write("\n")
        return path

    @classmethod
    def restore(cls, directory, detector=None):
        """Rebuild a router saved by :meth:`save`; scoring resumes exactly.

        Every shard is rebuilt from its saved spec/weights and reloaded
        with its retained window, arrival counts, and stats, and the
        still-queued arrivals are re-queued — feeding the restored router
        the same subsequent arrivals as a never-restarted one produces the
        same per-stream scores.

        ``detector=`` substitutes for the saved *default* detector when its
        fitted state could not be persisted (spec-only save); saved npz
        weights always win over the override — the retained session
        windows were scaled by the saved detector, so replacing it would
        silently change scores.  Note a
        spec-only restore rebuilds detectors *unfitted*: fine for ``refit``
        shards (the paper's transductive protocol refits per window
        anyway) and stateless-scoring detectors, but ``score``/
        ``score_new`` shards whose fitted state could not be persisted are
        rejected here, up front, with the remedy — never at first drain.
        """
        with open(os.path.join(directory, _MANIFEST)) as handle:
            manifest = json.load(handle)
        if manifest.get("format") != "repro.router":
            raise ValueError("%s is not a router manifest" % directory)
        config = manifest["config"]
        built, spec_only = {}, set()

        def build(index):
            if index is None:
                return None
            if index not in built:
                entry = manifest["detectors"][index]
                # Saved weights always win: the retained session windows
                # were scaled by THAT detector, so substituting another
                # would silently change scores.  The override is a
                # fallback for a default whose state could not persist.
                if entry["weights"]:
                    from ..core import load_detector

                    built[index] = load_detector(
                        os.path.join(directory, entry["weights"])
                    )
                elif detector is not None and index == manifest["default_detector"]:
                    built[index] = detector
                else:
                    from ..api import DetectorSpec

                    # A spec rebuild is UNFITTED — fine for refit shards
                    # and stateless-scoring detectors, fatal for shards
                    # that score through fitted state (checked below).
                    built[index] = DetectorSpec.from_dict(entry["spec"]).build()
                    spec_only.add(index)
            return built[index]

        router = cls(
            build(manifest["default_detector"]),
            window=config["window"],
            min_points=config["min_points"],
            mode=config["mode"],
            queue_limit=config["queue_limit"],
            batch_size=config["batch_size"],
            on_full=config["on_full"],
        )
        state_path = os.path.join(directory, _STATE)
        blob = np.load(state_path) if os.path.exists(state_path) else None
        for i, entry in enumerate(manifest["streams"]):
            shard_detector = build(entry["detector"])
            if (entry.get("needs_fitted_detector")
                    and entry["detector"] in spec_only):
                raise ValueError(
                    "stream %r (mode %r) scores through fitted state, but "
                    "its detector could only be rebuilt unfitted from its "
                    "spec (no saved weights) — resuming would fail on the "
                    "first drain. Pass detector= with a fitted instance, "
                    "or serve this method in 'refit' mode."
                    % (entry["id"], entry["mode"])
                )
            scorer = router.add_stream(
                entry["id"],
                detector=shard_detector,
                window=entry["window"],
                min_points=entry["min_points"],
                mode=entry["mode"],
            )
            scorer.load_state_dict({
                "kind": entry["kind"],
                "dims": entry["dims"],
                "window": blob["s%d::window" % i] if blob is not None
                else np.zeros((0, 0)),
                "total": entry["total"],
            })
            router._submitted[entry["id"]] = entry["submitted"]
            router._scored[entry["id"]] = entry["scored"]
            router._dropped[entry["id"]] = entry["dropped"]
            if entry.get("dims_seen") is not None:
                router._dims[entry["id"]] = entry["dims_seen"]
        for stream_id, row in manifest["queue"]:
            # Straight onto the queue: these arrivals were already counted
            # by submit() before the save.
            router._queue.append((stream_id, np.asarray(row, dtype=np.float64)))
        router._drains = manifest["drains"]
        return router

    # ------------------------------------------------------------------ #
    # observability
    def stream_stats(self, stream_id):
        """Counters for one stream: submitted/scored/dropped/lag/total."""
        scorer = self._shards[stream_id]
        submitted = self._submitted[stream_id]
        scored = self._scored[stream_id]
        dropped = self._dropped[stream_id]
        return {
            "submitted": submitted,
            "scored": scored,
            "dropped": dropped,
            # Arrivals accepted but not yet scored — the stream's queue lag.
            "lag": submitted - scored - dropped,
            "total": scorer.total,
            "window_fill": len(scorer),
            "mode": scorer.mode,
        }

    def stats(self):
        """Router-level stats plus a per-stream breakdown."""
        return {
            "streams": len(self._shards),
            "queue_depth": len(self._queue),
            "queue_limit": self.queue_limit,
            "drains": self._drains,
            "submitted": sum(self._submitted.values()),
            "scored": sum(self._scored.values()),
            "dropped": sum(self._dropped.values()),
            "per_stream": {
                stream_id: self.stream_stats(stream_id)
                for stream_id in self._shards
            },
        }
