"""Robust SSA: Singular Spectrum Analysis with an RPCA core.

The paper's experiments repeatedly include RSSA — SSA where the plain SVD of
the lagged matrix is replaced by Robust PCA, so the lagged matrix splits into
a low-rank (clean) part and a sparse (outlier) part.  De-embedding the two
parts yields the clean series ``T_L`` and outlier series ``T_S``; outlier
scores follow Eq. 13.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..rpca import robust_pca
from .hankel import deembed_lagged, embed_lagged
from .ssa import default_window

__all__ = ["RSSAResult", "rssa_decompose"]


@dataclasses.dataclass
class RSSAResult:
    """Clean/outlier split produced by robust SSA."""

    clean: np.ndarray
    outlier: np.ndarray
    window: int
    rank: int

    @property
    def scores(self):
        """Per-observation outlier scores ``||s_S||_2^2`` (Eq. 13)."""
        return (self.outlier**2).sum(axis=1)


def rssa_decompose(series, window=None, lam=None, tol=1e-6, max_iter=200):
    """Split ``series`` into clean + outlier parts via RPCA on the lagged matrix.

    Parameters
    ----------
    series: array ``(C,)`` or ``(C, D)``.
    window: lag ``B``; defaults to the Khan-Poskitt heuristic.
    lam: RPCA sparsity weight (defaults to ``1/sqrt(max(B, K))``).
    """
    arr = np.asarray(series, dtype=np.float64)
    if arr.ndim == 1:
        arr = arr[:, None]
    length, dims = arr.shape
    if window is None:
        window = default_window(length)
    window = int(np.clip(window, 2, length - 1))
    lagged = embed_lagged(arr, window)
    low = np.zeros_like(lagged)
    sparse = np.zeros_like(lagged)
    rank = 0
    for d in range(dims):
        result = robust_pca(lagged[:, :, d], lam=lam, tol=tol, max_iter=max_iter)
        low[:, :, d] = result.low_rank
        sparse[:, :, d] = result.sparse
        rank = max(rank, result.rank)
    clean = deembed_lagged(low)
    outlier = arr - clean
    return RSSAResult(clean=clean, outlier=outlier, window=window, rank=rank)
