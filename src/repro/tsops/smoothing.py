"""Smoothing primitives: exponential moving average, moving average, loess.

EMA is one of the paper's baselines (Brown's simple exponential smoothing);
the moving average feeds the RDAE+MA ablation; loess is the local-regression
smoother inside our STL implementation.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ema", "moving_average", "loess"]


def ema(series, alpha=0.3):
    """Exponential moving average along the time axis.

    ``y_t = alpha * x_t + (1 - alpha) * y_{t-1}``; older observations receive
    exponentially decaying weight, exactly the EMA baseline of Section V-A.
    """
    arr = np.asarray(series, dtype=np.float64)
    if not 0.0 < alpha <= 1.0:
        raise ValueError("alpha must be in (0, 1], got %r" % alpha)
    squeeze = arr.ndim == 1
    if squeeze:
        arr = arr[:, None]
    out = np.empty_like(arr)
    out[0] = arr[0]
    decay = 1.0 - alpha
    for t in range(1, arr.shape[0]):
        out[t] = alpha * arr[t] + decay * out[t - 1]
    return out[:, 0] if squeeze else out


def moving_average(series, width):
    """Centred moving average with edge shrinking (window clipped at ends)."""
    arr = np.asarray(series, dtype=np.float64)
    squeeze = arr.ndim == 1
    if squeeze:
        arr = arr[:, None]
    length = arr.shape[0]
    width = int(np.clip(width, 1, length))
    half = width // 2
    cumsum = np.vstack([np.zeros((1, arr.shape[1])), np.cumsum(arr, axis=0)])
    lo = np.maximum(np.arange(length) - half, 0)
    hi = np.minimum(np.arange(length) + half + 1, length)
    out = (cumsum[hi] - cumsum[lo]) / (hi - lo)[:, None]
    return out[:, 0] if squeeze else out


def loess(y, window, degree=1, x=None):
    """Locally-weighted polynomial regression with tricube weights.

    Evaluates the loess fit at every point of ``y`` using the ``window``
    nearest neighbours.  ``degree`` 0 (local mean), 1 (local line) and 2 are
    supported; STL uses degree 1.
    """
    y = np.asarray(y, dtype=np.float64)
    if y.ndim != 1:
        raise ValueError("loess operates on 1D arrays")
    length = y.size
    if x is None:
        x = np.arange(length, dtype=np.float64)
    window = int(np.clip(window, degree + 2, length))
    half = window // 2
    out = np.empty(length)
    for i in range(length):
        lo = int(np.clip(i - half, 0, length - window))
        hi = lo + window
        xs = x[lo:hi]
        ys = y[lo:hi]
        dist = np.abs(xs - x[i])
        max_dist = dist.max()
        if max_dist == 0:
            out[i] = ys.mean()
            continue
        w = (1.0 - (dist / max_dist) ** 3) ** 3
        w = np.maximum(w, 1e-9)
        # Weighted polynomial least squares, centred for conditioning.
        design = np.vander(xs - x[i], degree + 1, increasing=True)
        wd = design * w[:, None]
        coeffs, *_ = np.linalg.lstsq(wd.T @ design, wd.T @ ys, rcond=None)
        out[i] = coeffs[0]
    return out
