"""Seasonal-Trend decomposition using Loess (Cleveland et al., 1990).

Implements the STL inner loop: cycle-subseries loess smoothing for the
seasonal component, a low-pass filter (two moving averages plus loess) to
remove residual trend from the seasonal part, and loess smoothing of the
deseasonalised series for the trend.  This replaces the statsmodels STL the
paper used (DESIGN.md §2).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from .smoothing import loess, moving_average

__all__ = ["STLResult", "stl_decompose", "estimate_period"]


def estimate_period(series, min_period=4, max_period=None):
    """Estimate the dominant period from the autocorrelation peak.

    Used when callers do not supply a seasonal period.  Falls back to
    ``min_period`` when no clear peak exists (e.g. white noise).
    """
    arr = np.asarray(series, dtype=np.float64)
    if arr.ndim == 2:
        arr = arr.mean(axis=1)
    length = arr.size
    # Remove a linear trend first: otherwise the autocorrelation decays from
    # lag 0 and the argmax collapses onto the minimum lag.
    t = np.arange(length, dtype=np.float64)
    slope, intercept = np.polyfit(t, arr, 1)
    arr = arr - (slope * t + intercept)
    if max_period is None:
        max_period = max(min_period + 1, length // 3)
    spectrum = np.abs(np.fft.rfft(arr, n=2 * length)) ** 2
    acf = np.fft.irfft(spectrum)[:length]
    if acf[0] <= 0:
        return min_period
    acf = acf / acf[0]
    lo, hi = min_period, min(max_period, length - 2)
    if hi <= lo:
        return min_period
    # Prefer the *first* prominent local maximum: the global argmax often
    # lands on a harmonic multiple of the true period.
    for lag in range(lo, hi):
        if acf[lag] > 0.3 and acf[lag] >= acf[lag - 1] and acf[lag] >= acf[lag + 1]:
            return int(lag)
    lag = lo + int(np.argmax(acf[lo:hi]))
    return int(lag) if acf[lag] > 0.1 else min_period


@dataclasses.dataclass
class STLResult:
    """Additive decomposition ``series = trend + seasonal + residual``."""

    trend: np.ndarray
    seasonal: np.ndarray
    residual: np.ndarray
    period: int


def _stl_1d(y, period, seasonal_window, trend_window, iterations):
    length = y.size
    trend = np.zeros(length)
    seasonal = np.zeros(length)
    for __ in range(iterations):
        detrended = y - trend
        # Cycle-subseries smoothing: loess over each phase of the period.
        cycle = np.empty(length)
        for phase in range(period):
            idx = np.arange(phase, length, period)
            if idx.size < 3:
                cycle[idx] = detrended[idx].mean() if idx.size else 0.0
                continue
            cycle[idx] = loess(detrended[idx], min(seasonal_window, idx.size))
        # Low-pass the cycle component so the seasonal part holds no trend.
        lowpass = moving_average(moving_average(cycle, period), period)
        lowpass = loess(lowpass, min(trend_window, length))
        seasonal = cycle - lowpass
        deseasonalised = y - seasonal
        trend = loess(deseasonalised, min(trend_window, length))
    residual = y - trend - seasonal
    return trend, seasonal, residual


def stl_decompose(series, period=None, seasonal_window=7, trend_window=None,
                  iterations=2):
    """Decompose a ``(C,)`` or ``(C, D)`` series with STL.

    Parameters
    ----------
    period: seasonal period; estimated from the autocorrelation if omitted.
    seasonal_window: loess window for the cycle subseries (paper's ``S``).
    trend_window: loess window for the trend (paper's ``T``); defaults to
        the smallest odd integer ≥ ``1.5 * period``.
    iterations: STL inner-loop iterations.
    """
    arr = np.asarray(series, dtype=np.float64)
    squeeze = arr.ndim == 1
    if squeeze:
        arr = arr[:, None]
    length, dims = arr.shape
    if period is None:
        period = estimate_period(arr)
    period = int(np.clip(period, 2, max(2, length // 2)))
    if trend_window is None:
        trend_window = int(1.5 * period) | 1
    trend_window = max(trend_window, 5)

    trend = np.empty_like(arr)
    seasonal = np.empty_like(arr)
    residual = np.empty_like(arr)
    for d in range(dims):
        trend[:, d], seasonal[:, d], residual[:, d] = _stl_1d(
            arr[:, d], period, seasonal_window, trend_window, iterations
        )
    if squeeze:
        trend, seasonal, residual = trend[:, 0], seasonal[:, 0], residual[:, 0]
    return STLResult(trend=trend, seasonal=seasonal, residual=residual, period=period)
