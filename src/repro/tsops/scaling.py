"""Per-dimension scaling transforms applied before detectors are fit."""

from __future__ import annotations

import numpy as np

__all__ = ["standardize", "minmax_scale", "robust_scale"]


def standardize(series, eps=1e-9):
    """Zero-mean, unit-variance scaling per dimension."""
    arr = np.asarray(series, dtype=np.float64)
    mean = arr.mean(axis=0, keepdims=True)
    std = arr.std(axis=0, keepdims=True)
    return (arr - mean) / np.maximum(std, eps)


def minmax_scale(series, eps=1e-9):
    """Scale each dimension into [0, 1]."""
    arr = np.asarray(series, dtype=np.float64)
    lo = arr.min(axis=0, keepdims=True)
    hi = arr.max(axis=0, keepdims=True)
    return (arr - lo) / np.maximum(hi - lo, eps)


def robust_scale(series, eps=1e-9):
    """Median / IQR scaling — insensitive to the very outliers we hunt."""
    arr = np.asarray(series, dtype=np.float64)
    median = np.median(arr, axis=0, keepdims=True)
    q75 = np.percentile(arr, 75, axis=0, keepdims=True)
    q25 = np.percentile(arr, 25, axis=0, keepdims=True)
    return (arr - median) / np.maximum(q75 - q25, eps)
