"""Incremental lagged-matrix (Hankel) maintenance for streaming inference.

:func:`repro.tsops.embed_lagged` re-embeds a whole series in ``O(B*K*D)``;
for a stream that receives one observation at a time this is wasteful —
appending observation ``s_t`` only adds one column ``[s_{t-B+1} .. s_t]`` to
the lagged matrix and (in a sliding window) drops the oldest one.
:class:`SlidingLagged` maintains the matrix under appends in amortised
``O(B*D)`` per observation by writing new columns into a double-width
preallocated buffer and compacting only when the buffer runs out.
"""

from __future__ import annotations

import numpy as np

from .hankel import embed_lagged

__all__ = ["append_lagged", "SlidingLagged"]


def _as_observation(obs, dims):
    arr = np.asarray(obs, dtype=np.float64).reshape(-1)
    if arr.shape[0] != dims:
        raise ValueError("observation has %d dims, expected %d" % (arr.shape[0], dims))
    return arr


def append_lagged(matrix, obs):
    """Append one observation to a ``(B, K, D)`` lagged matrix -> ``(B, K+1, D)``.

    The new column holds the last ``B`` observations of the extended series:
    its first ``B-1`` entries are the last column of ``matrix`` shifted up by
    one lag, and its final entry is ``obs``.  Equivalent to re-embedding the
    extended series, at ``O(B*D)`` cost instead of ``O(B*K*D)``.
    """
    arr = np.asarray(matrix, dtype=np.float64)
    squeeze = arr.ndim == 2
    if squeeze:
        arr = arr[:, :, None]
    if arr.ndim != 3:
        raise ValueError("lagged matrix must be 2D or 3D, got %dD" % arr.ndim)
    window, __, dims = arr.shape
    column = np.empty((window, 1, dims))
    column[:-1, 0] = arr[1:, -1]
    column[-1, 0] = _as_observation(obs, dims)
    out = np.concatenate([arr, column], axis=1)
    return out[:, :, 0] if squeeze else out


class SlidingLagged:
    """Lagged matrix of the most recent observations, updated incrementally.

    Parameters
    ----------
    window: the lag ``B`` (number of rows).
    dims: series dimensionality ``D``.
    max_columns: keep at most this many columns ``K`` (the matrix then covers
        the last ``B + K - 1`` observations); ``None`` grows unboundedly.

    ``append`` costs ``O(B*D)`` amortised: columns are written sequentially
    into a buffer twice the retained width and the live block is copied back
    to the front only when the buffer is exhausted.
    """

    def __init__(self, window, dims=1, max_columns=None):
        self.window = int(window)
        self.dims = int(dims)
        if self.window < 1:
            raise ValueError("window must be >= 1")
        self.max_columns = None if max_columns is None else int(max_columns)
        if self.max_columns is not None and self.max_columns < 1:
            raise ValueError("max_columns must be >= 1 or None")
        # Ring of the last B observations, used to form each new column.
        self._tail = np.zeros((self.window, self.dims))
        self._seen = 0
        cap = 64 if self.max_columns is None else 2 * self.max_columns
        self._buffer = np.zeros((self.window, cap, self.dims))
        self._start = 0
        self._count = 0

    def __len__(self):
        return self._count

    @property
    def matrix(self):
        """The current ``(B, K, D)`` lagged matrix (a view, do not mutate)."""
        return self._buffer[:, self._start : self._start + self._count]

    def _grow(self):
        cap = self._buffer.shape[1]
        if self.max_columns is None:
            bigger = np.zeros((self.window, 2 * cap, self.dims))
            bigger[:, : self._count] = self.matrix
            self._buffer = bigger
        else:
            # Compact the live block back to the front of the double buffer.
            self._buffer[:, : self._count] = self.matrix.copy()
        self._start = 0

    def append(self, obs):
        """Add one observation; returns True when a new column was emitted
        (i.e. at least ``B`` observations have been seen)."""
        obs = _as_observation(obs, self.dims)
        self._tail = np.roll(self._tail, -1, axis=0)
        self._tail[-1] = obs
        self._seen += 1
        if self._seen < self.window:
            return False
        if self.max_columns is not None and self._count == self.max_columns:
            self._start += 1
            self._count -= 1
        if self._start + self._count == self._buffer.shape[1]:
            self._grow()
        self._buffer[:, self._start + self._count] = self._tail
        self._count += 1
        return True

    def extend(self, series):
        """Append every row of a ``(n, D)`` (or ``(n,)``) chunk."""
        arr = np.asarray(series, dtype=np.float64)
        if arr.ndim == 1:
            arr = arr[:, None]
        for row in arr:
            self.append(row)
        return self

    def rebuild(self, series):
        """Reset to exactly the lagged embedding of ``series`` (bulk path).

        Uses :func:`embed_lagged` once, then trims to ``max_columns``; useful
        to seed the stream with history before switching to appends.
        """
        arr = np.asarray(series, dtype=np.float64)
        if arr.ndim == 1:
            arr = arr[:, None]
        self._tail = np.zeros((self.window, self.dims))
        n = arr.shape[0]
        taken = min(n, self.window)
        self._tail[self.window - taken :] = arr[n - taken :]
        self._seen = n
        self._start = 0
        if n < self.window:
            self._count = 0
            return self
        lagged = embed_lagged(arr, self.window)
        if self.max_columns is not None and lagged.shape[1] > self.max_columns:
            lagged = lagged[:, -self.max_columns :]
        if lagged.shape[1] > self._buffer.shape[1]:
            self._buffer = np.zeros(
                (self.window, 2 * lagged.shape[1], self.dims)
            )
        self._buffer[:, : lagged.shape[1]] = lagged
        self._count = lagged.shape[1]
        return self
