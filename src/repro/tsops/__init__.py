"""Time-series operations: Hankel embedding, SSA, RSSA, STL, smoothing."""

from .hankel import deembed_lagged, embed_lagged, hankel_weights, hankelize
from .incremental import SlidingLagged, append_lagged
from .rssa import RSSAResult, rssa_decompose
from .scaling import minmax_scale, robust_scale, standardize
from .smoothing import ema, loess, moving_average
from .ssa import SSADecomposition, default_window, ssa_decompose, ssa_reconstruct
from .stl import STLResult, estimate_period, stl_decompose
from .windows import overlap_average, sliding_windows, window_count

__all__ = [
    "embed_lagged",
    "deembed_lagged",
    "hankelize",
    "hankel_weights",
    "append_lagged",
    "SlidingLagged",
    "SSADecomposition",
    "ssa_decompose",
    "ssa_reconstruct",
    "default_window",
    "RSSAResult",
    "rssa_decompose",
    "STLResult",
    "stl_decompose",
    "estimate_period",
    "ema",
    "moving_average",
    "loess",
    "standardize",
    "minmax_scale",
    "robust_scale",
    "sliding_windows",
    "overlap_average",
    "window_count",
]
