"""Singular Spectrum Analysis (Golyandina et al.), per-dimension.

SSA embeds a series into its lagged (Hankel) matrix, computes the SVD, and
reconstructs elementary series from the rank-1 terms by anti-diagonal
averaging.  It serves three roles in the paper: a smoothing baseline
(Section V-A), the backbone of the RSSA baseline (SVD replaced by RPCA, see
:mod:`repro.tsops.rssa`), and the component decomposition behind the
``ES_SSA`` explainability score (Eq. 19).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from .hankel import deembed_lagged, embed_lagged

__all__ = ["SSADecomposition", "ssa_decompose", "ssa_reconstruct", "default_window"]


def default_window(length, psi=2.0):
    """Window-length heuristic of Khan & Poskitt: ``B = (ln C)^psi``.

    The paper cites this rule in the "Effect of B" study (Section V-B);
    ``psi`` must lie in (1.5, 3.0).
    """
    if not 1.5 < psi < 3.0:
        raise ValueError("psi must be in (1.5, 3.0), got %r" % psi)
    window = int(round(np.log(max(length, 3)) ** psi))
    return int(np.clip(window, 2, max(2, length // 2)))


@dataclasses.dataclass
class SSADecomposition:
    """SSA of one series.

    Attributes
    ----------
    components: array ``(R, C, D)`` — elementary reconstructed series,
        ordered by decreasing singular value (summed over dimensions).
    singular_values: array ``(R, D)`` of singular values per dimension.
    window: the embedding window ``B``.
    """

    components: np.ndarray
    singular_values: np.ndarray
    window: int

    def reconstruct(self, top_n):
        """Sum of the ``top_n`` most important components: ``T^(N)_SSA``."""
        top_n = int(min(max(top_n, 0), self.components.shape[0]))
        if top_n == 0:
            return np.zeros(self.components.shape[1:])
        return self.components[:top_n].sum(axis=0)


def ssa_decompose(series, window=None, max_components=None):
    """Decompose a ``(C, D)`` series into elementary SSA components.

    Each dimension is decomposed independently; components are merged across
    dimensions by singular-value rank so ``components[0]`` is the globally
    dominant (trend-like) part.
    """
    arr = np.asarray(series, dtype=np.float64)
    if arr.ndim == 1:
        arr = arr[:, None]
    length, dims = arr.shape
    if window is None:
        window = default_window(length)
    window = int(np.clip(window, 2, length - 1))
    lagged = embed_lagged(arr, window)  # (B, K, D)
    rank_cap = min(window, lagged.shape[1])
    if max_components is not None:
        rank_cap = min(rank_cap, max_components)

    components = np.zeros((rank_cap, length, dims))
    singular_values = np.zeros((rank_cap, dims))
    for d in range(dims):
        u, s, vt = np.linalg.svd(lagged[:, :, d], full_matrices=False)
        for r in range(rank_cap):
            rank1 = np.outer(u[:, r] * s[r], vt[r])
            components[r, :, d] = deembed_lagged(rank1[:, :, None])[:, 0]
            singular_values[r, d] = s[r]
    # Order components by total energy across dimensions.
    order = np.argsort(-singular_values.sum(axis=1))
    return SSADecomposition(
        components=components[order],
        singular_values=singular_values[order],
        window=window,
    )


def ssa_reconstruct(series, window=None, top_n=3):
    """Convenience: smooth ``series`` with its ``top_n`` SSA components."""
    return ssa_decompose(series, window=window, max_components=max(top_n, 1)).reconstruct(top_n)
