"""Sliding-window segmentation for window-based detectors.

Neural baselines (CNNAE, RNNAE, Donut, ...) train on fixed-width windows cut
from the series and score observations by averaging the reconstruction error
of every window covering them.
"""

from __future__ import annotations

import numpy as np

__all__ = ["sliding_windows", "overlap_average", "window_count"]


def window_count(length, width, stride):
    """Number of windows of ``width`` at ``stride`` fitting a series of ``length``."""
    if width > length:
        return 0
    return (length - width) // stride + 1


def sliding_windows(series, width, stride=1):
    """Cut a ``(C, D)`` series into ``(num, width, D)`` windows.

    The stride is clamped to the width so consecutive windows always touch,
    and the tail is covered by adding a final window ending at the last
    observation when the stride does not land exactly — together these
    guarantee every observation is covered by at least one window.
    """
    arr = np.asarray(series, dtype=np.float64)
    if arr.ndim == 1:
        arr = arr[:, None]
    length = arr.shape[0]
    if width > length:
        raise ValueError("window width %d exceeds series length %d" % (width, length))
    stride = int(np.clip(stride, 1, width))
    starts = list(range(0, length - width + 1, stride))
    if starts[-1] != length - width:
        starts.append(length - width)
    return np.stack([arr[s : s + width] for s in starts]), np.asarray(starts)


def overlap_average(values, starts, width, length):
    """Average per-window, per-position values back onto the series.

    Parameters
    ----------
    values: array ``(num, width)`` of per-position scores for each window.
    starts: window start indices as returned by :func:`sliding_windows`.
    width: window width.
    length: original series length.

    Returns an array ``(length,)``; positions covered by several windows get
    the mean of their scores.
    """
    values = np.asarray(values, dtype=np.float64)
    total = np.zeros(length)
    count = np.zeros(length)
    for row, start in zip(values, starts):
        total[start : start + width] += row
        count[start : start + width] += 1.0
    count[count == 0] = 1.0
    return total / count
