"""Lagged-matrix (Hankel) embedding and its inverse (Section III-C).

RDAE embeds a time series ``T = <s_1..s_C>`` (each ``s_i`` in ``R^D``) into a
lagged matrix ``M`` of shape ``(B, K, D)`` with ``K = C - B + 1``::

    M[i, j] = s_{i + j}          (0-based)

so anti-diagonals ``i + j = t`` all hold observation ``s_t``: ``M`` is a
Hankel matrix per dimension.  The inverse maps an arbitrary ``(B, K, D)``
array back to a series by *anti-diagonal averaging* — the Hankelization
operator ``H`` of Golyandina et al. followed by the lag-matrix inverse, which
is exact on true Hankel matrices and the least-squares projection otherwise.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "embed_lagged",
    "deembed_lagged",
    "hankelize",
    "hankel_weights",
]


def _as_series(series):
    """Coerce to a 2D ``(C, D)`` float array."""
    arr = np.asarray(series, dtype=np.float64)
    if arr.ndim == 1:
        arr = arr[:, None]
    if arr.ndim != 2:
        raise ValueError("series must be 1D or 2D, got %dD" % arr.ndim)
    return arr


def embed_lagged(series, window):
    """Embed a ``(C, D)`` series into a ``(B, K, D)`` lagged matrix.

    Parameters
    ----------
    series: array ``(C,)`` or ``(C, D)``.
    window: the lag ``B``; must satisfy ``1 <= B <= C``.
    """
    arr = _as_series(series)
    length = arr.shape[0]
    if not 1 <= window <= length:
        raise ValueError("window %d out of range for series of length %d" % (window, length))
    k = length - window + 1
    # sliding_window_view over the time axis gives (K, D, B); reorder to (B, K, D).
    view = np.lib.stride_tricks.sliding_window_view(arr, window, axis=0)
    return np.ascontiguousarray(view.transpose(2, 0, 1))


def hankel_weights(window, k):
    """Number of lagged-matrix cells holding each observation.

    For a series of length ``C = B + K - 1`` observation ``t`` appears
    ``min(t+1, B, K, C-t)`` times; these counts are the anti-diagonal
    lengths used for averaging.
    """
    length = window + k - 1
    t = np.arange(length)
    return np.minimum.reduce([t + 1, np.full(length, window), np.full(length, k), length - t])


def deembed_lagged(matrix, method="average"):
    """Map a ``(B, K, D)`` array back to a ``(C, D)`` series.

    Parameters
    ----------
    method:
        ``'average'`` (default) — anti-diagonal averaging, the least-squares
        projection used by SSA and the paper's Hankelization operator;
        ``'endpoint'`` — read each observation from a single cell (first row
        / last column), the cheap alternative ablated in DESIGN.md §6.  Both
        are exact on true Hankel matrices; they differ on the non-Hankel
        outputs of a neural decoder.
    """
    arr = np.asarray(matrix, dtype=np.float64)
    if arr.ndim == 2:
        arr = arr[:, :, None]
    if arr.ndim != 3:
        raise ValueError("lagged matrix must be 2D or 3D, got %dD" % arr.ndim)
    window, k, dims = arr.shape
    length = window + k - 1
    if method == "endpoint":
        # Observation t sits at M[0, t] while t < K, then at M[t-K+1, K-1].
        head = arr[0, :, :]
        tail = arr[1:, k - 1, :]
        return np.concatenate([head, tail], axis=0)
    if method != "average":
        raise ValueError("method must be 'average' or 'endpoint', got %r" % method)
    sums = np.zeros((length, dims))
    # Accumulate each row i onto positions i .. i+K-1.
    for i in range(window):
        sums[i : i + k] += arr[i]
    weights = hankel_weights(window, k)[:, None]
    return sums / weights


def hankelize(matrix):
    """Project a ``(B, K, D)`` array onto the nearest Hankel matrix.

    Anti-diagonal averaging followed by re-embedding; idempotent, and the
    identity on matrices that are already Hankel.  This is the operator
    ``H(.)`` applied to ``L`` and ``S`` in the RDAE outer loop.
    """
    arr = np.asarray(matrix, dtype=np.float64)
    squeeze = arr.ndim == 2
    if squeeze:
        arr = arr[:, :, None]
    series = deembed_lagged(arr)
    out = embed_lagged(series, arr.shape[0])
    return out[:, :, 0] if squeeze else out
