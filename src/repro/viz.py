"""Text visualisations for terminals: sparklines, score strips, decomposition.

Offline-friendly replacements for the paper's matplotlib figures — Fig. 1's
reconstruction/error curves and Fig. 5's clean/outlier panels render as
unicode-free ASCII, usable in logs and CI output.
"""

from __future__ import annotations

import numpy as np

__all__ = ["sparkline", "score_strip", "render_decomposition"]

_BLOCKS = " .:-=+*#%@"


def sparkline(series, width=80):
    """Render a 1D series as a one-line character sparkline."""
    arr = np.asarray(series, dtype=np.float64).ravel()
    if arr.size == 0:
        return ""
    width = max(int(width), 1)
    idx = np.linspace(0, arr.size - 1, min(width, arr.size)).astype(int)
    sampled = arr[idx]
    lo, hi = sampled.min(), sampled.max()
    span = max(hi - lo, 1e-12)
    levels = ((sampled - lo) / span * (len(_BLOCKS) - 1)).astype(int)
    return "".join(_BLOCKS[v] for v in levels)


def score_strip(values, scores, labels=None, start=0, stop=None, bar_width=20):
    """Per-observation rows: waveform position, score bar, truth marker.

    Parameters
    ----------
    values: array ``(C,)`` or ``(C, D)`` (first dimension is drawn).
    scores: array ``(C,)`` of outlier scores.
    labels: optional 0/1 ground truth; labelled rows get a ``!`` marker.
    start / stop: row range to render.
    """
    arr = np.asarray(values, dtype=np.float64)
    if arr.ndim == 2:
        arr = arr[:, 0]
    scores = np.asarray(scores, dtype=np.float64).ravel()
    stop = arr.size if stop is None else min(stop, arr.size)
    start = max(int(start), 0)
    segment = arr[start:stop]
    seg_scores = scores[start:stop]
    v_scale = max(np.abs(segment).max(), 1e-12)
    s_scale = max(seg_scores.max(), 1e-12)
    lines = []
    for offset, t in enumerate(range(start, stop)):
        wave = int(10 + 9 * segment[offset] / v_scale)
        lane = [" "] * 21
        lane[int(np.clip(wave, 0, 20))] = "o"
        bar = "#" * int(bar_width * seg_scores[offset] / s_scale)
        marker = "!" if labels is not None and labels[t] else ""
        lines.append("t=%-6d %s %s%s" % (t, "".join(lane), bar, marker))
    return "\n".join(lines)


def render_decomposition(original, clean, outlier, width=80):
    """Fig. 1-style three-row view: input, T_L, and T_S as sparklines."""
    rows = [
        ("input T", original),
        ("clean T_L", clean),
        ("outlier T_S", outlier),
    ]
    longest = max(len(name) for name, __ in rows)
    return "\n".join(
        "%-*s |%s|" % (longest, name, sparkline(series, width))
        for name, series in rows
    )
