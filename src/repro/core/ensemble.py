"""Ensemble extension (the paper's future-work direction, Section VII).

The conclusion names ensemble learning (citing Kieu et al., IJCAI 2019) as a
way to further improve accuracy.  :class:`RobustEnsemble` realises it for
the robust frameworks: ``n_members`` RAE (or RDAE) instances with different
seeds and jittered architectures are fitted independently; per-member scores
are standardised and combined by the median (robust to a diverged member).
The ensemble also exposes a consensus clean series for the explainability
analysis.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from ..baselines.base import BaseDetector
from .rae import RAE
from .rdae import RDAE

__all__ = ["RobustEnsemble"]


class RobustEnsemble(BaseDetector):
    """Median ensemble of RAE or RDAE members.

    Parameters
    ----------
    base: 'rae' or 'rdae'.
    n_members: ensemble size.
    jitter: when True, members get diverse kernel counts / kernel sizes
        (diversity is what makes AE ensembles work, cf. RandNet).
    combine: 'median' (default) or 'mean'.
    n_jobs: members fitted concurrently (1 = serial, the default; -1 = one
        thread per CPU).  Threads, not processes: member fits are
        independent NumPy/BLAS work that releases the GIL, and both grad
        mode and tape recording are thread-local, so a threaded fit is
        bit-identical to the serial one — member seeds and architecture
        jitter are drawn sequentially before any fitting starts.
    base_kwargs: forwarded to every member's constructor.
    """

    name = "RAE-Ens"

    def __init__(self, base="rae", n_members=5, jitter=True, combine="median",
                 seed=0, n_jobs=1, **base_kwargs):
        if base not in ("rae", "rdae"):
            raise ValueError("base must be 'rae' or 'rdae'")
        if combine not in ("median", "mean"):
            raise ValueError("combine must be 'median' or 'mean'")
        self.base = base
        self.n_members = int(n_members)
        self.jitter = bool(jitter)
        self.combine = combine
        self.seed = seed
        self.n_jobs = int(n_jobs)
        self.base_kwargs = base_kwargs
        self.members_ = []
        self.name = "%s-Ens" % base.upper()

    def _member(self, index, rng):
        kwargs = dict(self.base_kwargs)
        kwargs["seed"] = int(rng.integers(0, 2**31 - 1))
        if self.jitter:
            kwargs.setdefault("kernels", int(rng.choice([8, 16, 32])))
            kwargs.setdefault("kernel_size", int(rng.choice([3, 5, 7])))
        cls = RAE if self.base == "rae" else RDAE
        return cls(**kwargs)

    def _workers(self):
        jobs = self.n_jobs
        if jobs < 0:
            jobs = os.cpu_count() or 1
        return max(min(jobs, self.n_members), 1)

    def fit(self, series):
        rng = np.random.default_rng(self.seed)
        self.members_ = []  # a failed re-fit must not leave stale members
        # Draw every member's seed/jitter up front (serial-identical RNG
        # stream), then fit — concurrently when n_jobs allows.
        members = [self._member(index, rng) for index in range(self.n_members)]
        workers = self._workers()
        if workers > 1:
            with ThreadPoolExecutor(max_workers=workers) as pool:
                # list() propagates the first member's exception, like the
                # serial loop would.
                list(pool.map(lambda member: member.fit(series), members))
        else:
            for member in members:
                member.fit(series)
        self.members_ = members
        return self

    def score(self, series):
        if not self.members_:
            raise RuntimeError("fit before score")
        per_member = []
        for member in self.members_:
            scores = member.score(series)
            spread = scores.std()
            per_member.append(
                (scores - scores.mean()) / (spread if spread > 0 else 1.0)
            )
        stacked = np.asarray(per_member)
        if self.combine == "median":
            return np.median(stacked, axis=0)
        return stacked.mean(axis=0)

    @property
    def clean_series(self):
        """Member-mean clean series (for the explainability analysis)."""
        if not self.members_:
            raise RuntimeError("fit before reading the clean series")
        return np.mean([m.clean_series for m in self.members_], axis=0)
