"""Ensemble extension (the paper's future-work direction, Section VII).

The conclusion names ensemble learning (citing Kieu et al., IJCAI 2019) as a
way to further improve accuracy.  :class:`RobustEnsemble` realises it for
the robust frameworks: ``n_members`` RAE (or RDAE) instances with different
seeds and jittered architectures are fitted independently; per-member scores
are standardised and combined by the median (robust to a diverged member).
The ensemble also exposes a consensus clean series for the explainability
analysis.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from .. import nn
from ..baselines.base import BaseDetector, as_series
from ..nn import batched as nnb
from ..rpca import apply_prox as _prox
from .autoencoders import series_to_tensor
from .convergence import ConvergenceTrace, stopping_conditions
from .rae import RAE
from .rdae import RDAE

__all__ = ["RobustEnsemble"]


class RobustEnsemble(BaseDetector):
    """Median ensemble of RAE or RDAE members.

    Parameters
    ----------
    base: 'rae' or 'rdae'.
    n_members: ensemble size.
    jitter: when True, members get diverse kernel counts / kernel sizes
        (diversity is what makes AE ensembles work, cf. RandNet).
    combine: 'median' (default) or 'mean'.
    n_jobs: members fitted concurrently (1 = serial, the default; -1 = one
        thread per CPU).  Threads, not processes: member fits are
        independent NumPy/BLAS work that releases the GIL, and both grad
        mode and tape recording are thread-local, so a threaded fit is
        bit-identical to the serial one — member seeds and architecture
        jitter are drawn sequentially before any fitting starts.
    compile: None (default) or "batched".  "batched" groups members with
        identical specs (architecture hyperparameters and ADMM settings;
        only seeds differ) and fits each group as one leading-axis-batched
        tensor program (see :mod:`repro.nn.batched`) — one tape-replayed
        epoch per group instead of N python fits, sidestepping the GIL.
        Results are bit-identical to the serial fits; members whose spec
        has no identical peer (or a base/arch without a batched program)
        fall back to the ordinary serial fit, with the reasons recorded in
        ``compile_fallback_``.
    base_kwargs: forwarded to every member's constructor.
    """

    name = "RAE-Ens"

    def __init__(self, base="rae", n_members=5, jitter=True, combine="median",
                 seed=0, n_jobs=1, compile=None, **base_kwargs):
        if base not in ("rae", "rdae"):
            raise ValueError("base must be 'rae' or 'rdae'")
        if combine not in ("median", "mean"):
            raise ValueError("combine must be 'median' or 'mean'")
        if compile not in (None, "batched"):
            raise ValueError("compile must be None or 'batched'")
        self.base = base
        self.n_members = int(n_members)
        self.jitter = bool(jitter)
        self.combine = combine
        self.seed = seed
        self.n_jobs = int(n_jobs)
        self.compile = compile
        self.base_kwargs = base_kwargs
        self.members_ = []
        self.compile_fallback_ = []
        self.name = "%s-Ens" % base.upper()

    def _member(self, index, rng):
        kwargs = dict(self.base_kwargs)
        kwargs["seed"] = int(rng.integers(0, 2**31 - 1))
        if self.jitter:
            kwargs.setdefault("kernels", int(rng.choice([8, 16, 32])))
            kwargs.setdefault("kernel_size", int(rng.choice([3, 5, 7])))
        cls = RAE if self.base == "rae" else RDAE
        return cls(**kwargs)

    def _workers(self):
        jobs = self.n_jobs
        if jobs < 0:
            jobs = os.cpu_count() or 1
        return max(min(jobs, self.n_members), 1)

    def fit(self, series):
        rng = np.random.default_rng(self.seed)
        self.members_ = []  # a failed re-fit must not leave stale members
        self.compile_fallback_ = []
        # Draw every member's seed/jitter up front (serial-identical RNG
        # stream), then fit — concurrently when n_jobs allows.
        members = [self._member(index, rng) for index in range(self.n_members)]
        if self.compile == "batched":
            groups, singles = self._batched_groups(members)
            for group in groups:
                self._fit_group_batched(group, series)
            for member in singles:
                member.fit(series)
            self.members_ = members
            return self
        workers = self._workers()
        if workers > 1:
            with ThreadPoolExecutor(max_workers=workers) as pool:
                # list() propagates the first member's exception, like the
                # serial loop would.
                list(pool.map(lambda member: member.fit(series), members))
        else:
            for member in members:
                member.fit(series)
        self.members_ = members
        return self

    # -- batched compilation ------------------------------------------- #
    def _batched_groups(self, members):
        """Partition members into batchable groups and serial singletons.

        Only RAE members with the cnn architecture have a batched program;
        within those, members batch when their full spec (everything except
        the seed) matches — stacked parameters must be identical shapes and
        the shared ADMM driver must apply identical lam/epsilon/prox/epoch
        settings to every slice.
        """
        groups = {}
        singles = []
        for member in members:
            reason = None
            if self.base != "rae":
                reason = "base=%r has no batched program" % self.base
            elif member.arch != "cnn":
                reason = "arch=%r has no batched program" % member.arch
            if reason is not None:
                self.compile_fallback_.append(reason)
                singles.append(member)
                continue
            key = (member.kernels, member.num_layers, member.kernel_size,
                   member.lam, member.epsilon, member.max_iterations,
                   member.prox, member.epochs_per_iteration, member.lr)
            groups.setdefault(key, []).append(member)
        batched = []
        for key, group in groups.items():
            if len(group) >= 2:
                batched.append(group)
            else:
                self.compile_fallback_.append(
                    "spec %r has no identical-spec peer to batch with" % (key,)
                )
                singles.extend(group)
        return batched, singles

    def _fit_group_batched(self, members, series):
        """Fit one identical-spec member group as a batched tensor program.

        Replicates :meth:`repro.core.rae.RAE.fit` per member slice, bit for
        bit: per-member scaler stats (identical across the group — they
        depend only on the series), per-member ADMM state (outliers, prox,
        stopping conditions, convergence traces), one *shared* batched
        train/replay per iteration, and per-member freezing — a converged
        member's parameter slices are snapshotted at its convergence
        iteration, exactly where its serial fit would have stopped, while
        the rest of the group keeps training (the batched ops are
        per-member independent, so the dead slices cannot perturb active
        ones).  Only ``epoch_seconds_`` differs in meaning: members of one
        group share each iteration's wall-clock reading.
        """
        spec = members[0]
        raw = as_series(series)
        for member in members:
            member._fit_scaler(raw)
        arr = spec._apply_scaler(raw)
        models = [
            member._build(arr.shape[1], np.random.default_rng(member.seed))
            for member in members
        ]
        bmodel = nnb.BatchedConvSeriesAE(models)
        optimizer = nn.Adam(bmodel.parameters(), lr=spec.lr)
        n_group = len(members)
        stacked = np.empty((n_group, arr.shape[1], arr.shape[0]))

        outliers = [np.zeros_like(arr) for __ in members]
        previous = [arr.copy() for __ in members]
        cleans = [arr.copy() for __ in members]
        traces = [ConvergenceTrace() for __ in members]
        for member in members:
            member.epoch_seconds_ = []
        active = list(range(n_group))
        frozen = {}
        for __ in range(spec.max_iterations):
            started = time.perf_counter()
            for i in active:
                stacked[i] = series_to_tensor(arr - outliers[i])[0]
            recon = nnb.batched_train_reconstruction(
                bmodel, optimizer, stacked,
                epochs=spec.epochs_per_iteration, n_members=n_group,
            )
            converged = []
            for i in active:
                clean = recon[i].T
                residual = arr - clean
                outliers[i] = _prox(residual, spec.lam, spec.prox)
                condition1, condition2, previous[i] = stopping_conditions(
                    arr, clean, outliers[i], previous[i]
                )
                traces[i].record(
                    np.sqrt(np.mean((arr - clean) ** 2)), condition1, condition2
                )
                cleans[i] = clean
                if condition1 < spec.epsilon or condition2 < spec.epsilon:
                    traces[i].converged = True
                    converged.append(i)
            elapsed = time.perf_counter() - started
            for i in active:
                members[i].epoch_seconds_.append(elapsed)
            for i in converged:
                frozen[i] = bmodel.snapshot_member(i)
                active.remove(i)
            if not active:
                break

        for i, member in enumerate(members):
            arrays = frozen[i] if i in frozen else bmodel.snapshot_member(i)
            model = models[i]
            for (__, param), data in zip(model.named_parameters(), arrays):
                param.data = data
            member.model_ = model
            member.clean_ = cleans[i]
            member.outlier_ = outliers[i]
            member._residual = arr - cleans[i]
            member.trace_ = traces[i]
        nn.tape.release_tapes(bmodel)

    def score(self, series):
        if not self.members_:
            raise RuntimeError("fit before score")
        per_member = []
        for member in self.members_:
            scores = member.score(series)
            spread = scores.std()
            per_member.append(
                (scores - scores.mean()) / (spread if spread > 0 else 1.0)
            )
        stacked = np.asarray(per_member)
        if self.combine == "median":
            return np.median(stacked, axis=0)
        return stacked.mean(axis=0)

    @property
    def clean_series(self):
        """Member-mean clean series (for the explainability analysis)."""
        if not self.members_:
            raise RuntimeError("fit before reading the clean series")
        return np.mean([m.clean_series for m in self.members_], axis=0)
