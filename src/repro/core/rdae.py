"""RDAE: the Robust Dual Autoencoder (Section III-C, Algorithm 2).

RDAE decomposes a series from two views.  The series is embedded into a
lagged (Hankel) matrix ``M``; a shape-preserving 2D-CNN ``f1`` smooths it
(Eq. 15); an inner robust autoencoder splits ``M_hat = L + S`` by
alternating BACKPROP and soft-thresholding (Eq. 16); Hankelization and
anti-diagonal averaging turn ``L``/``S`` back into series; an outer robust
1D-CNN ``f2`` then splits ``T = T_L + T_S`` on the time series view
(Eq. 17).  The whole pipeline repeats until the split stabilises.

Ablation switches reproduce every Fig. 8/9 variant:

* ``use_f1=False``  -> RDAE-f1  (no inner smoothing transform)
* ``use_f2=False``  -> RDAE-f2  (no outer time-series AE)
* both False        -> RDAE-f1f2, the lagged-matrix-only model (≈ RDA)
* ``input_smoother='ma'`` -> RDAE+MA (moving average replaces ``f1``)
"""

from __future__ import annotations

import time

import numpy as np

from .. import nn
from ..baselines.base import BaseDetector, as_series
from ..rpca import apply_prox as _prox
from ..tsops import deembed_lagged, embed_lagged, hankelize, moving_average
from .autoencoders import (
    ConvMatrixAE,
    ConvTransform1d,
    ConvTransform2d,
    FCMatrixAE,
    matrix_to_tensor,
    series_to_tensor,
    tensor_to_matrix,
    tensor_to_series,
    train_reconstruction,
)
from .convergence import ConvergenceTrace, stopping_conditions

__all__ = ["RDAE"]


class RDAE(BaseDetector):
    """Robust dual (matrix-view + series-view) autoencoder detector.

    Parameters
    ----------
    window: lagged-matrix window ``B`` (paper sweeps {10..400}; must satisfy
        ``1 < B < C/2`` and is clipped if the series is too short).
    lam1, lam2: sparsity weights of the inner / outer l1 terms (the paper
        sets ``lam1 = lam2`` in its lambda sweep).
    epsilon: stopping tolerance shared by all three loops.
    max_outer: outer while-loop iterations ("epochs" in Fig. 17).
    inner_iterations: cap for the inner (matrix) ADMM loop per outer pass.
    series_iterations: cap for the outer (series) ADMM loop per outer pass.
    kernels, num_layers, kernel_size: CNN architecture knobs.
    arch: 'cnn' (paper default) or 'fc' (RDAE_FC ablation).
    use_f1 / use_f2 / input_smoother: ablation switches (see module docs).
    dehankel: 'average' (anti-diagonal averaging, the paper's Hankelization)
        or 'endpoint' (single-cell readout) — the DESIGN.md §6 ablation.
    """

    name = "RDAE"

    def __init__(self, window=50, lam1=0.1, lam2=0.1, epsilon=1e-5,
                 max_outer=5, inner_iterations=10, series_iterations=10,
                 kernels=8, num_layers=2, kernel_size=3, arch="cnn",
                 use_f1=True, use_f2=True, input_smoother="none",
                 dehankel="average", prox="l1", epochs_per_iteration=2,
                 lr=1e-2, seed=0):
        self.window = int(window)
        self.lam1 = float(lam1)
        self.lam2 = float(lam2)
        self.epsilon = float(epsilon)
        self.max_outer = int(max_outer)
        self.inner_iterations = int(inner_iterations)
        self.series_iterations = int(series_iterations)
        self.kernels = int(kernels)
        self.num_layers = int(num_layers)
        self.kernel_size = int(kernel_size)
        if arch not in ("cnn", "fc"):
            raise ValueError("arch must be 'cnn' or 'fc'")
        self.arch = arch
        self.use_f1 = bool(use_f1)
        self.use_f2 = bool(use_f2)
        if input_smoother not in ("none", "ma"):
            raise ValueError("input_smoother must be 'none' or 'ma'")
        self.input_smoother = input_smoother
        if dehankel not in ("average", "endpoint"):
            raise ValueError("dehankel must be 'average' or 'endpoint'")
        self.dehankel = dehankel
        self.prox = prox
        self.epochs_per_iteration = int(epochs_per_iteration)
        self.lr = float(lr)
        self.seed = seed
        self.clean_ = None
        self.outlier_ = None
        self.trace_ = None
        self.epoch_seconds_ = []

    # ------------------------------------------------------------------ #
    def _effective_window(self, length):
        # Paper constraint: 1 < B < C / 2.
        return int(np.clip(self.window, 2, max(2, length // 2 - 1)))

    def _build_modules(self, dims, window, rng):
        if self.arch == "fc":
            inner = FCMatrixAE(dims, window, hidden=8 * self.kernels, rng=rng)
        else:
            inner = ConvMatrixAE(
                dims,
                kernels=self.kernels,
                num_layers=self.num_layers,
                kernel_size=self.kernel_size,
                rng=rng,
            )
        f1 = (
            ConvTransform2d(dims, self.kernels, self.kernel_size, rng=rng)
            if self.use_f1
            else None
        )
        f2 = (
            ConvTransform1d(dims, self.kernels, self.kernel_size, rng=rng)
            if self.use_f2
            else None
        )
        return inner, f1, f2

    def _smooth_matrix(self, clean_input, window):
        """Produce M_hat: the (optionally smoothed) lagged matrix."""
        if self.input_smoother == "ma":
            smoothed = moving_average(clean_input, max(window // 4, 3))
            return embed_lagged(smoothed, window), None
        lagged = embed_lagged(clean_input, window)
        if self._f1 is None:
            return lagged, None
        # Eq. 15: train f1 to reproduce M, then smooth.
        recon = train_reconstruction(
            self._f1,
            self._f1_optimizer,
            matrix_to_tensor(lagged),
            epochs=self.epochs_per_iteration,
        )
        return tensor_to_matrix(recon), lagged

    def _inner_decomposition(self, m_hat, sparse):
        """Alg. 2 lines 8-17: split M_hat = L + S with the inner robust AE."""
        if sparse is None or sparse.shape != m_hat.shape:
            sparse = np.zeros_like(m_hat)
        previous = m_hat.copy()
        low = m_hat - sparse
        for __ in range(self.inner_iterations):
            low_input = m_hat - sparse
            recon = train_reconstruction(
                self._inner,
                self._inner_optimizer,
                matrix_to_tensor(low_input),
                epochs=self.epochs_per_iteration,
            )
            low = tensor_to_matrix(recon)
            sparse = _prox(m_hat - low, self.lam1, self.prox)
            condition1, condition2, previous = stopping_conditions(
                m_hat, low, sparse, previous
            )
            if condition1 < self.epsilon or condition2 < self.epsilon:
                break
        return low, sparse

    def _series_decomposition(self, arr, outlier):
        """Alg. 2 lines 20-30: split T = T_L + T_S with the outer RAE f2."""
        previous = arr.copy()
        clean = arr - outlier
        for __ in range(self.series_iterations):
            clean_input = arr - outlier
            recon = train_reconstruction(
                self._f2,
                self._f2_optimizer,
                series_to_tensor(clean_input),
                epochs=self.epochs_per_iteration,
            )
            clean = tensor_to_series(recon)
            outlier = _prox(arr - clean, self.lam2, self.prox)
            condition1, condition2, previous = stopping_conditions(
                arr, clean, outlier, previous
            )
            if condition1 < self.epsilon or condition2 < self.epsilon:
                break
        return clean, outlier

    def _fit_scaler(self, raw):
        self._scale_mean = raw.mean(axis=0, keepdims=True)
        self._scale_std = np.maximum(raw.std(axis=0, keepdims=True), 1e-9)

    def _apply_scaler(self, raw):
        return (raw - self._scale_mean) / self._scale_std

    # ------------------------------------------------------------------ #
    def fit(self, series):
        raw = as_series(series)
        self._fit_scaler(raw)
        arr = self._apply_scaler(raw)
        length, dims = arr.shape
        window = self._effective_window(length)
        rng = np.random.default_rng(self.seed)
        self._inner, self._f1, self._f2 = self._build_modules(dims, window, rng)
        # Wide kernels aggregate more terms per output and blow up gradient
        # magnitudes; scaling the step down keeps training stable across the
        # paper's kernel-size sweep (Fig. 15) without hurting small kernels.
        lr = self.lr * min(1.0, 3.0 / max(self.kernel_size, 1))
        self._inner_optimizer = nn.Adam(self._inner.parameters(), lr=lr)
        self._f1_optimizer = (
            nn.Adam(self._f1.parameters(), lr=lr) if self._f1 else None
        )
        self._f2_optimizer = (
            nn.Adam(self._f2.parameters(), lr=lr) if self._f2 else None
        )

        trace = ConvergenceTrace()
        self.epoch_seconds_ = []
        outlier = np.zeros_like(arr)   # T_S
        clean = arr.copy()             # T_L
        sparse = None                  # S
        previous_sum = arr.copy()
        for __ in range(self.max_outer):
            started = time.perf_counter()
            clean_input = arr - outlier                     # line 3
            m_hat, __lagged = self._smooth_matrix(clean_input, window)  # lines 4-6
            low, sparse = self._inner_decomposition(m_hat, sparse)      # lines 8-17
            # Lines 18-19: Hankelize and read the series views back out.
            # DESIGN.md §6 ablation: anti-diagonal averaging (the paper's
            # Hankelization, default) vs the cheap endpoint readout.
            clean = deembed_lagged(hankelize(low), method=self.dehankel)
            outlier_view = deembed_lagged(hankelize(sparse), method=self.dehankel)
            if self._f2 is not None:
                clean, outlier = self._series_decomposition(arr, outlier_view)
            else:
                # RDAE-f2 ablation: the matrix view is final.
                outlier = _prox(arr - clean, self.lam2, self.prox)
            condition1, condition2, previous_sum = stopping_conditions(
                arr, clean, outlier, previous_sum
            )
            trace.record(
                np.sqrt(np.mean((arr - clean) ** 2)), condition1, condition2
            )
            self.epoch_seconds_.append(time.perf_counter() - started)
            if condition1 < self.epsilon or condition2 < self.epsilon:
                trace.converged = True
                break

        self.clean_ = clean
        self.outlier_ = outlier
        self._residual = arr - clean
        self.trace_ = trace
        for module in (self._inner, self._f1, self._f2):
            if module is not None:
                nn.tape.release_tapes(module)
        return self

    def is_fitted(self):
        """Whether :meth:`fit` (or a persistence load) has completed.

        The single source of truth for fitted-state checks, shared with
        :meth:`RAE.is_fitted`: scoring needs the trained modules and
        persistence needs the decomposition, so both must be present.
        """
        return self.clean_ is not None and getattr(self, "_inner", None) is not None

    def tail_context(self):
        """Trailing positions a new arrival can influence, or ``None``.

        The streaming path of an f2-bearing RDAE forwards only the outer
        series transform (see :meth:`score_new`), so the bound comes from
        ``f2``'s composed receptive field — a few kernel widths.  The
        f2-less ablations stream through the lagged-matrix view, whose
        Hankel embedding spreads every arrival across ``window`` columns:
        no useful bound, so ``None`` (full re-forwards).  The bound is
        conservative (sound, not tight).
        """
        if not self.is_fitted():
            raise RuntimeError("fit before reading tail_context")
        if self._f2 is None:
            return None
        field = self._f2.receptive_field()
        if not field.bounded:
            return None
        return int(field.context())

    def score(self, series):
        """Outlier scores ``||s_S_i||_2^2`` (Eq. 13), with the sub-threshold
        residual as an order-consistent tiebreak among zeroed entries."""
        if self.outlier_ is None:
            raise RuntimeError("fit before score")
        primary = (self.outlier_**2).sum(axis=1)
        tiebreak = (self._residual**2).sum(axis=1)
        return primary + 1e-9 * tiebreak

    def score_new(self, series):
        """Score a previously-unseen series with the trained modules.

        Streaming deployment (Section V-B): the new series is scaled with
        the training statistics and scored without retraining.  The outer
        transform ``f2`` is used when present; the f2-less ablations fall
        back to the inner matrix autoencoder via the lagged-matrix path.
        """
        if self.clean_ is None:
            raise RuntimeError("fit before score_new")
        arr = self._apply_scaler(as_series(series))
        with nn.no_grad():
            if self._f2 is not None:
                recon = self._f2(nn.Tensor(series_to_tensor(arr))).data
                clean = tensor_to_series(recon)
            else:
                window = int(np.clip(self.window, 2, max(2, arr.shape[0] // 2 - 1)))
                lagged = embed_lagged(arr, window)
                recon = self._inner(nn.Tensor(matrix_to_tensor(lagged))).data
                clean = deembed_lagged(hankelize(tensor_to_matrix(recon)))
        residual = arr - clean
        outlier = _prox(residual, self.lam2, self.prox)
        return (outlier**2).sum(axis=1) + 1e-9 * (residual**2).sum(axis=1)

    @property
    def clean_series(self):
        """The decomposed clean series ``T_L``."""
        if self.clean_ is None:
            raise RuntimeError("fit before reading the clean series")
        return self.clean_

    @property
    def outlier_series(self):
        """The decomposed sparse outlier series ``T_S``."""
        if self.outlier_ is None:
            raise RuntimeError("fit before reading the outlier series")
        return self.outlier_

    @property
    def seconds_per_epoch(self):
        """Mean wall-clock seconds per outer iteration (Fig. 18 quantity)."""
        if not self.epoch_seconds_:
            raise RuntimeError("fit before reading runtimes")
        return float(np.mean(self.epoch_seconds_))
