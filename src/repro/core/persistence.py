"""Save / load fitted RAE and RDAE detectors.

The streaming deployment (``score_new``) only makes sense if a fitted
detector survives the process that trained it.  Detectors are serialised to
a single ``.npz``: constructor arguments, the training scaler, the fitted
decomposition, and every module's parameter arrays.
"""

from __future__ import annotations

import json

import numpy as np

from .rae import RAE
from .rdae import RDAE

__all__ = ["save_detector", "load_detector"]

_RAE_ARGS = (
    "lam", "epsilon", "max_iterations", "kernels", "num_layers",
    "kernel_size", "arch", "prox", "epochs_per_iteration", "lr", "seed",
)
_RDAE_ARGS = (
    "window", "lam1", "lam2", "epsilon", "max_outer", "inner_iterations",
    "series_iterations", "kernels", "num_layers", "kernel_size", "arch",
    "use_f1", "use_f2", "input_smoother", "dehankel", "prox", "epochs_per_iteration",
    "lr", "seed",
)


def _module_state(prefix, module):
    if module is None:
        return {}
    return {"%s::%s" % (prefix, k): v for k, v in module.state_dict().items()}


def _load_module_state(blob, prefix, module):
    if module is None:
        return
    wanted = "%s::" % prefix
    state = {
        key[len(wanted):]: blob[key] for key in blob.files if key.startswith(wanted)
    }
    module.load_state_dict(state)


def save_detector(detector, path):
    """Serialise a fitted RAE or RDAE to ``path`` (a ``.npz`` file)."""
    if isinstance(detector, RAE):
        kind, arg_names = "RAE", _RAE_ARGS
    elif isinstance(detector, RDAE):
        kind, arg_names = "RDAE", _RDAE_ARGS
    else:
        raise TypeError("can only save RAE or RDAE, got %s" % type(detector).__name__)
    if not detector.is_fitted():
        raise RuntimeError("fit the detector before saving")
    config = {name: getattr(detector, name) for name in arg_names}
    arrays = {
        "__meta__": np.frombuffer(
            json.dumps({"kind": kind, "config": config}).encode(), dtype=np.uint8
        ),
        "scale_mean": detector._scale_mean,
        "scale_std": detector._scale_std,
        "clean": detector.clean_,
        "outlier": detector.outlier_,
        "residual": detector._residual,
    }
    if kind == "RAE":
        arrays.update(_module_state("model", detector.model_))
    else:
        arrays.update(_module_state("inner", detector._inner))
        arrays.update(_module_state("f1", detector._f1))
        arrays.update(_module_state("f2", detector._f2))
    np.savez(path, **arrays)


def load_detector(path):
    """Load a detector saved by :func:`save_detector`; ready for scoring."""
    blob = np.load(path)
    meta = json.loads(bytes(blob["__meta__"]).decode())
    config = meta["config"]
    if meta["kind"] == "RAE":
        detector = RAE(**config)
        rng = np.random.default_rng(detector.seed)
        dims = blob["clean"].shape[1]
        detector.model_ = detector._build(dims, rng)
        _load_module_state(blob, "model", detector.model_)
    elif meta["kind"] == "RDAE":
        detector = RDAE(**config)
        rng = np.random.default_rng(detector.seed)
        dims = blob["clean"].shape[1]
        length = blob["clean"].shape[0]
        window = detector._effective_window(length)
        detector._inner, detector._f1, detector._f2 = detector._build_modules(
            dims, window, rng
        )
        _load_module_state(blob, "inner", detector._inner)
        _load_module_state(blob, "f1", detector._f1)
        _load_module_state(blob, "f2", detector._f2)
    else:  # pragma: no cover - corrupt file
        raise ValueError("unknown detector kind %r" % meta["kind"])
    detector._scale_mean = blob["scale_mean"]
    detector._scale_std = blob["scale_std"]
    detector.clean_ = blob["clean"]
    detector.outlier_ = blob["outlier"]
    detector._residual = blob["residual"]
    return detector
