"""Save / load fitted detectors and whole pipelines.

The streaming deployment (``score_new``) only makes sense if a fitted
detector survives the process that trained it.  Detectors are serialised to
a single ``.npz``: constructor arguments, the training scaler, the fitted
decomposition, and every module's parameter arrays.

Weights alone are not enough to *rebuild a scorer*, though: a deployment
must also round-trip how it was built — method, parameters, preprocessing,
threshold.  :func:`save_pipeline` therefore writes a JSON spec sidecar
(:class:`repro.api.PipelineSpec`) next to the npz weights, and
:func:`load_pipeline` rebuilds a fully-configured
:class:`repro.api.Pipeline` from the pair.  Shard recovery in
:class:`repro.serve.StreamRouter` is built on the same two halves.
"""

from __future__ import annotations

import json
import os

import numpy as np

from .rae import RAE
from .rdae import RDAE

__all__ = [
    "save_detector",
    "load_detector",
    "save_pipeline",
    "load_pipeline",
    "WeightStore",
]

_RAE_ARGS = (
    "lam", "epsilon", "max_iterations", "kernels", "num_layers",
    "kernel_size", "arch", "prox", "epochs_per_iteration", "lr", "seed",
)
_RDAE_ARGS = (
    "window", "lam1", "lam2", "epsilon", "max_outer", "inner_iterations",
    "series_iterations", "kernels", "num_layers", "kernel_size", "arch",
    "use_f1", "use_f2", "input_smoother", "dehankel", "prox", "epochs_per_iteration",
    "lr", "seed",
)


def _module_state(prefix, module):
    if module is None:
        return {}
    return {"%s::%s" % (prefix, k): v for k, v in module.state_dict().items()}


def _load_module_state(blob, prefix, module, keys=None, copy=True):
    if module is None:
        return
    if keys is None:
        keys = blob.files if hasattr(blob, "files") else blob.keys()
    wanted = "%s::" % prefix
    state = {
        key[len(wanted):]: blob[key] for key in keys if key.startswith(wanted)
    }
    module.load_state_dict(state, copy=copy)


def _detector_payload(detector):
    """``(meta, arrays)`` halves of a fitted RAE/RDAE serialisation.

    Shared by every persistence surface: :func:`save_detector` zips the
    arrays into one npz, :class:`WeightStore` lays them out as individual
    ``.npy`` files so worker processes can map them read-only.
    """
    if isinstance(detector, RAE):
        kind, arg_names = "RAE", _RAE_ARGS
    elif isinstance(detector, RDAE):
        kind, arg_names = "RDAE", _RDAE_ARGS
    else:
        raise TypeError("can only save RAE or RDAE, got %s" % type(detector).__name__)
    if not detector.is_fitted():
        raise RuntimeError("fit the detector before saving")
    config = {name: getattr(detector, name) for name in arg_names}
    arrays = {
        "scale_mean": detector._scale_mean,
        "scale_std": detector._scale_std,
        "clean": detector.clean_,
        "outlier": detector.outlier_,
        "residual": detector._residual,
    }
    if kind == "RAE":
        arrays.update(_module_state("model", detector.model_))
    else:
        arrays.update(_module_state("inner", detector._inner))
        arrays.update(_module_state("f1", detector._f1))
        arrays.update(_module_state("f2", detector._f2))
    return {"kind": kind, "config": config}, arrays


def _rebuild_detector(meta, blob, copy=True):
    """Inverse of :func:`_detector_payload` over any array mapping.

    ``blob`` only needs ``__getitem__`` plus a key listing (an npz handle or
    a plain dict).  ``copy=False`` adopts the arrays as-is — the weight-store
    path, where they are read-only memmaps shared across processes.
    """
    keys = blob.files if hasattr(blob, "files") else blob.keys()
    config = meta["config"]
    if meta["kind"] == "RAE":
        detector = RAE(**config)
        rng = np.random.default_rng(detector.seed)
        dims = blob["clean"].shape[1]
        detector.model_ = detector._build(dims, rng)
        _load_module_state(blob, "model", detector.model_, keys, copy)
    elif meta["kind"] == "RDAE":
        detector = RDAE(**config)
        rng = np.random.default_rng(detector.seed)
        dims = blob["clean"].shape[1]
        length = blob["clean"].shape[0]
        window = detector._effective_window(length)
        detector._inner, detector._f1, detector._f2 = detector._build_modules(
            dims, window, rng
        )
        _load_module_state(blob, "inner", detector._inner, keys, copy)
        _load_module_state(blob, "f1", detector._f1, keys, copy)
        _load_module_state(blob, "f2", detector._f2, keys, copy)
    else:  # pragma: no cover - corrupt file
        raise ValueError("unknown detector kind %r" % meta["kind"])
    detector._scale_mean = blob["scale_mean"]
    detector._scale_std = blob["scale_std"]
    detector.clean_ = blob["clean"]
    detector.outlier_ = blob["outlier"]
    detector._residual = blob["residual"]
    return detector


def save_detector(detector, path):
    """Serialise a fitted RAE or RDAE to ``path`` (a ``.npz`` file)."""
    meta, arrays = _detector_payload(detector)
    arrays["__meta__"] = np.frombuffer(
        json.dumps(meta).encode(), dtype=np.uint8
    )
    np.savez(path, **arrays)


def load_detector(path):
    """Load a detector saved by :func:`save_detector`; ready for scoring."""
    blob = np.load(path)
    meta = json.loads(bytes(blob["__meta__"]).decode())
    return _rebuild_detector(meta, blob)


class WeightStore:
    """A directory of fitted-detector weights that processes share by mmap.

    :func:`save_detector` packs everything into one npz — compact, but a
    zip archive cannot be memory-mapped, so every process that loads it
    pays for (and owns) a private copy of every array.  The serving
    layer's process-parallel drain backend wants the opposite: ``N``
    worker processes scoring shards of the *same* fitted detector should
    share **one** physical copy of its weights.  The store therefore lays
    each detector out as ``<ref>/meta.json`` plus one plain ``.npy`` file
    per array; :meth:`load` maps them read-only (``mmap_mode='r'``), so
    however many workers open a detector, its pages live once in the OS
    page cache.

    The layout is append-only and the parent writes a ref completely
    before publishing it to any worker, so readers never see a partial
    detector.  Entries are identical bytes to the npz sidecars (same
    :func:`_detector_payload`), hence loaded detectors score bit-identically
    to the originals.
    """

    _META = "meta.json"

    def __init__(self, directory):
        self.directory = str(directory)
        os.makedirs(self.directory, exist_ok=True)
        self._count = 0

    def add(self, detector):
        """Persist ``detector``; returns its ref (a directory name)."""
        meta, arrays = _detector_payload(detector)
        while True:
            ref = "d%d" % self._count
            self._count += 1
            entry_dir = os.path.join(self.directory, ref)
            if not os.path.exists(entry_dir):
                break
        os.makedirs(entry_dir)
        index = {}
        for i, (key, value) in enumerate(arrays.items()):
            filename = "a%d.npy" % i
            np.save(os.path.join(entry_dir, filename),
                    np.ascontiguousarray(value))
            index[key] = filename
        doc = dict(meta, arrays=index)
        with open(os.path.join(entry_dir, self._META), "w") as handle:
            json.dump(doc, handle, indent=2)
            handle.write("\n")
        return ref

    def load(self, ref, mmap=True):
        """Rebuild the detector stored under ``ref``, ready for scoring.

        With ``mmap=True`` (default) every array — module parameters and
        fitted decomposition alike — is a read-only memory map: cheap to
        open, shared across processes, and never written (serving only
        reads weights).  ``mmap=False`` loads private in-memory copies.
        """
        entry_dir = os.path.join(self.directory, str(ref))
        with open(os.path.join(entry_dir, self._META)) as handle:
            doc = json.load(handle)
        mode = "r" if mmap else None
        blob = {
            key: np.load(os.path.join(entry_dir, filename), mmap_mode=mode)
            for key, filename in doc["arrays"].items()
        }
        return _rebuild_detector(doc, blob, copy=not mmap)


# --------------------------------------------------------------------- #
# pipeline persistence: JSON spec sidecar + (optional) npz weights

def _pipeline_paths(path):
    """Normalise ``path`` (stem, ``.json``, or ``.npz``) to the file pair."""
    base = str(path)
    for suffix in (".json", ".npz"):
        if base.endswith(suffix):
            base = base[: -len(suffix)]
    return base + ".json", base + ".npz"


def save_pipeline(pipeline, path):
    """Persist a :class:`repro.api.Pipeline` as spec sidecar + weights.

    Writes ``<path>.json`` — the pipeline's :meth:`to_spec` projection plus
    persistence metadata — and, when the detector is a fitted RAE/RDAE
    (the ``warm_startable`` family), ``<path>.npz`` weights next to it.
    Detectors without persistable weights save spec-only: the restored
    pipeline is fully configured but must be refitted before warm scoring
    (which is all a ``transductive`` detector needs anyway).

    Returns the JSON sidecar path.
    """
    spec_path, weights_path = _pipeline_paths(path)
    detector = pipeline.detector
    weights = None
    if isinstance(detector, (RAE, RDAE)) and detector.is_fitted():
        save_detector(detector, weights_path)
        # Stored relative so the saved pair can be moved as a unit.
        weights = os.path.basename(weights_path)
    doc = {
        "format": "repro.pipeline",
        "version": 1,
        "pipeline": pipeline.to_spec().to_dict(),
        "weights": weights,
        "fitted": bool(pipeline.is_fitted()),
    }
    with open(spec_path, "w") as handle:
        json.dump(doc, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return spec_path


def load_pipeline(path):
    """Rebuild a fully-configured :class:`repro.api.Pipeline`.

    ``path`` may be the stem, the ``.json`` sidecar, or the ``.npz``
    weights file.  When weights exist the detector is restored fitted
    (ready for ``score``/``score_new``/streaming); otherwise it is rebuilt
    from the spec alone.
    """
    from ..api import Pipeline, PipelineSpec

    spec_path, __ = _pipeline_paths(path)
    with open(spec_path) as handle:
        doc = json.load(handle)
    if doc.get("format") != "repro.pipeline":
        raise ValueError(
            "%s is not a pipeline sidecar (format=%r)"
            % (spec_path, doc.get("format"))
        )
    spec = PipelineSpec.from_dict(doc["pipeline"])
    if doc.get("weights"):
        weights_path = os.path.join(
            os.path.dirname(spec_path) or ".", doc["weights"]
        )
        return Pipeline(spec, detector=load_detector(weights_path))
    return Pipeline(spec)
