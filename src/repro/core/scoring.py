"""Warm scoring state for fitted RAE/RDAE detectors.

``score_new`` is stateless: every call re-validates, re-scales, re-embeds and
runs a full forward pass over whatever it is given.  Serving a stream (or a
fleet of series) wants the opposite — bind the fitted model once, keep the
recent window and its lagged embedding hot, and only pay for the arrivals:

* :class:`ScoringSession` — per-stream state: a ring buffer of scaled
  observations, an incrementally-maintained lagged matrix for the
  matrix-view path, and a memoised last forward pass.
* :func:`batched_score_new` — score many same-length series through one
  forward pass of the fitted autoencoder (the batch axis of the conv stack).
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..baselines.base import as_series
from ..rpca import apply_prox as _prox
from ..stream.ring import RingBuffer
from ..tsops.hankel import deembed_lagged, hankelize
from ..tsops.incremental import SlidingLagged
from .autoencoders import (
    matrix_to_tensor,
    series_to_tensor,
    tensor_to_matrix,
    tensor_to_series,
)
from .rae import RAE
from .rdae import RDAE

__all__ = ["ScoringSession", "batched_score_new"]


def _check_fitted(detector):
    if isinstance(detector, RAE):
        if detector.model_ is None:
            raise RuntimeError("fit the detector before streaming/batch scoring")
        return "rae"
    if isinstance(detector, RDAE):
        if detector.clean_ is None:
            raise RuntimeError("fit the detector before streaming/batch scoring")
        return "rdae_series" if detector._f2 is not None else "rdae_matrix"
    raise TypeError(
        "expected a fitted RAE or RDAE, got %s" % type(detector).__name__
    )


class ScoringSession:
    """Incremental ``score_new`` over a sliding window of a live stream.

    Parameters
    ----------
    detector: a *fitted* :class:`RAE` or :class:`RDAE`.
    window: observations retained for scoring context.  Each arrival is
        scored from a forward pass over at most this many points, so the
        per-arrival cost is bounded regardless of stream length.

    The session applies the detector's *training* scaler (the stream is
    assumed to monitor the trained process), keeps scaled observations in a
    :class:`RingBuffer`, and — for the lagged-matrix path of f2-less RDAE —
    maintains the Hankel embedding incrementally via :class:`SlidingLagged`
    instead of re-embedding the window per arrival.

    For the series paths (RAE, RDAE-with-f2) results match ``score_new`` on
    the window content exactly.  The matrix path fixes its lag from the
    window *capacity* (that is what makes incremental updates possible), so
    it matches ``score_new`` exactly once the ring holds a full window;
    while it is still filling, ``score_new``'s content-length-based lag
    clamp can pick a smaller lag and the scores differ slightly.
    """

    def __init__(self, detector, window=256):
        self.kind = _check_fitted(detector)
        self.detector = detector
        self.window = int(window)
        if self.window < 2:
            raise ValueError("window must be >= 2")
        self.dims = detector._scale_mean.shape[1]
        self._ring = RingBuffer(self.window, self.dims)
        self._lagged = None
        if self.kind == "rdae_matrix":
            self._lag = int(np.clip(
                detector.window, 2, max(2, self.window // 2 - 1)
            ))
            self._lagged = SlidingLagged(
                self._lag, self.dims, max_columns=self.window - self._lag + 1
            )
        # Memoised forward state: (arrivals seen when computed, scores).
        self._cache_total = -1
        self._cache_scores = np.zeros(0)

    def __len__(self):
        return len(self._ring)

    @property
    def total(self):
        """Observations ever ingested."""
        return self._ring.total

    def _ingest(self, points, bulk=False):
        raw = np.asarray(points, dtype=np.float64)
        if raw.ndim == 1:
            raw = raw[:, None]
        if raw.ndim != 2 or raw.shape[1] != self.dims:
            raise ValueError("points must be (n, %d), got %s"
                             % (self.dims, raw.shape))
        scaled = self.detector._apply_scaler(raw)
        self._ring.extend(scaled)
        if self._lagged is not None:
            if bulk:
                # One vectorised re-embedding of the retained window beats
                # per-row appends when a whole history arrives at once.
                self._lagged.rebuild(np.asarray(self._ring.view()))
            else:
                self._lagged.extend(scaled)
        return raw.shape[0]

    def seed(self, history):
        """Ingest history without scoring it (fast session warm-up).

        Bulk-loads the ring and rebuilds the lagged embedding in one
        vectorised pass; no forward pass runs until the next ``extend`` /
        ``scores`` call.  Use this to give the first live arrivals context.
        """
        self._ingest(history, bulk=True)
        return self

    def _forward(self, arr):
        """Scores of the scaled window ``arr`` via the detector's warm path."""
        det = self.detector
        residual = np.zeros_like(arr)
        with nn.no_grad():
            if self.kind == "rae":
                recon = det.model_(nn.Tensor(series_to_tensor(arr))).data
                residual = arr - tensor_to_series(recon)
                lam = det.lam
            elif self.kind == "rdae_series":
                recon = det._f2(nn.Tensor(series_to_tensor(arr))).data
                residual = arr - tensor_to_series(recon)
                lam = det.lam2
            else:
                lam = det.lam2
                # The inner AE's max-pool needs at least 2 lagged columns
                # (K=1 would pool to width 0); until then the stream is
                # still warming up and keeps zero evidence.
                if len(self._lagged) >= 2:
                    lagged = self._lagged.matrix
                    recon = det._inner(nn.Tensor(matrix_to_tensor(lagged))).data
                    clean = deembed_lagged(hankelize(tensor_to_matrix(recon)))
                    # The embedding needs B observations before its first
                    # column; observations before that keep zero evidence.
                    covered = clean.shape[0]
                    residual[arr.shape[0] - covered :] = arr[arr.shape[0] - covered :] - clean
        outlier = _prox(residual, lam, det.prox)
        return (outlier**2).sum(axis=1) + 1e-9 * (residual**2).sum(axis=1)

    def scores(self):
        """Scores of every observation in the current window."""
        if self._ring.total != self._cache_total:
            size = len(self._ring)
            if size < 2:
                self._cache_scores = np.zeros(size)
            else:
                self._cache_scores = self._forward(np.asarray(self._ring.view()))
            self._cache_total = self._ring.total
        return self._cache_scores

    def extend(self, points):
        """Ingest a chunk and return one score per ingested point.

        The chunk is scored with a single forward pass over the updated
        window (micro-batching); with chunks of size one this is exactly
        per-arrival scoring.  Chunk points that overflow the window are
        evicted before scoring and reported as 0.0 (the warmup convention)
        — the seeding idiom; keep live chunks within the window size.
        """
        n = self._ingest(points)
        window_scores = self.scores()
        out = np.zeros(n)
        tail = min(n, window_scores.shape[0])
        if tail:
            out[n - tail:] = window_scores[window_scores.shape[0] - tail:]
        return out

    def push(self, point):
        """Ingest one observation and return its score."""
        return float(self.extend(np.asarray(point, dtype=np.float64).reshape(1, -1))[0])


def batched_score_new(detector, series_batch):
    """Score many same-length series with one forward pass.

    Parameters
    ----------
    detector: a fitted :class:`RAE` or :class:`RDAE`.
    series_batch: array ``(M, C, D)`` or ``(M, C)``, or a list of
        equal-length series.

    Returns an ``(M, C)`` array of per-observation scores identical to
    calling ``score_new`` on each series, but amortising the autoencoder
    forward (and all the NumPy dispatch around it) across the batch.  The
    f2-less RDAE matrix path does not batch and falls back to a loop.
    """
    kind = _check_fitted(detector)
    if isinstance(series_batch, np.ndarray) and series_batch.ndim == 3:
        batch = np.asarray(series_batch, dtype=np.float64)
    else:
        batch = np.stack([as_series(s) for s in series_batch])
    if kind == "rdae_matrix":
        return np.stack([detector.score_new(series) for series in batch])
    scaled = detector._apply_scaler(batch)           # scaler broadcasts (1, D)
    tensor = np.ascontiguousarray(scaled.transpose(0, 2, 1))  # (M, D, C)
    module = detector.model_ if kind == "rae" else detector._f2
    lam = detector.lam if kind == "rae" else detector.lam2
    with nn.no_grad():
        recon = module(nn.Tensor(tensor)).data
    clean = recon.transpose(0, 2, 1)                 # (M, C, D)
    residual = scaled - clean
    outlier = _prox(residual, lam, detector.prox)
    return (outlier**2).sum(axis=2) + 1e-9 * (residual**2).sum(axis=2)
