"""Warm scoring state for fitted RAE/RDAE detectors.

``score_new`` is stateless: every call re-validates, re-scales, re-embeds and
runs a full forward pass over whatever it is given.  Serving a stream (or a
fleet of series) wants the opposite — bind the fitted model once, keep the
recent window and its lagged embedding hot, and only pay for the arrivals:

* :class:`ScoringSession` — per-stream state: a ring buffer of scaled
  observations, an incrementally-maintained lagged matrix for the
  matrix-view path, and a memoised last forward pass.  For architectures
  with a bounded receptive field (the conv stacks), a push re-forwards only
  the window *tail* that the new arrivals can influence — O(receptive
  field) instead of O(window) — and splices the result into the cached
  score vector bit-identically to a full re-forward.
* :func:`batched_score_new` — score many same-length series through one
  forward pass of the fitted autoencoder (the batch axis of the conv stack).
* :func:`batched_session_scores` — refresh many live sessions at once:
  sessions that share a detector and a slice shape are stacked through one
  forward pass (the sharded-serving drain path of :mod:`repro.serve`);
  tail-capable sessions contribute bounded slices, not whole windows.
* :func:`iter_key_batches` — the same-shape grouping used by every batched
  path (here and in :class:`repro.eval.BatchScoringEngine`).

Tail forwards and their bit-identity rest on two facts established at the
``repro.nn`` layer: every module reports a sound receptive-field cone
(:meth:`repro.nn.Module.receptive_field`), and serving forwards run under
:func:`repro.nn.functional.stable_kernels`, whose conv arithmetic is
independent of the forwarded length (so a slice forward reproduces the
full forward's bits away from the slice's padded left edge).

The compiled inference path (this PR) removes the remaining per-forward
overhead.  :func:`architecture_fingerprint` gives every fitted detector a
stable structural key, so :func:`batched_session_scores` groups slices by
*architecture* instead of detector identity — S same-spec shards, each
with its own weights, share one forward.  :class:`InferencePrograms` is
the program cache that executes those groups: solo-module groups replay a
grad-free :class:`repro.nn.tape.ScoreTape`, mixed-detector groups replay a
:class:`repro.nn.batched.StackedScoreProgram` with the member weights
stacked along a leading axis.  Both replay the serving kernels'
length-stable arithmetic exactly, so compiled scores are bit-identical to
the eager drain; any group the cache declines (unsupported architecture,
``REPRO_EAGER``, poisoned recording) falls back to eager forwards
partitioned per detector.
"""

from __future__ import annotations

import threading

import numpy as np

from .. import nn
from ..nn import batched as nn_batched
from ..baselines.base import as_series
from ..rpca import apply_prox as _prox
from ..stream.ring import RingBuffer
from ..tsops.hankel import deembed_lagged, hankelize
from ..tsops.incremental import SlidingLagged
from .autoencoders import matrix_to_tensor, tensor_to_matrix
from .rae import RAE
from .rdae import RDAE

__all__ = [
    "InferencePrograms",
    "ScoringSession",
    "architecture_fingerprint",
    "batched_score_new",
    "batched_session_scores",
    "drain_group_key",
    "iter_key_batches",
]


def _check_fitted(detector):
    if not isinstance(detector, (RAE, RDAE)):
        raise TypeError(
            "expected a fitted RAE or RDAE, got %s" % type(detector).__name__
        )
    if not detector.is_fitted():
        raise RuntimeError("fit the detector before streaming/batch scoring")
    if isinstance(detector, RAE):
        return "rae"
    return "rdae_series" if detector._f2 is not None else "rdae_matrix"


def iter_key_batches(keys, batch_size):
    """Group positions ``0..len(keys)-1`` by key, yield batches of indices.

    Every batched scoring path wants the same thing: partition a work list
    into same-key groups (same shape, same detector, ...) that can share one
    forward pass, then chunk each group by ``batch_size``.  Yields lists of
    indices into ``keys``; within a group, input order is preserved.
    """
    batch_size = max(int(batch_size), 1)
    groups = {}
    for index, key in enumerate(keys):
        groups.setdefault(key, []).append(index)
    for indices in groups.values():
        for lo in range(0, len(indices), batch_size):
            yield indices[lo : lo + batch_size]


def _forward_scaled_batch(detector, kind, scaled, stable=False):
    """Score an already-scaled ``(M, C, D)`` batch with one forward pass.

    The shared core of :func:`batched_score_new`,
    :func:`batched_session_scores` and the series paths of
    :meth:`ScoringSession._forward`: run the fitted module over the batch
    axis, then prox-threshold the residuals into per-observation scores.
    Only the series kinds batch; the lagged-matrix path is handled by its
    callers.

    ``stable=True`` (every :class:`ScoringSession` forward) runs under
    :func:`repro.nn.functional.stable_kernels`, making each position's
    arithmetic independent of ``C`` and ``M`` — the precondition for
    splicing tail-slice forwards into cached full forwards bit-exactly.
    """
    tensor = np.ascontiguousarray(scaled.transpose(0, 2, 1))  # (M, D, C)
    module = detector.model_ if kind == "rae" else detector._f2
    lam = detector.lam if kind == "rae" else detector.lam2
    if stable:
        with nn.no_grad(), nn.functional.stable_kernels():
            recon = module(nn.Tensor(tensor)).data
    else:
        with nn.no_grad():
            recon = module(nn.Tensor(tensor)).data
    clean = recon.transpose(0, 2, 1)                 # (M, C, D)
    residual = scaled - clean
    outlier = _prox(residual, lam, detector.prox)
    return (outlier**2).sum(axis=2) + 1e-9 * (residual**2).sum(axis=2)


# --------------------------------------------------------------------- #
# architecture fingerprints — the cross-detector grouping key
# --------------------------------------------------------------------- #

def _module_signature(module):
    """Hashable structural identity of a module tree.

    Type names, non-private scalar hyperparameters (padding, kernel,
    chunk, ...), child modules (attributes and lists, recursively), and
    the ``named_parameters`` name/shape sequence.  Two modules share a
    signature exactly when they run the same forward pipeline over
    identically-shaped weights — the condition for stacking their score
    forwards along a leading member axis.
    """
    parts = []
    for name, value in vars(module).items():
        if name.startswith("_") or name == "training":
            continue
        if isinstance(value, nn.Parameter):
            continue
        if isinstance(value, nn.Module):
            parts.append((name, _module_signature(value)))
        elif isinstance(value, (list, tuple)) and value and all(
            isinstance(item, nn.Module) for item in value
        ):
            parts.append(
                (name, tuple(_module_signature(item) for item in value))
            )
        elif isinstance(value, (bool, int, float, str)):
            parts.append((name, value))
    params = tuple(
        (name, tuple(int(d) for d in p.data.shape))
        for name, p in module.named_parameters()
    )
    return (type(module).__name__, tuple(parts), params)


def architecture_fingerprint(detector, kind=None):
    """Stable grouping key for a fitted detector's serving forward.

    Same-spec detectors with *different weights* share a fingerprint, so
    drains can stack their slices through one batched forward; detectors
    of different architecture (or scoring kind) never collide.  The
    lagged-matrix RDAE path keeps identity keys — its embedding geometry
    is per-session and never batches across detectors.

    The fingerprint is memoised per serving-module object; it reflects the
    structure at first use.  That is only a *grouping* hint — a group
    whose members turn out not to stack (e.g. a weight hot-swapped to a
    mismatched shape after the memo) degrades to per-detector eager
    forwards or per-shard fault isolation, never to wrong scores.
    """
    if kind is None:
        kind = _check_fitted(detector)
    if kind == "rdae_matrix":
        return ("rdae_matrix", id(detector))
    module = detector.model_ if kind == "rae" else detector._f2
    cached = detector.__dict__.get("_arch_fingerprint")
    if cached is not None and cached[0] is module:
        return cached[1]
    fingerprint = (kind, _module_signature(module))
    detector.__dict__["_arch_fingerprint"] = (module, fingerprint)
    return fingerprint


def drain_group_key(detector):
    """The shard-grouping key :class:`repro.serve.StreamRouter` drains by.

    Fitted RAE/RDAE detectors group by :func:`architecture_fingerprint`
    (same-spec shards share one batched forward even with per-stream
    weights); anything else — unfitted detectors, baseline methods —
    keeps the old identity key and scores in its own group.
    """
    try:
        kind = _check_fitted(detector)
    except (TypeError, RuntimeError):
        return ("id", id(detector))
    return architecture_fingerprint(detector, kind)


# --------------------------------------------------------------------- #
# the compiled inference path
# --------------------------------------------------------------------- #

class InferencePrograms:
    """Per-router (or per-worker) cache of compiled score forwards.

    One instance is shared by every shard of a router — solo slice
    forwards replay grad-free :func:`repro.nn.tape.score_tape` recordings,
    and cross-detector groups replay
    :class:`repro.nn.batched.StackedScoreProgram` pipelines cached by
    ``(architecture fingerprint, stacked input shape)``.  ``hits`` /
    ``misses`` / ``invalidations`` count cache events for
    ``StreamRouter.stats()``; an invalidation means a member's parameter
    array was hot-swapped since the program compiled (the program is
    refreshed from the new weights before it replays).

    Thread-safe: the cache map and counters sit behind one lock, and every
    program serialises its own replays — concurrent drain workers scoring
    different groups never contend beyond the cache lookup.
    """

    _MAX_STACKED = 32

    #: Lock discipline, machine-checked by ``repro lint`` (lock-guarded).
    _GUARDED_BY = {
        "_stacked": "_lock",
        "_hits": "_lock",
        "_misses": "_lock",
        "_invalidations": "_lock",
    }

    def __init__(self):
        self._lock = threading.Lock()
        self._stacked = {}  # (fingerprint, shape) -> (member token, program|None)
        self._hits = 0
        self._misses = 0
        self._invalidations = 0

    # -- counters ------------------------------------------------------- #
    def _count(self, event):
        if event is None:
            return
        with self._lock:
            if event == "hit":
                self._hits += 1
            elif event == "miss":
                self._misses += 1
            elif event == "invalidated":
                self._invalidations += 1

    def counters(self):
        """Snapshot of ``{"hits", "misses", "invalidations"}``."""
        with self._lock:
            return {"hits": self._hits, "misses": self._misses,
                    "invalidations": self._invalidations}

    def take_counters(self):
        """Return the counters and reset them to zero (delta accounting:
        the router absorbs per-drain deltas into its persistent totals)."""
        with self._lock:
            out = {"hits": self._hits, "misses": self._misses,
                   "invalidations": self._invalidations}
            self._hits = self._misses = self._invalidations = 0
            return out

    # -- program lookup ------------------------------------------------- #
    def _stacked_program(self, fingerprint, modules, shape):
        """The cached stacked program for this group, refreshed/rebuilt as
        needed; None when the group cannot compile (cached so repeated
        drains of an unstackable group pay one plan walk, not one per
        drain — the member token keys the verdict, so a weight hot-swap
        retries)."""
        key = (fingerprint, shape)
        token = nn_batched.stacked_member_token(modules)
        with self._lock:
            entry = self._stacked.get(key)
            if entry is not None and entry[0] == token:
                if entry[1] is not None:
                    self._hits += 1
                return entry[1]
            if entry is not None:
                self._invalidations += 1
                program = entry[1]
            else:
                self._misses += 1
                program = None
            self._stacked.pop(key, None)
        if program is not None:
            try:
                program.refresh(modules)
            except Exception:  # noqa: BLE001 - shape drift; rebuild below
                program = None
        if program is None:
            plan = nn_batched.stacked_score_plan(modules)
            if plan is not None:
                try:
                    program = nn_batched.StackedScoreProgram(plan, shape)
                except Exception:  # noqa: BLE001 - unbuildable at this shape
                    program = None
        with self._lock:
            if len(self._stacked) >= self._MAX_STACKED:
                self._stacked.pop(next(iter(self._stacked)))
            self._stacked[key] = (token, program)
        return program

    def score_batch(self, detectors, kind, scaled):
        """Compiled scores for a stacked ``(S, C, D)`` batch, or None.

        Row ``i`` of ``scaled`` belongs to ``detectors[i]`` (objects may
        repeat).  Returns the ``(S, C)`` per-observation scores —
        bit-identical to the eager stable forward of each row through its
        own detector — or None when the compiled path declines (tape
        compilation disabled, lagged-matrix kind, unsupported
        architecture, poisoned recording) and the caller must run eager.
        """
        if kind not in ("rae", "rdae_series") or not nn.tape.tape_enabled():
            return None
        modules = [
            det.model_ if kind == "rae" else det._f2 for det in detectors
        ]
        tensor = np.ascontiguousarray(scaled.transpose(0, 2, 1))  # (S, D, C)
        first = modules[0]
        if all(module is first for module in modules):
            tape, event = nn.tape.score_tape(first, tensor.shape)
            self._count(event)
            if tape is None:
                return None
            recon = tape.run(tensor)
        else:
            fingerprint = architecture_fingerprint(detectors[0], kind)
            program = self._stacked_program(fingerprint, modules, tensor.shape)
            if program is None:
                return None
            recon = program.run(tensor)
        clean = recon.transpose(0, 2, 1)                 # (S, C, D)
        residual = scaled - clean
        pairs = [
            (det.lam if kind == "rae" else det.lam2, det.prox)
            for det in detectors
        ]
        if all(pair == pairs[0] for pair in pairs):
            outlier = _prox(residual, pairs[0][0], pairs[0][1])
        else:
            # Per-row thresholding when hyperparameters differ across the
            # stacked members — _prox is elementwise, so per-row equals
            # the batched call bit for bit.
            outlier = np.empty_like(residual)
            for row, (lam, prox) in enumerate(pairs):
                outlier[row] = _prox(residual[row], lam, prox)
        return (outlier**2).sum(axis=2) + 1e-9 * (residual**2).sum(axis=2)


def _group_scaled_batch(detectors, kind, batch, programs):
    """Score a same-shape ``(S, C, D)`` batch; row i owns detectors[i].

    Tries the compiled path first; eager fallback partitions rows per
    detector — one detector's module must never forward another's rows
    (their weights differ even when the architecture matches).  Stable
    kernels make each row's arithmetic independent of its batchmates, so
    the partitioned eager result equals the stacked compiled one bit for
    bit.
    """
    if programs is not None:
        scores = programs.score_batch(detectors, kind, batch)
        if scores is not None:
            return scores
    first = detectors[0]
    if all(det is first for det in detectors):
        return _forward_scaled_batch(first, kind, batch, stable=True)
    scores = np.empty(batch.shape[:2])
    partitions = {}
    for row, det in enumerate(detectors):
        partitions.setdefault(id(det), (det, []))[1].append(row)
    for det, rows in partitions.values():
        index = np.asarray(rows)
        scores[index] = _forward_scaled_batch(
            det, kind, batch[index], stable=True
        )
    return scores


class ScoringSession:
    """Incremental ``score_new`` over a sliding window of a live stream.

    Parameters
    ----------
    detector: a *fitted* :class:`RAE` or :class:`RDAE`.
    window: observations retained for scoring context.  Each arrival is
        scored from a forward pass over at most this many points, so the
        per-arrival cost is bounded regardless of stream length.
    tail_forward: when True (default) and the detector's serving module
        reports a bounded receptive field, pushes re-forward only the last
        ``tail_context + chunk`` positions of the window and splice the
        result into the cached score vector — push cost O(receptive
        field), not O(window), with scores bit-identical to a full
        re-forward.  Architectures without a bound (FC ablations, the
        lagged-matrix path) fall back to full forwards automatically.
    programs: optional :class:`InferencePrograms` cache.  When given,
        slice forwards replay compiled grad-free score tapes instead of
        rebuilding the autograd graph eagerly; scores are bit-identical
        either way (both run under stable kernels), so a session may gain
        or lose the cache across save/restore without a score changing.

    The session applies the detector's *training* scaler (the stream is
    assumed to monitor the trained process), keeps scaled observations in a
    :class:`RingBuffer`, and — for the lagged-matrix path of f2-less RDAE —
    maintains the Hankel embedding incrementally via :class:`SlidingLagged`
    instead of re-embedding the window per arrival.

    For the series paths (RAE, RDAE-with-f2) results agree with
    ``score_new`` on the window content to floating-point tolerance: the
    session's forwards run under :func:`repro.nn.functional.stable_kernels`
    (whose conv reduction order differs from the stateless path's by
    ~1 ulp) so that *within* the session, tail forwards, splices and full
    re-forwards are mutually bit-identical.  The matrix path fixes its lag
    from the window *capacity* (that is what makes incremental updates
    possible), so it matches ``score_new`` once the ring holds a full
    window; while it is still filling, ``score_new``'s
    content-length-based lag clamp can pick a smaller lag and the scores
    differ slightly.

    Tail-forward mechanics (series kinds).  The composed receptive field
    gives three numbers: a lookback/lookahead margin pair (positions a
    slice's padded edges can pollute) and a *period* (the pooling-grid
    quantum: only window shifts that are period multiples keep cached
    positions valid — 2 for the pooled conv RAE, 1 for RDAE's ``f2``).
    The cache is anchored at the forward that produced it; a push whose
    cumulative shift since the anchor is period-aligned refreshes the whole
    cache from a head slice + shifted interior + tail slice, and a
    misaligned push answers from a standalone aligned tail slice while the
    anchor waits (at most ``period`` pushes) for alignment.  Either way a
    push forwards O(receptive field + chunk) positions, never O(window).
    """

    def __init__(self, detector, window=256, tail_forward=True,
                 programs=None):
        self.kind = _check_fitted(detector)
        self.detector = detector
        self.programs = programs
        self.window = int(window)
        if self.window < 2:
            raise ValueError("window must be >= 2")
        self.dims = detector._scale_mean.shape[1]
        self._ring = RingBuffer(self.window, self.dims)
        self._lagged = None
        if self.kind == "rdae_matrix":
            self._lag = int(np.clip(
                detector.window, 2, max(2, self.window // 2 - 1)
            ))
            self._lagged = SlidingLagged(
                self._lag, self.dims, max_columns=self.window - self._lag + 1
            )
        # Receptive-field metadata for the tail-forward path (None when the
        # architecture is unbounded or the caller disabled it).
        self._field = None
        if tail_forward and self.kind in ("rae", "rdae_series"):
            module = detector.model_ if self.kind == "rae" else detector._f2
            field = module.receptive_field()
            if field.bounded:
                self._field = field
                self._period = field.period_int
                # The same margins tail_context() is derived from (see
                # ReceptiveField.margins), so the tested public bound and
                # the splice exclusion zones cannot drift apart.
                self._lb, self._ra = field.margins()
        # Memoised forward state: the full-window score vector as of
        # `_cache_total` arrivals (the splice anchor), plus a standalone
        # tail memo serving pushes whose shift is not yet period-aligned.
        self._cache_total = -1
        self._cache_scores = np.zeros(0)
        self._tail_total = -1
        self._tail_scores = np.zeros(0)

    def __len__(self):
        return len(self._ring)

    @property
    def total(self):
        """Observations ever ingested."""
        return self._ring.total

    @property
    def tail_supported(self):
        """Whether pushes use receptive-field-bounded tail forwards."""
        return self._field is not None

    def _ingest(self, points, bulk=False):
        raw = np.asarray(points, dtype=np.float64)
        if raw.ndim == 1:
            raw = raw[:, None]
        if raw.ndim != 2 or raw.shape[1] != self.dims:
            raise ValueError("points must be (n, %d), got %s"
                             % (self.dims, raw.shape))
        scaled = self.detector._apply_scaler(raw)
        self._ring.extend(scaled)
        if self._lagged is not None:
            if bulk:
                # One vectorised re-embedding of the retained window beats
                # per-row appends when a whole history arrives at once.
                self._lagged.rebuild(np.asarray(self._ring.view()))
            else:
                self._lagged.extend(scaled)
        return raw.shape[0]

    def seed(self, history):
        """Ingest history without scoring it (fast session warm-up).

        Bulk-loads the ring and rebuilds the lagged embedding in one
        vectorised pass; no forward pass runs until the next ``extend`` /
        ``scores`` call.  Use this to give the first live arrivals context.
        """
        self._ingest(history, bulk=True)
        return self

    def load_state(self, window, total, cache_scores=None, cache_total=None):
        """Restore the exact retained state of a live session.

        ``window`` holds the *scaled* rows a live session's ring retained
        (its ``_ring.view()`` at save time) and ``total`` its arrival
        count.  The ring is reloaded slot-exact and the lagged embedding
        rebuilt from the retained rows, so the next ``scores()`` call is
        bit-identical to the session that never stopped.  Used by
        :meth:`repro.stream.StreamScorer.load_state_dict` (shard recovery).

        ``cache_scores``/``cache_total`` optionally restore the splice
        cache, so a restored session resumes tail forwards immediately
        instead of paying one full re-anchor forward; omitted (old saves),
        the first refresh recomputes it — same bits, one full forward.
        """
        self._ring.load(window, total)
        if self._lagged is not None:
            self._lagged.rebuild(np.asarray(self._ring.view()))
        self._cache_total = -1
        self._cache_scores = np.zeros(0)
        self._tail_total = -1
        self._tail_scores = np.zeros(0)
        if cache_scores is not None and cache_total is not None:
            self._cache_scores = np.asarray(cache_scores, dtype=np.float64).copy()
            self._cache_total = int(cache_total)
        return self

    def ingest(self, points):
        """Ingest a chunk *without* scoring it (the batched-drain hook).

        Unlike :meth:`seed`, the lagged embedding is advanced incrementally
        (exactly as :meth:`extend` would), so a later :meth:`scores` call —
        possibly refreshed for many sessions at once by
        :func:`batched_session_scores` — sees the same state as per-chunk
        scoring.  Returns the number of ingested points.
        """
        return self._ingest(points)

    def _forward(self, arr):
        """Scores of the scaled window ``arr`` via the detector's warm path."""
        det = self.detector
        if self.kind != "rdae_matrix":
            return _forward_scaled_batch(det, self.kind, arr[None], stable=True)[0]
        residual = np.zeros_like(arr)
        lam = det.lam2
        with nn.no_grad():
            # The inner AE's max-pool needs at least 2 lagged columns
            # (K=1 would pool to width 0); until then the stream is
            # still warming up and keeps zero evidence.
            if len(self._lagged) >= 2:
                lagged = self._lagged.matrix
                recon = det._inner(nn.Tensor(matrix_to_tensor(lagged))).data
                clean = deembed_lagged(hankelize(tensor_to_matrix(recon)))
                # The embedding needs B observations before its first
                # column; observations before that keep zero evidence.
                covered = clean.shape[0]
                residual[arr.shape[0] - covered :] = arr[arr.shape[0] - covered :] - clean
        outlier = _prox(residual, lam, det.prox)
        return (outlier**2).sum(axis=1) + 1e-9 * (residual**2).sum(axis=1)

    # ------------------------------------------------------------------ #
    # refresh planning — shared by the solo paths and the batched drain
    #
    # A "plan" is a (kind, data) pair describing how to bring the memos up
    # to date; _plan_slices names the ring slices it must forward, _apply
    # installs the results.  batched_session_scores runs the same three
    # stages but stacks same-shape slices from many sessions through one
    # grouped forward pass.

    def _align_down(self, position):
        """Largest period multiple <= position (never below 0)."""
        return max(0, (int(position) // self._period) * self._period)

    def _plan(self, want=None):
        """Decide how to refresh: ``(kind, data)``.

        * ``("fresh", None)`` — memo already current.
        * ``("zeros", None)`` — window below the 2-point scoring minimum.
        * ``("solo", None)`` — lagged-matrix path; needs its own forward.
        * ``("full", None)`` — full-window forward required.
        * ``("splice", (head, head_len, shift, cut, start))`` — the shift
          since the cache anchor is period-aligned: recompute the first
          ``head`` positions from a ``[0, head_len)`` slice (left edge
          moved), reuse ``cache[j + shift]`` for ``j in [head, cut)``, and
          recompute ``[cut, size)`` from an aligned ``[start, size)`` tail
          slice.
        * ``("tail", start)`` — misaligned shift but only the last ``want``
          scores are needed: one aligned ``[start, size)`` slice answers
          them exactly while the cache anchor waits for alignment.
        """
        total = self._ring.total
        if total == self._cache_total:
            return ("fresh", None)
        size = len(self._ring)
        if size < 2:
            return ("zeros", None)
        if self.kind == "rdae_matrix":
            return ("solo", None)
        if self._field is None:
            return ("full", None)
        splice = None
        cache_size = self._cache_scores.shape[0]
        # A cache of fewer than 2 rows is the warmup-zeros convention, not
        # forward output — never splice from it.
        if self._cache_total >= 0 and cache_size >= 2:
            since = total - self._cache_total
            shift = cache_size + since - size  # evictions since the anchor
            if shift >= 0 and shift % self._period == 0:
                head = self._lb if shift else 0
                cut = size - since - self._ra
                start = self._align_down(cut - self._lb)
                head_len = min(head + self._ra, size)
                if (head < cut and start >= self._period
                        and (not head or head_len >= head + self._ra)):
                    splice = ("splice", (head, head_len, shift, cut, start))
        if want is not None:
            first = size - min(int(want), size)
            start = self._align_down(first - self._lb)
            if start >= self._period:
                # A caller that only needs trailing scores gets whichever
                # costs fewer forwarded positions: the standalone tail
                # slice, or the cache-refreshing splice.  (The cache anchor
                # can lag arbitrarily behind — standalone tails have
                # constant cost, and scores() re-anchors on demand.)
                if splice is not None:
                    head, head_len, __, ___, sp_start = splice[1]
                    splice_cost = (size - sp_start) + (head_len if head else 0)
                    if splice_cost <= size - start:
                        return splice
                return ("tail", start)
        if splice is not None:
            return splice
        return ("full", None)

    def _plan_slices(self, plan):
        """The ``[lo, hi)`` ring slices a plan needs forwarded, in order."""
        kind, data = plan
        size = len(self._ring)
        if kind == "splice":
            head, head_len, __, ___, start = data
            slices = [(start, size)]
            if head:
                slices.append((0, head_len))
            return slices
        if kind == "tail":
            return [(data, size)]
        if kind == "full":
            return [(0, size)]
        return []

    def _apply(self, plan, forwards):
        """Install the forwarded slice scores per the plan."""
        kind, data = plan
        size = len(self._ring)
        if kind == "full":
            self._install_cache(forwards[0])
        elif kind == "splice":
            head, __, shift, cut, start = data
            refreshed = np.empty(size)
            if head:
                refreshed[:head] = forwards[1][:head]
            refreshed[head:cut] = self._cache_scores[head + shift : cut + shift]
            refreshed[cut:] = forwards[0][cut - start :]
            self._install_cache(refreshed)
        elif kind == "tail":
            # Only positions >= lookback margin of the slice are exact.
            self._tail_scores = forwards[0][self._lb :]
            self._tail_total = self._ring.total

    def _install_cache(self, scores):
        self._cache_scores = scores
        self._cache_total = self._ring.total

    def _slice_forward(self, lo, hi):
        """Exact scores of window rows ``[lo, hi)`` via one stable forward."""
        view = np.asarray(self._ring.view())
        if self.programs is not None:
            scores = self.programs.score_batch(
                [self.detector], self.kind, view[lo:hi][None]
            )
            if scores is not None:
                return scores[0]
        return _forward_scaled_batch(
            self.detector, self.kind, view[lo:hi][None], stable=True
        )[0]

    def _run_plan(self, plan):
        """Execute a plan solo (the batched drain distributes this work)."""
        kind = plan[0]
        if kind == "fresh":
            return
        if kind == "zeros":
            self._install_cache(np.zeros(len(self._ring)))
            return
        if kind == "solo":
            self._install_cache(self._forward(np.asarray(self._ring.view())))
            return
        forwards = [self._slice_forward(lo, hi)
                    for lo, hi in self._plan_slices(plan)]
        self._apply(plan, forwards)

    # ------------------------------------------------------------------ #
    def scores(self):
        """Scores of every observation in the current window.

        Refreshes the memo if stale — through the aligned splice path when
        the receptive field allows it, a full forward otherwise — so the
        returned vector always equals a from-scratch full re-forward of the
        retained window, bit for bit.
        """
        if self._ring.total != self._cache_total:
            plan = self._plan()
            self._run_plan(plan)
        return self._cache_scores

    def last_scores(self, count):
        """Exact scores of the last ``min(count, len(self))`` positions.

        Bit-identical to ``scores()[-count:]`` but never forwards more
        than O(receptive field + count) positions on the tail path — this
        is what :meth:`extend`, :meth:`push` and the serve drains read.
        """
        size = len(self._ring)
        count = min(int(count), size)
        if count <= 0:
            return np.zeros(0)
        total = self._ring.total
        if total == self._cache_total:
            return self._cache_scores[size - count :]
        if total == self._tail_total and self._tail_scores.shape[0] >= count:
            return self._tail_scores[self._tail_scores.shape[0] - count :]
        plan = self._plan(want=count)
        self._run_plan(plan)
        if plan[0] == "tail":
            return self._tail_scores[self._tail_scores.shape[0] - count :]
        return self._cache_scores[len(self._ring) - count :]

    def extend(self, points):
        """Ingest a chunk and return one score per ingested point.

        The chunk is scored with a single tail (or, when the architecture
        is unbounded, full) forward pass over the updated window
        (micro-batching); with chunks of size one this is exactly
        per-arrival scoring.  Chunk points that overflow the window are
        evicted before scoring and reported as 0.0 (the warmup convention)
        — the seeding idiom; keep live chunks within the window size.
        """
        n = self._ingest(points)
        tail = self.last_scores(n)
        out = np.zeros(n)
        if tail.shape[0]:
            out[n - tail.shape[0] :] = tail
        return out

    def push(self, point):
        """Ingest one observation and return its score."""
        return float(self.extend(np.asarray(point, dtype=np.float64).reshape(1, -1))[0])


def batched_score_new(detector, series_batch):
    """Score many same-length series with one forward pass.

    Parameters
    ----------
    detector: a fitted :class:`RAE` or :class:`RDAE`.
    series_batch: array ``(M, C, D)`` or ``(M, C)``, or a list of
        equal-length series.

    Returns an ``(M, C)`` array of per-observation scores identical to
    calling ``score_new`` on each series, but amortising the autoencoder
    forward (and all the NumPy dispatch around it) across the batch.  The
    f2-less RDAE matrix path does not batch and falls back to a loop.
    """
    kind = _check_fitted(detector)
    if isinstance(series_batch, np.ndarray) and series_batch.ndim == 3:
        batch = np.asarray(series_batch, dtype=np.float64)
    else:
        batch = np.stack([as_series(s) for s in series_batch])
    if kind == "rdae_matrix":
        return np.stack([detector.score_new(series) for series in batch])
    scaled = detector._apply_scaler(batch)           # scaler broadcasts (1, D)
    return _forward_scaled_batch(detector, kind, scaled)


def batched_session_scores(sessions, batch_size=32, tail=None,
                           programs=None):
    """Refresh many sessions' scores with as few forwards as possible.

    The sharded-serving drain path: after a burst of arrivals has been
    ingested into many :class:`ScoringSession` shards (via :meth:`ingest`),
    each stale session contributes the ring slices its refresh plan needs —
    a bounded head/tail pair for tail-capable sessions, the whole window
    otherwise — and slices that share an **architecture fingerprint** and
    length are stacked through **one** forward pass per group instead of
    one per shard.  Distinct same-spec detectors (e.g. 64 streams each
    holding its own fitted copy of one architecture) therefore share a
    group; with a ``programs`` cache their weights stack along a leading
    member axis and the whole group replays one compiled program.
    Results are installed into each session's memo, so subsequent
    ``scores()``/``last_scores()`` reads are free.  Sessions on the
    lagged-matrix path (whose embedding geometry is per-session) and
    still-warming sessions fall back to their solo path.

    Parameters
    ----------
    tail: optional list of per-session trailing-score counts (one per
        session, the drain's chunk sizes).  When given, the return value is
        each session's ``last_scores(n)`` — which lets sessions whose cache
        anchor is misaligned serve the drain from a bounded standalone tail
        slice instead of paying a full-window forward.  When ``None``, the
        full window score vectors are returned, exactly as before.
    programs: optional :class:`InferencePrograms` compiled-path cache.
        ``None`` keeps every group on the eager stable forward; scores are
        bit-identical either way.

    Returns the per-session arrays in input order.
    """
    sessions = list(sessions)
    if tail is None:
        wants = [None] * len(sessions)
    else:
        wants = [int(n) for n in tail]
        if len(wants) != len(sessions):
            raise ValueError("tail must name one count per session")
    # Plan each session OBJECT once, even when the caller lists it several
    # times: plans are computed from pre-refresh state, so applying a
    # splice twice to the same object would re-shift the already-refreshed
    # cache.  Duplicates are served from the memos the single refresh
    # installs (a larger duplicate `want` covers the smaller ones).
    unique, order = {}, []
    for session, want in zip(sessions, wants):
        key = id(session)
        if key not in unique:
            unique[key] = [session, want]
            order.append(key)
        elif want is not None and want > unique[key][1]:
            unique[key][1] = want
    work = [unique[key] for key in order]
    plans = [session._plan(want=want) for session, want in work]
    jobs = []  # (work index, slice index within its plan, lo, hi)
    for index, ((session, __), plan) in enumerate(zip(work, plans)):
        if plan[0] in ("zeros", "solo"):
            session._run_plan(plan)  # cheap, or per-session lagged geometry
            continue
        for j, (lo, hi) in enumerate(session._plan_slices(plan)):
            jobs.append((index, j, lo, hi))
    if jobs:
        # Group by architecture fingerprint, not object identity: distinct
        # detectors with the same spec stack into one forward (the
        # fingerprint embeds the scoring kind).
        keys = [(architecture_fingerprint(work[i][0].detector,
                                          work[i][0].kind), hi - lo)
                for i, __, lo, hi in jobs]
        forwards = {}
        for indices in iter_key_batches(keys, batch_size):
            group = [jobs[g] for g in indices]
            batch = np.stack([
                np.asarray(work[i][0]._ring.view())[lo:hi]
                for i, __, lo, hi in group
            ])
            detectors = [work[i][0].detector for i, *__ in group]
            kind = work[group[0][0]][0].kind
            scores = _group_scaled_batch(detectors, kind, batch, programs)
            for row, (i, j, __, ___) in enumerate(group):
                forwards[(i, j)] = scores[row]
        for index in sorted({i for i, *__ in jobs}):
            plan = plans[index]
            count = len(work[index][0]._plan_slices(plan))
            work[index][0]._apply(
                plan, [forwards[(index, j)] for j in range(count)]
            )
    if tail is None:
        return [session.scores() for session in sessions]
    return [session.last_scores(want)
            for session, want in zip(sessions, wants)]
