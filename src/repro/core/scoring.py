"""Warm scoring state for fitted RAE/RDAE detectors.

``score_new`` is stateless: every call re-validates, re-scales, re-embeds and
runs a full forward pass over whatever it is given.  Serving a stream (or a
fleet of series) wants the opposite — bind the fitted model once, keep the
recent window and its lagged embedding hot, and only pay for the arrivals:

* :class:`ScoringSession` — per-stream state: a ring buffer of scaled
  observations, an incrementally-maintained lagged matrix for the
  matrix-view path, and a memoised last forward pass.
* :func:`batched_score_new` — score many same-length series through one
  forward pass of the fitted autoencoder (the batch axis of the conv stack).
* :func:`batched_session_scores` — refresh many live sessions at once:
  sessions that share a detector and window shape are stacked through one
  forward pass (the sharded-serving drain path of :mod:`repro.serve`).
* :func:`iter_key_batches` — the same-shape grouping used by every batched
  path (here and in :class:`repro.eval.BatchScoringEngine`).
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..baselines.base import as_series
from ..rpca import apply_prox as _prox
from ..stream.ring import RingBuffer
from ..tsops.hankel import deembed_lagged, hankelize
from ..tsops.incremental import SlidingLagged
from .autoencoders import matrix_to_tensor, tensor_to_matrix
from .rae import RAE
from .rdae import RDAE

__all__ = [
    "ScoringSession",
    "batched_score_new",
    "batched_session_scores",
    "iter_key_batches",
]


def _check_fitted(detector):
    if not isinstance(detector, (RAE, RDAE)):
        raise TypeError(
            "expected a fitted RAE or RDAE, got %s" % type(detector).__name__
        )
    if not detector.is_fitted():
        raise RuntimeError("fit the detector before streaming/batch scoring")
    if isinstance(detector, RAE):
        return "rae"
    return "rdae_series" if detector._f2 is not None else "rdae_matrix"


def iter_key_batches(keys, batch_size):
    """Group positions ``0..len(keys)-1`` by key, yield batches of indices.

    Every batched scoring path wants the same thing: partition a work list
    into same-key groups (same shape, same detector, ...) that can share one
    forward pass, then chunk each group by ``batch_size``.  Yields lists of
    indices into ``keys``; within a group, input order is preserved.
    """
    batch_size = max(int(batch_size), 1)
    groups = {}
    for index, key in enumerate(keys):
        groups.setdefault(key, []).append(index)
    for indices in groups.values():
        for lo in range(0, len(indices), batch_size):
            yield indices[lo : lo + batch_size]


def _forward_scaled_batch(detector, kind, scaled):
    """Score an already-scaled ``(M, C, D)`` batch with one forward pass.

    The shared core of :func:`batched_score_new`,
    :func:`batched_session_scores` and the series paths of
    :meth:`ScoringSession._forward`: run the fitted module over the batch
    axis, then prox-threshold the residuals into per-observation scores.
    Only the series kinds batch; the lagged-matrix path is handled by its
    callers.
    """
    tensor = np.ascontiguousarray(scaled.transpose(0, 2, 1))  # (M, D, C)
    module = detector.model_ if kind == "rae" else detector._f2
    lam = detector.lam if kind == "rae" else detector.lam2
    with nn.no_grad():
        recon = module(nn.Tensor(tensor)).data
    clean = recon.transpose(0, 2, 1)                 # (M, C, D)
    residual = scaled - clean
    outlier = _prox(residual, lam, detector.prox)
    return (outlier**2).sum(axis=2) + 1e-9 * (residual**2).sum(axis=2)


class ScoringSession:
    """Incremental ``score_new`` over a sliding window of a live stream.

    Parameters
    ----------
    detector: a *fitted* :class:`RAE` or :class:`RDAE`.
    window: observations retained for scoring context.  Each arrival is
        scored from a forward pass over at most this many points, so the
        per-arrival cost is bounded regardless of stream length.

    The session applies the detector's *training* scaler (the stream is
    assumed to monitor the trained process), keeps scaled observations in a
    :class:`RingBuffer`, and — for the lagged-matrix path of f2-less RDAE —
    maintains the Hankel embedding incrementally via :class:`SlidingLagged`
    instead of re-embedding the window per arrival.

    For the series paths (RAE, RDAE-with-f2) results match ``score_new`` on
    the window content exactly.  The matrix path fixes its lag from the
    window *capacity* (that is what makes incremental updates possible), so
    it matches ``score_new`` exactly once the ring holds a full window;
    while it is still filling, ``score_new``'s content-length-based lag
    clamp can pick a smaller lag and the scores differ slightly.
    """

    def __init__(self, detector, window=256):
        self.kind = _check_fitted(detector)
        self.detector = detector
        self.window = int(window)
        if self.window < 2:
            raise ValueError("window must be >= 2")
        self.dims = detector._scale_mean.shape[1]
        self._ring = RingBuffer(self.window, self.dims)
        self._lagged = None
        if self.kind == "rdae_matrix":
            self._lag = int(np.clip(
                detector.window, 2, max(2, self.window // 2 - 1)
            ))
            self._lagged = SlidingLagged(
                self._lag, self.dims, max_columns=self.window - self._lag + 1
            )
        # Memoised forward state: (arrivals seen when computed, scores).
        self._cache_total = -1
        self._cache_scores = np.zeros(0)

    def __len__(self):
        return len(self._ring)

    @property
    def total(self):
        """Observations ever ingested."""
        return self._ring.total

    def _ingest(self, points, bulk=False):
        raw = np.asarray(points, dtype=np.float64)
        if raw.ndim == 1:
            raw = raw[:, None]
        if raw.ndim != 2 or raw.shape[1] != self.dims:
            raise ValueError("points must be (n, %d), got %s"
                             % (self.dims, raw.shape))
        scaled = self.detector._apply_scaler(raw)
        self._ring.extend(scaled)
        if self._lagged is not None:
            if bulk:
                # One vectorised re-embedding of the retained window beats
                # per-row appends when a whole history arrives at once.
                self._lagged.rebuild(np.asarray(self._ring.view()))
            else:
                self._lagged.extend(scaled)
        return raw.shape[0]

    def seed(self, history):
        """Ingest history without scoring it (fast session warm-up).

        Bulk-loads the ring and rebuilds the lagged embedding in one
        vectorised pass; no forward pass runs until the next ``extend`` /
        ``scores`` call.  Use this to give the first live arrivals context.
        """
        self._ingest(history, bulk=True)
        return self

    def load_state(self, window, total):
        """Restore the exact retained state of a live session.

        ``window`` holds the *scaled* rows a live session's ring retained
        (its ``_ring.view()`` at save time) and ``total`` its arrival
        count.  The ring is reloaded slot-exact and the lagged embedding
        rebuilt from the retained rows, so the next ``scores()`` call is
        bit-identical to the session that never stopped.  Used by
        :meth:`repro.stream.StreamScorer.load_state_dict` (shard recovery).
        """
        self._ring.load(window, total)
        if self._lagged is not None:
            self._lagged.rebuild(np.asarray(self._ring.view()))
        self._cache_total = -1
        self._cache_scores = np.zeros(0)
        return self

    def ingest(self, points):
        """Ingest a chunk *without* scoring it (the batched-drain hook).

        Unlike :meth:`seed`, the lagged embedding is advanced incrementally
        (exactly as :meth:`extend` would), so a later :meth:`scores` call —
        possibly refreshed for many sessions at once by
        :func:`batched_session_scores` — sees the same state as per-chunk
        scoring.  Returns the number of ingested points.
        """
        return self._ingest(points)

    def _forward(self, arr):
        """Scores of the scaled window ``arr`` via the detector's warm path."""
        det = self.detector
        if self.kind != "rdae_matrix":
            return _forward_scaled_batch(det, self.kind, arr[None])[0]
        residual = np.zeros_like(arr)
        lam = det.lam2
        with nn.no_grad():
            # The inner AE's max-pool needs at least 2 lagged columns
            # (K=1 would pool to width 0); until then the stream is
            # still warming up and keeps zero evidence.
            if len(self._lagged) >= 2:
                lagged = self._lagged.matrix
                recon = det._inner(nn.Tensor(matrix_to_tensor(lagged))).data
                clean = deembed_lagged(hankelize(tensor_to_matrix(recon)))
                # The embedding needs B observations before its first
                # column; observations before that keep zero evidence.
                covered = clean.shape[0]
                residual[arr.shape[0] - covered :] = arr[arr.shape[0] - covered :] - clean
        outlier = _prox(residual, lam, det.prox)
        return (outlier**2).sum(axis=1) + 1e-9 * (residual**2).sum(axis=1)

    def scores(self):
        """Scores of every observation in the current window."""
        if self._ring.total != self._cache_total:
            size = len(self._ring)
            if size < 2:
                self._cache_scores = np.zeros(size)
            else:
                self._cache_scores = self._forward(np.asarray(self._ring.view()))
            self._cache_total = self._ring.total
        return self._cache_scores

    def extend(self, points):
        """Ingest a chunk and return one score per ingested point.

        The chunk is scored with a single forward pass over the updated
        window (micro-batching); with chunks of size one this is exactly
        per-arrival scoring.  Chunk points that overflow the window are
        evicted before scoring and reported as 0.0 (the warmup convention)
        — the seeding idiom; keep live chunks within the window size.
        """
        n = self._ingest(points)
        window_scores = self.scores()
        out = np.zeros(n)
        tail = min(n, window_scores.shape[0])
        if tail:
            out[n - tail:] = window_scores[window_scores.shape[0] - tail:]
        return out

    def push(self, point):
        """Ingest one observation and return its score."""
        return float(self.extend(np.asarray(point, dtype=np.float64).reshape(1, -1))[0])


def batched_score_new(detector, series_batch):
    """Score many same-length series with one forward pass.

    Parameters
    ----------
    detector: a fitted :class:`RAE` or :class:`RDAE`.
    series_batch: array ``(M, C, D)`` or ``(M, C)``, or a list of
        equal-length series.

    Returns an ``(M, C)`` array of per-observation scores identical to
    calling ``score_new`` on each series, but amortising the autoencoder
    forward (and all the NumPy dispatch around it) across the batch.  The
    f2-less RDAE matrix path does not batch and falls back to a loop.
    """
    kind = _check_fitted(detector)
    if isinstance(series_batch, np.ndarray) and series_batch.ndim == 3:
        batch = np.asarray(series_batch, dtype=np.float64)
    else:
        batch = np.stack([as_series(s) for s in series_batch])
    if kind == "rdae_matrix":
        return np.stack([detector.score_new(series) for series in batch])
    scaled = detector._apply_scaler(batch)           # scaler broadcasts (1, D)
    return _forward_scaled_batch(detector, kind, scaled)


def batched_session_scores(sessions, batch_size=32):
    """Refresh many sessions' window scores with as few forwards as possible.

    The sharded-serving drain path: after a burst of arrivals has been
    ingested into many :class:`ScoringSession` shards (via :meth:`ingest`),
    stale sessions that share a detector and a window shape are stacked
    through **one** forward pass per group instead of one per shard.  Each
    refreshed result is installed into the session's memo, so subsequent
    ``scores()`` reads are free.  Sessions on the lagged-matrix path (whose
    embedding geometry is per-session) and still-warming sessions fall back
    to their solo path.

    Returns the list of per-session window scores, in input order.
    """
    sessions = list(sessions)
    batchable = []
    for session in sessions:
        if (
            session._ring.total != session._cache_total
            and session.kind != "rdae_matrix"
            and len(session._ring) >= 2
        ):
            batchable.append(session)
        else:
            session.scores()  # solo path: memo hit, zeros, or lagged forward
    keys = [
        (id(session.detector), session.kind, len(session._ring))
        for session in batchable
    ]
    for indices in iter_key_batches(keys, batch_size):
        group = [batchable[i] for i in indices]
        batch = np.stack([np.asarray(s._ring.view()) for s in group])
        scores = _forward_scaled_batch(group[0].detector, group[0].kind, batch)
        for row, session in enumerate(group):
            session._cache_scores = scores[row]
            session._cache_total = session._ring.total
    return [session.scores() for session in sessions]
