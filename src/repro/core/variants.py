"""Non-robust counterparts and ablation factories (Sections V-B).

* ``NRAE`` / ``NRDAE`` — the robustness study of Fig. 9: the same
  architectures with the decomposition removed; the AE reconstructs the raw
  (contaminated) input and scores by plain reconstruction error.
* ``make_ablation`` — the Fig. 8 ablations of RDAE (``-f1``, ``-f2``,
  ``-f1f2``, ``+MA``) and the Fig. 10 FC-vs-CNN variants.
"""

from __future__ import annotations

import time

import numpy as np

from .. import nn
from ..baselines.base import BaseDetector, as_series
from ..tsops import deembed_lagged, embed_lagged, standardize
from .autoencoders import (
    ConvMatrixAE,
    ConvSeriesAE,
    matrix_to_tensor,
    series_to_tensor,
    tensor_to_matrix,
    tensor_to_series,
    train_reconstruction,
)
from .rae import RAE
from .rdae import RDAE

__all__ = ["NRAE", "NRDAE", "make_ablation", "ABLATION_NAMES"]


class NRAE(BaseDetector):
    """Non-robust RAE: a 1D-CNN AE reconstructing the raw series.

    The reconstruction is taken as the clean series ``T_L`` and scores are
    the squared differences ``||T - T_L||`` — no decomposition, no prox.
    """

    name = "N-RAE"
    transductive_only = True  # score() reads the stored fit-time residual

    def __init__(self, epochs=30, kernels=16, num_layers=3, kernel_size=3,
                 lr=1e-2, seed=0):
        self.epochs = int(epochs)
        self.kernels = int(kernels)
        self.num_layers = int(num_layers)
        self.kernel_size = int(kernel_size)
        self.lr = float(lr)
        self.seed = seed
        self.clean_ = None
        self.epoch_seconds_ = []

    def fit(self, series):
        arr = standardize(as_series(series))
        rng = np.random.default_rng(self.seed)
        model = ConvSeriesAE(
            arr.shape[1], self.kernels, self.num_layers, self.kernel_size, rng
        )
        optimizer = nn.Adam(model.parameters(), lr=self.lr)
        self.epoch_seconds_ = []
        recon = None
        for __ in range(self.epochs):
            started = time.perf_counter()
            recon = train_reconstruction(
                model, optimizer, series_to_tensor(arr), epochs=1
            )
            self.epoch_seconds_.append(time.perf_counter() - started)
        self.clean_ = tensor_to_series(recon)
        self._fitted = arr
        return self

    def score(self, series):
        if self.clean_ is None:
            raise RuntimeError("fit before score")
        return ((self._fitted - self.clean_) ** 2).sum(axis=1)

    @property
    def clean_series(self):
        if self.clean_ is None:
            raise RuntimeError("fit before reading the clean series")
        return self.clean_


class NRDAE(BaseDetector):
    """Non-robust RDAE: 2D-CNN AE on the lagged matrix, then a 1D-CNN AE on
    the de-embedded series — the dual-view pipeline without any prox."""

    name = "N-RDAE"
    transductive_only = True  # score() reads the stored fit-time residual

    def __init__(self, window=50, epochs=10, kernels=8, num_layers=2,
                 kernel_size=3, lr=1e-2, seed=0):
        self.window = int(window)
        self.epochs = int(epochs)
        self.kernels = int(kernels)
        self.num_layers = int(num_layers)
        self.kernel_size = int(kernel_size)
        self.lr = float(lr)
        self.seed = seed
        self.clean_ = None
        self.epoch_seconds_ = []

    def fit(self, series):
        arr = standardize(as_series(series))
        length, dims = arr.shape
        window = int(np.clip(self.window, 2, max(2, length // 2 - 1)))
        rng = np.random.default_rng(self.seed)
        inner = ConvMatrixAE(
            dims, self.kernels, self.num_layers, self.kernel_size, rng
        )
        outer = ConvSeriesAE(
            dims, self.kernels, self.num_layers, self.kernel_size, rng
        )
        inner_optimizer = nn.Adam(inner.parameters(), lr=self.lr)
        outer_optimizer = nn.Adam(outer.parameters(), lr=self.lr)
        lagged = embed_lagged(arr, window)
        self.epoch_seconds_ = []
        low_recon = None
        for __ in range(self.epochs):
            started = time.perf_counter()
            low_recon = train_reconstruction(
                inner, inner_optimizer, matrix_to_tensor(lagged), epochs=1
            )
            self.epoch_seconds_.append(time.perf_counter() - started)
        clean_from_matrix = deembed_lagged(tensor_to_matrix(low_recon))
        series_recon = None
        for __ in range(self.epochs):
            started = time.perf_counter()
            series_recon = train_reconstruction(
                outer,
                outer_optimizer,
                series_to_tensor(clean_from_matrix),
                epochs=1,
            )
            self.epoch_seconds_.append(time.perf_counter() - started)
        self.clean_ = tensor_to_series(series_recon)
        self._fitted = arr
        return self

    def score(self, series):
        if self.clean_ is None:
            raise RuntimeError("fit before score")
        return ((self._fitted - self.clean_) ** 2).sum(axis=1)

    @property
    def clean_series(self):
        if self.clean_ is None:
            raise RuntimeError("fit before reading the clean series")
        return self.clean_


ABLATION_NAMES = (
    "RDAE",
    "RDAE-f1",
    "RDAE-f2",
    "RDAE-f1f2",
    "RDAE+MA",
    "RAE_FC",
    "RAE_CNN",
    "RDAE_FC",
    "RDAE_CNN",
)


def make_ablation(name, **kwargs):
    """Construct any named variant from Figs. 8 and 10.

    ``kwargs`` are forwarded to the underlying constructor, so sweeps can
    fix e.g. ``window`` or ``max_outer`` across all variants.
    """
    if name == "RDAE":
        return RDAE(**kwargs)
    if name == "RDAE-f1":
        return RDAE(use_f1=False, **kwargs)
    if name == "RDAE-f2":
        return RDAE(use_f2=False, **kwargs)
    if name == "RDAE-f1f2":
        return RDAE(use_f1=False, use_f2=False, **kwargs)
    if name == "RDAE+MA":
        return RDAE(use_f1=False, input_smoother="ma", **kwargs)
    if name == "RAE_FC":
        return RAE(arch="fc", **kwargs)
    if name == "RAE_CNN":
        return RAE(arch="cnn", **kwargs)
    if name == "RDAE_FC":
        return RDAE(arch="fc", **kwargs)
    if name == "RDAE_CNN":
        return RDAE(arch="cnn", **kwargs)
    raise KeyError("unknown ablation %r; known: %s" % (name, ", ".join(ABLATION_NAMES)))
