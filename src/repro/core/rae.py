"""RAE: the Robust Autoencoder (Section III-B, Algorithm 1).

RAE decomposes an input series ``T`` into a clean series ``T_L`` and a
sparse outlier series ``T_S`` with ``T = T_L + T_S`` (Eq. 14)::

    min_{theta, T_S}  ||T_L - D(E(T_L))||^2 + lam * ||T_S||_1

solved by ADMM-style alternation: BACKPROP updates the 1D-CNN autoencoder on
``T_L = T - T_S``, then a proximal step (soft-thresholding, the ``l1`` prox)
refreshes ``T_S = T - T_L``.  Outlier scores are ``||s_S_i||_2^2`` (Eq. 13).
"""

from __future__ import annotations

import time

import numpy as np

from .. import nn
from ..baselines.base import BaseDetector, as_series
from ..rpca import apply_prox as _prox
from .autoencoders import (
    ConvSeriesAE,
    FCSeriesAE,
    series_to_tensor,
    tensor_to_series,
    train_reconstruction,
)
from .convergence import ConvergenceTrace, stopping_conditions

__all__ = ["RAE"]


class RAE(BaseDetector):
    """Robust 1D-CNN autoencoder detector.

    Parameters
    ----------
    lam: sparsity weight lambda of the l1 term (paper sweeps 1e-4..1).
    epsilon: stopping tolerance for both conditions of Algorithm 1
        (paper default 1e-5, swept in Fig. 11).
    max_iterations: cap on outer ADMM iterations ("epochs" in Fig. 17).
    kernels, num_layers, kernel_size: 1D-CNN architecture knobs
        (paper sweeps {32..1024}, {3..11}, {3..11}).
    arch: 'cnn' (paper default) or 'fc' (the RAE_FC ablation of Fig. 10).
    prox: 'l1' (Eq. 14) or 'l0' (the unrelaxed Eq. 3, for the ablation).
    epochs_per_iteration: BACKPROP epochs per ADMM alternation.
    """

    name = "RAE"

    def __init__(self, lam=0.1, epsilon=1e-5, max_iterations=30,
                 kernels=16, num_layers=3, kernel_size=3, arch="cnn",
                 prox="l1", epochs_per_iteration=3, lr=1e-2, seed=0):
        self.lam = float(lam)
        self.epsilon = float(epsilon)
        self.max_iterations = int(max_iterations)
        self.kernels = int(kernels)
        self.num_layers = int(num_layers)
        self.kernel_size = int(kernel_size)
        if arch not in ("cnn", "fc"):
            raise ValueError("arch must be 'cnn' or 'fc'")
        self.arch = arch
        self.prox = prox
        self.epochs_per_iteration = int(epochs_per_iteration)
        self.lr = float(lr)
        self.seed = seed
        self.model_ = None
        self.clean_ = None
        self.outlier_ = None
        self.trace_ = None
        self.epoch_seconds_ = []

    def _build(self, dims, rng):
        if self.arch == "fc":
            return FCSeriesAE(dims, chunk=64, hidden=4 * self.kernels, rng=rng)
        return ConvSeriesAE(
            dims,
            kernels=self.kernels,
            num_layers=self.num_layers,
            kernel_size=self.kernel_size,
            rng=rng,
        )

    def _fit_scaler(self, raw):
        self._scale_mean = raw.mean(axis=0, keepdims=True)
        self._scale_std = np.maximum(raw.std(axis=0, keepdims=True), 1e-9)

    def _apply_scaler(self, raw):
        return (raw - self._scale_mean) / self._scale_std

    def fit(self, series):
        raw = as_series(series)
        self._fit_scaler(raw)
        arr = self._apply_scaler(raw)
        rng = np.random.default_rng(self.seed)
        self.model_ = self._build(arr.shape[1], rng)
        optimizer = nn.Adam(self.model_.parameters(), lr=self.lr)
        trace = ConvergenceTrace()
        self.epoch_seconds_ = []

        outlier = np.zeros_like(arr)          # T_S <- 0
        previous_sum = arr.copy()             # T* <- T
        clean = arr.copy()
        for __ in range(self.max_iterations):
            started = time.perf_counter()
            clean_input = arr - outlier       # T_L <- T - T_S
            # Optimise theta_AE by BACKPROP on ||T_L - D(E(T_L))||^2.
            recon = train_reconstruction(
                self.model_,
                optimizer,
                series_to_tensor(clean_input),
                epochs=self.epochs_per_iteration,
            )
            clean = tensor_to_series(recon)   # T_L <- D(E(T_L))
            residual = arr - clean            # T_S <- T - T_L
            # Optimise T_S by PROX on lam * ||T_S||_1.
            outlier = _prox(residual, self.lam, self.prox)
            condition1, condition2, previous_sum = stopping_conditions(
                arr, clean, outlier, previous_sum
            )
            trace.record(
                np.sqrt(np.mean((arr - clean) ** 2)), condition1, condition2
            )
            self.epoch_seconds_.append(time.perf_counter() - started)
            if condition1 < self.epsilon or condition2 < self.epsilon:
                trace.converged = True
                break

        self.clean_ = clean
        self.outlier_ = outlier
        self._residual = arr - clean
        self.trace_ = trace
        # The recorded training tape keeps a whole graph's activations and
        # gradient buffers alive on the model; scoring never needs it.
        nn.tape.release_tapes(self.model_)
        return self

    def is_fitted(self):
        """Whether :meth:`fit` (or a persistence load) has completed.

        The single source of truth for fitted-state checks: the scoring
        session, the batch engine, and persistence all key on this instead
        of probing ``model_``/``clean_`` with their own conventions.
        """
        return self.model_ is not None and self.clean_ is not None

    def tail_context(self):
        """Trailing positions a new arrival can influence, or ``None``.

        Derived from the fitted autoencoder's composed
        :meth:`repro.nn.Module.receptive_field`: scores strictly more than
        ``tail_context()`` positions before the end of a window are
        unchanged by appending an observation, which is what lets
        :class:`repro.core.ScoringSession` re-forward only the window tail
        per push.  ``None`` means the architecture's dependence is
        unbounded (the FC ablation) and streaming falls back to full
        re-forwards.  The bound is conservative (sound, not tight).
        """
        if self.model_ is None:
            raise RuntimeError("fit before reading tail_context")
        field = self.model_.receptive_field()
        if not field.bounded:
            return None
        return int(field.context())

    def score(self, series):
        """Outlier scores ``||s_S_i||_2^2`` (Eq. 13).

        Observations whose thresholded ``T_S`` entry is exactly zero are
        ranked by their sub-threshold residual, which is order-consistent
        with the soft-thresholding (``|prox(r)|`` is monotone in ``|r|``).
        """
        if self.outlier_ is None:
            raise RuntimeError("fit before score")
        primary = (self.outlier_**2).sum(axis=1)
        tiebreak = (self._residual**2).sum(axis=1)
        return primary + 1e-9 * tiebreak

    def score_new(self, series):
        """Score a previously-unseen series with the trained AE.

        Supports the streaming deployment of Section V-B ("applicable to
        online outlier detection in streaming settings"): no retraining —
        the new series is scaled with the *training* statistics, passed
        through the fitted AE, and scored by the prox-thresholded residual.
        """
        if self.model_ is None:
            raise RuntimeError("fit before score_new")
        arr = self._apply_scaler(as_series(series))
        with nn.no_grad():
            recon = self.model_(nn.Tensor(series_to_tensor(arr))).data
        clean = tensor_to_series(recon)
        residual = arr - clean
        outlier = _prox(residual, self.lam, self.prox)
        return (outlier**2).sum(axis=1) + 1e-9 * (residual**2).sum(axis=1)

    @property
    def clean_series(self):
        """The decomposed clean series ``T_L`` (explainability analysis input)."""
        if self.clean_ is None:
            raise RuntimeError("fit before reading the clean series")
        return self.clean_

    @property
    def outlier_series(self):
        """The decomposed sparse outlier series ``T_S``."""
        if self.outlier_ is None:
            raise RuntimeError("fit before reading the outlier series")
        return self.outlier_

    @property
    def seconds_per_epoch(self):
        """Mean wall-clock seconds per ADMM iteration (Fig. 18 quantity)."""
        if not self.epoch_seconds_:
            raise RuntimeError("fit before reading runtimes")
        return float(np.mean(self.epoch_seconds_))
