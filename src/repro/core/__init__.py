"""The paper's contribution: RAE, RDAE, their variants, and ADMM plumbing."""

from .autoencoders import (
    ConvMatrixAE,
    ConvSeriesAE,
    ConvTransform1d,
    ConvTransform2d,
    FCMatrixAE,
    FCSeriesAE,
    train_reconstruction,
)
from .convergence import ConvergenceTrace, stopping_conditions
from .ensemble import RobustEnsemble
from .persistence import (
    WeightStore,
    load_detector,
    load_pipeline,
    save_detector,
    save_pipeline,
)
from .rae import RAE
from .rdae import RDAE
from .scoring import (
    InferencePrograms,
    ScoringSession,
    architecture_fingerprint,
    batched_score_new,
    batched_session_scores,
    drain_group_key,
    iter_key_batches,
)
from .variants import ABLATION_NAMES, NRAE, NRDAE, make_ablation

__all__ = [
    "RAE",
    "RDAE",
    "NRAE",
    "NRDAE",
    "RobustEnsemble",
    "save_detector",
    "load_detector",
    "WeightStore",
    "save_pipeline",
    "load_pipeline",
    "InferencePrograms",
    "ScoringSession",
    "architecture_fingerprint",
    "batched_score_new",
    "batched_session_scores",
    "drain_group_key",
    "iter_key_batches",
    "make_ablation",
    "ABLATION_NAMES",
    "ConvergenceTrace",
    "stopping_conditions",
    "ConvSeriesAE",
    "ConvMatrixAE",
    "FCSeriesAE",
    "FCMatrixAE",
    "ConvTransform1d",
    "ConvTransform2d",
    "train_reconstruction",
]
