"""Autoencoder building blocks for RAE and RDAE.

RAE and RDAE are *generic architectures rather than specific models*
(Section V-B, "Effect of Different Architectures"): the paper instantiates
them with 1D/2D CNN layers and, in an ablation, with fully-connected layers.
This module provides all four instantiations plus the shallow nonlinear
transformations ``f1`` (2D, Eq. 6) and ``f2`` (1D, Eq. 11), and a full-batch
training helper used by the ADMM loops.

Shape conventions: series tensors are ``(1, D, C)``; lagged-matrix tensors
are ``(1, D, B, K)``.
"""

from __future__ import annotations

import numpy as np

from .. import nn

__all__ = [
    "ConvSeriesAE",
    "FCSeriesAE",
    "ConvMatrixAE",
    "FCMatrixAE",
    "ConvTransform1d",
    "ConvTransform2d",
    "train_reconstruction",
    "series_to_tensor",
    "tensor_to_series",
    "matrix_to_tensor",
    "tensor_to_matrix",
]


def series_to_tensor(series):
    """``(C, D)`` array -> ``(1, D, C)`` float array for 1D convs."""
    arr = np.asarray(series, dtype=np.float64)
    if arr.ndim == 1:
        arr = arr[:, None]
    return arr.T[None]


def tensor_to_series(tensor):
    """``(1, D, C)`` array/Tensor -> ``(C, D)`` array."""
    data = tensor.data if isinstance(tensor, nn.Tensor) else np.asarray(tensor)
    return data[0].T


def matrix_to_tensor(matrix):
    """``(B, K, D)`` lagged matrix -> ``(1, D, B, K)`` for 2D convs."""
    arr = np.asarray(matrix, dtype=np.float64)
    return arr.transpose(2, 0, 1)[None]


def tensor_to_matrix(tensor):
    """``(1, D, B, K)`` array/Tensor -> ``(B, K, D)`` lagged matrix."""
    data = tensor.data if isinstance(tensor, nn.Tensor) else np.asarray(tensor)
    return data[0].transpose(1, 2, 0)


def _kernel_ladder(kernels, num_layers):
    """Encoder feature-map counts: wide -> narrow toward the bottleneck.

    "the number of feature maps of the encoder is less than the number of
    feature maps of the decoder to form a bottleneck layer" (Section III-B).
    """
    num_layers = max(int(num_layers), 1)
    ladder = []
    current = max(int(kernels), 2)
    for __ in range(num_layers):
        ladder.append(max(current, 2))
        current = max(current // 2, 2)
    return ladder


class ConvSeriesAE(nn.Module):
    """1D-CNN autoencoder over a whole series ``(1, D, C)`` (Eqs. 4-5).

    Encoder: stacked Conv1d+ReLU with a max-pool halving the length;
    decoder: mirrored convs with nearest upsampling back to ``C``.
    """

    # forward is pure structured primitives with shape-only branching, so a
    # recorded training tape replays it faithfully (see repro.nn.tape).
    tape_safe = True

    def __init__(self, dims, kernels=16, num_layers=3, kernel_size=3, rng=None):
        super().__init__()
        ladder = _kernel_ladder(kernels, num_layers)
        enc = []
        in_ch = dims
        for width in ladder:
            enc += [nn.Conv1d(in_ch, width, kernel_size, rng=rng), nn.ReLU()]
            in_ch = width
        enc.append(nn.MaxPool1d(2))
        self.encoder = nn.Sequential(*enc)
        dec = []
        for width in reversed(ladder):
            dec += [nn.Conv1d(in_ch, width, kernel_size, rng=rng), nn.ReLU()]
            in_ch = width
        self.decoder_convs = nn.Sequential(*dec)
        self.readout = nn.Conv1d(in_ch, dims, kernel_size, rng=rng)

    def forward(self, x):
        length = x.shape[2]
        h = self.encoder(x)
        h = nn.functional.upsample1d(h, 2, size=length)
        h = self.decoder_convs(h)
        return self.readout(h)

    def receptive_field(self):
        """Compose encoder -> upsample -> decoder -> readout.

        ``forward`` calls the upsampling functionally (its ``size=`` is
        only known at run time), so the composition is spelled out here
        instead of living in one Sequential; the ``size`` clamp only drops
        right-edge dependence and cannot widen the cone.  The encoder's
        max-pool makes the composed period 2: only even window shifts
        keep the pooling grid, hence cached scores, valid.
        """
        field = self.encoder.receptive_field()
        field = field.then(nn.ReceptiveField.upsample(2))
        field = field.then(self.decoder_convs.receptive_field())
        return field.then(self.readout.receptive_field())


class ConvMatrixAE(nn.Module):
    """2D-CNN autoencoder over a lagged matrix ``(1, D, B, K)`` (Eqs. 8-9)."""

    tape_safe = True

    def __init__(self, dims, kernels=8, num_layers=2, kernel_size=3, rng=None):
        super().__init__()
        ladder = _kernel_ladder(kernels, num_layers)
        enc = []
        in_ch = dims
        for width in ladder:
            enc += [nn.Conv2d(in_ch, width, kernel_size, rng=rng), nn.ReLU()]
            in_ch = width
        enc.append(nn.MaxPool2d(2))
        self.encoder = nn.Sequential(*enc)
        dec = []
        for width in reversed(ladder):
            dec += [nn.Conv2d(in_ch, width, kernel_size, rng=rng), nn.ReLU()]
            in_ch = width
        self.decoder_convs = nn.Sequential(*dec)
        self.readout = nn.Conv2d(in_ch, dims, kernel_size, rng=rng)

    def forward(self, x):
        size = (x.shape[2], x.shape[3])
        h = self.encoder(x)
        h = nn.functional.upsample2d(h, 2, size=size)
        h = self.decoder_convs(h)
        return self.readout(h)


class FCSeriesAE(nn.Module):
    """Fully-connected series autoencoder (the RAE_FC ablation, Fig. 10).

    The series is cut into contiguous chunks that are flattened and passed
    through an FC bottleneck autoencoder; the last chunk is padded by
    repeating the final observation.
    """

    tape_safe = True  # chunking/padding branch only on the input shape

    def __init__(self, dims, chunk=64, hidden=64, rng=None):
        super().__init__()
        self.chunk = int(chunk)
        self.dims = dims
        flat = self.chunk * dims
        bottleneck = max(hidden // 4, 2)
        self.net = nn.Sequential(
            nn.Linear(flat, hidden, rng=rng), nn.Tanh(),
            nn.Linear(hidden, bottleneck, rng=rng), nn.Tanh(),
            nn.Linear(bottleneck, hidden, rng=rng), nn.Tanh(),
            nn.Linear(hidden, flat, rng=rng),
        )

    def forward(self, x):
        # x: (1, D, C) -> chunks (n, chunk*D) -> reconstruct -> (1, D, C)
        # Series shorter than one chunk are padded up to it (the layer
        # widths are fixed at construction time).
        __, dims, length = x.shape
        chunk = self.chunk
        n_chunks = max(int(np.ceil(length / chunk)), 1)
        pad = n_chunks * chunk - length
        if pad:
            x = nn.concatenate([x] + [x[:, :, length - 1 : length]] * pad, axis=2)
        pieces = x.reshape(dims, n_chunks, chunk).transpose(1, 0, 2)
        flat = pieces.reshape(n_chunks, dims * chunk)
        recon = self.net(flat)
        back = recon.reshape(n_chunks, dims, chunk).transpose(1, 0, 2)
        back = back.reshape(1, dims, n_chunks * chunk)
        return back[:, :, :length]


class FCMatrixAE(nn.Module):
    """Fully-connected lagged-matrix autoencoder (the RDAE_FC ablation).

    Each column of the lagged matrix (one ``B x D`` lag vector) is treated
    as a sample for an FC bottleneck autoencoder.
    """

    tape_safe = True

    def __init__(self, dims, window, hidden=64, rng=None):
        super().__init__()
        self.window = int(window)
        flat = self.window * dims
        bottleneck = max(hidden // 4, 2)
        self.net = nn.Sequential(
            nn.Linear(flat, hidden, rng=rng), nn.Tanh(),
            nn.Linear(hidden, bottleneck, rng=rng), nn.Tanh(),
            nn.Linear(bottleneck, hidden, rng=rng), nn.Tanh(),
            nn.Linear(hidden, flat, rng=rng),
        )

    def forward(self, x):
        # x: (1, D, B, K) -> columns (K, B*D) -> reconstruct -> (1, D, B, K)
        __, dims, window, k = x.shape
        cols = x.reshape(dims, window, k).transpose(2, 0, 1).reshape(k, dims * window)
        recon = self.net(cols)
        back = recon.reshape(k, dims, window).transpose(1, 2, 0)
        return back.reshape(1, dims, window, k)


class ConvTransform1d(nn.Module):
    """The outer nonlinear transformation ``f2`` (Eq. 11): shape-preserving
    1D convs with no bottleneck.

    Note: a residual (identity-start) design would trivially zero Eq. 17's
    objective ``||T_L - f2(T_L)||^2`` and learn nothing — the smoothing
    effect relies on the conv stack *approximating* identity imperfectly.
    """

    tape_safe = True

    def __init__(self, dims, kernels=8, kernel_size=3, rng=None):
        super().__init__()
        self.net = nn.Sequential(
            nn.Conv1d(dims, kernels, kernel_size, rng=rng),
            nn.ReLU(),
            nn.Conv1d(kernels, dims, kernel_size, rng=rng),
        )

    def forward(self, x):
        return self.net(x)

    def receptive_field(self):
        # Pure stride-1 convs: a small bounded cone with period 1, so any
        # window shift keeps cached tail-forward scores splice-able.
        return self.net.receptive_field()


class ConvTransform2d(nn.Module):
    """The inner nonlinear transformation ``f1`` (Eq. 6): shape-preserving
    2D convs that smooth the lagged matrix.

    Like :class:`ConvTransform1d`, deliberately non-residual: Eq. 7 wants
    ``M_hat`` *similar* to ``M``, with the conv stack's imperfect identity
    providing the noise-removing smoothing.
    """

    tape_safe = True

    def __init__(self, dims, kernels=8, kernel_size=3, rng=None):
        super().__init__()
        self.net = nn.Sequential(
            nn.Conv2d(dims, kernels, kernel_size, rng=rng),
            nn.ReLU(),
            nn.Conv2d(kernels, dims, kernel_size, rng=rng),
        )

    def forward(self, x):
        return self.net(x)


def train_reconstruction(model, optimizer, inputs, epochs=1, target=None):
    """Full-batch reconstruction training (the BACKPROP steps of Alg. 1/2).

    Minimises ``||target - model(inputs)||^2`` (``target`` defaults to the
    inputs) for ``epochs`` Adam steps and returns the final reconstruction
    as a plain array.

    When the model is tape-compilable (see :mod:`repro.nn.tape`) the first
    step records a flat op tape that later epochs — and later calls for the
    same shapes, i.e. every ADMM iteration of Algorithms 1/2 — replay
    without rebuilding the autograd graph.  Replay is bit-identical to the
    eager loop; eager remains the automatic fallback whenever the tape
    declines (disabled, stable kernels, unsupported module, shape change).
    """
    inputs = np.asarray(inputs, dtype=np.float64)
    target = inputs if target is None else np.asarray(target, dtype=np.float64)
    epochs = max(int(epochs), 1)
    done = 0
    tape = nn.tape.training_tape(model, inputs, target)
    if tape is not None:
        for __ in range(epochs):
            optimizer.zero_grad()
            tape.step(inputs, target)
            nn.clip_grad_norm(model.parameters(), 5.0)
            optimizer.step()
            done += 1
            if tape.failed:
                # Poisoned during recording (an op baked run-time data into
                # the graph).  The recording step itself ran eagerly, so its
                # update stands; the remaining epochs fall back below.
                break
        if not tape.failed:
            return np.array(tape.forward(inputs))
    output = None
    for __ in range(epochs - done):
        optimizer.zero_grad()
        prediction = model(nn.Tensor(inputs))
        loss = nn.mse_loss(prediction, target)
        loss.backward()
        nn.clip_grad_norm(model.parameters(), 5.0)
        optimizer.step()
        output = prediction.data
    with nn.no_grad():
        output = model(nn.Tensor(inputs)).data
    return output
