"""Convergence bookkeeping for the ADMM training loops (Fig. 17)."""

from __future__ import annotations

import dataclasses

import numpy as np

__all__ = ["ConvergenceTrace", "stopping_conditions"]


def stopping_conditions(original, clean, outlier, previous_sum):
    """The two stopping conditions of Algorithms 1 and 2.

    ``condition1 = ||T - T_L - T_S|| / ||T||`` — the constraint is satisfied;
    ``condition2 = ||T* - T_L - T_S|| / ||T||`` — the split has stopped moving.
    Returns ``(condition1, condition2, new_previous_sum)``.
    """
    original = np.asarray(original)
    norm = max(float(np.linalg.norm(original)), 1e-12)
    current_sum = clean + outlier
    condition1 = float(np.linalg.norm(original - current_sum)) / norm
    condition2 = float(np.linalg.norm(previous_sum - current_sum)) / norm
    return condition1, condition2, current_sum


@dataclasses.dataclass
class ConvergenceTrace:
    """Per-iteration diagnostics recorded while training RAE / RDAE.

    ``rmse`` holds RMSE(T, T_L) per outer iteration — the quantity plotted
    in the paper's empirical convergence analysis (Fig. 17).
    """

    rmse: list = dataclasses.field(default_factory=list)
    condition1: list = dataclasses.field(default_factory=list)
    condition2: list = dataclasses.field(default_factory=list)
    converged: bool = False
    iterations: int = 0

    def record(self, rmse_value, condition1, condition2):
        self.rmse.append(float(rmse_value))
        self.condition1.append(float(condition1))
        self.condition2.append(float(condition2))
        self.iterations = len(self.rmse)

    @property
    def final_rmse(self):
        if not self.rmse:
            raise RuntimeError("no iterations recorded")
        return self.rmse[-1]
