"""File walking, cached AST parsing, and per-module analysis context.

Parsing dominates lint time, so parsed modules are cached process-wide,
keyed by ``(path, mtime_ns, size)``: the second ``run_lint`` over an
unchanged tree re-parses nothing (see ``tests/analysis/test_lint_perf``,
which pins the budget).  The cached object is the whole
:class:`ModuleContext` — tree, source lines, parent map, suppressions —
because every index is immutable once built; rules must treat it as
read-only.
"""

from __future__ import annotations

import ast
import os
import re

__all__ = [
    "ModuleContext",
    "Suppression",
    "module_context",
    "iter_python_files",
    "clear_cache",
    "dotted_name",
]

#: ``# repro: lint-ok[<rule-id>,<other-id>] reason`` — the per-line suppression
#: pragma.  The bracketed list names the rule(s) being waved through on
#: this line; everything after the bracket is the mandatory justification,
#: audited by the ``suppression-reason`` rule and surfaced by
#: ``repro lint --list-suppressions``.
_PRAGMA = re.compile(
    r"#\s*repro:\s*lint-ok\[([A-Za-z0-9_,\- ]*)\]\s*(.*?)\s*$"
)

_AST_CACHE = {}


class Suppression:
    """One ``lint-ok`` pragma: where it is, what it waves through, and why."""

    __slots__ = ("path", "line", "rule_ids", "reason")

    def __init__(self, path, line, rule_ids, reason):
        self.path = path
        self.line = int(line)
        self.rule_ids = tuple(rule_ids)
        self.reason = reason

    def to_dict(self):
        return {
            "path": self.path,
            "line": self.line,
            "rules": list(self.rule_ids),
            "reason": self.reason,
        }

    def __repr__(self):
        return "Suppression(%s:%d, %s, %r)" % (
            self.path, self.line, ",".join(self.rule_ids), self.reason
        )


class ModuleContext:
    """One parsed module plus the lazy indexes rules share.

    Attributes
    ----------
    path: the path the module was read from (as given to the walker).
    tree: the parsed ``ast.Module`` (never mutate — it is cached).
    lines: source split into lines (1-indexed access via ``line(n)``).
    error: the ``SyntaxError`` if parsing failed (``tree`` is then None
        and rules are skipped for this module; the engine reports it).
    """

    def __init__(self, path, source, tree, error=None):
        self.path = path
        self.source = source
        self.lines = source.splitlines()
        self.tree = tree
        self.error = error
        self._parents = None
        self._suppressions = None
        self._imports = None

    # ------------------------------------------------------------------ #
    # navigation
    def walk(self):
        return ast.walk(self.tree) if self.tree is not None else iter(())

    @property
    def parents(self):
        """``id(child) -> parent`` over the whole tree, built once."""
        if self._parents is None:
            parents = {}
            for node in self.walk():
                for child in ast.iter_child_nodes(node):
                    parents[id(child)] = node
            self._parents = parents
        return self._parents

    def parent(self, node):
        return self.parents.get(id(node))

    def ancestors(self, node):
        """Yield ``node``'s ancestors, innermost first, up to the module."""
        current = self.parent(node)
        while current is not None:
            yield current
            current = self.parent(current)

    def enclosing_functions(self, node):
        """Enclosing function defs, innermost first (closures before defs)."""
        return [n for n in self.ancestors(node)
                if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))]

    def enclosing_class(self, node):
        for ancestor in self.ancestors(node):
            if isinstance(ancestor, ast.ClassDef):
                return ancestor
        return None

    # ------------------------------------------------------------------ #
    # imports
    @property
    def imports(self):
        """Local alias -> imported dotted name (``np`` -> ``numpy``)."""
        if self._imports is None:
            table = {}
            for node in self.walk():
                if isinstance(node, ast.Import):
                    for alias in node.names:
                        table[alias.asname or alias.name.split(".")[0]] = (
                            alias.name
                        )
                elif isinstance(node, ast.ImportFrom) and node.module:
                    for alias in node.names:
                        table[alias.asname or alias.name] = (
                            "%s.%s" % (node.module, alias.name)
                        )
            self._imports = table
        return self._imports

    def aliases_of(self, dotted):
        """Local names bound to the module/object ``dotted`` imports to."""
        return [name for name, target in self.imports.items()
                if target == dotted]

    # ------------------------------------------------------------------ #
    # suppressions
    @property
    def suppressions(self):
        """Every ``lint-ok`` pragma in the module, in line order."""
        if self._suppressions is None:
            found = []
            for number, text in enumerate(self.lines, start=1):
                match = _PRAGMA.search(text)
                if match is None:
                    continue
                ids = tuple(
                    part.strip() for part in match.group(1).split(",")
                    if part.strip()
                )
                found.append(
                    Suppression(self.path, number, ids, match.group(2))
                )
            self._suppressions = found
        return self._suppressions

    def suppression_for(self, finding):
        """The pragma on the finding's line covering its rule, or None."""
        for suppression in self.suppressions:
            if (suppression.line == finding.line
                    and finding.rule in suppression.rule_ids):
                return suppression
        return None

    def line(self, number):
        """Source text of 1-indexed line ``number`` ('' out of range)."""
        if 1 <= number <= len(self.lines):
            return self.lines[number - 1]
        return ""


def dotted_name(node):
    """``a.b.c`` for a Name/Attribute chain; None for anything dynamic."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def module_context(path):
    """The (cached) :class:`ModuleContext` for ``path``.

    Cache hits require an unchanged ``(mtime_ns, size)`` stat — an edited
    file re-parses, an untouched one costs one ``stat`` call.
    """
    stat = os.stat(path)
    key = (stat.st_mtime_ns, stat.st_size)
    cached = _AST_CACHE.get(path)
    if cached is not None and cached[0] == key:
        return cached[1]
    with open(path, encoding="utf-8") as handle:
        source = handle.read()
    try:
        tree = ast.parse(source, filename=path)
        context = ModuleContext(path, source, tree)
    except SyntaxError as error:
        context = ModuleContext(path, source, None, error=error)
    _AST_CACHE[path] = (key, context)
    return context


def clear_cache():
    """Drop every cached parse (tests use this to measure cold runs)."""
    _AST_CACHE.clear()


def iter_python_files(paths):
    """Yield ``.py`` files under ``paths`` (files and/or directories).

    Directories are walked recursively in sorted order so reports are
    stable; hidden directories and ``__pycache__`` are skipped.
    """
    for path in paths:
        if os.path.isfile(path):
            yield path
            continue
        for root, dirnames, filenames in os.walk(path):
            dirnames[:] = sorted(
                d for d in dirnames
                if not d.startswith(".") and d != "__pycache__"
            )
            for filename in sorted(filenames):
                if filename.endswith(".py"):
                    yield os.path.join(root, filename)
