"""Lock-discipline rules: declared-guarded attributes, guard-map validity.

The serving layer's concurrency contract (router queue/counters, frontend
segment bookkeeping, worker-pool registry) is enforced by convention: the
docstrings say which lock guards what, and a missed ``with self._lock``
only surfaces as a counter tear under concurrent load — the class of bug
tests are worst at.  These rules make the convention machine-checked:

* a class declares its discipline in a ``_GUARDED_BY`` class map::

      _GUARDED_BY = {"_queue": "_lock", "_submitted": "_lock"}

* :class:`LockGuardedRule` then requires every ``self._queue`` read or
  write, in every method, to sit lexically inside ``with self._lock:``.

Two escape hatches keep the check honest rather than noisy.  ``__init__``
and ``__del__`` are exempt (no concurrency before construction completes
or during teardown of an unreferenced object).  Methods whose name ends in
``_locked`` are exempt *bodies* — the suffix is the repo's documented
"caller must already hold the lock" convention — but calling such a method
from an unlocked context is on the caller, which this rule checks because
the caller's own guarded accesses (there are always some alongside) still
need the ``with``.  Code inside a nested ``def``/``lambda`` is analysed
against the locks taken *inside* it only: a closure created under a lock
may well run after the lock is released, so the enclosing ``with`` proves
nothing.
"""

from __future__ import annotations

import ast

from .rules import Rule, register

__all__ = ["LockGuardedRule", "LockMapRule", "guard_map_of"]

_EXEMPT_METHODS = frozenset(("__init__", "__del__"))


def guard_map_of(classdef):
    """The class's ``_GUARDED_BY`` dict literal as {attr: lock}, or None.

    Returns None when the class has no map; returns the (possibly
    partial) map for a literal dict, skipping non-constant entries —
    :class:`LockMapRule` reports those separately.
    """
    for statement in classdef.body:
        if not isinstance(statement, ast.Assign):
            continue
        names = [t.id for t in statement.targets if isinstance(t, ast.Name)]
        if "_GUARDED_BY" not in names:
            continue
        if not isinstance(statement.value, ast.Dict):
            return {}
        mapping = {}
        for key, value in zip(statement.value.keys, statement.value.values):
            if (isinstance(key, ast.Constant) and isinstance(key.value, str)
                    and isinstance(value, ast.Constant)
                    and isinstance(value.value, str)):
                mapping[key.value] = value.value
        return mapping
    return None


def _self_attr(node):
    """``attr`` when ``node`` is ``self.<attr>``, else None."""
    if (isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"):
        return node.attr
    return None


def _held_locks(ctx, node, method):
    """Lock attrs of ``self`` whose ``with`` blocks enclose ``node``.

    Climbs from ``node`` toward ``method`` collecting ``with self.<lock>``
    items, stopping at the first intervening function boundary: a nested
    closure does not inherit its definition site's locks (it may run after
    they are released), only the ones taken inside it.
    """
    held = set()
    for ancestor in ctx.ancestors(node):
        if isinstance(ancestor, ast.With):
            for item in ancestor.items:
                attr = _self_attr(item.context_expr)
                if attr is not None:
                    held.add(attr)
        elif isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef,
                                   ast.Lambda)):
            break
    return held


def _first_argument(method):
    args = method.args.posonlyargs + method.args.args
    return args[0].arg if args else None


@register
class LockGuardedRule(Rule):
    id = "lock-guarded"
    category = "lock-discipline"
    description = (
        "an attribute declared in the class's _GUARDED_BY map is read or "
        "written outside a `with self.<lock>:` block (methods named "
        "*_locked and __init__/__del__ are the documented exemptions)"
    )
    hint = (
        "wrap the access in `with self.<lock>:`, or move it into a "
        "*_locked helper whose callers hold the lock"
    )

    def check(self, ctx):
        for classdef in ctx.walk():
            if not isinstance(classdef, ast.ClassDef):
                continue
            guarded = guard_map_of(classdef)
            if not guarded:
                continue
            for method in classdef.body:
                if not isinstance(method, (ast.FunctionDef,
                                           ast.AsyncFunctionDef)):
                    continue
                if method.name in _EXEMPT_METHODS:
                    continue
                if method.name.endswith("_locked"):
                    continue
                if _first_argument(method) != "self":
                    continue  # static/class methods hold no self state
                yield from self._check_method(ctx, classdef, method, guarded)

    def _check_method(self, ctx, classdef, method, guarded):
        for node in ast.walk(method):
            attr = _self_attr(node)
            if attr is None or attr not in guarded:
                continue
            lock = guarded[attr]
            if lock not in _held_locks(ctx, node, method):
                yield self.finding(
                    ctx, node,
                    "%s.%s accesses self.%s outside `with self.%s:` "
                    "(declared guarded in _GUARDED_BY)"
                    % (classdef.name, method.name, attr, lock),
                )


@register
class LockMapRule(Rule):
    id = "lock-map"
    category = "lock-discipline"
    description = (
        "a _GUARDED_BY declaration that cannot be enforced: not a literal "
        "{str: str} dict, or naming a lock/attribute never assigned in "
        "__init__ — usually a typo that silently un-guards the attribute"
    )
    hint = (
        "keep _GUARDED_BY a literal {\"_attr\": \"_lock\"} dict whose "
        "attrs and locks are all assigned on self in __init__"
    )

    def check(self, ctx):
        for classdef in ctx.walk():
            if not isinstance(classdef, ast.ClassDef):
                continue
            declaration = self._declaration(classdef)
            if declaration is None:
                continue
            if not isinstance(declaration.value, ast.Dict):
                yield self.finding(
                    ctx, declaration,
                    "%s._GUARDED_BY is not a dict literal — the checker "
                    "cannot read it, so nothing is enforced"
                    % classdef.name,
                )
                continue
            mapping = guard_map_of(classdef)
            entries = len(declaration.value.keys)
            if len(mapping) != entries:
                yield self.finding(
                    ctx, declaration,
                    "%s._GUARDED_BY has %d non-constant entr%s the checker "
                    "cannot read" % (classdef.name, entries - len(mapping),
                                     "y" if entries - len(mapping) == 1
                                     else "ies"),
                )
            assigned = self._init_assigned(classdef)
            if assigned is None:
                continue  # no __init__ here (mixin): nothing to validate
            for attr, lock in sorted(mapping.items()):
                if lock not in assigned:
                    yield self.finding(
                        ctx, declaration,
                        "%s._GUARDED_BY guards %r with %r, but self.%s is "
                        "never assigned in __init__"
                        % (classdef.name, attr, lock, lock),
                    )
                if attr not in assigned:
                    yield self.finding(
                        ctx, declaration,
                        "%s._GUARDED_BY lists %r, but self.%s is never "
                        "assigned in __init__ (typo?)"
                        % (classdef.name, attr, attr),
                    )

    @staticmethod
    def _declaration(classdef):
        for statement in classdef.body:
            if isinstance(statement, ast.Assign) and any(
                isinstance(t, ast.Name) and t.id == "_GUARDED_BY"
                for t in statement.targets
            ):
                return statement
        return None

    @staticmethod
    def _init_assigned(classdef):
        """Attrs assigned on ``self`` in ``__init__``, or None without one."""
        for method in classdef.body:
            if (isinstance(method, ast.FunctionDef)
                    and method.name == "__init__"):
                assigned = set()
                for node in ast.walk(method):
                    if isinstance(node, (ast.Assign, ast.AnnAssign,
                                         ast.AugAssign)):
                        targets = (node.targets
                                   if isinstance(node, ast.Assign)
                                   else [node.target])
                        for target in targets:
                            attr = _self_attr(target)
                            if attr is not None:
                                assigned.add(attr)
                return assigned
        return None
