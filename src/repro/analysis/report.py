"""Render a :class:`~repro.analysis.engine.LintReport` as text or JSON."""

from __future__ import annotations

import json

__all__ = ["render_text", "render_json", "render_suppressions",
           "render_rule_list"]


def render_text(report):
    """Human-readable findings, one block per finding, summary last."""
    lines = []
    for finding in report.findings:
        lines.append("%s:%d:%d: [%s] %s" % (
            finding.path, finding.line, finding.col,
            finding.rule, finding.message,
        ))
        if finding.hint:
            lines.append("    hint: %s" % finding.hint)
    if report.suppressed:
        lines.append("")
        lines.append("suppressed (%d):" % len(report.suppressed))
        for finding, suppression in report.suppressed:
            lines.append("  %s:%d: [%s] ok: %s" % (
                finding.path, finding.line, finding.rule,
                suppression.reason,
            ))
    lines.append("")
    lines.append("%d file%s checked, %d finding%s, %d suppressed" % (
        len(report.files), "" if len(report.files) == 1 else "s",
        len(report.findings), "" if len(report.findings) == 1 else "s",
        len(report.suppressed),
    ))
    return "\n".join(lines)


def render_json(report):
    return json.dumps(report.to_dict(), indent=2, sort_keys=True)


def render_suppressions(report):
    """The suppression inventory for ``repro lint --list-suppressions``."""
    lines = []
    for suppression in report.suppressions:
        lines.append("%s:%d: [%s] %s" % (
            suppression.path, suppression.line,
            ",".join(suppression.rule_ids),
            suppression.reason or "(no reason)",
        ))
    lines.append("%d suppression%s" % (
        len(report.suppressions),
        "" if len(report.suppressions) == 1 else "s",
    ))
    return "\n".join(lines)


def render_rule_list(rules):
    """The rule catalog for ``repro lint --rules list``."""
    lines = []
    for rule in rules:
        lines.append("%-16s %-15s %s" % (rule.id, rule.category,
                                         rule.description))
    return "\n".join(lines)
