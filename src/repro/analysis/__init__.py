"""repro.analysis: AST-based invariant checking for the repro codebase.

The package behind ``repro lint``.  It statically enforces the contracts
the rest of the repo promises dynamically: fixed-seed determinism (no
global-RNG draws, no unordered reductions, fixed einsum contraction
order), tape safety (``tape_safe`` modules stick to replayable
primitives, ``forward(out=)`` closures reuse buffers), lock discipline
(``_GUARDED_BY``-declared attributes only touched under their lock), and
resource cleanup (files/mmaps/sockets/pools closed on every path).

Typical use::

    from repro.analysis import run_lint
    report = run_lint(["src/repro"])
    assert report.ok, report.findings

Per-line escapes use ``# repro: lint-ok[<rule-id>] reason`` and are
audited: a missing reason, unknown id, or stale pragma is itself a
finding.
"""

from .engine import LintReport, run_lint
from .rules import (
    NON_SUPPRESSIBLE,
    Finding,
    Rule,
    all_rules,
    register,
    rules_by_id,
)
from .report import (
    render_json,
    render_rule_list,
    render_suppressions,
    render_text,
)
from .walker import (
    ModuleContext,
    Suppression,
    clear_cache,
    iter_python_files,
    module_context,
)

__all__ = [
    "Finding",
    "LintReport",
    "ModuleContext",
    "NON_SUPPRESSIBLE",
    "Rule",
    "Suppression",
    "all_rules",
    "clear_cache",
    "iter_python_files",
    "module_context",
    "register",
    "render_json",
    "render_rule_list",
    "render_suppressions",
    "render_text",
    "rules_by_id",
    "run_lint",
]
