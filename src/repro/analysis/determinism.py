"""Determinism rules: global RNG state, unordered reductions, einsum order.

The repo's contract suite pins fixed-seed determinism for every detector
and bit-identical tape replays/tail forwards (PRs 1, 4, 5).  All three
guarantees die silently the moment code draws from process-global RNG
state, reduces over an unordered container, or lets an ``einsum``
dispatcher pick a data-dependent contraction order on a stable-kernel
surface — hazards a test only catches if it happens to run the poisoned
path twice under different conditions.  These rules catch them at parse
time instead.
"""

from __future__ import annotations

import ast

from .rules import Rule, register
from .walker import dotted_name

__all__ = ["RngGlobalRule", "SetReductionRule", "EinsumOrderRule"]

#: numpy legacy global-state RNG API (np.random.<fn> drawing from the
#: hidden module singleton).  ``default_rng``/``Generator``/``SeedSequence``
#: are deliberately absent — constructing a seeded generator is the fix.
_NP_LEGACY = frozenset((
    "seed", "rand", "randn", "randint", "random", "ranf", "random_sample",
    "sample", "choice", "shuffle", "permutation", "bytes", "normal",
    "uniform", "standard_normal", "standard_cauchy", "standard_exponential",
    "beta", "binomial", "exponential", "gamma", "poisson", "laplace",
    "lognormal", "multivariate_normal", "get_state", "set_state",
))

#: stdlib ``random`` module-level functions (all share one hidden Random()).
_STDLIB_RANDOM = frozenset((
    "random", "randint", "randrange", "uniform", "gauss", "normalvariate",
    "choice", "choices", "shuffle", "sample", "seed", "betavariate",
    "expovariate", "triangular", "vonmisesvariate", "paretovariate",
    "lognormvariate", "getrandbits", "randbytes",
))


def _numpy_random_prefixes(ctx):
    """Dotted prefixes that mean ``numpy.random`` in this module."""
    prefixes = ["%s.random" % alias for alias in ctx.aliases_of("numpy")]
    prefixes += ctx.aliases_of("numpy.random")
    return prefixes


def _in_kernel_scope(ctx, node):
    """Whether ``node`` runs inside a forward/kernel/tape-recorded scope.

    True when any enclosing function is named ``forward`` (module forwards
    AND the recorded ``forward(out=None)`` closures replayed by the tape),
    or when the module is part of :mod:`repro.nn` whose functions build the
    recorded graphs (``functional``/``tensor``/``losses``).
    """
    for function in ctx.enclosing_functions(node):
        if function.name == "forward":
            return True
    tail = ctx.path.replace("\\", "/").rsplit("/", 2)[-2:]
    return tail[0] == "nn" and tail[-1] in (
        "functional.py", "tensor.py", "losses.py"
    )


@register
class RngGlobalRule(Rule):
    id = "rng-global"
    category = "determinism"
    description = (
        "no global-RNG draws: numpy legacy np.random.* and stdlib random.* "
        "calls are banned everywhere, unseeded default_rng() everywhere, "
        "and forward/kernel scopes may not construct generators at all"
    )
    hint = (
        "thread an explicit np.random.Generator parameter (rng=...) from "
        "the caller; library entry points seed their fallback generator"
    )

    def check(self, ctx):
        np_random = _numpy_random_prefixes(ctx)
        stdlib = [
            alias for alias in ctx.aliases_of("random")
        ]
        for node in ctx.walk():
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name is None or "." not in name:
                continue
            prefix, attr = name.rsplit(".", 1)
            if prefix in np_random:
                if attr in _NP_LEGACY:
                    yield self.finding(
                        ctx, node,
                        "call to the numpy legacy global RNG "
                        "(%s draws from hidden process state)" % name,
                    )
                elif attr == "default_rng":
                    if not node.args and not node.keywords:
                        yield self.finding(
                            ctx, node,
                            "unseeded default_rng(): every call produces "
                            "different entropy, so results are not "
                            "reproducible",
                            hint="seed it (default_rng(0)) or accept an "
                                 "rng= parameter from the caller",
                        )
                    elif _in_kernel_scope(ctx, node):
                        yield self.finding(
                            ctx, node,
                            "generator constructed inside a forward/kernel "
                            "scope: recorded tapes and grouped forwards "
                            "must see caller-threaded randomness only",
                        )
            elif prefix in stdlib and attr in _STDLIB_RANDOM:
                yield self.finding(
                    ctx, node,
                    "stdlib random.%s draws from the process-global "
                    "Random() instance" % attr,
                )


def _is_set_expr(node):
    """Set literal, set comprehension, or set()/frozenset() call."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = dotted_name(node.func)
        return name in ("set", "frozenset")
    return False


def _set_expr_in(node):
    """The first set-expression in ``node``'s immediate value, if any.

    Looks through one comprehension/generator level: ``sum(x for x in
    set(...))`` is as hazardous as ``sum(set(...))``.
    """
    if _is_set_expr(node):
        return node
    if isinstance(node, (ast.GeneratorExp, ast.ListComp)):
        for generator in node.generators:
            if _is_set_expr(generator.iter):
                return generator.iter
    return None


_REDUCERS = frozenset((
    "sum", "math.fsum", "fsum", "np.sum", "np.prod", "np.mean", "np.dot",
    "numpy.sum", "numpy.prod", "numpy.mean",
))

_ACCUMULATING_OPS = (ast.Add, ast.Sub, ast.Mult, ast.Div)


@register
class SetReductionRule(Rule):
    id = "set-reduction"
    category = "determinism"
    description = (
        "numeric accumulation over a set/frozenset: iteration order is "
        "hash-randomised, so the float reduction order — and the rounded "
        "result — changes between runs"
    )
    hint = (
        "reduce over sorted(...) of the elements, or keep them in an "
        "insertion-ordered list/dict instead of a set"
    )

    def check(self, ctx):
        for node in ctx.walk():
            if isinstance(node, ast.Call):
                name = dotted_name(node.func)
                if name in _REDUCERS:
                    for arg in node.args:
                        hazard = _set_expr_in(arg)
                        if hazard is not None:
                            yield self.finding(
                                ctx, node,
                                "%s(...) reduces over an unordered set" % name,
                            )
                            break
            elif isinstance(node, ast.For):
                if _is_set_expr(node.iter) and self._accumulates(node):
                    yield self.finding(
                        ctx, node,
                        "loop over an unordered set feeds numeric "
                        "accumulation (+=/-=/*=)",
                    )

    @staticmethod
    def _accumulates(loop):
        for node in ast.walk(loop):
            if (isinstance(node, ast.AugAssign)
                    and isinstance(node.op, _ACCUMULATING_OPS)):
                return True
        return False


@register
class EinsumOrderRule(Rule):
    id = "einsum-order"
    category = "determinism"
    description = (
        "np.einsum on the nn kernel surface without optimize=False: the "
        "optimizer's contraction order (and BLAS tail handling) may vary "
        "with operand shapes, breaking the cross-length bit-equality "
        "stable_kernels() promises"
    )
    hint = (
        "pass optimize=False for a fixed-order contraction; if the call "
        "is provably off every stable_kernels() path, suppress with a "
        "justification instead"
    )

    def check(self, ctx):
        tail = ctx.path.replace("\\", "/").split("/")
        if "nn" not in tail:
            return
        numpy_aliases = ctx.aliases_of("numpy")
        einsum_names = frozenset(
            ["%s.einsum" % alias for alias in numpy_aliases]
            + ctx.aliases_of("numpy.einsum")
        )
        for node in ctx.walk():
            if not isinstance(node, ast.Call):
                continue
            if dotted_name(node.func) not in einsum_names:
                continue
            fixed = any(
                keyword.arg == "optimize"
                and isinstance(keyword.value, ast.Constant)
                and keyword.value.value is False
                for keyword in node.keywords
            )
            if not fixed:
                yield self.finding(
                    ctx, node,
                    "einsum without optimize=False on the kernel surface",
                )
