"""Resource rules: files, mmaps, sockets and pools must close on all paths.

The process drain backend leans on OS resources — shared-memory arena
files, mmap'd weight stores, worker pipes — and the frontends on sockets
and thread pools.  A resource bound to a local variable without a ``with``
or a ``finally: ...close()`` leaks on the first exception between
creation and cleanup; on a long-lived server that is an fd leak with a
countdown.  The rule is deliberately structural (no data-flow solver):
a resource-constructor result bound to a local name must visibly reach
one of the sanctioned custody patterns, and anything else is a finding.
"""

from __future__ import annotations

import ast

from .rules import Rule, register
from .walker import dotted_name

__all__ = ["ResourceCloseRule"]

#: Calls that hand back an OS-backed resource needing explicit cleanup.
#: Matched on the full dotted name, or (for the executor classes, which
#: are conventionally imported bare) the trailing segment.
_RESOURCE_CALLS = frozenset((
    "open", "os.fdopen", "io.open", "mmap.mmap",
    "socket.socket", "socket.create_connection",
))
_RESOURCE_LEAF_CALLS = frozenset((
    "ThreadPoolExecutor", "ProcessPoolExecutor",
))

#: Method calls that count as releasing a resource.
_RELEASERS = frozenset(("close", "shutdown", "terminate", "stop", "join"))


def _resource_call_in(node):
    """A resource-constructor Call inside ``node``'s value expression.

    Looks through conditional expressions and boolean short-circuits so
    ``f = open(p) if p else sys.stdout`` is still recognised.
    """
    stack = [node]
    while stack:
        current = stack.pop()
        if isinstance(current, ast.Call):
            name = dotted_name(current.func)
            if name in _RESOURCE_CALLS:
                return current
            if (name is not None
                    and name.rsplit(".", 1)[-1] in _RESOURCE_LEAF_CALLS):
                return current
        if isinstance(current, ast.IfExp):
            stack.extend((current.body, current.orelse))
        elif isinstance(current, ast.BoolOp):
            stack.extend(current.values)
    return None


def _released_in_finally(function, name):
    """``name.close()``-style call inside any finally block of ``function``."""
    for node in ast.walk(function):
        if not isinstance(node, ast.Try) or not node.finalbody:
            continue
        for statement in node.finalbody:
            for sub in ast.walk(statement):
                if (isinstance(sub, ast.Call)
                        and isinstance(sub.func, ast.Attribute)
                        and sub.func.attr in _RELEASERS
                        and isinstance(sub.func.value, ast.Name)
                        and sub.func.value.id == name):
                    return True
    return False


def _custody_transferred(function, name, creation):
    """Whether ``name`` visibly leaves the function's responsibility.

    Returning/yielding it, storing it on an object attribute or into a
    container, or re-entering it as a ``with`` context all hand cleanup
    to someone with a destruction path.
    """
    for node in ast.walk(function):
        if isinstance(node, (ast.Return, ast.Yield, ast.YieldFrom)):
            value = node.value
            if value is not None and _mentions(value, name):
                return True
        elif isinstance(node, ast.Assign) and node is not creation:
            stores = any(
                isinstance(t, (ast.Attribute, ast.Subscript))
                for t in node.targets
            )
            if stores and _mentions(node.value, name):
                return True
        elif isinstance(node, ast.With):
            for item in node.items:
                if _mentions(item.context_expr, name):
                    return True
        elif isinstance(node, ast.Call) and node.args:
            # Passed whole to another callable (registry, atexit, pool):
            # custody is the callee's problem, not silently dropped.
            callee = dotted_name(node.func)
            if callee is not None and any(
                isinstance(arg, ast.Name) and arg.id == name
                for arg in node.args
            ):
                return True
    return False


def _mentions(node, name):
    return any(
        isinstance(sub, ast.Name) and sub.id == name
        for sub in ast.walk(node)
    )


@register
class ResourceCloseRule(Rule):
    id = "resource-close"
    category = "resources"
    description = (
        "a file/mmap/socket/pool bound to a local variable with no "
        "visible cleanup path: no `with`, no release inside a `finally`, "
        "and custody never transferred — the first exception after "
        "creation leaks the descriptor"
    )
    hint = (
        "use `with ...` when the lifetime is the block, or release it in "
        "a try/finally; store it on self (and close in close()) for "
        "object-owned resources"
    )

    def check(self, ctx):
        for function in ctx.walk():
            if not isinstance(function, (ast.FunctionDef,
                                         ast.AsyncFunctionDef)):
                continue
            for statement in ast.walk(function):
                if not isinstance(statement, ast.Assign):
                    continue
                # Only simple-name bindings: attribute targets are
                # object-owned (released by the owner's close()), tuple
                # targets are out of structural reach.
                if (len(statement.targets) != 1
                        or not isinstance(statement.targets[0], ast.Name)):
                    continue
                if ctx.enclosing_functions(statement)[:1] != [function]:
                    continue  # belongs to a nested def; analysed there
                call = _resource_call_in(statement.value)
                if call is None:
                    continue
                name = statement.targets[0].id
                if _released_in_finally(function, name):
                    continue
                if _custody_transferred(function, name, statement):
                    continue
                yield self.finding(
                    ctx, call,
                    "%s result bound to %r with no with/finally cleanup "
                    "and no custody transfer"
                    % (dotted_name(call.func), name),
                )
