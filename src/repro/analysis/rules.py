"""Rule base class, finding model, and the rule registry.

A *rule* encodes one repo invariant as a pure function over a parsed
module: :meth:`Rule.check` receives a :class:`repro.analysis.walker.
ModuleContext` (AST + source + lazy indexes) and yields
:class:`Finding` objects.  Rules never mutate the context — the walker
caches parsed modules across runs, so a rule that scribbled on the tree
would poison every later run in the process.

Adding a rule
-------------
Subclass :class:`Rule`, fill in the four class attributes, implement
``check``, and decorate with :func:`register`::

    @register
    class NoSleepInDrain(Rule):
        id = "no-sleep-in-drain"
        category = "lock-discipline"
        description = "drain paths must never block on time.sleep"
        hint = "poll with a timeout on the condition instead"

        def check(self, ctx):
            for node in ctx.walk():
                ...
                yield self.finding(ctx, node, "time.sleep inside drain")

Rule ids are kebab-case and stable: they appear in findings, in
per-line suppressions (``# repro: lint-ok[<rule-id>] reason``), and in
``repro lint --rules`` selections, so renaming one invalidates audited
suppressions.
"""

from __future__ import annotations

__all__ = [
    "Finding",
    "Rule",
    "register",
    "all_rules",
    "rules_by_id",
    "NON_SUPPRESSIBLE",
]

#: Rule ids whose findings ignore ``lint-ok`` pragmas.  These audit the
#: suppression mechanism itself — a suppressible suppression-audit would
#: let one bad pragma wave itself through.
NON_SUPPRESSIBLE = frozenset((
    "suppression-reason",
    "suppression-unused",
    "parse-error",
))


class Finding:
    """One invariant violation: rule id, location, message, fix hint."""

    __slots__ = ("rule", "path", "line", "col", "message", "hint")

    def __init__(self, rule, path, line, col, message, hint):
        self.rule = rule
        self.path = path
        self.line = int(line)
        self.col = int(col)
        self.message = message
        self.hint = hint

    def to_dict(self):
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "hint": self.hint,
        }

    def __repr__(self):
        return "Finding(%s, %s:%d: %s)" % (
            self.rule, self.path, self.line, self.message
        )


class Rule:
    """One statically-checkable invariant; see the module docstring."""

    #: Stable kebab-case identifier (used by suppressions and --rules).
    id = None
    #: One of: determinism, tape-safety, lock-discipline, resources, audit.
    category = None
    #: One line: the contract this rule enforces.
    description = ""
    #: How a finding is usually fixed (rendered with every finding).
    hint = ""

    def check(self, ctx):  # pragma: no cover - abstract
        """Yield :class:`Finding` objects for violations in ``ctx``."""
        raise NotImplementedError

    def finding(self, ctx, node, message, hint=None):
        """Build a finding anchored at ``node`` (or a bare line number)."""
        line = node if isinstance(node, int) else node.lineno
        col = 0 if isinstance(node, int) else node.col_offset
        return Finding(
            self.id, ctx.path, line, col, message,
            self.hint if hint is None else hint,
        )


_REGISTRY = {}


def register(cls):
    """Class decorator: add ``cls`` to the global rule registry."""
    if not cls.id or not cls.category:
        raise ValueError("rule %s needs id and category" % cls.__name__)
    if cls.id in _REGISTRY:
        raise ValueError("duplicate rule id %r" % cls.id)
    _REGISTRY[cls.id] = cls
    return cls


def all_rules():
    """Fresh instances of every registered rule, sorted by id."""
    _load_builtin_rules()
    return [_REGISTRY[rule_id]() for rule_id in sorted(_REGISTRY)]


def rules_by_id(ids):
    """Instances for ``ids`` (iterable of rule-id strings); KeyError on typos."""
    _load_builtin_rules()
    instances = []
    for rule_id in ids:
        if rule_id not in _REGISTRY:
            raise KeyError(
                "unknown rule id %r (known: %s)"
                % (rule_id, ", ".join(sorted(_REGISTRY)))
            )
        instances.append(_REGISTRY[rule_id]())
    return instances


def _load_builtin_rules():
    """Import the rule-family modules so their @register calls run."""
    from . import determinism, locks, resources, tapesafety  # noqa: F401
