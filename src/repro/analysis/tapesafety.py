"""Tape-safety rules: poisoners in ``tape_safe`` modules, replay allocations.

The PR 5 training tape replays recorded ``forward(out=None)`` closures
bit-identically — but only if (a) modules that opt in with ``tape_safe =
True`` really do lower onto replayable primitives, and (b) the closures
reuse their ``out`` buffers instead of allocating fresh arrays per replay.
Violations of (a) are caught at *record* time today (``_poison_tape``),
i.e. on the first fit of whoever wires a poisoner in; violations of (b)
are never caught — they silently turn the fast path into an allocation
loop.  Both are statically visible, so these rules move the discovery to
lint time.
"""

from __future__ import annotations

import ast

from .rules import Rule, register
from .walker import dotted_name

__all__ = ["TapePoisonRule", "TapeOutAllocRule"]

#: Primitives that poison a recording at capture time (they bake run-time
#: data — a max shift, a sampled mask — into the recorded graph).  Matched
#: by trailing call-name segment so ``softmax``, ``F.softmax`` and
#: ``nn.functional.softmax`` all hit.
_POISONERS = frozenset(("softmax", "dropout"))


def _class_declares_tape_safe(classdef):
    for statement in classdef.body:
        if isinstance(statement, ast.Assign):
            targets = [t.id for t in statement.targets
                       if isinstance(t, ast.Name)]
            if "tape_safe" in targets:
                return (isinstance(statement.value, ast.Constant)
                        and statement.value.value is True)
    return False


@register
class TapePoisonRule(Rule):
    id = "tape-poison"
    category = "tape-safety"
    description = (
        "a module declaring tape_safe = True calls a capture-time poisoner "
        "(softmax/dropout): the tape_safe pledge says every primitive in "
        "its forward is replayable, and these bake per-call data into the "
        "recorded graph"
    )
    hint = (
        "drop the tape_safe declaration (the fit falls back to eager), or "
        "rebuild the forward from replayable primitives"
    )

    def check(self, ctx):
        for node in ctx.walk():
            if not isinstance(node, ast.ClassDef):
                continue
            if not _class_declares_tape_safe(node):
                continue
            for method in node.body:
                if not isinstance(method, (ast.FunctionDef,
                                           ast.AsyncFunctionDef)):
                    continue
                for call in ast.walk(method):
                    if not isinstance(call, ast.Call):
                        continue
                    name = dotted_name(call.func)
                    if name is None:
                        continue
                    leaf = name.rsplit(".", 1)[-1]
                    if leaf in _POISONERS:
                        yield self.finding(
                            ctx, call,
                            "%s called inside tape_safe class %s.%s"
                            % (name, node.name, method.name),
                        )


#: Array constructors that allocate a fresh result every call.
_ALLOCATORS = frozenset((
    "zeros", "empty", "ones", "full", "zeros_like", "empty_like",
    "ones_like", "full_like", "copy", "array",
))


def _numpy_allocator(ctx, call):
    name = dotted_name(call.func)
    if name is None or "." not in name:
        return None
    prefix, attr = name.rsplit(".", 1)
    if attr in _ALLOCATORS and prefix in ctx.aliases_of("numpy"):
        return name
    return None


def _guarded_by_none_check(ctx, node, boundary):
    """Whether an ``if`` with an ``is None``-style test encloses ``node``.

    Covers the two sanctioned allocation idioms inside replayable
    closures: the out-guard (``if out is None: out = np.zeros(...)``) and
    the closure-persistent scratch cache (``if tmp is None or tmp.shape !=
    ...: tmp = scratch[0] = np.empty(...)``).  Both allocate exactly once
    per shape, never per replay.  The scan stops at ``boundary`` (the
    closure itself) — a guard outside the closure proves nothing about
    replay calls.
    """
    for ancestor in ctx.ancestors(node):
        if ancestor is boundary:
            return False
        if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda)):
            return False
        if isinstance(ancestor, (ast.If, ast.IfExp)):
            for sub in ast.walk(ancestor.test):
                if isinstance(sub, ast.Compare) and any(
                    isinstance(op, (ast.Is, ast.IsNot)) for op in sub.ops
                ):
                    return True
    return False


def _assigned_to_cache_slot(ctx, call):
    """Whether the allocation lands in a subscript slot (scratch cache)."""
    parent = ctx.parent(call)
    if isinstance(parent, ast.Assign) and parent.value is call:
        return any(isinstance(t, ast.Subscript) for t in parent.targets)
    return False


@register
class TapeOutAllocRule(Rule):
    id = "tape-out-alloc"
    category = "tape-safety"
    description = (
        "a forward(out=...) closure allocates a fresh array on the replay "
        "path: replays are supposed to write through the reused out "
        "buffer, so an unguarded constructor turns every replayed epoch "
        "into an allocation"
    )
    hint = (
        "allocate only under an `if out is None:` guard (or a `... is "
        "None`-checked scratch-cache slot) and write through out= "
        "otherwise"
    )

    def check(self, ctx):
        for node in ctx.walk():
            if not isinstance(node, ast.FunctionDef):
                continue
            if node.name != "forward":
                continue
            arg_names = [a.arg for a in (node.args.args
                                         + node.args.kwonlyargs)]
            if "out" not in arg_names:
                continue
            for call in ast.walk(node):
                if not isinstance(call, ast.Call):
                    continue
                name = _numpy_allocator(ctx, call)
                if name is None:
                    continue
                if _guarded_by_none_check(ctx, call, node):
                    continue
                if _assigned_to_cache_slot(ctx, call):
                    continue
                yield self.finding(
                    ctx, call,
                    "%s(...) allocates per replay in a forward(out=) "
                    "closure" % name,
                )
