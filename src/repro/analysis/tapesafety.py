"""Tape-safety rules: stale-draw poisoners, replay allocations, stacked
weight buffer mutation.

The training tape replays recorded ``forward(out=None)`` closures
bit-identically — but only if (a) modules that opt in with ``tape_safe =
True`` route their stochastic draws through the tape's persistent-buffer
protocol (``nn.functional.sampled_normal``, ``nn.Dropout``'s mask buffer)
so every replayed epoch re-draws, and (b) the closures reuse their ``out``
buffers instead of allocating fresh arrays per replay.  Violations of (a)
are the nastiest kind: a raw rng draw wrapped into a ``Tensor`` records
fine and replays fine — with the *same* sample every epoch, silently
diverging from eager training.  Violations of (b) silently turn the fast
path into an allocation loop.  Both are statically visible, so these rules
move the discovery to lint time.

(Tape v1 treated ``softmax``/``dropout`` calls themselves as poisoners;
since tape v2 both record through buffered primitives, and the rule now
watches for the protocol being *bypassed* instead.)
"""

from __future__ import annotations

import ast

from .rules import Rule, register
from .walker import dotted_name

__all__ = ["TapePoisonRule", "TapeOutAllocRule", "StackedBufferMutationRule"]

#: Generator sampling methods.  A draw from any of these wrapped straight
#: into a ``Tensor`` bakes one record-time sample into the recorded graph;
#: matched as the trailing segment of a *dotted* call (``rng.random``,
#: ``self._rng.standard_normal``) so plain functions named ``choice`` or
#: ``random`` don't hit.
_SAMPLERS = frozenset((
    "random", "standard_normal", "normal", "uniform", "integers",
    "choice", "permutation", "binomial", "poisson", "exponential",
))

#: Constructors that lift an array into the autograd graph.
_TENSOR_WRAPPERS = frozenset(("Tensor", "as_tensor"))


def _class_declares_tape_safe(classdef):
    for statement in classdef.body:
        if isinstance(statement, ast.Assign):
            targets = [t.id for t in statement.targets
                       if isinstance(t, ast.Name)]
            if "tape_safe" in targets:
                return (isinstance(statement.value, ast.Constant)
                        and statement.value.value is True)
    return False


def _sampler_call(node):
    """The dotted name of an rng sampler call inside ``node``, or None."""
    for sub in ast.walk(node):
        if not isinstance(sub, ast.Call):
            continue
        name = dotted_name(sub.func)
        if name is None or "." not in name:
            continue
        if name.rsplit(".", 1)[-1] in _SAMPLERS:
            return name
    return None


@register
class TapePoisonRule(Rule):
    id = "tape-poison"
    category = "tape-safety"
    description = (
        "a module declaring tape_safe = True wraps a raw rng draw in a "
        "Tensor, bypassing the tape's buffer protocol: the draw happens "
        "once at record time, so every replayed epoch reuses the same "
        "stale sample and silently diverges from eager training"
    )
    hint = (
        "route stochastic draws through the tape buffer protocol "
        "(nn.functional.sampled_normal, nn.Dropout's mask buffer), which "
        "re-draws into a persistent buffer on every replay"
    )

    def check(self, ctx):
        for node in ctx.walk():
            if not isinstance(node, ast.ClassDef):
                continue
            if not _class_declares_tape_safe(node):
                continue
            for method in node.body:
                if not isinstance(method, (ast.FunctionDef,
                                           ast.AsyncFunctionDef)):
                    continue
                for call in ast.walk(method):
                    if not isinstance(call, ast.Call):
                        continue
                    name = dotted_name(call.func)
                    if name is None:
                        continue
                    if name.rsplit(".", 1)[-1] not in _TENSOR_WRAPPERS:
                        continue
                    arguments = list(call.args)
                    arguments += [kw.value for kw in call.keywords]
                    for argument in arguments:
                        sampler = _sampler_call(argument)
                        if sampler is None:
                            continue
                        yield self.finding(
                            ctx, call,
                            "%s(...) wraps a %s(...) draw inside tape_safe "
                            "class %s.%s" % (name, sampler, node.name,
                                             method.name),
                        )
                        break


#: Array constructors that allocate a fresh result every call.
_ALLOCATORS = frozenset((
    "zeros", "empty", "ones", "full", "zeros_like", "empty_like",
    "ones_like", "full_like", "copy", "array",
))


def _numpy_allocator(ctx, call):
    name = dotted_name(call.func)
    if name is None or "." not in name:
        return None
    prefix, attr = name.rsplit(".", 1)
    if attr in _ALLOCATORS and prefix in ctx.aliases_of("numpy"):
        return name
    return None


def _guarded_by_none_check(ctx, node, boundary):
    """Whether an ``if`` with an ``is None``-style test encloses ``node``.

    Covers the two sanctioned allocation idioms inside replayable
    closures: the out-guard (``if out is None: out = np.zeros(...)``) and
    the closure-persistent scratch cache (``if tmp is None or tmp.shape !=
    ...: tmp = scratch[0] = np.empty(...)``).  Both allocate exactly once
    per shape, never per replay.  The scan stops at ``boundary`` (the
    closure itself) — a guard outside the closure proves nothing about
    replay calls.
    """
    for ancestor in ctx.ancestors(node):
        if ancestor is boundary:
            return False
        if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda)):
            return False
        if isinstance(ancestor, (ast.If, ast.IfExp)):
            for sub in ast.walk(ancestor.test):
                if isinstance(sub, ast.Compare) and any(
                    isinstance(op, (ast.Is, ast.IsNot)) for op in sub.ops
                ):
                    return True
    return False


def _assigned_to_cache_slot(ctx, call):
    """Whether the allocation lands in a subscript slot (scratch cache)."""
    parent = ctx.parent(call)
    if isinstance(parent, ast.Assign) and parent.value is call:
        return any(isinstance(t, ast.Subscript) for t in parent.targets)
    return False


@register
class TapeOutAllocRule(Rule):
    id = "tape-out-alloc"
    category = "tape-safety"
    description = (
        "a forward(out=...) closure allocates a fresh array on the replay "
        "path: replays are supposed to write through the reused out "
        "buffer, so an unguarded constructor turns every replayed epoch "
        "into an allocation"
    )
    hint = (
        "allocate only under an `if out is None:` guard (or a `... is "
        "None`-checked scratch-cache slot) and write through out= "
        "otherwise"
    )

    def check(self, ctx):
        for node in ctx.walk():
            if not isinstance(node, ast.FunctionDef):
                continue
            if node.name != "forward":
                continue
            arg_names = [a.arg for a in (node.args.args
                                         + node.args.kwonlyargs)]
            if "out" not in arg_names:
                continue
            for call in ast.walk(node):
                if not isinstance(call, ast.Call):
                    continue
                name = _numpy_allocator(ctx, call)
                if name is None:
                    continue
                if _guarded_by_none_check(ctx, call, node):
                    continue
                if _assigned_to_cache_slot(ctx, call):
                    continue
                yield self.finding(
                    ctx, call,
                    "%s(...) allocates per replay in a forward(out=) "
                    "closure" % name,
                )


def _stacked_buffer_names(classdef):
    """The attribute names a ``_STACKED_BUFFERS`` declaration protects."""
    for statement in classdef.body:
        if not isinstance(statement, ast.Assign):
            continue
        targets = [t.id for t in statement.targets
                   if isinstance(t, ast.Name)]
        if "_STACKED_BUFFERS" not in targets:
            continue
        value = statement.value
        if isinstance(value, (ast.Tuple, ast.List)) and all(
            isinstance(e, ast.Constant) and isinstance(e.value, str)
            for e in value.elts
        ):
            return [e.value for e in value.elts]
    return []


def _mutated_attr(target):
    """The attribute name a mutation target writes through, or None.

    Peels tuple/list unpacking and subscript chains so ``p.weights[i] =
    ...``, ``p.weights[i][...] = ...`` and ``a, p.biases = ...`` all
    resolve to their underlying attribute.
    """
    if isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            attr = _mutated_attr(element)
            if attr is not None:
                return attr
        return None
    while isinstance(target, ast.Subscript):
        target = target.value
    if isinstance(target, ast.Attribute):
        return target.attr
    return None


@register
class StackedBufferMutationRule(Rule):
    id = "stacked-weight-mutation"
    category = "tape-safety"
    description = (
        "a stacked weight buffer (declared via _STACKED_BUFFERS on a "
        "compiled inference program) is mutated outside the declaring "
        "class: the program's replay closures read those buffers, so an "
        "outside write desynchronises the compiled forward from the "
        "member modules it was recorded from"
    )
    hint = (
        "hot-swap weights by rebinding the member module's Parameter "
        ".data (the member token then invalidates the cached program and "
        "refresh() re-copies), or mutate inside the program's own methods"
    )

    def check(self, ctx):
        owners = {}   # protected attr name -> [declaring ClassDef, ...]
        inside = {}   # ClassDef -> node ids inside it
        for node in ctx.walk():
            if not isinstance(node, ast.ClassDef):
                continue
            names = _stacked_buffer_names(node)
            if not names:
                continue
            inside[node] = {id(sub) for sub in ast.walk(node)}
            for name in names:
                owners.setdefault(name, []).append(node)
        if not owners:
            return
        for node in ctx.walk():
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            else:
                continue
            for target in targets:
                attr = _mutated_attr(target)
                if attr not in owners:
                    continue
                if any(id(node) in inside[cls] for cls in owners[attr]):
                    continue
                yield self.finding(
                    ctx, node,
                    "write to stacked buffer attribute .%s outside its "
                    "declaring program class %s" % (
                        attr,
                        "/".join(cls.name for cls in owners[attr]),
                    ),
                )
