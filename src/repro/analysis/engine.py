"""The lint engine: walk files, run rules, apply and audit suppressions.

:func:`run_lint` is the single entry point behind ``repro lint`` and the
tier-1 cleanliness test.  It separates three populations the report keeps
distinct: *active* findings (violations that fail the run), *suppressed*
findings (matched by a same-line ``lint-ok`` pragma — visible, not
fatal), and *audit* findings about the pragmas themselves.  The audit is
what keeps suppression from becoming a silent opt-out: a pragma with no
reason, naming an unknown rule, or matching nothing it could suppress is
itself a violation — and audit findings cannot be suppressed
(:data:`repro.analysis.rules.NON_SUPPRESSIBLE`).
"""

from __future__ import annotations

from .rules import NON_SUPPRESSIBLE, Finding, all_rules
from .walker import iter_python_files, module_context

__all__ = ["LintReport", "run_lint"]


class LintReport:
    """Everything one lint run produced, ready for text or JSON rendering."""

    __slots__ = ("files", "rule_ids", "findings", "suppressed",
                 "suppressions")

    def __init__(self, files, rule_ids, findings, suppressed, suppressions):
        self.files = files
        self.rule_ids = rule_ids
        #: Active findings — non-empty means the lint run fails.
        self.findings = findings
        #: ``(finding, suppression)`` pairs a pragma waved through.
        self.suppressed = suppressed
        #: Every pragma seen, used or not (``--list-suppressions``).
        self.suppressions = suppressions

    @property
    def ok(self):
        return not self.findings

    def to_dict(self):
        return {
            "files": len(self.files),
            "rules": list(self.rule_ids),
            "findings": [f.to_dict() for f in self.findings],
            "suppressed": [
                {"finding": f.to_dict(), "reason": s.reason}
                for f, s in self.suppressed
            ],
            "suppressions": [s.to_dict() for s in self.suppressions],
        }


def _sort_key(finding):
    return (finding.path, finding.line, finding.rule, finding.col)


def _audit_pragmas(context, known_ids):
    """Findings about the pragmas themselves (reason and id validity)."""
    for suppression in context.suppressions:
        if not suppression.reason.strip():
            yield Finding(
                "suppression-reason", suppression.path, suppression.line, 0,
                "lint-ok pragma without a justification — every "
                "suppression must say why the rule does not apply here",
                "append the reason after the bracket: "
                "# repro: lint-ok[<rule-id>] <why this is safe>",
            )
        if not suppression.rule_ids:
            yield Finding(
                "suppression-reason", suppression.path, suppression.line, 0,
                "lint-ok pragma with an empty rule list suppresses nothing",
                "name the rule(s): # repro: lint-ok[<rule-id>] reason",
            )
        for rule_id in suppression.rule_ids:
            if rule_id not in known_ids:
                yield Finding(
                    "suppression-reason", suppression.path,
                    suppression.line, 0,
                    "lint-ok names unknown rule %r — a typo here silently "
                    "suppresses nothing" % rule_id,
                    "check the id against `repro lint --rules list`",
                )


def run_lint(paths, rules=None):
    """Lint every ``.py`` file under ``paths`` and return a LintReport.

    ``rules`` restricts the run to specific rule instances (the CLI's
    ``--rules``); None runs the full registry.  The unused-suppression
    audit only runs with the full registry — under a subset, pragmas for
    unselected rules are legitimately idle, not stale.
    """
    selected = all_rules() if rules is None else list(rules)
    full_run = rules is None
    known_ids = frozenset(
        rule.id for rule in all_rules()
    ) | NON_SUPPRESSIBLE

    files = []
    findings = []
    suppressed = []
    suppressions = []
    for path in iter_python_files(paths):
        files.append(path)
        context = module_context(path)
        suppressions.extend(context.suppressions)
        if context.error is not None:
            findings.append(Finding(
                "parse-error", path,
                context.error.lineno or 0, context.error.offset or 0,
                "file does not parse: %s" % context.error.msg,
                "a module the checker cannot read is a module no "
                "invariant is checked in — fix the syntax first",
            ))
            continue

        used = set()
        for rule in selected:
            for finding in rule.check(context):
                suppression = None
                if finding.rule not in NON_SUPPRESSIBLE:
                    suppression = context.suppression_for(finding)
                if suppression is not None:
                    suppressed.append((finding, suppression))
                    used.add(id(suppression))
                else:
                    findings.append(finding)

        findings.extend(_audit_pragmas(context, known_ids))
        if full_run:
            for suppression in context.suppressions:
                if id(suppression) in used:
                    continue
                if not suppression.rule_ids:
                    continue  # already reported by the pragma audit
                findings.append(Finding(
                    "suppression-unused", path, suppression.line, 0,
                    "lint-ok[%s] matched no finding — the code it excused "
                    "is gone, so the pragma is stale"
                    % ",".join(suppression.rule_ids),
                    "delete the pragma (or fix the rule id if it drifted)",
                ))

    findings.sort(key=_sort_key)
    suppressed.sort(key=lambda pair: _sort_key(pair[0]))
    return LintReport(
        files=files,
        rule_ids=[rule.id for rule in selected],
        findings=findings,
        suppressed=suppressed,
        suppressions=suppressions,
    )
