"""Common detector API.

Every method in the paper — the 15 baselines of Section V-A, the RSSA
variant, and the proposed RAE/RDAE — exposes the same unsupervised
interface: ``fit`` on an unlabelled series, ``score`` returning one outlier
score per observation (higher = more anomalous).  Evaluation is transductive
(Section V-A trains on the contaminated series itself), so ``fit_score`` is
the primary entry point.
"""

from __future__ import annotations

import numpy as np

from ..tsops import overlap_average, sliding_windows, standardize

__all__ = [
    "BaseDetector",
    "WindowedDetector",
    "as_series",
    "CAPABILITIES",
    "detector_capabilities",
]

#: The declared capability vocabulary (see :func:`detector_capabilities`).
#:
#: ``streamable``       scores a live window against fitted state, so a
#:                      :class:`repro.stream.StreamScorer` can serve it
#:                      without refitting per arrival.
#: ``warm_startable``   scores *unseen* data from trained state
#:                      (``score_new``) and persists through
#:                      :mod:`repro.core.persistence` — fit once, serve
#:                      forever.
#: ``transductive``     ``score`` returns the scores of the series it was
#:                      fitted on, ignoring the argument (the paper's
#:                      protocol); streaming wrappers must refit a clone on
#:                      the live window.
#: ``explainable``      exposes the decomposed outlier series ``T_S``, the
#:                      input of the channel-attribution stage
#:                      (:mod:`repro.explain.channels`).
CAPABILITIES = ("streamable", "warm_startable", "transductive", "explainable")


def detector_capabilities(detector):
    """The declared capability set of ``detector`` (a frozenset).

    This is the one derivation consumers key on — the streaming scorer's
    auto mode, the batch engine's warm-path guard, persistence, and the
    :class:`repro.api.Pipeline` facade — replacing the per-call-site
    ``transductive_only`` / ``score_new`` / ``is_fitted`` attribute probing
    each of them used to hand-roll.  Works on any duck-typed scorer, not
    just :class:`BaseDetector` subclasses.
    """
    caps = set()
    if getattr(detector, "transductive_only", False):
        caps.add("transductive")
    else:
        caps.add("streamable")
    if callable(getattr(detector, "score_new", None)):
        caps.update(("streamable", "warm_startable"))
    if getattr(type(detector), "outlier_series", None) is not None:
        caps.add("explainable")
    return frozenset(caps)


def as_series(series):
    """Coerce input (TimeSeries, 1D or 2D array) to a float ``(C, D)`` array."""
    values = getattr(series, "values", series)
    arr = np.asarray(values, dtype=np.float64)
    if arr.ndim == 1:
        arr = arr[:, None]
    if arr.ndim != 2:
        raise ValueError("series must be 1D or 2D, got %dD" % arr.ndim)
    if arr.shape[0] < 2:
        raise ValueError("series must contain at least 2 observations")
    return arr


class BaseDetector:
    """Abstract unsupervised time series outlier detector."""

    name = "base"

    #: True for detectors whose ``score`` returns scores of the series they
    #: were *fitted* on, ignoring the argument.  Streaming wrappers must
    #: refit such detectors on the live window instead of calling ``score``
    #: (see :class:`repro.stream.StreamScorer`).
    transductive_only = False

    #: True for detectors whose ``score`` depends only on the passed series
    #: — ``fit`` keeps no state scoring needs — so they rebuild losslessly
    #: from a :class:`repro.api.DetectorSpec` alone.  Shard recovery
    #: (:meth:`repro.serve.StreamRouter.restore`) keys on this: a
    #: ``score``-mode shard whose detector is neither stateless-scoring nor
    #: persisted with weights cannot resume and is rejected up front.
    stateless_scoring = False

    def fit(self, series):
        """Fit on an unlabelled ``(C, D)`` series; returns ``self``."""
        raise NotImplementedError

    def score(self, series):
        """Per-observation outlier scores ``(C,)`` — higher is more anomalous."""
        raise NotImplementedError

    def fit_score(self, series):
        """Fit and score the same series (the paper's transductive protocol)."""
        return self.fit(series).score(series)

    def capabilities(self):
        """Declared capability set (see :func:`detector_capabilities`)."""
        return detector_capabilities(self)

    @staticmethod
    def _repr_value(value):
        """Whether ``value`` is a renderable configuration scalar.

        ``np.isscalar`` admits strings but drops ``None`` and tuples, so
        reprs used to omit exactly the parameters most worth seeing (an
        unset window, a kernel-size tuple).  Configuration is anything
        scalar-ish: None, bools, numbers, strings, and flat tuples thereof.
        """
        if value is None or isinstance(value, (bool, int, float, complex, str,
                                               np.generic)):
            return True
        if isinstance(value, tuple):
            return all(BaseDetector._repr_value(v) for v in value)
        return False

    def __repr__(self):
        params = ", ".join(
            "%s=%r" % (k, v)
            for k, v in sorted(vars(self).items())
            if not k.startswith("_") and not k.endswith("_")
            and self._repr_value(v)
        )
        return "%s(%s)" % (type(self).__name__, params)


class WindowedDetector(BaseDetector):
    """Shared plumbing for detectors that operate on sliding windows.

    Handles standardisation, windowing, and mapping per-window/per-position
    scores back onto observations by overlap averaging.
    """

    def __init__(self, window=32, stride=None):
        self.window = int(window)
        self.stride = int(stride) if stride is not None else max(1, self.window // 4)

    def _prepare(self, series):
        arr = standardize(as_series(series))
        width = min(self.window, arr.shape[0])
        windows, starts = sliding_windows(arr, width, self.stride)
        return arr, windows, starts, width

    def _to_observation_scores(self, per_position, starts, width, length):
        """Map ``(num_windows, width)`` position scores to ``(length,)``."""
        return overlap_average(per_position, starts, width, length)

    def _window_scores_to_observations(self, per_window, starts, width, length):
        """Broadcast one score per window onto every position it covers."""
        per_position = np.repeat(
            np.asarray(per_window, dtype=np.float64)[:, None], width, axis=1
        )
        return overlap_average(per_position, starts, width, length)
