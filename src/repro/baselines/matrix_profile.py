"""Matrix Profile I (Yeh et al., ICDM 2016) discord detection.

Computes the self-join matrix profile — for every subsequence, the z-
normalised Euclidean distance to its nearest non-trivial match — using the
MASS algorithm (FFT-based sliding dot products), i.e. the STAMP computation
pattern.  Discords (subsequences with large profile values) mark outliers.
Multivariate series are handled by averaging per-dimension profiles.
"""

from __future__ import annotations

import numpy as np

from .base import BaseDetector, as_series
from ..tsops import overlap_average, standardize

__all__ = ["MatrixProfile", "mass_distance_profile", "matrix_profile_1d"]


def _sliding_dot_products(query, series):
    """All dot products of ``query`` against windows of ``series`` via FFT."""
    m = query.size
    n = series.size
    size = 1 << int(np.ceil(np.log2(n + m)))
    fft_series = np.fft.rfft(series, size)
    fft_query = np.fft.rfft(query[::-1], size)
    products = np.fft.irfft(fft_series * fft_query, size)
    return products[m - 1 : n]


def mass_distance_profile(query, series, eps=1e-8):
    """Z-normalised distances of ``query`` to every subsequence of ``series``."""
    query = np.asarray(query, dtype=np.float64)
    series = np.asarray(series, dtype=np.float64)
    m = query.size
    q_mean, q_std = query.mean(), max(query.std(), eps)
    cumsum = np.concatenate([[0.0], np.cumsum(series)])
    cumsum2 = np.concatenate([[0.0], np.cumsum(series**2)])
    means = (cumsum[m:] - cumsum[:-m]) / m
    variances = (cumsum2[m:] - cumsum2[:-m]) / m - means**2
    stds = np.sqrt(np.maximum(variances, eps**2))
    dots = _sliding_dot_products(query, series)
    corr = (dots - m * means * q_mean) / (m * stds * q_std)
    return np.sqrt(np.maximum(2.0 * m * (1.0 - corr), 0.0))


def matrix_profile_1d(series, m, exclusion=None):
    """Self-join matrix profile of a 1D series with subsequence length ``m``."""
    series = np.asarray(series, dtype=np.float64)
    n_sub = series.size - m + 1
    if n_sub < 2:
        raise ValueError("series too short for subsequence length %d" % m)
    if exclusion is None:
        exclusion = max(int(np.ceil(m / 2)), 1)
    profile = np.full(n_sub, np.inf)
    for i in range(n_sub):
        dist = mass_distance_profile(series[i : i + m], series)
        lo = max(i - exclusion, 0)
        dist[lo : i + exclusion + 1] = np.inf
        profile[i] = dist.min()
    return profile


class MatrixProfile(BaseDetector):
    """Discord-based detector: observation score = mean profile of covering
    subsequences.

    Parameters
    ----------
    pattern_size: subsequence length ``m`` (paper sweeps {5, 10, 20, 50, 100}).
    """

    name = "MP"
    stateless_scoring = True  # fit is a no-op; score recomputes the profile

    def __init__(self, pattern_size=20):
        self.pattern_size = int(pattern_size)

    def fit(self, series):
        return self

    def score(self, series):
        arr = standardize(as_series(series))
        length, dims = arr.shape
        m = int(np.clip(self.pattern_size, 3, max(3, length // 3)))
        starts = np.arange(length - m + 1)
        scores = np.zeros(length)
        for d in range(dims):
            profile = matrix_profile_1d(arr[:, d], m)
            finite = np.isfinite(profile)
            if not finite.all():
                profile = np.where(finite, profile, profile[finite].max() if finite.any() else 0.0)
            per_position = np.repeat(profile[:, None], m, axis=1)
            scores += overlap_average(per_position, starts, m, length)
        return scores / dims
