"""OmniAnomaly (Su et al., KDD 2019), simplified: a stochastic recurrent VAE.

An LSTM encoder produces a hidden state per step; each hidden state is
mapped to the mean/log-variance of a per-step latent; reparameterised
samples are decoded by a second LSTM into per-step Gaussian reconstruction
parameters.  The per-step reconstruction NLL is the outlier score, which is
what gives OmniAnomaly per-observation granularity.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from .neural import NeuralWindowDetector

__all__ = ["OmniAnomaly"]


class _StochasticRNN(nn.Module):
    def __init__(self, dims, hidden, latent, rng):
        super().__init__()
        self.encoder = nn.LSTM(dims, hidden, rng=rng)
        self.z_mu = nn.Linear(hidden, latent, rng=rng)
        self.z_logvar = nn.Linear(hidden, latent, rng=rng)
        self.decoder = nn.LSTM(latent, hidden, rng=rng)
        self.x_mu = nn.Linear(hidden, dims, rng=rng)
        self.x_logvar = nn.Linear(hidden, dims, rng=rng)

    def encode(self, x):
        states, __ = self.encoder(x)
        return (
            self.z_mu(states),
            self.z_logvar(states).clip_value(-8.0, 8.0),
        )

    def decode(self, z):
        states, __ = self.decoder(z)
        return (
            self.x_mu(states),
            self.x_logvar(states).clip_value(-8.0, 8.0),
        )


class OmniAnomaly(NeuralWindowDetector):
    """Per-step stochastic recurrent autoencoder.

    Parameters mirror :class:`repro.baselines.donut.Donut`, with the latent
    attached to every timestep instead of the whole window.
    """

    name = "OMNI"

    def __init__(self, window=32, stride=None, hidden=32, latent=8,
                 mc_samples=2, kl_weight=1.0, epochs=15, lr=1e-3,
                 batch_size=32, seed=0):
        super().__init__(window=window, stride=stride, epochs=epochs, lr=lr,
                         batch_size=batch_size, seed=seed)
        self.hidden = int(hidden)
        self.latent = int(latent)
        self.mc_samples = int(mc_samples)
        self.kl_weight = float(kl_weight)
        self._noise_rng = np.random.default_rng(seed)

    def _build(self, width, dims, rng):
        return _StochasticRNN(dims, self.hidden, self.latent, rng)

    def _sample(self, mu, logvar):
        noise = nn.Tensor(self._noise_rng.standard_normal(mu.shape))
        return mu + (logvar * 0.5).exp() * noise

    def _batch_loss(self, model, batch):
        mu_z, logvar_z = model.encode(batch)
        recon = 0.0
        for __ in range(self.mc_samples):
            z = self._sample(mu_z, logvar_z)
            mu_x, logvar_x = model.decode(z)
            recon = recon + nn.gaussian_nll(mu_x, logvar_x, batch.data)
        recon = recon * (1.0 / self.mc_samples)
        kl = nn.kl_diag_gaussian(mu_z, logvar_z)
        return recon + self.kl_weight * kl

    def _position_errors(self, model, windows):
        with nn.no_grad():
            mu_z, logvar_z = model.encode(nn.Tensor(windows))
            nll = np.zeros(windows.shape)
            for __ in range(self.mc_samples):
                z = self._sample(mu_z, logvar_z)
                mu_x, logvar_x = model.decode(z)
                var = np.exp(logvar_x.data)
                nll += 0.5 * (
                    logvar_x.data
                    + (windows - mu_x.data) ** 2 / var
                    + np.log(2 * np.pi)
                )
        return (nll / self.mc_samples).sum(axis=2)

    def _reconstruct(self, model, batch):
        mu_z, __ = model.encode(batch)
        mu_x, __ = model.decode(mu_z)
        return mu_x
