"""Local Outlier Factor (Breunig et al., SIGMOD 2000), from scratch.

Applied to time series by embedding each observation in a short context
window (the paper applies LOF directly to observations; a window of 1
recovers that behaviour).
"""

from __future__ import annotations

import numpy as np

from .base import BaseDetector, as_series
from ..tsops import standardize

__all__ = ["LOF"]


def _pairwise_sq_dists(a, b):
    aa = (a**2).sum(axis=1)[:, None]
    bb = (b**2).sum(axis=1)[None, :]
    return np.maximum(aa + bb - 2.0 * (a @ b.T), 0.0)


class LOF(BaseDetector):
    """Density-based outlier detection via local reachability density.

    Parameters
    ----------
    n_neighbors: paper sweeps {5, 10, 20, 50, 100}; default 20.
    context: number of past observations appended to each point, giving LOF
        minimal temporal awareness; 1 = plain per-observation LOF.
    max_points: cap on points used as the reference set (subsampled with a
        fixed seed) to keep the O(n^2) distance matrix tractable.
    """

    name = "LOF"

    def __init__(self, n_neighbors=20, context=1, max_points=3000, seed=0):
        self.n_neighbors = int(n_neighbors)
        self.context = int(context)
        self.max_points = int(max_points)
        self.seed = seed
        self._reference = None

    def _embed(self, arr):
        if self.context <= 1:
            return arr
        length = arr.shape[0]
        pads = [np.roll(arr, s, axis=0) for s in range(self.context)]
        for s in range(1, self.context):
            pads[s][:s] = arr[0]
        return np.concatenate(pads, axis=1)

    def fit(self, series):
        arr = self._embed(standardize(as_series(series)))
        rng = np.random.default_rng(self.seed)
        if arr.shape[0] > self.max_points:
            idx = rng.choice(arr.shape[0], self.max_points, replace=False)
            arr = arr[idx]
        self._reference = arr
        return self

    def score(self, series):
        if self._reference is None:
            raise RuntimeError("fit before score")
        points = self._embed(standardize(as_series(series)))
        ref = self._reference
        k = int(np.clip(self.n_neighbors, 1, ref.shape[0] - 1))

        # k-distance and reachability structures on the reference set.
        ref_d = np.sqrt(_pairwise_sq_dists(ref, ref))
        np.fill_diagonal(ref_d, np.inf)
        ref_knn = np.argpartition(ref_d, k - 1, axis=1)[:, :k]
        ref_kdist = np.take_along_axis(ref_d, ref_knn, axis=1).max(axis=1)
        reach = np.maximum(
            np.take_along_axis(ref_d, ref_knn, axis=1), ref_kdist[ref_knn]
        )
        ref_lrd = 1.0 / np.maximum(reach.mean(axis=1), 1e-12)

        # Score query points against the reference densities.
        q_d = np.sqrt(_pairwise_sq_dists(points, ref))
        # A query point may be in the reference set; exclude zero self-distance.
        q_d[q_d < 1e-12] = np.inf
        q_knn = np.argpartition(q_d, k - 1, axis=1)[:, :k]
        q_dist = np.take_along_axis(q_d, q_knn, axis=1)
        q_reach = np.maximum(q_dist, ref_kdist[q_knn])
        q_lrd = 1.0 / np.maximum(q_reach.mean(axis=1), 1e-12)
        lof = ref_lrd[q_knn].mean(axis=1) / np.maximum(q_lrd, 1e-12)
        return lof
