"""RNN (LSTM) autoencoder baseline (Malhotra et al., 2016; Kieu et al., 2018).

Sequence-to-sequence reconstruction: an LSTM encoder compresses the window
into its final hidden state, which is repeated at every step and decoded by
a second LSTM plus a linear readout.
"""

from __future__ import annotations

from .. import nn
from ..nn.recurrent import repeat_hidden
from .neural import NeuralWindowDetector

__all__ = ["RNNAE"]


class _Seq2SeqAE(nn.Module):
    # Forward lowers onto LSTM/Linear primitives plus repeat_hidden (a
    # traced broadcast): structurally replayable by the training tape.
    tape_safe = True

    def __init__(self, dims, hidden, rng):
        super().__init__()
        self.encoder = nn.LSTM(dims, hidden, rng=rng)
        self.decoder = nn.LSTM(hidden, hidden, rng=rng)
        self.readout = nn.Linear(hidden, dims, rng=rng)

    def forward(self, x):
        __, (h, c) = self.encoder(x)
        context = repeat_hidden(h, x.shape[1])
        decoded, __ = self.decoder(context)
        return self.readout(decoded)


class RNNAE(NeuralWindowDetector):
    """LSTM encoder-decoder window autoencoder.

    ``hidden`` is the paper's "number of hidden units" hyperparameter
    (swept over {32..1024}).
    """

    name = "RNNAE"

    def __init__(self, window=32, stride=None, hidden=32, epochs=20, lr=1e-3,
                 batch_size=32, seed=0):
        super().__init__(window=window, stride=stride, epochs=epochs, lr=lr,
                         batch_size=batch_size, seed=seed)
        self.hidden = int(hidden)

    def _build(self, width, dims, rng):
        return _Seq2SeqAE(dims, self.hidden, rng)
