"""Smoothing-based detectors: EMA, STL, and SSA (Section V-A baselines).

Each fits an easy-to-explain "clean" signal and scores observations by their
squared deviation from it — the same scoring rule (Eq. 13) the proposed
frameworks use, which makes these the natural classical comparators.
"""

from __future__ import annotations

import numpy as np

from .base import BaseDetector, as_series
from ..tsops import ema, ssa_decompose, standardize, stl_decompose

__all__ = ["EMADetector", "STLDetector", "SSADetector"]


class EMADetector(BaseDetector):
    """Exponential-moving-average smoothing detector.

    ``pattern_size`` follows the paper's hyperparameter (sweeping
    {5, 10, 20, 50, 100}); it maps to the smoothing factor via the standard
    span relation ``alpha = 2 / (pattern_size + 1)``.
    """

    name = "EMA"
    stateless_scoring = True  # score re-smooths the passed series

    def __init__(self, pattern_size=20):
        self.pattern_size = int(pattern_size)
        self._clean = None

    @property
    def alpha(self):
        return 2.0 / (self.pattern_size + 1.0)

    def fit(self, series):
        arr = standardize(as_series(series))
        self._clean = ema(arr, alpha=self.alpha)
        self._fitted = arr
        return self

    def score(self, series):
        arr = standardize(as_series(series))
        clean = ema(arr, alpha=self.alpha)
        return ((arr - clean) ** 2).sum(axis=1)


class STLDetector(BaseDetector):
    """Seasonal-trend-decomposition detector; scores the STL residual.

    ``seasonal`` and ``trend`` are the paper's S and T loess coefficients;
    they scale the respective loess windows.
    """

    name = "STL"
    stateless_scoring = True  # score re-decomposes the passed series

    def __init__(self, period=None, seasonal=7, trend=None):
        self.period = period
        self.seasonal = int(seasonal)
        self.trend = trend

    def fit(self, series):
        return self

    def score(self, series):
        arr = standardize(as_series(series))
        trend_window = None
        if self.trend is not None and self.period is not None:
            trend_window = int(self.trend * self.period) | 1
        result = stl_decompose(
            arr,
            period=self.period,
            seasonal_window=self.seasonal,
            trend_window=trend_window,
        )
        residual = np.asarray(result.residual)
        if residual.ndim == 1:
            residual = residual[:, None]
        return (residual**2).sum(axis=1)


class SSADetector(BaseDetector):
    """Singular-spectrum-analysis detector; scores deviation from the
    top-``n_components`` reconstruction."""

    name = "SSA"
    stateless_scoring = True  # score re-decomposes the passed series

    def __init__(self, window=None, n_components=3):
        self.window = window
        self.n_components = int(n_components)

    def fit(self, series):
        return self

    def score(self, series):
        arr = standardize(as_series(series))
        decomposition = ssa_decompose(
            arr, window=self.window, max_components=max(self.n_components, 1)
        )
        clean = decomposition.reconstruct(self.n_components)
        return ((arr - clean) ** 2).sum(axis=1)
