"""RSSA detector: SSA with its SVD replaced by Robust PCA (Section V-B).

Appears throughout the paper's sensitivity studies (Figs. 6-8) as the
strongest classical robust comparator.
"""

from __future__ import annotations

from .base import BaseDetector, as_series
from ..tsops import rssa_decompose, standardize

__all__ = ["RSSADetector"]


class RSSADetector(BaseDetector):
    """Robust singular spectrum analysis on the full series.

    Parameters
    ----------
    window: lagged-matrix window ``B`` (paper sweeps {10..400}).
    lam: RPCA sparsity weight (the paper's lambda sweep, Fig. 6).
    """

    name = "RSSA"
    transductive_only = True  # score() returns the fitted decomposition's scores

    def __init__(self, window=None, lam=None, max_iter=200):
        self.window = window
        self.lam = lam
        self.max_iter = int(max_iter)
        self.result_ = None

    def fit(self, series):
        arr = standardize(as_series(series))
        self.result_ = rssa_decompose(
            arr, window=self.window, lam=self.lam, max_iter=self.max_iter
        )
        return self

    def score(self, series):
        if self.result_ is None:
            raise RuntimeError("fit before score")
        return self.result_.scores

    @property
    def clean_series(self):
        """The decomposed clean series T_L (for explainability analysis)."""
        if self.result_ is None:
            raise RuntimeError("fit before reading the clean series")
        return self.result_.clean
