"""BeatGAN (Zhou et al., IJCAI 2019): adversarially-regularised autoencoder.

A 1D-CNN encoder-decoder generator reconstructs windows while a 1D-CNN
discriminator is trained to tell real windows from reconstructions; the
generator receives an adversarial feature-matching term on top of the
reconstruction loss.  Scoring uses the reconstruction error.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from .neural import NeuralWindowDetector

__all__ = ["BeatGAN"]


class _ConvGenerator(nn.Module):
    # Conv/ReLU/pool/upsample chain: every child is a safe tape leaf.
    tape_safe = True

    def __init__(self, dims, width, kernels, kernel_size, rng):
        super().__init__()
        self.encoder = nn.Sequential(
            nn.Conv1d(dims, kernels, kernel_size, rng=rng),
            nn.ReLU(),
            nn.MaxPool1d(2),
            nn.Conv1d(kernels, kernels // 2, kernel_size, rng=rng),
            nn.ReLU(),
        )
        self.decoder = nn.Sequential(
            nn.Conv1d(kernels // 2, kernels, kernel_size, rng=rng),
            nn.ReLU(),
            nn.Upsample1d(2, size=width),
            nn.Conv1d(kernels, dims, kernel_size, rng=rng),
        )

    def forward(self, x):
        return self.decoder(self.encoder(x))


class _ConvDiscriminator(nn.Module):
    # Conv/LeakyReLU/pool plus a Linear head over mean-pooled features;
    # its inner optimisation step records as call/backward tape events.
    tape_safe = True

    def __init__(self, dims, width, kernels, kernel_size, rng):
        super().__init__()
        self.features = nn.Sequential(
            nn.Conv1d(dims, kernels, kernel_size, rng=rng),
            nn.LeakyReLU(0.2),
            nn.MaxPool1d(2),
            nn.Conv1d(kernels, kernels, kernel_size, rng=rng),
            nn.LeakyReLU(0.2),
        )
        self.head = nn.Linear(kernels, 1, rng=rng)

    def feature_map(self, x):
        return self.features(x).mean(axis=2)

    def forward(self, x):
        return self.head(self.feature_map(x))


class BeatGAN(NeuralWindowDetector):
    """Adversarial window autoencoder (scores = reconstruction error).

    ``adversarial_weight`` scales the feature-matching term added to the
    generator's reconstruction loss.
    """

    name = "BGAN"

    def __init__(self, window=32, stride=None, kernels=16, kernel_size=3,
                 adversarial_weight=0.1, epochs=20, lr=1e-3, batch_size=32,
                 seed=0):
        super().__init__(window=window, stride=stride, epochs=epochs, lr=lr,
                         batch_size=batch_size, seed=seed)
        self.kernels = max(int(kernels), 2)
        self.kernel_size = int(kernel_size)
        self.adversarial_weight = float(adversarial_weight)

    def _build(self, width, dims, rng):
        self._discriminator = _ConvDiscriminator(
            dims, width, self.kernels, self.kernel_size, rng
        )
        self._d_optimizer = nn.Adam(self._discriminator.parameters(), lr=self.lr)
        return _ConvGenerator(dims, width, self.kernels, self.kernel_size, rng)

    def _tape_modules(self):
        # The adversarial loss also runs the discriminator's forward (and
        # its optimiser step), so the tape must vet it too.
        return [self.model_, self._discriminator]

    def _reconstruct(self, model, batch):
        # Windows arrive as (N, width, D); conv layers want (N, D, width).
        recon = model(batch.transpose(0, 2, 1))
        return recon.transpose(0, 2, 1)

    def _batch_loss(self, model, batch):
        recon = self._reconstruct(model, batch)
        real = batch.transpose(0, 2, 1)
        fake = recon.transpose(0, 2, 1)

        # Discriminator step: real -> 1, reconstruction -> 0.
        self._d_optimizer.zero_grad()
        logits_real = self._discriminator(real.detach())
        logits_fake = self._discriminator(nn.Tensor(fake.data))
        d_loss = nn.bce_with_logits(
            logits_real, np.ones(logits_real.shape)
        ) + nn.bce_with_logits(logits_fake, np.zeros(logits_fake.shape))
        d_loss.backward()
        self._d_optimizer.step()

        # Generator step: reconstruction + feature matching.
        recon_loss = nn.mse_loss(recon, batch.data)
        feat_real = self._discriminator.feature_map(nn.Tensor(real.data))
        feat_fake = self._discriminator.feature_map(fake)
        matching = nn.mse_loss(feat_fake, feat_real.data)
        return recon_loss + self.adversarial_weight * matching
