"""RandNet (Chen et al., SDM 2017): autoencoder ensembles with randomly
dropped connections.

Each base model is a fully-connected autoencoder whose weight matrices are
multiplied by fixed random binary masks (sampled once at construction), so
every ensemble member sees a different sparse architecture.  The ensemble
score is the median of the per-member standardised reconstruction errors.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from .base import WindowedDetector

__all__ = ["RandNet"]


class _MaskedLinear(nn.Module):
    """Linear layer with a fixed random connectivity mask."""

    def __init__(self, in_features, out_features, keep_prob, rng):
        super().__init__()
        self.inner = nn.Linear(in_features, out_features, rng=rng)
        mask = (rng.random((in_features, out_features)) < keep_prob).astype(float)
        # Guarantee every output unit keeps at least one incoming weight.
        dead = np.flatnonzero(mask.sum(axis=0) == 0)
        mask[rng.integers(0, in_features, size=dead.size), dead] = 1.0
        self._mask = mask

    def forward(self, x):
        masked = self.inner.weight * nn.Tensor(self._mask)
        return x @ masked + self.inner.bias


class _SparseAE(nn.Module):
    def __init__(self, input_dim, hidden, keep_prob, rng):
        super().__init__()
        bottleneck = max(hidden // 4, 2)
        self.net = nn.Sequential(
            _MaskedLinear(input_dim, hidden, keep_prob, rng),
            nn.Tanh(),
            _MaskedLinear(hidden, bottleneck, keep_prob, rng),
            nn.Tanh(),
            _MaskedLinear(bottleneck, hidden, keep_prob, rng),
            nn.Tanh(),
            _MaskedLinear(hidden, input_dim, keep_prob, rng),
        )

    def forward(self, x):
        return self.net(x)


class RandNet(WindowedDetector):
    """Ensemble of sparsely-connected FC autoencoders on flattened windows.

    Parameters
    ----------
    n_models: ensemble size (paper sweeps {5..500}).
    hidden: widest hidden layer (paper's "number of hidden units").
    keep_prob: probability a connection survives the random mask.
    """

    name = "RN"

    def __init__(self, window=32, stride=None, n_models=10, hidden=64,
                 keep_prob=0.7, epochs=15, lr=1e-3, batch_size=32, seed=0):
        super().__init__(window=window, stride=stride)
        self.n_models = int(n_models)
        self.hidden = int(hidden)
        self.keep_prob = float(keep_prob)
        self.epochs = int(epochs)
        self.lr = float(lr)
        self.batch_size = int(batch_size)
        self.seed = seed
        self.models_ = []
        self.epoch_seconds_ = []

    def fit(self, series):
        import time

        arr, windows, starts, width = self._prepare(series)
        flat = windows.reshape(windows.shape[0], -1)
        rng = np.random.default_rng(self.seed)
        self.models_ = []
        self.epoch_seconds_ = []
        num = flat.shape[0]
        batch = min(self.batch_size, num)
        for __ in range(self.n_models):
            model = _SparseAE(flat.shape[1], self.hidden, self.keep_prob, rng)
            optimizer = nn.Adam(model.parameters(), lr=self.lr)
            for __ in range(self.epochs):
                started = time.perf_counter()
                order = rng.permutation(num)
                for lo in range(0, num, batch):
                    idx = order[lo : lo + batch]
                    optimizer.zero_grad()
                    x = nn.Tensor(flat[idx])
                    loss = nn.mse_loss(model(x), flat[idx])
                    loss.backward()
                    optimizer.step()
                self.epoch_seconds_.append(time.perf_counter() - started)
            self.models_.append(model)
        return self

    def reconstructions(self, series):
        """Per-member window reconstructions; used for the clean-series view."""
        arr, windows, starts, width = self._prepare(series)
        flat = windows.reshape(windows.shape[0], -1)
        outs = []
        with nn.no_grad():
            for model in self.models_:
                outs.append(model(nn.Tensor(flat)).data.reshape(windows.shape))
        return np.asarray(outs), starts, width, arr.shape[0]

    def score(self, series):
        if not self.models_:
            raise RuntimeError("fit before score")
        recons, starts, width, length = self.reconstructions(series)
        arr, windows, __, __ = self._prepare(series)
        member_scores = []
        for recon in recons:
            per_position = ((windows - recon) ** 2).sum(axis=2)
            obs = self._to_observation_scores(per_position, starts, width, length)
            # Standardise each member so the median is comparable.
            obs = (obs - obs.mean()) / max(obs.std(), 1e-12)
            member_scores.append(obs)
        return np.median(np.asarray(member_scores), axis=0)

    @property
    def seconds_per_epoch(self):
        if not self.epoch_seconds_:
            raise RuntimeError("fit before reading runtimes")
        return float(np.mean(self.epoch_seconds_)) * self.n_models
