"""Robust Deep Autoencoder (Zhou & Paffenroth, KDD 2017).

The non-temporal ancestor of the paper's RAE: the window matrix ``X`` is
split as ``X = L_D + S``; a fully-connected autoencoder is trained on
``L_D`` while ``S`` is refreshed by an l1 proximal step, alternating until
the split stabilises.  Because the AE sees flattened windows with no
convolutional or recurrent structure, "RDA cannot capture temporal
dependencies" (Section V-B) — which is exactly why the paper outperforms it.
"""

from __future__ import annotations

import time

import numpy as np

from .. import nn
from ..rpca import soft_threshold
from .base import WindowedDetector

__all__ = ["RDA"]


class _FCAE(nn.Module):
    def __init__(self, input_dim, hidden, rng):
        super().__init__()
        bottleneck = max(hidden // 4, 2)
        self.net = nn.Sequential(
            nn.Linear(input_dim, hidden, rng=rng), nn.Tanh(),
            nn.Linear(hidden, bottleneck, rng=rng), nn.Tanh(),
            nn.Linear(bottleneck, hidden, rng=rng), nn.Tanh(),
            nn.Linear(hidden, input_dim, rng=rng),
        )

    def forward(self, x):
        return self.net(x)


class RDA(WindowedDetector):
    """Alternating FC-autoencoder / soft-threshold decomposition of windows.

    Parameters
    ----------
    lam: sparsity weight of the l1 term on ``S``.
    outer_iterations: number of AE-train / prox alternations.
    inner_epochs: AE epochs per alternation.
    """

    name = "RDA"

    def __init__(self, window=32, stride=None, hidden=64, lam=0.1,
                 outer_iterations=5, inner_epochs=5, lr=1e-3, batch_size=32,
                 seed=0):
        super().__init__(window=window, stride=stride)
        self.hidden = int(hidden)
        self.lam = float(lam)
        self.outer_iterations = int(outer_iterations)
        self.inner_epochs = int(inner_epochs)
        self.lr = float(lr)
        self.batch_size = int(batch_size)
        self.seed = seed
        self.model_ = None
        self.epoch_seconds_ = []

    def fit(self, series):
        arr, windows, starts, width = self._prepare(series)
        flat = windows.reshape(windows.shape[0], -1)
        rng = np.random.default_rng(self.seed)
        self.model_ = _FCAE(flat.shape[1], self.hidden, rng)
        optimizer = nn.Adam(self.model_.parameters(), lr=self.lr)
        sparse = np.zeros_like(flat)
        num = flat.shape[0]
        batch = min(self.batch_size, num)
        self.epoch_seconds_ = []
        for __ in range(self.outer_iterations):
            clean = flat - sparse
            for __ in range(self.inner_epochs):
                started = time.perf_counter()
                order = rng.permutation(num)
                for lo in range(0, num, batch):
                    idx = order[lo : lo + batch]
                    optimizer.zero_grad()
                    loss = nn.mse_loss(self.model_(nn.Tensor(clean[idx])), clean[idx])
                    loss.backward()
                    optimizer.step()
                self.epoch_seconds_.append(time.perf_counter() - started)
            with nn.no_grad():
                recon = self.model_(nn.Tensor(clean)).data
            sparse = soft_threshold(flat - recon, self.lam)
        self._sparse_fitted = sparse
        return self

    def score(self, series):
        if self.model_ is None:
            raise RuntimeError("fit before score")
        arr, windows, starts, width = self._prepare(series)
        flat = windows.reshape(windows.shape[0], -1)
        with nn.no_grad():
            recon = self.model_(nn.Tensor(flat)).data
        sparse = soft_threshold(flat - recon, self.lam)
        residual = flat - recon
        # Score from the sparse part where it is non-zero, residual elsewhere.
        per_elem = np.where(sparse != 0.0, sparse, residual) ** 2
        per_position = per_elem.reshape(windows.shape).sum(axis=2)
        return self._to_observation_scores(per_position, starts, width, arr.shape[0])

    @property
    def seconds_per_epoch(self):
        if not self.epoch_seconds_:
            raise RuntimeError("fit before reading runtimes")
        return float(np.mean(self.epoch_seconds_))
