"""CNN autoencoder baseline (Kieu et al., MDM 2018).

The original treats windows of a time series as images fed to a 2D CNN
autoencoder.  We fold each window of ``width`` observations into a
``(fold, width / fold)`` image with one channel per series dimension, apply
a conv/pool encoder and an upsample/conv decoder, and unfold back.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from .neural import NeuralWindowDetector

__all__ = ["CNNAE"]


class _Conv2dAE(nn.Module):
    # Conv2d/ReLU/pool/upsample chain: every child is a safe tape leaf.
    tape_safe = True

    def __init__(self, channels, height, width, kernels, kernel_size, rng):
        super().__init__()
        self.encoder = nn.Sequential(
            nn.Conv2d(channels, kernels, kernel_size, rng=rng),
            nn.ReLU(),
            nn.MaxPool2d(2),
            nn.Conv2d(kernels, kernels // 2, kernel_size, rng=rng),
            nn.ReLU(),
        )
        self.decoder = nn.Sequential(
            nn.Conv2d(kernels // 2, kernels, kernel_size, rng=rng),
            nn.ReLU(),
            nn.Upsample2d(2, size=(height, width)),
            nn.Conv2d(kernels, channels, kernel_size, rng=rng),
        )

    def forward(self, x):
        return self.decoder(self.encoder(x))


class CNNAE(NeuralWindowDetector):
    """2D-CNN window autoencoder.

    Parameters
    ----------
    fold: rows of the image each window is folded into; the window is
        padded (by repetition of the last frame) to a multiple of ``fold``.
    kernels: feature maps in the widest layer (paper sweeps {32..1024}).
    kernel_size: square conv kernel (paper sweeps {3..11}).
    """

    name = "CNNAE"

    def __init__(self, window=32, stride=None, fold=4, kernels=16,
                 kernel_size=3, epochs=20, lr=1e-3, batch_size=32, seed=0):
        super().__init__(window=window, stride=stride, epochs=epochs, lr=lr,
                         batch_size=batch_size, seed=seed)
        self.fold = int(fold)
        self.kernels = max(int(kernels), 2)
        self.kernel_size = int(kernel_size)

    def _image_shape(self, width):
        rows = max(min(self.fold, width // 2), 1)
        cols = int(np.ceil(width / rows))
        return rows, cols

    def _to_image(self, batch):
        """(N, width, D) Tensor -> (N, D, rows, cols) with tail padding."""
        n, width, dims = batch.shape
        rows, cols = self._image_shape(width)
        pad = rows * cols - width
        if pad:
            tail = batch[:, width - 1 : width, :]
            pieces = [batch] + [tail] * pad
            batch = nn.concatenate(pieces, axis=1)
        return batch.transpose(0, 2, 1).reshape(n, dims, rows, cols)

    def _from_image(self, image, width):
        n, dims, rows, cols = image.shape
        flat = image.reshape(n, dims, rows * cols)[:, :, :width]
        return flat.transpose(0, 2, 1)

    def _build(self, width, dims, rng):
        rows, cols = self._image_shape(width)
        return _Conv2dAE(dims, rows, cols, self.kernels, self.kernel_size, rng)

    def _reconstruct(self, model, batch):
        width = batch.shape[1]
        return self._from_image(model(self._to_image(batch)), width)
