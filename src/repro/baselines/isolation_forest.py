"""Isolation Forest (Liu, Ting & Zhou, ICDM 2008), from scratch.

Outliers are isolated by fewer random axis-parallel splits; the anomaly
score is ``2^(-E[h(x)] / c(psi))`` where ``h`` is the path length in a tree
grown on a subsample of size ``psi``.
"""

from __future__ import annotations

import numpy as np

from .base import BaseDetector, as_series
from ..tsops import standardize

__all__ = ["IsolationForest"]


def _average_path_length(n):
    """Expected unsuccessful-search path length in a BST of ``n`` points."""
    n = np.asarray(n, dtype=np.float64)
    out = np.zeros_like(n)
    mask = n > 2
    harmonic = np.log(np.maximum(n - 1, 1)) + np.euler_gamma
    out[mask] = 2.0 * harmonic[mask] - 2.0 * (n[mask] - 1) / n[mask]
    out[n == 2] = 1.0
    return out


class _Node:
    __slots__ = ("feature", "threshold", "left", "right", "size")

    def __init__(self, feature=None, threshold=None, left=None, right=None, size=0):
        self.feature = feature
        self.threshold = threshold
        self.left = left
        self.right = right
        self.size = size


def _grow(points, depth, max_depth, rng):
    n = points.shape[0]
    if depth >= max_depth or n <= 1:
        return _Node(size=n)
    spans = points.max(axis=0) - points.min(axis=0)
    candidates = np.flatnonzero(spans > 0)
    if candidates.size == 0:
        return _Node(size=n)
    feature = int(rng.choice(candidates))
    lo, hi = points[:, feature].min(), points[:, feature].max()
    threshold = rng.uniform(lo, hi)
    mask = points[:, feature] < threshold
    return _Node(
        feature=feature,
        threshold=threshold,
        left=_grow(points[mask], depth + 1, max_depth, rng),
        right=_grow(points[~mask], depth + 1, max_depth, rng),
        size=n,
    )


def _path_length(node, point, depth=0):
    while node.feature is not None:
        node = node.left if point[node.feature] < node.threshold else node.right
        depth += 1
    return depth + float(_average_path_length(np.array([node.size]))[0])


class IsolationForest(BaseDetector):
    """Tree-ensemble isolation scoring on (optionally context-embedded) points.

    Parameters
    ----------
    n_trees: paper sweeps the number of base models {5..500}; default 100.
    subsample: per-tree subsample size psi (classic default 256).
    context: past observations appended to each point (1 = raw observations).
    """

    name = "ISF"

    def __init__(self, n_trees=100, subsample=256, context=1, seed=0):
        self.n_trees = int(n_trees)
        self.subsample = int(subsample)
        self.context = int(context)
        self.seed = seed
        self._trees = []

    def _embed(self, arr):
        if self.context <= 1:
            return arr
        pads = [np.roll(arr, s, axis=0) for s in range(self.context)]
        for s in range(1, self.context):
            pads[s][:s] = arr[0]
        return np.concatenate(pads, axis=1)

    def fit(self, series):
        points = self._embed(standardize(as_series(series)))
        rng = np.random.default_rng(self.seed)
        psi = min(self.subsample, points.shape[0])
        max_depth = int(np.ceil(np.log2(max(psi, 2))))
        self._trees = []
        for __ in range(self.n_trees):
            idx = rng.choice(points.shape[0], psi, replace=False)
            self._trees.append(_grow(points[idx], 0, max_depth, rng))
        self._psi = psi
        return self

    def score(self, series):
        if not self._trees:
            raise RuntimeError("fit before score")
        points = self._embed(standardize(as_series(series)))
        c_norm = float(_average_path_length(np.array([self._psi]))[0]) or 1.0
        depths = np.empty((points.shape[0], len(self._trees)))
        for j, tree in enumerate(self._trees):
            for i, p in enumerate(points):
                depths[i, j] = _path_length(tree, p)
        return 2.0 ** (-depths.mean(axis=1) / c_norm)
