"""Shared training loop for neural window-reconstruction detectors.

All the paper's neural baselines (CNNAE, RNNAE, BeatGAN, Donut, OmniAnomaly,
TAE, RandNet) follow one recipe: cut the standardised series into sliding
windows, train an autoencoder to reconstruct windows, and score each
observation with the averaged per-position reconstruction error of every
window covering it.  This module implements that recipe once; subclasses
supply the network and, if needed, a custom loss / scoring rule.

Per-epoch wall-clock time is recorded in ``epoch_seconds_`` to reproduce the
runtime comparison of Fig. 18.
"""

from __future__ import annotations

import time

import numpy as np

from .. import nn
from .base import WindowedDetector

__all__ = ["NeuralWindowDetector"]


class NeuralWindowDetector(WindowedDetector):
    """Base class: windowed autoencoder trained with Adam.

    Parameters
    ----------
    window, stride: sliding-window geometry.
    epochs: training epochs over all windows.
    lr: Adam learning rate.
    batch_size: minibatch size (windows per step).
    seed: seeds both parameter init and batch shuffling.
    """

    name = "neural"

    def __init__(self, window=32, stride=None, epochs=20, lr=1e-3,
                 batch_size=32, seed=0):
        super().__init__(window=window, stride=stride)
        self.epochs = int(epochs)
        self.lr = float(lr)
        self.batch_size = int(batch_size)
        self.seed = seed
        self.model_ = None
        self.epoch_seconds_ = []
        self.loss_history_ = []

    # -- hooks ---------------------------------------------------------- #
    def _build(self, width, dims, rng):
        """Return the model (an ``nn.Module``) for windows ``(width, dims)``."""
        raise NotImplementedError

    def _batch_loss(self, model, batch):
        """Training loss for a ``(N, width, dims)`` Tensor batch."""
        return nn.mse_loss(self._reconstruct(model, batch), batch.data)

    def _tape_modules(self):
        """Every module the recorded loss runs a forward through.

        Subclasses whose loss involves more than ``self.model_`` (BeatGAN's
        adversarial loss also runs its discriminator) extend this list so
        the tape safety verdict covers the whole recorded program.
        """
        return [self.model_]

    def _reconstruct(self, model, batch):
        """Reconstruct a ``(N, width, dims)`` Tensor batch; default: model(batch)."""
        return model(batch)

    def _position_errors(self, model, windows):
        """Per-window, per-position anomaly scores ``(N, width)``."""
        with nn.no_grad():
            recon = self._reconstruct(model, nn.Tensor(windows)).data
        return ((windows - recon) ** 2).sum(axis=2)

    # -- training ------------------------------------------------------- #
    def fit(self, series):
        arr, windows, starts, width = self._prepare(series)
        rng = np.random.default_rng(self.seed)
        self.model_ = self._build(width, arr.shape[1], rng)
        optimizer = nn.Adam(self.model_.parameters(), lr=self.lr)
        self.epoch_seconds_ = []
        self.loss_history_ = []
        num = windows.shape[0]
        batch = min(self.batch_size, num)

        def loss_fn(x):
            return self._batch_loss(self.model_, x)

        for __ in range(self.epochs):
            started = time.perf_counter()
            order = rng.permutation(num)
            epoch_loss = 0.0
            steps = 0
            for lo in range(0, num, batch):
                data = windows[order[lo : lo + batch]]
                optimizer.zero_grad()
                # Tape-compiled fast path: one recorded program per batch
                # shape, replayed on later steps.  The record step *is* an
                # eager step and a poisoned recording still computed eager
                # semantics, so results are identical either way.
                tape = nn.tape.training_tape(self.model_, data, None,
                                             loss_fn=loss_fn,
                                             modules=self._tape_modules())
                if tape is not None:
                    tape.step(data, None)
                    loss_value = tape.loss_value
                else:
                    loss = self._batch_loss(self.model_, nn.Tensor(data))
                    loss.backward()
                    loss_value = loss.item()
                nn.clip_grad_norm(self.model_.parameters(), 5.0)
                optimizer.step()
                epoch_loss += loss_value
                steps += 1
            self.loss_history_.append(epoch_loss / max(steps, 1))
            self.epoch_seconds_.append(time.perf_counter() - started)
        nn.tape.release_tapes(self.model_)
        return self

    def score(self, series):
        if self.model_ is None:
            raise RuntimeError("fit before score")
        arr, windows, starts, width = self._prepare(series)
        per_position = self._position_errors(self.model_, windows)
        return self._to_observation_scores(per_position, starts, width, arr.shape[0])

    @property
    def seconds_per_epoch(self):
        """Mean training wall-clock seconds per epoch (Fig. 18 quantity)."""
        if not self.epoch_seconds_:
            raise RuntimeError("fit before reading runtimes")
        return float(np.mean(self.epoch_seconds_))
