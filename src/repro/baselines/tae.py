"""Transformer autoencoder baseline (Meng et al., 2020).

Windows are linearly embedded, given sinusoidal positional encodings, passed
through a stack of self-attention encoder blocks, squeezed through a linear
bottleneck per step, and projected back to the input dimensionality.
Scoring is the usual per-position reconstruction error.
"""

from __future__ import annotations

from .. import nn
from .neural import NeuralWindowDetector

__all__ = ["TransformerAE"]


class _TransformerAE(nn.Module):
    # Linear/attention/positional-encoding stacks are all safe tape leaves
    # (softmax and dropout record through the tape's buffer protocol).
    tape_safe = True

    def __init__(self, dims, d_model, num_heads, num_layers, bottleneck, rng):
        super().__init__()
        self.embed = nn.Linear(dims, d_model, rng=rng)
        self.positional = nn.PositionalEncoding(d_model)
        self.blocks = nn.Sequential(
            *[
                nn.TransformerEncoderLayer(d_model, num_heads, rng=rng)
                for __ in range(num_layers)
            ]
        )
        self.squeeze = nn.Linear(d_model, bottleneck, rng=rng)
        self.expand = nn.Linear(bottleneck, d_model, rng=rng)
        self.readout = nn.Linear(d_model, dims, rng=rng)

    def forward(self, x):
        h = self.blocks(self.positional(self.embed(x)))
        h = self.expand(self.squeeze(h).tanh())
        return self.readout(h)


class TransformerAE(NeuralWindowDetector):
    """Attention-based window autoencoder.

    ``num_heads`` is the paper's "number of attention heads" hyperparameter
    (swept over {3, 5, 7, 9, 11}; values are rounded down to a divisor of
    ``d_model``).
    """

    name = "TAE"

    def __init__(self, window=32, stride=None, d_model=32, num_heads=4,
                 num_layers=2, bottleneck=8, epochs=15, lr=1e-3,
                 batch_size=32, seed=0):
        super().__init__(window=window, stride=stride, epochs=epochs, lr=lr,
                         batch_size=batch_size, seed=seed)
        self.d_model = int(d_model)
        # Round the head count down to the nearest divisor of d_model.
        heads = max(int(num_heads), 1)
        while self.d_model % heads != 0:
            heads -= 1
        self.num_heads = heads
        self.num_layers = int(num_layers)
        self.bottleneck = int(bottleneck)

    def _build(self, width, dims, rng):
        return _TransformerAE(
            dims, self.d_model, self.num_heads, self.num_layers,
            self.bottleneck, rng,
        )
