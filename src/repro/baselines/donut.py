"""Donut (Xu et al., WWW 2018): variational autoencoder for seasonal KPIs.

A fully-connected VAE over flattened windows: the encoder emits the mean and
log-variance of a diagonal Gaussian latent, a reparameterised sample is
decoded to a per-position Gaussian over the window, and training maximises
the evidence lower bound.  The outlier score is the Monte-Carlo
reconstruction negative log-likelihood per position.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from .neural import NeuralWindowDetector

__all__ = ["Donut"]


class _VAE(nn.Module):
    # Pure Linear/ReLU stacks; the reparameterisation noise is drawn via
    # nn.functional.sampled_normal, which redraws on the tape per replay.
    tape_safe = True

    def __init__(self, input_dim, hidden, latent, rng):
        super().__init__()
        self.enc = nn.Sequential(
            nn.Linear(input_dim, hidden, rng=rng), nn.ReLU(),
            nn.Linear(hidden, hidden, rng=rng), nn.ReLU(),
        )
        self.enc_mu = nn.Linear(hidden, latent, rng=rng)
        self.enc_logvar = nn.Linear(hidden, latent, rng=rng)
        self.dec = nn.Sequential(
            nn.Linear(latent, hidden, rng=rng), nn.ReLU(),
            nn.Linear(hidden, hidden, rng=rng), nn.ReLU(),
        )
        self.dec_mu = nn.Linear(hidden, input_dim, rng=rng)
        self.dec_logvar = nn.Linear(hidden, input_dim, rng=rng)

    def encode(self, x):
        h = self.enc(x)
        return self.enc_mu(h), self.enc_logvar(h).clip_value(-8.0, 8.0)

    def decode(self, z):
        h = self.dec(z)
        return self.dec_mu(h), self.dec_logvar(h).clip_value(-8.0, 8.0)


class Donut(NeuralWindowDetector):
    """Window VAE with stochastic latent space.

    Parameters
    ----------
    hidden: encoder/decoder width (paper's "number of hidden units").
    latent: stochastic latent size (paper's "stochastic latent variable size").
    mc_samples: Monte-Carlo samples for both training and scoring.
    kl_weight: weight of the KL term in the negative ELBO.
    """

    name = "DONUT"

    def __init__(self, window=32, stride=None, hidden=64, latent=8,
                 mc_samples=4, kl_weight=1.0, epochs=20, lr=1e-3,
                 batch_size=32, seed=0):
        super().__init__(window=window, stride=stride, epochs=epochs, lr=lr,
                         batch_size=batch_size, seed=seed)
        self.hidden = int(hidden)
        self.latent = int(latent)
        self.mc_samples = int(mc_samples)
        self.kl_weight = float(kl_weight)
        self._noise_rng = np.random.default_rng(seed)

    def _build(self, width, dims, rng):
        return _VAE(width * dims, self.hidden, self.latent, rng)

    def _flatten(self, batch):
        n = batch.shape[0]
        return batch.reshape(n, batch.shape[1] * batch.shape[2])

    def _sample(self, mu, logvar):
        # Drawn through the tape's sampling primitive: replayed epochs
        # redraw from self._noise_rng in eager draw order, bit-identical.
        noise = nn.functional.sampled_normal(mu.shape, self._noise_rng)
        return mu + (logvar * 0.5).exp() * noise

    def _batch_loss(self, model, batch):
        flat = self._flatten(batch)
        mu_z, logvar_z = model.encode(flat)
        recon = 0.0
        for __ in range(self.mc_samples):
            z = self._sample(mu_z, logvar_z)
            mu_x, logvar_x = model.decode(z)
            recon = recon + nn.gaussian_nll(mu_x, logvar_x, flat.data)
        recon = recon * (1.0 / self.mc_samples)
        kl = nn.kl_diag_gaussian(mu_z, logvar_z)
        return recon + self.kl_weight * kl

    def _position_errors(self, model, windows):
        n, width, dims = windows.shape
        flat = windows.reshape(n, width * dims)
        with nn.no_grad():
            mu_z, logvar_z = model.encode(nn.Tensor(flat))
            nll = np.zeros((n, width * dims))
            for __ in range(self.mc_samples):
                z = self._sample(mu_z, logvar_z)
                mu_x, logvar_x = model.decode(z)
                var = np.exp(logvar_x.data)
                nll += 0.5 * (
                    logvar_x.data
                    + (flat - mu_x.data) ** 2 / var
                    + np.log(2 * np.pi)
                )
        nll /= self.mc_samples
        return nll.reshape(n, width, dims).sum(axis=2)

    def _reconstruct(self, model, batch):
        """Mean reconstruction (used by the explainability analysis)."""
        flat = self._flatten(batch)
        mu_z, __ = model.encode(flat)
        mu_x, __ = model.decode(mu_z)
        n = batch.shape[0]
        return mu_x.reshape(n, batch.shape[1], batch.shape[2])
