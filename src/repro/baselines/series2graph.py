"""Series2Graph (Boniol & Palpanas, PVLDB 2020), simplified.

A related-work method of Section VI: the series is embedded into a graph
whose nodes are quantised subsequence shapes and whose weighted edges record
observed transitions between consecutive shapes; subsequences whose
node/edge path is rarely travelled are anomalies.  This implementation
follows the published pipeline — subsequence embedding (PCA to a low-d
shape space), node creation by quantisation, edge accumulation, and a
normality score from edge weights and node degrees — at reduced fidelity.
"""

from __future__ import annotations

import numpy as np
import networkx as nx

from ..tsops import overlap_average, standardize
from .base import BaseDetector, as_series

__all__ = ["Series2Graph"]


class Series2Graph(BaseDetector):
    """Graph-embedding discord detector.

    Parameters
    ----------
    pattern_size: subsequence length (the paper's input length ℓ).
    n_bins: quantisation resolution of the 2D shape space (nodes ≤ n_bins²).
    """

    name = "S2G"

    def __init__(self, pattern_size=20, n_bins=8):
        self.pattern_size = int(pattern_size)
        self.n_bins = int(n_bins)
        self.graph_ = None

    def fit(self, series):
        return self

    def _shape_space(self, values, m):
        subsequences = np.lib.stride_tricks.sliding_window_view(values, m)
        means = subsequences.mean(axis=1, keepdims=True)
        stds = np.maximum(subsequences.std(axis=1, keepdims=True), 1e-9)
        normed = (subsequences - means) / stds
        # Project z-normalised shapes to their top-2 principal components.
        centred = normed - normed.mean(axis=0, keepdims=True)
        __, __, vt = np.linalg.svd(centred, full_matrices=False)
        return centred @ vt[:2].T  # (n_sub, 2)

    def _quantise(self, points):
        lo = points.min(axis=0)
        hi = points.max(axis=0)
        span = np.maximum(hi - lo, 1e-9)
        cells = np.floor((points - lo) / span * (self.n_bins - 1e-9)).astype(int)
        return [tuple(row) for row in cells]

    def score(self, series):
        arr = standardize(as_series(series))
        length, dims = arr.shape
        m = int(np.clip(self.pattern_size, 4, max(4, length // 3)))
        scores = np.zeros(length)
        for d in range(dims):
            points = self._shape_space(arr[:, d], m)
            nodes = self._quantise(points)
            graph = nx.DiGraph()
            for a, b in zip(nodes[:-1], nodes[1:]):
                if graph.has_edge(a, b):
                    graph[a][b]["weight"] += 1
                else:
                    graph.add_edge(a, b, weight=1)
            self.graph_ = graph
            # Normality of a transition: edge weight scaled by source degree
            # (well-travelled paths through well-connected shapes = normal).
            n_sub = len(nodes)
            normality = np.zeros(max(n_sub - 1, 1))
            for i, (a, b) in enumerate(zip(nodes[:-1], nodes[1:])):
                weight = graph[a][b]["weight"]
                degree = graph.degree(a, weight="weight")
                normality[i] = weight * (degree - 1)
            anomaly = normality.max() - normality
            per_position = np.repeat(anomaly[:, None], m, axis=1)
            starts = np.arange(anomaly.size)
            scores += overlap_average(per_position, starts, m, length)
        return scores / dims
