"""One-Class SVM (Scholkopf et al.), solved by projected gradient descent.

The dual problem is::

    min_alpha  1/2 alpha^T K alpha
    s.t.       0 <= alpha_i <= 1 / (nu * n),   sum_i alpha_i = 1

We solve it with projected gradient descent; the projection onto the
box-constrained simplex is computed by bisection on the simplex shift.  The
decision function ``f(x) = sum_i alpha_i k(x_i, x) - rho`` is calibrated
with ``rho`` taken at a support vector on the margin, and the outlier score
is ``rho - f(x)`` (higher = more anomalous).  Both RBF and polynomial
kernels are supported — the paper sweeps the polynomial kernel degree.
"""

from __future__ import annotations

import numpy as np

from .base import WindowedDetector

__all__ = ["OneClassSVM"]


def _project_box_simplex(v, upper):
    """Project ``v`` onto {0 <= a <= upper, sum a = 1} by bisection."""
    lo = v.min() - upper - 1.0
    hi = v.max() + 1.0
    for __ in range(80):
        mid = 0.5 * (lo + hi)
        total = np.clip(v - mid, 0.0, upper).sum()
        if total > 1.0:
            lo = mid
        else:
            hi = mid
    return np.clip(v - 0.5 * (lo + hi), 0.0, upper)


class OneClassSVM(WindowedDetector):
    """Kernel one-class classification on sliding windows.

    Parameters
    ----------
    nu: upper bound on the training outlier fraction (lower bound on SVs).
    kernel: 'rbf' or 'poly'.
    degree: polynomial kernel degree (paper sweeps {3, 5, 7, 9, 11}).
    gamma: kernel width; 'scale' uses ``1 / (d * var)`` as in scikit-learn.
    max_points: training windows are subsampled to this cap.
    """

    name = "OCSVM"

    def __init__(self, window=16, stride=None, nu=0.2, kernel="rbf", degree=3,
                 gamma="scale", iterations=500, max_points=800, seed=0):
        super().__init__(window=window, stride=stride)
        if kernel not in ("rbf", "poly"):
            raise ValueError("kernel must be 'rbf' or 'poly'")
        self.nu = float(nu)
        self.kernel = kernel
        self.degree = int(degree)
        self.gamma = gamma
        self.iterations = int(iterations)
        self.max_points = int(max_points)
        self.seed = seed
        self._alpha = None

    def _gamma_value(self, points):
        if self.gamma == "scale":
            var = points.var() or 1.0
            return 1.0 / (points.shape[1] * var)
        return float(self.gamma)

    def _kernel(self, a, b, gamma):
        if self.kernel == "rbf":
            aa = (a**2).sum(axis=1)[:, None]
            bb = (b**2).sum(axis=1)[None, :]
            sq = np.maximum(aa + bb - 2.0 * (a @ b.T), 0.0)
            return np.exp(-gamma * sq)
        # Normalised polynomial kernel: k(a,b)/sqrt(k(a,a) k(b,b)).  The raw
        # polynomial kernel rewards large-norm (outlier) windows with large
        # self-similarity, inverting the decision function.
        raw = (gamma * (a @ b.T) + 1.0) ** self.degree
        diag_a = (gamma * (a * a).sum(axis=1) + 1.0) ** self.degree
        diag_b = (gamma * (b * b).sum(axis=1) + 1.0) ** self.degree
        return raw / np.sqrt(np.outer(diag_a, diag_b))

    def fit(self, series):
        __, windows, __, width = self._prepare(series)
        points = windows.reshape(windows.shape[0], -1)
        rng = np.random.default_rng(self.seed)
        if points.shape[0] > self.max_points:
            idx = rng.choice(points.shape[0], self.max_points, replace=False)
            points = points[idx]
        n = points.shape[0]
        gamma = self._gamma_value(points)
        kernel = self._kernel(points, points, gamma)
        upper = 1.0 / max(self.nu * n, 1.0)
        alpha = _project_box_simplex(np.full(n, 1.0 / n), upper)
        # Accelerated (FISTA) projected gradient; the gradient's Lipschitz
        # constant is the top kernel eigenvalue.
        step = 1.0 / max(float(np.linalg.eigvalsh(kernel)[-1]), 1e-9)
        momentum = alpha.copy()
        t_prev = 1.0
        for __ in range(self.iterations):
            alpha_next = _project_box_simplex(
                momentum - step * (kernel @ momentum), upper
            )
            t_next = 0.5 * (1.0 + np.sqrt(1.0 + 4.0 * t_prev**2))
            momentum = alpha_next + ((t_prev - 1.0) / t_next) * (alpha_next - alpha)
            alpha, t_prev = alpha_next, t_next
        self._alpha = alpha
        self._train_points = points
        self._gamma_fitted = gamma
        # rho from margin support vectors (0 < alpha < upper).
        decision = kernel @ alpha
        margin = (alpha > 1e-8) & (alpha < upper - 1e-8)
        self._rho = float(decision[margin].mean() if margin.any() else decision.mean())
        return self

    def score(self, series):
        if self._alpha is None:
            raise RuntimeError("fit before score")
        arr, windows, starts, width = self._prepare(series)
        points = windows.reshape(windows.shape[0], -1)
        if points.shape[1] != self._train_points.shape[1]:
            raise ValueError("window size mismatch between fit and score")
        kernel = self._kernel(points, self._train_points, self._gamma_fitted)
        decision = kernel @ self._alpha - self._rho
        return self._window_scores_to_observations(
            -decision, starts, width, arr.shape[0]
        )
