"""The paper's 15 comparison methods plus RSSA (Section V-A)."""

from .base import (
    CAPABILITIES,
    BaseDetector,
    WindowedDetector,
    as_series,
    detector_capabilities,
)
from .beatgan import BeatGAN
from .cnnae import CNNAE
from .donut import Donut
from .hotsax import HotSAX, sax_word
from .isolation_forest import IsolationForest
from .lof import LOF
from .matrix_profile import MatrixProfile, mass_distance_profile, matrix_profile_1d
from .neural import NeuralWindowDetector
from .ocsvm import OneClassSVM
from .omni import OmniAnomaly
from .randnet import RandNet
from .rda import RDA
from .rnnae import RNNAE
from .rssa_detector import RSSADetector
from .series2graph import Series2Graph
from .smoothers import EMADetector, SSADetector, STLDetector
from .tae import TransformerAE

__all__ = [
    "BaseDetector",
    "WindowedDetector",
    "NeuralWindowDetector",
    "as_series",
    "CAPABILITIES",
    "detector_capabilities",
    "OneClassSVM",
    "LOF",
    "IsolationForest",
    "EMADetector",
    "STLDetector",
    "SSADetector",
    "MatrixProfile",
    "HotSAX",
    "sax_word",
    "Series2Graph",
    "mass_distance_profile",
    "matrix_profile_1d",
    "RandNet",
    "CNNAE",
    "RNNAE",
    "BeatGAN",
    "Donut",
    "OmniAnomaly",
    "TransformerAE",
    "RDA",
    "RSSADetector",
]
