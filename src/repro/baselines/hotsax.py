"""HOT SAX (Keogh, Lin & Fu, ICDM 2005): discord discovery via SAX.

A related-work method of Section VI ("Keogh et al. define grammar rules
using symbolic representations"), provided as an optional extra detector.
Subsequences are discretised with Symbolic Aggregate approXimation; the
discord search orders outer-loop candidates by the rarity of their SAX word
(rare words first) and abandons inner loops early, the HOT SAX heuristic.
Scores are nearest-non-self-match distances, like the matrix profile.
"""

from __future__ import annotations

import numpy as np
from scipy import stats as sp_stats

from ..tsops import overlap_average, standardize
from .base import BaseDetector, as_series

__all__ = ["HotSAX", "sax_word", "paa"]


def paa(segment, n_pieces):
    """Piecewise Aggregate Approximation: mean of ``n_pieces`` equal chunks."""
    segment = np.asarray(segment, dtype=np.float64)
    edges = np.linspace(0, segment.size, n_pieces + 1).astype(int)
    return np.array([
        segment[lo:hi].mean() if hi > lo else segment[min(lo, segment.size - 1)]
        for lo, hi in zip(edges[:-1], edges[1:])
    ])


def sax_word(segment, n_pieces=4, alphabet=3):
    """SAX discretisation of one z-normalised subsequence into a word."""
    segment = np.asarray(segment, dtype=np.float64)
    std = segment.std()
    z = (segment - segment.mean()) / (std if std > 0 else 1.0)
    approx = paa(z, n_pieces)
    # Breakpoints split the standard normal into equiprobable regions.
    breakpoints = sp_stats.norm.ppf(np.linspace(0, 1, alphabet + 1)[1:-1])
    symbols = np.searchsorted(breakpoints, approx)
    return "".join(chr(ord("a") + s) for s in symbols)


class HotSAX(BaseDetector):
    """Discord detection with SAX-ordered search.

    Parameters
    ----------
    pattern_size: subsequence length.
    n_pieces / alphabet: SAX word geometry.
    """

    name = "HOTSAX"

    def __init__(self, pattern_size=20, n_pieces=4, alphabet=3):
        self.pattern_size = int(pattern_size)
        self.n_pieces = int(n_pieces)
        self.alphabet = int(alphabet)

    def fit(self, series):
        return self

    def _discord_distances(self, values):
        m = self.pattern_size
        n_sub = values.size - m + 1
        subsequences = np.lib.stride_tricks.sliding_window_view(values, m)
        # Z-normalise all subsequences once.
        means = subsequences.mean(axis=1, keepdims=True)
        stds = np.maximum(subsequences.std(axis=1, keepdims=True), 1e-9)
        normed = (subsequences - means) / stds

        words = [sax_word(values[i : i + m], self.n_pieces, self.alphabet)
                 for i in range(n_sub)]
        counts = {}
        for word in words:
            counts[word] = counts.get(word, 0) + 1
        # HOT SAX outer-loop order: rarest words first.
        order = sorted(range(n_sub), key=lambda i: counts[words[i]])

        exclusion = max(m // 2, 1)
        best_so_far = 0.0
        distances = np.zeros(n_sub)
        for i in order:
            # Inner loop: same-word neighbours first (likely close matches),
            # with early abandoning against the running discord threshold.
            same = [j for j in range(n_sub)
                    if words[j] == words[i] and abs(j - i) > exclusion]
            others = [j for j in range(n_sub)
                      if words[j] != words[i] and abs(j - i) > exclusion]
            nearest = np.inf
            for j in same + others:
                dist = float(np.linalg.norm(normed[i] - normed[j]))
                if dist < nearest:
                    nearest = dist
                    if nearest < best_so_far:
                        break  # cannot be the discord; abandon
            if np.isfinite(nearest):
                distances[i] = nearest
                best_so_far = max(best_so_far, nearest)
        return distances

    def score(self, series):
        arr = standardize(as_series(series))
        length, dims = arr.shape
        m = int(np.clip(self.pattern_size, 3, max(3, length // 3)))
        self.pattern_size, original = m, self.pattern_size
        try:
            scores = np.zeros(length)
            starts = np.arange(length - m + 1)
            for d in range(dims):
                distances = self._discord_distances(arr[:, d])
                per_position = np.repeat(distances[:, None], m, axis=1)
                scores += overlap_average(per_position, starts, m, length)
        finally:
            self.pattern_size = original
        return scores / dims
