"""Experiment harness: run method suites over the dataset registry.

Drives the Table II / Table III reproduction and the per-figure sweeps; the
benchmark modules under ``benchmarks/`` are thin wrappers around these
functions.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..datasets import load_dataset
from ..metrics import paired_t_test
from .engine import BatchScoringEngine
from .methods import METHODS, UnknownMethodError

__all__ = ["SuiteResult", "run_suite", "significance_against_best_baseline"]


@dataclasses.dataclass
class SuiteResult:
    """Accuracy grid: ``pr[dataset][method]`` and ``roc[dataset][method]``."""

    pr: dict
    roc: dict
    methods: list
    datasets: list

    def averages(self, metric="pr"):
        """Per-method average over datasets (the tables' "Avg." row)."""
        grid = getattr(self, metric)
        return {
            m: float(np.mean([grid[d][m] for d in self.datasets]))
            for m in self.methods
        }

    def column(self, method, metric="pr"):
        """Per-dataset results of one method, in dataset order."""
        grid = getattr(self, metric)
        return [grid[d][method] for d in self.datasets]


def _trim(dataset, max_series):
    if max_series is None or len(dataset) <= max_series:
        return dataset
    dataset.series = dataset.series[:max_series]
    return dataset


def run_suite(methods, dataset_names, scale=0.05, seed=0, max_series=2,
              overrides=None, dataset_kwargs=None):
    """Evaluate ``methods`` on ``dataset_names`` at the given scale.

    Parameters
    ----------
    methods: iterable of method names (see :mod:`repro.eval.methods`).
    scale: dataset length multiplier (1.0 = paper-sized).
    max_series: series per dataset cap (None = all).
    overrides: {method: kwargs} applied when constructing detectors.
    dataset_kwargs: {dataset: kwargs} forwarded to the generators.
    """
    overrides = overrides or {}
    dataset_kwargs = dataset_kwargs or {}
    methods = list(methods)
    dataset_names = list(dataset_names)
    # Fail loudly before any dataset is generated or detector fitted: a typo
    # in a method name should not surface as a KeyError hours into a sweep.
    unknown = [m for m in methods if m not in METHODS]
    if unknown:
        raise UnknownMethodError(
            "unknown method%s %s; known methods: %s"
            % ("s" if len(unknown) > 1 else "",
               ", ".join(repr(m) for m in unknown), ", ".join(METHODS))
        )
    pr_grid = {d: {} for d in dataset_names}
    roc_grid = {d: {} for d in dataset_names}
    # One engine per method, reused across datasets: the transductive mode
    # keeps the paper's fresh-fit-per-series protocol (identical numbers to
    # the old per-call loop) while centralising construction and the
    # single-class-label bookkeeping.
    engines = {
        method: BatchScoringEngine(
            method=method, overrides=overrides.get(method, {}),
            mode="transductive",
        )
        for method in methods
    }
    for dataset_name in dataset_names:
        dataset = _trim(
            load_dataset(
                dataset_name, seed=seed, scale=scale,
                **dataset_kwargs.get(dataset_name, {})
            ),
            max_series,
        )
        for method in methods:
            pr, roc = engines[method].evaluate(dataset)
            pr_grid[dataset_name][method] = pr
            roc_grid[dataset_name][method] = roc
    return SuiteResult(pr=pr_grid, roc=roc_grid, methods=methods,
                       datasets=dataset_names)


def significance_against_best_baseline(result, proposed=("RAE", "RDAE"),
                                       metric="pr"):
    """Paired t-tests of each proposed method against every baseline.

    Pairs are matched by dataset (the paper's "average results of all
    datasets" comparison).  Returns {proposed: {baseline: p_value}}.
    """
    baselines = [m for m in result.methods if m not in proposed]
    out = {}
    for method in proposed:
        ours = result.column(method, metric)
        out[method] = {}
        for baseline in baselines:
            theirs = result.column(baseline, metric)
            __, p_value = paired_t_test(ours, theirs)
            out[method][baseline] = p_value
    return out
