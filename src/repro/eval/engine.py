"""Batched scoring engine: amortise detector setup across many series.

The original harness loops ``factory().fit_score(series)`` over every series
of every dataset — model construction, scaler fitting, and the autoencoder
forward are all paid per series.  :class:`BatchScoringEngine` factors that
loop into a reusable engine with two modes:

``transductive``
    The paper's protocol, unchanged numerically: a fresh detector is fitted
    on each series.  The engine only centralises construction and the
    single-class-labels bookkeeping (this is what :func:`repro.eval.run_suite`
    now drives).
``warm``
    Production serving: the detector is fitted **once** (on a reference
    series, or loaded from a ``.npz`` saved by :mod:`repro.core.persistence`)
    and every incoming series is scored with the trained state.  Same-length
    series are micro-batched through one autoencoder forward pass via
    :func:`repro.core.batched_score_new`.
"""

from __future__ import annotations

import copy

import numpy as np

from ..baselines.base import detector_capabilities
from ..core import (
    RAE,
    RDAE,
    batched_score_new,
    iter_key_batches,
    load_detector,
    save_detector,
)
from ..metrics import pr_auc, roc_auc
from .methods import make_detector

__all__ = ["BatchScoringEngine"]


class BatchScoringEngine:
    """Score many series while reusing as much detector setup as possible.

    Parameters
    ----------
    method: registry name (see :func:`repro.eval.make_detector`) or a
        :class:`repro.api.DetectorSpec` / :class:`repro.api.PipelineSpec`
        (its detector stage); mutually exclusive with ``detector``.
    detector: a detector instance to use directly.  In warm mode it is
        used as-is — its fitted state (or lack of it) is the caller's:
        the engine never refits a supplied instance behind your back.
        Engine-built detectors (``method=``) are fitted on the first
        scored series if :meth:`fit` was not called.
    overrides: constructor overrides applied when building from ``method``.
    mode: ``'warm'`` (fit once, score everything) or ``'transductive'``
        (fresh fit per series — the paper's protocol).
    batch_size: maximum series per micro-batched forward pass in warm mode.
    """

    def __init__(self, method=None, detector=None, overrides=None,
                 mode="warm", batch_size=32):
        if method is not None and not isinstance(method, str):
            # A spec names the method AND its params; explicit overrides win.
            from ..api import DetectorSpec, PipelineSpec

            if isinstance(method, PipelineSpec):
                method = method.detector
            if not isinstance(method, DetectorSpec):
                raise TypeError(
                    "method must be a registry name or a spec, got %r" % (method,)
                )
            overrides = {**method.params, **(overrides or {})}
            method = method.method
        if (method is None) == (detector is None):
            raise ValueError("pass exactly one of method= or detector=")
        if mode not in ("warm", "transductive"):
            raise ValueError("mode must be 'warm' or 'transductive', got %r" % mode)
        self.method = method
        self.overrides = dict(overrides or {})
        self.mode = mode
        self.batch_size = max(int(batch_size), 1)
        # The prototype is built lazily: transductive mode only ever uses
        # fresh clones, so constructing (and discarding) a prototype per
        # engine would be dead work in the suite runner's per-method loop.
        self._detector = detector
        self._user_supplied = detector is not None
        self._fitted = False
        if detector is not None:
            self._fitted = self._refresh_fitted(detector)

    @property
    def detector(self):
        """The prototype detector (built on first access for method=)."""
        if self._detector is None:
            self._detector = self._build()
        return self._detector

    def _refresh_fitted(self, detector):
        # Auto-fit-on-first-series only applies to detectors the engine
        # built itself (and to RAE/RDAE instances that are verifiably
        # unfitted).  A user-supplied instance of any other type is taken
        # as-is: silently refitting it on the first scored series would
        # discard whatever state the caller trained into it.
        if isinstance(detector, (RAE, RDAE)):
            return detector.is_fitted()
        return self._user_supplied

    def _build(self):
        return make_detector(self.method, **self.overrides)

    def _fresh(self):
        """A new unfitted detector for the transductive path."""
        if self.method is not None:
            return self._build()
        return copy.deepcopy(self._detector)

    def fit(self, reference_series):
        """Warm-mode setup: fit the prototype detector once; returns self."""
        self.detector.fit(reference_series)
        self._fitted = True
        return self

    # ------------------------------------------------------------------ #
    def save(self, path):
        """Persist the fitted prototype (RAE/RDAE) for later warm starts."""
        save_detector(self.detector, path)
        return path

    @classmethod
    def from_saved(cls, path, batch_size=32):
        """Rebuild a warm engine from a ``.npz`` written by :meth:`save`."""
        engine = cls(detector=load_detector(path), mode="warm",
                     batch_size=batch_size)
        engine._fitted = True
        return engine

    # ------------------------------------------------------------------ #
    @classmethod
    def from_spec(cls, spec, mode="warm", batch_size=32):
        """Build an engine from a :class:`repro.api.DetectorSpec`/:class:`repro.api.PipelineSpec`."""
        return cls(method=spec, mode=mode, batch_size=batch_size)

    def _warm_scores(self, series_list):
        det = self.detector
        if "transductive" in detector_capabilities(det):
            # score() would return the reference series' frozen scores for
            # every input; warm serving cannot be correct for this family.
            raise ValueError(
                "%s is transductive-only (its score() ignores the passed "
                "series); use mode='transductive' or stream it with "
                "repro.stream.StreamScorer" % type(det).__name__
            )
        if not self._fitted:
            self.fit(series_list[0])
        arrays = [np.asarray(getattr(s, "values", s), dtype=np.float64)
                  for s in series_list]
        arrays = [a[:, None] if a.ndim == 1 else a for a in arrays]
        out = [None] * len(arrays)
        if isinstance(det, (RAE, RDAE)):
            # Group same-length series and push each group through one
            # forward pass (further chunked by batch_size).
            shapes = [arr.shape for arr in arrays]
            for chunk in iter_key_batches(shapes, self.batch_size):
                batch = np.stack([arrays[i] for i in chunk])
                scores = batched_score_new(det, batch)
                for row, i in enumerate(chunk):
                    out[i] = scores[row]
        else:
            scorer = getattr(det, "score_new", det.score)
            for i, arr in enumerate(arrays):
                out[i] = scorer(arr)
        return out

    def _transductive_scores(self, series_list):
        return [self._fresh().fit_score(series) for series in series_list]

    def score_many(self, series_list):
        """Per-observation scores for each series, in input order."""
        series_list = list(series_list)
        if not series_list:
            return []
        if self.mode == "warm":
            return self._warm_scores(series_list)
        return self._transductive_scores(series_list)

    def evaluate(self, dataset, reference=None):
        """Mean (PR-AUC, ROC-AUC) over a dataset's evaluable series.

        Mirrors :func:`repro.eval.evaluate_on_dataset`: series whose labels
        are single-class are skipped, and a dataset with no evaluable series
        raises ``ValueError``.

        A warm engine must be fitted **before** evaluation (or be handed an
        explicit ``reference`` series to fit on here).  ``score_many``'s
        fit-on-first-series convenience is deliberately not applied: it
        would train on ``dataset[0]`` and then score it, leaking the first
        evaluated series into its own training set and inflating its AUC.
        """
        evaluable = [ts for ts in dataset
                     if 0 < ts.labels.sum() < ts.labels.size]
        if not evaluable:
            raise ValueError(
                "dataset %r has no evaluable series" % getattr(dataset, "name", dataset)
            )
        if self.mode == "warm" and not self._fitted:
            if reference is None:
                raise RuntimeError(
                    "evaluate() on an unfitted warm engine would train on the "
                    "first evaluated series and then score it (evaluation "
                    "leakage); call fit(reference_series) first, pass "
                    "reference=, or use mode='transductive'"
                )
            self.fit(reference)
        score_rows = self.score_many(evaluable)
        prs = [pr_auc(ts.labels, scores)
               for ts, scores in zip(evaluable, score_rows)]
        rocs = [roc_auc(ts.labels, scores)
                for ts, scores in zip(evaluable, score_rows)]
        return float(np.mean(prs)), float(np.mean(rocs))
