"""Render SuiteResults in the layout of the paper's Tables II and III."""

from __future__ import annotations

__all__ = ["render_table", "render_sweep"]


def render_table(result, metric="pr", title=None, highlight_best=True):
    """Format an accuracy grid as fixed-width text.

    Rows are datasets (plus the "Avg." row), columns are methods; the best
    value per row is marked with ``*`` like the paper's bold face.
    """
    grid = getattr(result, metric)
    methods = result.methods
    lines = []
    if title:
        lines.append(title)
    header = "%-6s" % "" + "".join("%9s" % m for m in methods)
    lines.append(header)

    def row(name, values):
        best = max(values.values()) if highlight_best else None
        cells = []
        for m in methods:
            mark = "*" if highlight_best and values[m] == best else " "
            cells.append("%8.3f%s" % (values[m], mark))
        return "%-6s" % name + "".join(cells)

    for dataset in result.datasets:
        lines.append(row(dataset, grid[dataset]))
    lines.append(row("Avg.", result.averages(metric)))
    return "\n".join(lines)


def render_sweep(sweep, value_label="value", title=None):
    """Format a {method: {x: score}} sweep (the Fig. 6-15 style results)."""
    lines = []
    if title:
        lines.append(title)
    methods = list(sweep)
    xs = sorted({x for curve in sweep.values() for x in curve})
    lines.append("%-12s" % value_label + "".join("%10s" % m for m in methods))
    for x in xs:
        cells = []
        for m in methods:
            v = sweep[m].get(x)
            cells.append("%10s" % ("-" if v is None else "%.3f" % v))
        label = "%.4g" % x if isinstance(x, float) else str(x)
        lines.append("%-12s" % label + "".join(cells))
    return "\n".join(lines)
