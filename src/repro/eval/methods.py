"""Method registry: every detector of Tables II/III with default configs and
hyperparameter search spaces.

Default values follow the paper's median-protocol outcomes scaled to a
laptop-sized NumPy substrate (fewer kernels and epochs than the GPU
originals; DESIGN.md §2 documents the substitution).  Search spaces mirror
the ranges of Section V-A.
"""

from __future__ import annotations

from ..baselines import (
    CNNAE,
    LOF,
    RDA,
    RNNAE,
    BeatGAN,
    Donut,
    EMADetector,
    IsolationForest,
    MatrixProfile,
    OmniAnomaly,
    OneClassSVM,
    RandNet,
    RSSADetector,
    SSADetector,
    STLDetector,
    TransformerAE,
)
from ..core import NRAE, NRDAE, RAE, RDAE

__all__ = ["METHODS", "SEARCH_SPACES", "make_detector", "available_methods",
           "NEURAL_METHODS", "AE_METHODS", "UnknownMethodError"]


class UnknownMethodError(ValueError, KeyError):
    """Raised for a method name absent from the registry.

    Subclasses both ``ValueError`` (it is an invalid argument) and
    ``KeyError`` (the historical behaviour of a plain dict lookup), so both
    idioms of catching it keep working.
    """

    def __str__(self):
        # KeyError.__str__ repr-quotes the message; report it verbatim.
        return self.args[0] if self.args else ""

# Paper's column order in Tables II and III (plus RSSA and the non-robust
# variants used by the sensitivity studies).
METHODS = {
    "OCSVM": lambda **kw: OneClassSVM(**{"window": 16, "iterations": 150, **kw}),
    "LOF": lambda **kw: LOF(**{"n_neighbors": 20, "context": 3, **kw}),
    "ISF": lambda **kw: IsolationForest(**{"n_trees": 50, "subsample": 128, **kw}),
    "EMA": lambda **kw: EMADetector(**{"pattern_size": 20, **kw}),
    "STL": lambda **kw: STLDetector(**kw),
    "SSA": lambda **kw: SSADetector(**{"n_components": 3, **kw}),
    "MP": lambda **kw: MatrixProfile(**{"pattern_size": 20, **kw}),
    "RN": lambda **kw: RandNet(**{"n_models": 5, "epochs": 8, **kw}),
    "CNNAE": lambda **kw: CNNAE(**{"epochs": 10, **kw}),
    "RNNAE": lambda **kw: RNNAE(**{"epochs": 6, "hidden": 16, **kw}),
    "BGAN": lambda **kw: BeatGAN(**{"epochs": 8, **kw}),
    "DONUT": lambda **kw: Donut(**{"epochs": 10, **kw}),
    "OMNI": lambda **kw: OmniAnomaly(**{"epochs": 5, "hidden": 16, **kw}),
    "TAE": lambda **kw: TransformerAE(**{"epochs": 6, **kw}),
    "RDA": lambda **kw: RDA(**{"outer_iterations": 4, "inner_epochs": 4, **kw}),
    "RAE": lambda **kw: RAE(**{"max_iterations": 25, **kw}),
    "RDAE": lambda **kw: RDAE(
        **{
            "window": 50,
            "max_outer": 3,
            "inner_iterations": 6,
            "series_iterations": 6,
            **kw,
        }
    ),
    "RSSA": lambda **kw: RSSADetector(**kw),
    "N-RAE": lambda **kw: NRAE(**{"epochs": 25, **kw}),
    "N-RDAE": lambda **kw: NRDAE(**{"window": 50, "epochs": 8, **kw}),
}

# Hyperparameter ranges of Section V-A (values scaled to the NumPy substrate
# where the paper's largest settings would be prohibitively slow).
SEARCH_SPACES = {
    "OCSVM": {"degree": [3, 5, 7, 9, 11], "nu": [0.05, 0.1, 0.2]},
    "LOF": {"n_neighbors": [5, 10, 20, 50, 100]},
    "ISF": {"n_trees": [5, 10, 20, 50, 100]},
    "EMA": {"pattern_size": [5, 10, 20, 50, 100]},
    "STL": {"seasonal": [1, 3, 5, 7, 9]},
    "SSA": {"n_components": [1, 2, 3, 5, 8]},
    "MP": {"pattern_size": [5, 10, 20, 50, 100]},
    "RN": {"n_models": [5, 10, 20], "hidden": [32, 64, 128]},
    "CNNAE": {"kernels": [8, 16, 32], "kernel_size": [3, 5, 7]},
    "RNNAE": {"hidden": [16, 32, 64]},
    "BGAN": {"kernels": [8, 16, 32], "kernel_size": [3, 5, 7]},
    "DONUT": {"hidden": [32, 64, 128], "latent": [4, 8, 16]},
    "OMNI": {"hidden": [16, 32], "latent": [4, 8]},
    "TAE": {"num_heads": [3, 5, 7, 9, 11], "d_model": [16, 32]},
    "RDA": {"lam": [1e-4, 1e-3, 1e-2, 1e-1, 1.0]},
    "RAE": {
        "lam": [1e-4, 1e-3, 1e-2, 1e-1, 1.0],
        "kernels": [8, 16, 32],
        "num_layers": [3, 5, 7],
        "kernel_size": [3, 5, 7],
    },
    "RDAE": {
        "lam1": [1e-4, 1e-3, 1e-2, 1e-1, 1.0],
        "window": [10, 20, 50, 100, 200],
        "kernels": [4, 8, 16],
        "kernel_size": [3, 5, 7],
    },
    "RSSA": {"window": [10, 20, 50, 100, 200]},
}

# Methods with a training loop (the Fig. 18 runtime comparison set).
NEURAL_METHODS = (
    "RN", "CNNAE", "RNNAE", "BGAN", "DONUT", "OMNI", "TAE", "RDA", "RAE", "RDAE",
)

# AE-based methods eligible for the explainability analysis (Fig. 16).
AE_METHODS = ("CNNAE", "RNNAE", "RN", "DONUT", "RDA", "RAE", "RDAE")


def available_methods():
    """Method names in the paper's table order."""
    return list(METHODS)


def make_detector(name, **overrides):
    """Instantiate method ``name`` with defaults merged with ``overrides``.

    A thin shim over :meth:`repro.api.DetectorSpec.build` — the spec is the
    one construction path, so everything built here can equally be
    persisted, validated, or shipped to a serving shard as data.
    """
    from ..api.spec import DetectorSpec

    return DetectorSpec(name, overrides).build()
