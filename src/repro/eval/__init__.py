"""Evaluation harness: method registry, protocol, suite runner, tables."""

from .engine import BatchScoringEngine
from .harness import SuiteResult, run_suite, significance_against_best_baseline
from .methods import (
    AE_METHODS,
    METHODS,
    NEURAL_METHODS,
    SEARCH_SPACES,
    UnknownMethodError,
    available_methods,
    make_detector,
)
from .protocol import (
    TrialResult,
    evaluate_on_dataset,
    random_search_median,
    sample_configurations,
)
from .tables import render_sweep, render_table

__all__ = [
    "METHODS",
    "SEARCH_SPACES",
    "NEURAL_METHODS",
    "AE_METHODS",
    "available_methods",
    "make_detector",
    "UnknownMethodError",
    "BatchScoringEngine",
    "TrialResult",
    "sample_configurations",
    "random_search_median",
    "evaluate_on_dataset",
    "SuiteResult",
    "run_suite",
    "significance_against_best_baseline",
    "render_table",
    "render_sweep",
]
