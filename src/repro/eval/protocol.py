"""The paper's hyperparameter protocol (Section V-A).

Unsupervised detection forbids tuning on labels, so the paper explores each
method's hyperparameter space with random search and reports the *median*
result over the explored configurations — never the best.  This module
implements that protocol with a configurable draw count (the paper uses 200;
benchmarks here use fewer draws on the scaled substrate).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..metrics import pr_auc, roc_auc
from .methods import SEARCH_SPACES, make_detector

__all__ = ["TrialResult", "sample_configurations", "random_search_median",
           "evaluate_on_dataset"]


@dataclasses.dataclass
class TrialResult:
    """Result of one hyperparameter configuration on one dataset."""

    config: dict
    pr: float
    roc: float


def sample_configurations(space, n_draws, rng):
    """Draw ``n_draws`` random combinations from a {name: values} space.

    Duplicate draws are allowed (matching plain random search); an empty
    space yields a single empty configuration.
    """
    if not space:
        return [{}]
    configs = []
    for __ in range(int(n_draws)):
        configs.append({key: values[rng.integers(len(values))]
                        for key, values in space.items()})
    return configs


def evaluate_on_dataset(detector_factory, dataset):
    """Mean PR/ROC of a detector factory over all series of a dataset.

    A fresh detector is built per series (the transductive protocol).
    Series whose labels are single-class are skipped (AUCs undefined).
    """
    prs, rocs = [], []
    for ts in dataset:
        if ts.labels.sum() in (0, ts.labels.size):
            continue
        scores = detector_factory().fit_score(ts)
        prs.append(pr_auc(ts.labels, scores))
        rocs.append(roc_auc(ts.labels, scores))
    if not prs:
        raise ValueError("dataset %r has no evaluable series" % dataset.name)
    return float(np.mean(prs)), float(np.mean(rocs))


def random_search_median(method, dataset, n_draws=5, seed=0, **fixed):
    """Run the median-of-random-search protocol for one method.

    Parameters
    ----------
    method: method name from :mod:`repro.eval.methods`.
    dataset: a :class:`repro.datasets.Dataset`.
    n_draws: random configurations to evaluate (paper: 200).
    fixed: overrides applied to every configuration (e.g. scaled-down
        iteration counts).

    Returns ``(median_trial, all_trials)`` where the median is taken over
    PR-AUC (ties broken toward the lower ROC, matching "median result").
    """
    rng = np.random.default_rng(seed)
    space = SEARCH_SPACES.get(method, {})
    trials = []
    for config in sample_configurations(space, n_draws, rng):
        merged = {**config, **fixed}
        pr, roc = evaluate_on_dataset(
            lambda: make_detector(method, **merged), dataset
        )
        trials.append(TrialResult(config=merged, pr=pr, roc=roc))
    ordered = sorted(trials, key=lambda t: (t.pr, t.roc))
    median = ordered[(len(ordered) - 1) // 2]
    return median, trials
