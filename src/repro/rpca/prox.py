"""Proximal operators used by RPCA and by the RAE/RDAE training loops.

The paper relaxes the ``l0`` sparsity penalty to ``l1`` (Eq. 14) and solves
the sparse sub-problem with a proximal step (PROX in Algorithms 1 and 2).
The proximal operator of ``lam * ||.||_1`` is elementwise soft-thresholding;
the proximal operator of the nuclear norm is singular-value thresholding,
which is what classic RPCA (principal component pursuit) iterates.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "soft_threshold",
    "hard_threshold",
    "singular_value_threshold",
    "group_soft_threshold",
    "apply_prox",
]


def soft_threshold(values, threshold):
    """Elementwise soft-thresholding: ``prox_{threshold * ||.||_1}``.

    ``S(x, t) = sign(x) * max(|x| - t, 0)``.
    """
    values = np.asarray(values, dtype=np.float64)
    return np.sign(values) * np.maximum(np.abs(values) - threshold, 0.0)


def hard_threshold(values, threshold):
    """Elementwise hard-thresholding: ``prox`` of the l0 penalty.

    Keeps entries with ``|x| > threshold`` unchanged and zeroes the rest.
    Used in the l0-vs-l1 ablation (DESIGN.md §6).
    """
    values = np.asarray(values, dtype=np.float64)
    return np.where(np.abs(values) > threshold, values, 0.0)


def apply_prox(values, threshold, kind):
    """Dispatch the PROX step of Algorithms 1/2 by penalty ``kind``.

    Shared by the RAE/RDAE training loops and the streaming scorer so
    fit-time and serve-time thresholding can never drift apart.
    """
    if kind == "l1":
        return soft_threshold(values, threshold)
    if kind == "l0":
        return hard_threshold(values, threshold)
    raise ValueError("prox must be 'l1' or 'l0', got %r" % kind)


def group_soft_threshold(values, threshold, axis=-1):
    """Row/column-group soft-thresholding (prox of the l2,1 norm).

    Shrinks whole groups (e.g. all channels of one observation) toward zero,
    which models outliers that hit every dimension of an observation at once.
    """
    values = np.asarray(values, dtype=np.float64)
    norms = np.linalg.norm(values, axis=axis, keepdims=True)
    scale = np.maximum(1.0 - threshold / np.maximum(norms, 1e-12), 0.0)
    return values * scale


def singular_value_threshold(matrix, threshold):
    """Singular-value thresholding: ``prox`` of ``threshold * ||.||_*``.

    Returns the thresholded matrix and the number of singular values kept
    (the effective rank), which PCP uses to monitor progress.
    """
    u, s, vt = np.linalg.svd(np.asarray(matrix, dtype=np.float64), full_matrices=False)
    s_shrunk = np.maximum(s - threshold, 0.0)
    rank = int(np.count_nonzero(s_shrunk))
    if rank == 0:
        return np.zeros_like(matrix), 0
    return (u[:, :rank] * s_shrunk[:rank]) @ vt[:rank], rank
