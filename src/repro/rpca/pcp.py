"""Robust PCA by Principal Component Pursuit (Candes et al., 2011).

Solves  ``min ||L||_* + lam * ||S||_1   s.t.  M = L + S``  with the inexact
augmented-Lagrange-multiplier / ADMM scheme.  This is the linear ancestor of
the paper's RAE/RDAE (Section II-B) and powers the RSSA baseline, which
replaces the SVD inside Singular Spectrum Analysis with this decomposition.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from .prox import singular_value_threshold, soft_threshold

__all__ = ["PCPResult", "robust_pca"]


@dataclasses.dataclass
class PCPResult:
    """Outcome of principal component pursuit.

    Attributes
    ----------
    low_rank: the recovered low-rank component ``L``.
    sparse: the recovered sparse component ``S``.
    rank: effective rank of ``L`` at termination.
    iterations: number of ADMM iterations run.
    converged: True if the residual dropped below tolerance.
    residuals: per-iteration relative residual ``||M - L - S||_F / ||M||_F``.
    """

    low_rank: np.ndarray
    sparse: np.ndarray
    rank: int
    iterations: int
    converged: bool
    residuals: list


def robust_pca(matrix, lam=None, mu=None, tol=1e-6, max_iter=200):
    """Decompose ``matrix`` into low-rank + sparse parts via inexact ALM.

    Parameters
    ----------
    matrix:
        2D array ``M`` to decompose.
    lam:
        Sparsity weight; defaults to the theoretically-motivated
        ``1 / sqrt(max(m, n))`` of Candes et al.
    mu:
        Augmented-Lagrangian penalty; defaults to ``m * n / (4 * ||M||_1)``.
    tol:
        Relative Frobenius residual for convergence.
    max_iter:
        Iteration cap.
    """
    m_mat = np.asarray(matrix, dtype=np.float64)
    if m_mat.ndim != 2:
        raise ValueError("robust_pca expects a 2D matrix, got %dD" % m_mat.ndim)
    rows, cols = m_mat.shape
    norm_m = np.linalg.norm(m_mat)
    if norm_m == 0.0:
        return PCPResult(
            low_rank=np.zeros_like(m_mat),
            sparse=np.zeros_like(m_mat),
            rank=0,
            iterations=0,
            converged=True,
            residuals=[0.0],
        )
    if lam is None:
        lam = 1.0 / np.sqrt(max(rows, cols))
    if mu is None:
        mu = rows * cols / (4.0 * np.abs(m_mat).sum() + 1e-12)

    low_rank = np.zeros_like(m_mat)
    sparse = np.zeros_like(m_mat)
    dual = np.zeros_like(m_mat)
    rank = 0
    residuals = []
    converged = False
    iteration = 0
    for iteration in range(1, max_iter + 1):
        low_rank, rank = singular_value_threshold(
            m_mat - sparse + dual / mu, 1.0 / mu
        )
        sparse = soft_threshold(m_mat - low_rank + dual / mu, lam / mu)
        residual_mat = m_mat - low_rank - sparse
        dual = dual + mu * residual_mat
        residual = np.linalg.norm(residual_mat) / norm_m
        residuals.append(float(residual))
        if residual < tol:
            converged = True
            break
    return PCPResult(
        low_rank=low_rank,
        sparse=sparse,
        rank=rank,
        iterations=iteration,
        converged=converged,
        residuals=residuals,
    )
