"""Robust Principal Component Analysis substrate (Section II-B of the paper)."""

from .pcp import PCPResult, robust_pca
from .prox import (
    apply_prox,
    group_soft_threshold,
    hard_threshold,
    singular_value_threshold,
    soft_threshold,
)

__all__ = [
    "PCPResult",
    "robust_pca",
    "soft_threshold",
    "hard_threshold",
    "apply_prox",
    "group_soft_threshold",
    "singular_value_threshold",
]
