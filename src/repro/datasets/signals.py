"""Reusable clean-signal building blocks for the surrogate generators."""

from __future__ import annotations

import numpy as np

__all__ = [
    "sinusoid_mix",
    "square_cycle",
    "sawtooth",
    "ar_process",
    "random_walk",
    "ecg_beat_train",
    "trajectory_2d",
]


def sinusoid_mix(length, periods, amplitudes=None, phases=None, rng=None):
    """Sum of sinusoids: the seasonal backbone of most surrogates."""
    t = np.arange(length, dtype=np.float64)
    periods = np.atleast_1d(periods).astype(np.float64)
    if amplitudes is None:
        amplitudes = np.ones_like(periods)
    if phases is None:
        phases = (
            np.zeros_like(periods)
            if rng is None
            else rng.uniform(0, 2 * np.pi, size=periods.size)
        )
    out = np.zeros(length)
    for period, amp, phase in zip(periods, np.atleast_1d(amplitudes), np.atleast_1d(phases)):
        out += amp * np.sin(2 * np.pi * t / period + phase)
    return out


def square_cycle(length, period, duty=0.5, phase=0.0, smooth=2):
    """Smoothed square wave — robot pick-and-place actuator cycles (GD)."""
    t = np.arange(length, dtype=np.float64)
    raw = ((t / period + phase) % 1.0 < duty).astype(np.float64) * 2.0 - 1.0
    if smooth > 1:
        kernel = np.ones(smooth) / smooth
        raw = np.convolve(raw, kernel, mode="same")
    return raw


def sawtooth(length, period, phase=0.0):
    """Sawtooth ramp — conveyor-belt positions in the HSS surrogate."""
    t = np.arange(length, dtype=np.float64)
    return 2.0 * ((t / period + phase) % 1.0) - 1.0


def ar_process(length, coeffs, noise_scale=1.0, rng=None):
    """Autoregressive process ``x_t = sum_i coeffs[i] x_{t-i-1} + eps`` (SYN)."""
    rng = np.random.default_rng(0) if rng is None else rng
    coeffs = np.atleast_1d(coeffs).astype(np.float64)
    order = coeffs.size
    burn = 5 * order + 50
    eps = rng.standard_normal(length + burn) * noise_scale
    x = np.zeros(length + burn)
    for t in range(order, length + burn):
        x[t] = coeffs @ x[t - order : t][::-1] + eps[t]
    return x[burn:]


def random_walk(length, step_scale=1.0, rng=None):
    """Gaussian random walk — exchange-rate style NAB channel."""
    rng = np.random.default_rng(0) if rng is None else rng
    return np.cumsum(rng.standard_normal(length) * step_scale)


def _gaussian_bump(t, centre, width, height):
    return height * np.exp(-0.5 * ((t - centre) / width) ** 2)


def ecg_beat_train(length, beat_period=60, rng=None, jitter=0.02):
    """Quasi-periodic PQRST-like waveform (ECG surrogate).

    Each beat is a sum of five Gaussian bumps (P, Q, R, S, T); beat-to-beat
    period jitter makes the series realistically non-stationary.
    """
    rng = np.random.default_rng(0) if rng is None else rng
    out = np.zeros(length)
    t = np.arange(length, dtype=np.float64)
    centre = float(beat_period) / 2.0
    while centre < length + beat_period:
        scale = beat_period / 60.0
        for offset, width, height in (
            (-18.0, 3.5, 0.15),   # P
            (-4.0, 1.2, -0.25),   # Q
            (0.0, 1.6, 1.0),      # R
            (4.0, 1.4, -0.35),    # S
            (16.0, 4.5, 0.3),     # T
        ):
            out += _gaussian_bump(t, centre + offset * scale, width * scale, height)
        centre += beat_period * (1.0 + jitter * rng.standard_normal())
    return out


def trajectory_2d(length, harmonics=4, rng=None):
    """Smooth 2D trajectory from a random low-order Fourier series (2D dataset).

    Mimics hand-writing trajectories: closed-ish, smooth, band-limited.
    """
    rng = np.random.default_rng(0) if rng is None else rng
    t = np.linspace(0.0, 2.0 * np.pi, length)
    xy = np.zeros((length, 2))
    for axis in range(2):
        for k in range(1, harmonics + 1):
            amp = rng.standard_normal() / k
            phase = rng.uniform(0, 2 * np.pi)
            xy[:, axis] += amp * np.sin(k * t * rng.integers(1, 4) + phase)
    return xy
