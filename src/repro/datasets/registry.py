"""Dataset registry: load any paper dataset by name with a common signature."""

from __future__ import annotations

from . import generators

__all__ = ["DATASET_GENERATORS", "available_datasets", "load_dataset"]

DATASET_GENERATORS = {
    "GD": generators.generate_gd,
    "HSS": generators.generate_hss,
    "ECG": generators.generate_ecg,
    "NAB": generators.generate_nab,
    "S5": generators.generate_s5,
    "2D": generators.generate_2d,
    "SYN": generators.generate_syn,
}


def available_datasets():
    """Names of the seven paper datasets, in the paper's table order."""
    return list(DATASET_GENERATORS)


def load_dataset(name, seed=0, scale=1.0, **kwargs):
    """Generate the surrogate for dataset ``name``.

    Parameters
    ----------
    name: one of :func:`available_datasets` (case-insensitive).
    seed: generator seed — the same seed always yields the same data.
    scale: length multiplier in (0, 1]; benchmarks use small scales.
    kwargs: forwarded to the specific generator (e.g. ``outlier_ratio``
        for SYN, ``num_series`` for S5).
    """
    key = name.upper()
    if key not in DATASET_GENERATORS:
        raise KeyError(
            "unknown dataset %r; available: %s" % (name, ", ".join(DATASET_GENERATORS))
        )
    return DATASET_GENERATORS[key](seed=seed, scale=scale, **kwargs)
