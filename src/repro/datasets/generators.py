"""Surrogate generators for the paper's seven evaluation datasets.

The original data (Kaggle Genesis/HSS dumps, UCR ECG discords, Numenta NAB,
Yahoo S5 Webscope, UCR 2D handwriting, plus the authors' private synthetic
set) cannot be fetched offline.  Each generator below produces seeded
synthetic series matching the published structural statistics of its dataset
— dimensionality, length range, number of series, outlier ratio phi, and the
mix of point + collective outliers (Section V-A, reproduced in DESIGN.md §2).

Every generator accepts ``scale`` in (0, 1] that shrinks series lengths
proportionally, so the full evaluation remains laptop-runnable; the default
lengths match the paper.
"""

from __future__ import annotations

import numpy as np

from . import signals
from .base import Dataset, TimeSeries
from .inject import inject_outliers

__all__ = [
    "generate_gd",
    "generate_hss",
    "generate_ecg",
    "generate_nab",
    "generate_s5",
    "generate_2d",
    "generate_syn",
]


def _length(base, scale, minimum=120):
    return max(int(round(base * scale)), minimum)


def generate_gd(seed=0, scale=1.0):
    """GD surrogate: pick-and-place robot telemetry.

    Paper: 2 series of 20 dims + 3 of 24 dims, 6k-16k observations,
    phi = 0.8%.  Channels are phase-shifted actuator cycles (square-ish
    waves) plus correlated sensor noise.
    """
    rng = np.random.default_rng(seed)
    series = []
    specs = [(20, 6000), (20, 9000), (24, 12000), (24, 14000), (24, 16000)]
    for idx, (dims, base_len) in enumerate(specs):
        length = _length(base_len, scale)
        period = rng.integers(40, 90)
        values = np.empty((length, dims))
        for d in range(dims):
            duty = rng.uniform(0.3, 0.7)
            phase = rng.uniform(0, 1)
            values[:, d] = (
                signals.square_cycle(length, period, duty=duty, phase=phase, smooth=3)
                + 0.05 * rng.standard_normal(length)
            )
        labels = inject_outliers(values, 0.008, rng, collective_share=0.4)
        series.append(TimeSeries(values, labels, name="gd-%d" % idx))
    return Dataset("GD", series)


def generate_hss(seed=0, scale=1.0):
    """HSS surrogate: high-storage-system conveyor/rail positions.

    Paper: 4 series of 20 dims, 19k-25k observations, phi = 16.7%.
    Channels are sawtooth position ramps of four belts and two rails with
    shared timing; the high outlier ratio is dominated by long collective
    segments (stalls and mispositions).
    """
    rng = np.random.default_rng(seed)
    series = []
    for idx in range(4):
        length = _length(rng.integers(19000, 25000), scale)
        dims = 20
        base_period = rng.integers(80, 160)
        values = np.empty((length, dims))
        for d in range(dims):
            group_period = base_period * (1 + d % 3)
            values[:, d] = (
                signals.sawtooth(length, group_period, phase=rng.uniform(0, 1))
                + 0.04 * rng.standard_normal(length)
            )
        labels = inject_outliers(
            values, 0.167, rng, collective_share=0.85, segment_length=(15, 60)
        )
        series.append(TimeSeries(values, labels, name="hss-%d" % idx))
    return Dataset("HSS", series)


def generate_ecg(seed=0, scale=1.0):
    """ECG surrogate: 7 patients, 2-dim electrocardiograms.

    Paper: 3,750-5,400 observations each, phi = 4.9%.  Two correlated leads
    of a quasi-periodic PQRST train; anomalies are arrhythmic beats
    (collective) and electrode spikes (point).
    """
    rng = np.random.default_rng(seed)
    series = []
    for idx in range(7):
        length = _length(rng.integers(3750, 5400), scale)
        beat = rng.integers(50, 75)
        lead1 = signals.ecg_beat_train(length, beat_period=beat, rng=rng)
        lead2 = 0.6 * np.roll(lead1, rng.integers(1, 5)) + signals.ecg_beat_train(
            length, beat_period=beat, rng=rng, jitter=0.03
        ) * 0.4
        values = np.stack([lead1, lead2], axis=1)
        values += 0.03 * rng.standard_normal(values.shape)
        labels = inject_outliers(
            values, 0.049, rng, collective_share=0.6,
            segment_length=(int(beat * 0.5), int(beat * 1.5)),
        )
        series.append(TimeSeries(values, labels, name="ecg-%d" % idx))
    return Dataset("ECG", series)


def generate_nab(seed=0, scale=1.0, series_per_domain=2):
    """NAB surrogate: six univariate streaming domains.

    Paper: ~10 series per domain, 5k-20k observations, phi = 9.8%.  One
    generator per domain: urban traffic (daily double-peak), temperature
    (slow seasonal drift), CPU load (bursty plateaus), Twitter volume
    (heavy-tailed counts), exchange rate (random walk), ad clicks
    (weekly + daily mix).
    """
    rng = np.random.default_rng(seed)
    series = []

    def traffic(length):
        day = 288
        base = signals.sinusoid_mix(length, [day, day / 2], [1.0, 0.6], rng=rng)
        return base + 0.15 * rng.standard_normal(length)

    def temperature(length):
        return (
            signals.sinusoid_mix(length, [length / 3], [2.0], rng=rng)
            + signals.sinusoid_mix(length, [144], [0.5], rng=rng)
            + 0.1 * rng.standard_normal(length)
        )

    def cpu(length):
        base = np.abs(signals.ar_process(length, [0.85], 0.3, rng))
        plateau = (signals.square_cycle(length, 400, duty=0.3) > 0) * 1.5
        return base + plateau + 0.1 * rng.standard_normal(length)

    def twitter(length):
        lam = 2.0 + 1.5 * (1 + np.sin(2 * np.pi * np.arange(length) / 288))
        return rng.poisson(lam).astype(np.float64)

    def exchange(length):
        return signals.random_walk(length, 0.05, rng)

    def clicks(length):
        return (
            signals.sinusoid_mix(length, [288, 2016], [1.0, 0.8], rng=rng)
            + 0.2 * rng.standard_normal(length)
        )

    domains = [
        ("traffic", traffic),
        ("temperature", temperature),
        ("cpu", cpu),
        ("twitter", twitter),
        ("exchange", exchange),
        ("clicks", clicks),
    ]
    for domain, make in domains:
        for j in range(series_per_domain):
            length = _length(rng.integers(5000, 20000), scale)
            values = make(length)[:, None]
            labels = inject_outliers(values, 0.098, rng, collective_share=0.5)
            series.append(TimeSeries(values, labels, name="nab-%s-%d" % (domain, j)))
    return Dataset("NAB", series)


def generate_s5(seed=0, scale=1.0, num_series=8, noise=0.1,
                magnitude=(3.0, 8.0)):
    """S5 surrogate: Yahoo service-workload KPIs.

    Paper: ~100 series per benchmark, ~1,400 observations, phi = 0.9%.
    Seasonal sinusoid mixes with linear trends and change-free noise,
    matching the A1/A2 benchmark style; few, sharp outliers.

    ``noise`` and ``magnitude`` tune difficulty: sensitivity benchmarks use
    noisier series with subtler outliers so accuracy curves do not saturate.
    """
    rng = np.random.default_rng(seed)
    series = []
    for idx in range(num_series):
        length = _length(1400, scale)
        t = np.arange(length)
        period = rng.integers(24, 170)
        values = (
            signals.sinusoid_mix(
                length,
                [period, period / 2, period * 4],
                [1.0, rng.uniform(0.2, 0.6), rng.uniform(0.2, 0.8)],
                rng=rng,
            )
            + rng.uniform(-0.5, 0.5) * (t / length)  # mild trend
            + noise * rng.standard_normal(length)
        )[:, None]
        labels = inject_outliers(
            values, 0.009, rng, collective_share=0.3, segment_length=(3, 8),
            magnitude=magnitude,
        )
        series.append(TimeSeries(values, labels, name="s5-%d" % idx))
    return Dataset("S5", series)


def generate_2d(seed=0, scale=1.0):
    """2D surrogate: handwriting trajectories.

    Paper: 7 sets of 3 series, ~1,000 observations, 2 dims, phi = 39.2%.
    Smooth Fourier trajectories; the extreme outlier ratio comes from long
    anomalous strokes (collective segments).
    """
    rng = np.random.default_rng(seed)
    series = []
    for set_idx in range(7):
        for rep in range(3):
            length = _length(1000, scale)
            values = signals.trajectory_2d(length, harmonics=4, rng=rng)
            values += 0.01 * rng.standard_normal(values.shape)
            labels = inject_outliers(
                values, 0.392, rng, collective_share=0.9, segment_length=(20, 80)
            )
            series.append(
                TimeSeries(values, labels, name="2d-%d-%d" % (set_idx, rep))
            )
    return Dataset("2D", series)


def generate_syn(seed=0, scale=1.0, outlier_ratio=0.05, num_series=10):
    """SYN: the authors' fully synthetic dataset, reimplemented faithfully.

    Paper: 10 univariate series of 2,000 observations generated from
    auto-regressive processes or sin/cos bases, with injected outliers at
    phi = 5% (variable in the Fig. 12 sweep via ``outlier_ratio``).
    """
    rng = np.random.default_rng(seed)
    series = []
    for idx in range(num_series):
        length = _length(2000, scale)
        if idx % 2 == 0:
            values = signals.ar_process(
                length, [rng.uniform(0.5, 0.9), rng.uniform(-0.3, 0.2)], 0.5, rng
            )
        else:
            period = rng.integers(30, 200)
            values = signals.sinusoid_mix(
                length,
                [period, period / 3],
                [1.0, rng.uniform(0.3, 0.7)],
                rng=rng,
            ) + 0.1 * rng.standard_normal(length)
        values = values[:, None]
        labels = inject_outliers(
            values, outlier_ratio, rng, collective_share=0.4, segment_length=(4, 12)
        )
        series.append(TimeSeries(values, labels, name="syn-%d" % idx))
    return Dataset("SYN", series)
