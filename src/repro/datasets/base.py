"""Dataset containers shared by generators, the harness, and benchmarks."""

from __future__ import annotations

import dataclasses

import numpy as np

__all__ = ["TimeSeries", "Dataset"]


@dataclasses.dataclass
class TimeSeries:
    """One labelled multivariate time series.

    Attributes
    ----------
    values: array ``(C, D)`` of observations.
    labels: array ``(C,)`` of {0, 1} ground-truth outlier flags.  Labels are
        used only for evaluation, never during training (Section V-A).
    name: identifier within the parent dataset.
    """

    values: np.ndarray
    labels: np.ndarray
    name: str = ""

    def __post_init__(self):
        self.values = np.asarray(self.values, dtype=np.float64)
        if self.values.ndim == 1:
            self.values = self.values[:, None]
        self.labels = np.asarray(self.labels, dtype=np.int64).ravel()
        if self.labels.shape[0] != self.values.shape[0]:
            raise ValueError(
                "labels length %d != series length %d"
                % (self.labels.shape[0], self.values.shape[0])
            )

    @property
    def length(self):
        return self.values.shape[0]

    @property
    def dims(self):
        return self.values.shape[1]

    @property
    def outlier_ratio(self):
        """Fraction of observations labelled as outliers (paper's phi)."""
        return float(self.labels.mean())


@dataclasses.dataclass
class Dataset:
    """A named collection of labelled series (one paper dataset)."""

    name: str
    series: list

    def __iter__(self):
        return iter(self.series)

    def __len__(self):
        return len(self.series)

    def __getitem__(self, index):
        return self.series[index]

    @property
    def outlier_ratio(self):
        total = sum(ts.length for ts in self.series)
        outliers = sum(int(ts.labels.sum()) for ts in self.series)
        return outliers / max(total, 1)

    def summary(self):
        """One-line description used by examples and the harness."""
        lengths = [ts.length for ts in self.series]
        dims = sorted({ts.dims for ts in self.series})
        return (
            "%s: %d series, length %d-%d, dims %s, outlier ratio %.1f%%"
            % (
                self.name,
                len(self.series),
                min(lengths),
                max(lengths),
                "/".join(map(str, dims)),
                100.0 * self.outlier_ratio,
            )
        )
