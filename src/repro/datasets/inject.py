"""Outlier injection into clean synthetic series.

All paper datasets "contain both point and collective outliers"
(Section V-A).  The injector plants both kinds at a requested ratio and
returns exact ground-truth labels:

* point outliers — additive spikes of several signal standard deviations on
  a random subset of dimensions;
* collective outliers — contiguous segments replaced by a level shift, a
  noise burst, or a flatline (the classic collective-anomaly archetypes).
"""

from __future__ import annotations

import numpy as np

__all__ = ["inject_outliers", "inject_point_outliers", "inject_collective_outliers"]


def inject_point_outliers(values, labels, count, rng, magnitude=(3.0, 8.0),
                          dim_fraction=0.6):
    """Add ``count`` spike outliers in place; flips the matching labels."""
    length, dims = values.shape
    scale = np.maximum(values.std(axis=0), 1e-3)
    free = np.flatnonzero(labels == 0)
    if free.size == 0 or count <= 0:
        return
    chosen = rng.choice(free, size=min(count, free.size), replace=False)
    for t in chosen:
        hit = rng.random(dims) < dim_fraction
        if not hit.any():
            hit[rng.integers(dims)] = True
        sign = rng.choice([-1.0, 1.0], size=dims)
        size = rng.uniform(*magnitude, size=dims)
        values[t, hit] += (sign * size * scale)[hit]
        labels[t] = 1


def inject_collective_outliers(values, labels, total_points, rng,
                               segment_length=(5, 25)):
    """Plant contiguous anomalous segments totalling ``total_points`` points."""
    length, dims = values.shape
    scale = np.maximum(values.std(axis=0), 1e-3)
    budget = int(total_points)
    attempts = 0
    while budget > 0 and attempts < 200:
        attempts += 1
        seg = int(rng.integers(segment_length[0], segment_length[1] + 1))
        seg = min(seg, budget) if budget >= segment_length[0] else budget
        seg = max(seg, 2)
        start = int(rng.integers(0, max(length - seg, 1)))
        window = slice(start, start + seg)
        if labels[window].any():
            continue
        kind = rng.choice(["shift", "burst", "flatline"])
        if kind == "shift":
            shift = rng.uniform(2.5, 6.0, size=dims) * rng.choice([-1, 1], size=dims)
            values[window] += shift * scale
        elif kind == "burst":
            values[window] += rng.standard_normal((seg, dims)) * 4.0 * scale
        else:  # flatline at an offset level
            values[window] = values[start] + rng.uniform(1.5, 3.0) * scale
        labels[window] = 1
        budget -= seg
    return


def inject_outliers(values, ratio, rng, collective_share=0.5,
                    segment_length=(5, 25), magnitude=(3.0, 8.0)):
    """Inject point + collective outliers at ``ratio`` of the observations.

    Parameters
    ----------
    values: array ``(C, D)`` — modified *in place* (pass a copy to keep the
        clean version, as the SYN generator does).
    ratio: target fraction of labelled observations.
    collective_share: fraction of the outlier budget spent on segments.

    Returns the label array ``(C,)``.
    """
    values = np.asarray(values, dtype=np.float64)
    length = values.shape[0]
    labels = np.zeros(length, dtype=np.int64)
    total = int(round(ratio * length))
    if total <= 0:
        return labels
    collective_budget = int(round(total * collective_share))
    inject_collective_outliers(
        values, labels, collective_budget, rng, segment_length=segment_length
    )
    remaining = total - int(labels.sum())
    inject_point_outliers(values, labels, remaining, rng, magnitude=magnitude)
    return labels
