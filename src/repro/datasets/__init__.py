"""Surrogate datasets reproducing the paper's evaluation corpora."""

from .base import Dataset, TimeSeries
from .generators import (
    generate_2d,
    generate_ecg,
    generate_gd,
    generate_hss,
    generate_nab,
    generate_s5,
    generate_syn,
)
from .inject import inject_collective_outliers, inject_outliers, inject_point_outliers
from .registry import DATASET_GENERATORS, available_datasets, load_dataset

__all__ = [
    "Dataset",
    "TimeSeries",
    "inject_outliers",
    "inject_point_outliers",
    "inject_collective_outliers",
    "generate_gd",
    "generate_hss",
    "generate_ecg",
    "generate_nab",
    "generate_s5",
    "generate_2d",
    "generate_syn",
    "DATASET_GENERATORS",
    "available_datasets",
    "load_dataset",
]
