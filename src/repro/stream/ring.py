"""A contiguous-view ring buffer for streaming observations.

The buffer stores each row twice, ``capacity`` slots apart, so the window of
the most recent ``size`` rows is always a contiguous slice of the backing
array — ``view()`` is O(1) and copy-free, which lets the scoring paths hand
the live window straight to NumPy without re-assembling it per arrival.
"""

from __future__ import annotations

import numpy as np

__all__ = ["RingBuffer"]


class RingBuffer:
    """Fixed-capacity FIFO of ``(dims,)`` observations with O(1) appends."""

    def __init__(self, capacity, dims=1):
        self.capacity = int(capacity)
        self.dims = int(dims)
        if self.capacity < 1:
            raise ValueError("capacity must be >= 1")
        self._data = np.zeros((2 * self.capacity, self.dims))
        self._total = 0

    def __len__(self):
        return min(self._total, self.capacity)

    @property
    def total(self):
        """Observations ever pushed (including ones already evicted)."""
        return self._total

    @property
    def full(self):
        return self._total >= self.capacity

    def append(self, obs):
        """Push one observation (scalar, ``(dims,)``, or ``(1, dims)``)."""
        row = np.asarray(obs, dtype=np.float64).reshape(-1)
        if row.shape[0] != self.dims:
            raise ValueError("observation has %d dims, expected %d"
                             % (row.shape[0], self.dims))
        slot = self._total % self.capacity
        self._data[slot] = row
        self._data[slot + self.capacity] = row
        self._total += 1
        return self

    def extend(self, series):
        """Push every row of a ``(n, dims)`` (or ``(n,)``) chunk."""
        arr = np.asarray(series, dtype=np.float64)
        if arr.ndim == 1:
            arr = arr[:, None]
        if arr.ndim != 2 or arr.shape[1] != self.dims:
            raise ValueError("chunk must be (n, %d), got %s"
                             % (self.dims, arr.shape))
        # Only the last `capacity` rows of a large chunk can survive.
        if arr.shape[0] >= self.capacity:
            skipped = arr.shape[0] - self.capacity
            self._total += skipped
            arr = arr[skipped:]
        slot = self._total % self.capacity
        first = min(arr.shape[0], self.capacity - slot)
        self._data[slot : slot + first] = arr[:first]
        self._data[slot + self.capacity : slot + self.capacity + first] = arr[:first]
        rest = arr.shape[0] - first
        if rest:
            self._data[:rest] = arr[first:]
            self._data[self.capacity : self.capacity + rest] = arr[first:]
        self._total += arr.shape[0]
        return self

    def load(self, rows, total):
        """Reset to exactly the retained window of a live buffer.

        ``rows`` is the window content oldest-first (what :meth:`view`
        returned at save time) and ``total`` the observations the live
        buffer had ever seen.  The rows are written at the same slots the
        live buffer held them in, so a restored buffer is indistinguishable
        from one that never stopped — ``view``, ``total``, eviction order,
        and warmup accounting all line up.
        """
        arr = np.asarray(rows, dtype=np.float64)
        if arr.ndim == 1:
            arr = arr[:, None]
        if arr.ndim != 2 or (arr.size and arr.shape[1] != self.dims):
            raise ValueError("rows must be (n, %d), got %s"
                             % (self.dims, arr.shape))
        total = int(total)
        size = arr.shape[0]
        if size != min(total, self.capacity):
            raise ValueError(
                "a buffer that saw %d observations retains %d rows, got %d"
                % (total, min(total, self.capacity), size)
            )
        self._data[:] = 0.0
        self._total = total
        if size:
            slots = (total - size + np.arange(size)) % self.capacity
            self._data[slots] = arr
            self._data[slots + self.capacity] = arr
        return self

    def view(self):
        """The current window, oldest-first, as a read-only ``(size, dims)`` view."""
        size = len(self)
        start = (self._total - size) % self.capacity
        out = self._data[start : start + size]
        out.flags.writeable = False
        return out
