"""Streaming inference: ring-buffered incremental scoring of live series.

Converts the repo's one-shot transductive detectors into a servable scoring
engine: :class:`RingBuffer` holds the live window with copy-free views,
:class:`StreamScorer` scores each arrival in work bounded by the window size
(backed by :class:`repro.core.ScoringSession` for the RAE/RDAE warm paths),
and :class:`repro.eval.BatchScoringEngine` amortises model setup across many
series.  For serving many concurrent streams behind one ingestion queue,
see :class:`repro.serve.StreamRouter`.
"""

from .ring import RingBuffer
from .scorer import StreamScorer

__all__ = ["RingBuffer", "StreamScorer"]
