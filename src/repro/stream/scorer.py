"""StreamScorer: continuous scoring of arriving observations.

Wraps any fitted :class:`repro.baselines.BaseDetector` and scores each new
point over a ring-buffered sliding window, so the per-arrival cost is
bounded by the window size instead of growing with the stream.  Three
scoring paths cover the whole detector zoo:

``score_new``
    Detectors that score unseen data with trained state (RAE, RDAE) are
    served through :class:`repro.core.ScoringSession`, which keeps the
    scaler, the AE forward state, and — for the lagged-matrix path — an
    incrementally-updated Hankel embedding warm between arrivals.
``score``
    Detectors whose ``score`` evaluates the passed series against fitted
    state (LOF, OCSVM, isolation forest, the windowed neural baselines).
``refit``
    Transductive detectors whose ``score`` ignores its argument (RSSA) or
    that carry no reusable state: the paper's ``fit_score`` protocol is
    re-applied to the live window with a fresh clone per arrival.
"""

from __future__ import annotations

import copy

import numpy as np

from ..baselines.base import detector_capabilities
from .ring import RingBuffer

__all__ = ["StreamScorer"]


class StreamScorer:
    """Score a stream point-by-point with a fitted detector.

    Parameters
    ----------
    detector: a fitted detector (or, for ``refit`` mode, a configured one —
        the clone is refitted on the window anyway).  Also accepts any
        construction handle :func:`repro.api.as_detector` understands — a
        :class:`repro.api.DetectorSpec`, :class:`repro.api.PipelineSpec`,
        spec-shaped dict, or registry method name — which builds the
        detector here (unfitted; fit it or use ``refit`` mode).
    window: sliding-window capacity; per-arrival work is bounded by it.
    min_points: total arrivals (including :meth:`seed` history) required
        before scoring starts; chunks ingested wholly before that threshold
        score 0.0 (no anomaly evidence yet) and run **no** forward pass.
        The threshold is counted on :attr:`total`, never on the retained
        window size, so both scoring paths agree even when ``min_points``
        exceeds the window.  The chunk that crosses the threshold scores
        all of its retained points — chunked ingestion gives early points
        more context, exactly as documented for :meth:`push_many`.
    mode: ``'auto'`` (default), ``'score_new'``, ``'score'``, or ``'refit'``.
        ``'auto'`` picks ``score_new`` when the detector defines it, the
        refit protocol for known transductive-only detectors, and ``score``
        otherwise.
    programs: optional :class:`repro.core.InferencePrograms` compiled
        score-forward cache, shared across a router's shards.  ``None``
        keeps every forward eager; scores are bit-identical either way.
    """

    def __init__(self, detector, window=256, min_points=2, mode="auto",
                 programs=None):
        from ..api import as_detector

        detector = as_detector(detector)
        self.detector = detector
        self.programs = programs
        self.window = int(window)
        self.min_points = max(int(min_points), 2)
        if self.window < 2:
            raise ValueError("window must be >= 2")
        if mode not in ("auto", "score_new", "score", "refit"):
            raise ValueError("mode must be auto/score_new/score/refit, got %r" % mode)
        if mode == "auto":
            caps = detector_capabilities(detector)
            if "warm_startable" in caps:
                mode = "score_new"
            elif "transductive" in caps:
                # score() would return frozen fit-time scores regardless of
                # the window content; the only correct streaming protocol is
                # refitting a clone on the live window.
                mode = "refit"
            else:
                mode = "score"
        self.mode = mode
        self._session = None
        self._ring = None

    def _ensure_state(self, dims):
        if self._session is not None or self._ring is not None:
            return
        if self.mode == "score_new":
            from ..core.scoring import ScoringSession

            self._session = ScoringSession(
                self.detector, window=self.window, programs=self.programs
            )
        else:
            self._ring = RingBuffer(self.window, dims)

    # ------------------------------------------------------------------ #
    def _window_scores(self):
        """Score every observation of the current window."""
        arr = np.asarray(self._ring.view())
        if self.mode == "refit":
            return copy.deepcopy(self.detector).fit_score(arr)
        return self.detector.score(arr)

    def push(self, point):
        """Ingest one observation, return its outlier score (float)."""
        row = np.asarray(point, dtype=np.float64).reshape(1, -1)
        return float(self.push_many(row)[0])

    def push_many(self, points):
        """Ingest a chunk, return one score per point (micro-batched).

        The whole chunk is scored from a single pass over the updated
        window, which amortises model setup across arrivals; chunk points
        may therefore see slightly more context than with point-by-point
        ``push``.  On the session path the pass is a receptive-field-
        bounded *tail* forward whenever the fitted architecture reports
        one (see :meth:`repro.core.ScoringSession.last_scores`): the
        per-chunk cost is then O(receptive field + chunk), not O(window),
        with scores bit-identical to a full re-forward.

        A chunk larger than the window evicts its own oldest points before
        scoring runs; those evicted points are reported as 0.0 (no
        evidence), the same convention as the warmup phase.  This is the
        intended idiom for seeding a scorer with history — keep live
        chunks at or below the window size to score every arrival.
        """
        n, needs_scores = self._ingest_chunk(points)
        if not needs_scores:
            return np.zeros(n)
        if self._session is not None:
            return self._collect_chunk(n, self._session.last_scores(n))
        return self._collect_chunk(n, self._window_scores())

    # -- staged chunk protocol (shared with repro.serve.StreamRouter) ---- #
    #
    # push_many = _ingest_chunk -> score the window tail -> _collect_chunk.
    # The router runs the same three stages, but interleaves many shards
    # between ingest and collect so that session-backed shards can refresh
    # their tail scores through one grouped forward pass
    # (repro.core.batched_session_scores with tail counts) instead of one
    # pass per shard.

    def _ingest_chunk(self, points):
        """Ingest a chunk; return ``(n, needs_scores)``.

        ``needs_scores`` is False for chunks wholly inside the ``min_points``
        warmup — those are context-only and must score 0.0 without paying a
        forward pass (the session path ingests incrementally, keeping the
        lagged embedding warm; the ring path just extends).  Both paths
        count the threshold on total arrivals, so their semantics are
        identical.
        """
        arr = np.asarray(points, dtype=np.float64)
        if arr.ndim == 1:
            arr = arr[:, None]
        self._ensure_state(arr.shape[1])
        n = arr.shape[0]
        if self._session is not None:
            if self._session.total + n < self.min_points:
                self._session.ingest(arr)
                return n, False
            self._session.ingest(arr)
            return n, True
        self._ring.extend(arr)
        return n, self._ring.total >= self.min_points

    def _collect_chunk(self, n, window_scores):
        """Map window scores back to the last ``n`` ingested arrivals."""
        out = np.zeros(n)
        tail = min(n, window_scores.shape[0])
        if tail:
            out[n - tail :] = window_scores[window_scores.shape[0] - tail :]
        return out

    def seed(self, history):
        """Ingest history as context without scoring it.

        Unlike :meth:`push_many`, no scoring pass runs — seeding a long
        history costs only the buffer fill (and, for the lagged-matrix
        path, one vectorised re-embedding of the retained window).
        """
        arr = np.asarray(history, dtype=np.float64)
        if arr.ndim == 1:
            arr = arr[:, None]
        self._ensure_state(arr.shape[1])
        if self._session is not None:
            self._session.seed(arr)
        else:
            self._ring.extend(arr)
        return self

    # ------------------------------------------------------------------ #
    # state round-trip (shard recovery: repro.serve.StreamRouter.save/restore)
    def state_dict(self):
        """The scorer's retained streaming state as plain arrays.

        ``kind`` says which scoring path owns the state (``session`` rows
        are scaled by the detector's training scaler, ``ring`` rows are
        raw arrivals); ``window`` is the retained window oldest-first and
        ``total`` the arrivals ever ingested — everything
        :meth:`load_state_dict` needs to resume the stream bit-exactly.
        Session states additionally carry the tail-forward splice cache
        (``cache_scores``/``cache_total``) when one is live, so a restored
        shard resumes receptive-field-bounded pushes without paying a
        re-anchoring full forward first.  The detector itself is *not*
        included; persist it with :mod:`repro.core.persistence` (or a
        spec) alongside.
        """
        if self._session is not None:
            state = {"kind": "session", "dims": int(self._session.dims),
                     "window": np.asarray(self._session._ring.view()).copy(),
                     "total": int(self._session.total)}
            if self._session._cache_total >= 0:
                state["cache_scores"] = self._session._cache_scores.copy()
                state["cache_total"] = int(self._session._cache_total)
            return state
        if self._ring is not None:
            return {"kind": "ring", "dims": int(self._ring.dims),
                    "window": np.asarray(self._ring.view()).copy(),
                    "total": int(self._ring.total)}
        return {"kind": "empty", "dims": 0,
                "window": np.zeros((0, 0)), "total": 0}

    def load_state_dict(self, state):
        """Restore state saved by :meth:`state_dict`; returns ``self``.

        The scorer must have been constructed with the same mode family as
        the saved state (a ``session`` state needs a ``score_new`` scorer,
        anything else a ring path) — a mismatch means the detector or mode
        changed between save and restore, which cannot resume bit-exactly.
        """
        kind = state["kind"]
        if kind == "empty":
            return self
        self._ensure_state(int(state["dims"]))
        expected = "session" if self._session is not None else "ring"
        if kind != expected:
            raise ValueError(
                "saved state is %r but this scorer (mode=%r) keeps %r "
                "state; was the detector or mode changed since the save?"
                % (kind, self.mode, expected)
            )
        if self._session is not None:
            self._session.load_state(
                state["window"], state["total"],
                cache_scores=state.get("cache_scores"),
                cache_total=state.get("cache_total"),
            )
        else:
            self._ring.load(state["window"], state["total"])
        return self

    def rescore(self):
        """Scores of every observation currently in the window."""
        if self._session is not None:
            return self._session.scores()
        if self._ring is None or len(self._ring) < 2:
            return np.zeros(0 if self._ring is None else len(self._ring))
        return self._window_scores()

    def __len__(self):
        if self._session is not None:
            return len(self._session)
        return 0 if self._ring is None else len(self._ring)

    @property
    def total(self):
        """Observations ever ingested."""
        if self._session is not None:
            return self._session.total
        return 0 if self._ring is None else self._ring.total
