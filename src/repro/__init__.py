"""repro: Robust and Explainable Autoencoders for Unsupervised Time Series
Outlier Detection (Kieu et al., ICDE 2022) — a full reproduction.

Public API highlights
---------------------
* :class:`repro.core.RAE` / :class:`repro.core.RDAE` — the paper's methods.
* :mod:`repro.baselines` — the 15 comparison methods plus RSSA.
* :mod:`repro.explain` — post-hoc explainability scores (ES_PRM, ES_SSA).
* :mod:`repro.datasets` — seeded surrogates for the 7 evaluation datasets.
* :mod:`repro.eval` — the unsupervised median-of-random-search protocol,
  suite runner and table renderers.
* :mod:`repro.nn` / :mod:`repro.rpca` / :mod:`repro.tsops` — the substrates
  (NumPy autograd + layers, Robust PCA, Hankel/SSA/STL machinery).
"""

from . import baselines, core, datasets, eval, explain, metrics, nn, rpca, tsops, viz
from .core import NRAE, NRDAE, RAE, RDAE

__version__ = "1.0.0"

__all__ = [
    "RAE",
    "RDAE",
    "NRAE",
    "NRDAE",
    "nn",
    "rpca",
    "tsops",
    "datasets",
    "baselines",
    "core",
    "explain",
    "metrics",
    "eval",
    "viz",
    "__version__",
]
