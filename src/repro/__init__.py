"""repro: Robust and Explainable Autoencoders for Unsupervised Time Series
Outlier Detection (Kieu et al., ICDE 2022) — a full reproduction.

Public API highlights
---------------------
* :mod:`repro.api` — the spec-driven construction surface:
  :class:`repro.api.DetectorSpec` / :class:`repro.api.PipelineSpec` (the
  whole protocol as JSON-round-trippable data) and the
  :class:`repro.api.Pipeline` facade (``fit/score/fit_score/detect/
  explain``, declared ``capabilities()``, ``save``/``load``).
* :class:`repro.core.RAE` / :class:`repro.core.RDAE` — the paper's methods.
* :mod:`repro.baselines` — the 15 comparison methods plus RSSA.
* :mod:`repro.explain` — post-hoc explainability scores (ES_PRM, ES_SSA).
* :mod:`repro.datasets` — seeded surrogates for the 7 evaluation datasets.
* :mod:`repro.eval` — the unsupervised median-of-random-search protocol,
  suite runner and table renderers.
* :mod:`repro.nn` / :mod:`repro.rpca` / :mod:`repro.tsops` — the substrates
  (NumPy autograd + layers, Robust PCA, Hankel/SSA/STL machinery).

Streaming & batched scoring
---------------------------
The detectors are transductive one-shot scorers by construction, but the
package also serves continuous traffic:

* :class:`repro.stream.StreamScorer` wraps any fitted detector and scores
  arriving points over a ring-buffered sliding window, so per-arrival work
  is bounded by the window size instead of the stream length.  RAE/RDAE are
  served through :class:`repro.core.ScoringSession`, which keeps the training
  scaler, the autoencoder forward state, and an incrementally-updated Hankel
  embedding (:class:`repro.tsops.SlidingLagged`) warm between arrivals.
* :class:`repro.eval.BatchScoringEngine` amortises model setup across many
  series: fit once (or warm-start from a ``.npz`` saved by
  :func:`repro.core.save_detector`), then micro-batch same-length series
  through a single autoencoder forward pass.
* :class:`repro.serve.StreamRouter` scales the streaming path to fleets:
  many named streams (one scorer shard each) behind a bounded ingestion
  queue, with bursts drained as micro-batches — same-detector shards share
  one grouped forward pass per drain.
* ``python -m repro stream`` exposes the single-stream machinery on the
  command line (train on the head of a CSV, emit one score line per
  streamed point); ``python -m repro serve`` serves many interleaved
  streams over a ``stream_id,value...`` line protocol.  See
  ``examples/streaming_monitoring.py`` and ``examples/sharded_serving.py``.
"""

from . import (
    api,
    baselines,
    core,
    datasets,
    eval,
    explain,
    metrics,
    nn,
    rpca,
    serve,
    stream,
    tsops,
    viz,
)
from .api import DetectorSpec, Pipeline, PipelineSpec
from .core import NRAE, NRDAE, RAE, RDAE

__version__ = "1.0.0"

__all__ = [
    "RAE",
    "RDAE",
    "NRAE",
    "NRDAE",
    "api",
    "DetectorSpec",
    "PipelineSpec",
    "Pipeline",
    "nn",
    "rpca",
    "serve",
    "stream",
    "tsops",
    "datasets",
    "baselines",
    "core",
    "explain",
    "metrics",
    "eval",
    "viz",
    "__version__",
]
