"""Reverse-mode automatic differentiation on NumPy arrays.

This module is the foundation of the :mod:`repro.nn` substrate.  The paper's
methods were implemented on PyTorch 1.1; since no deep-learning framework is
available offline, we provide a small but complete autograd engine with the
same semantics: a :class:`Tensor` wraps an ``np.ndarray``, records the
operations applied to it, and :meth:`Tensor.backward` propagates gradients
through the recorded graph in reverse topological order.

Gradient correctness of every primitive is verified against central finite
differences in ``tests/nn/test_autograd.py``.

Tape capture
------------
Every primitive computes its output through a *replayable forward closure*
``forward(out=None)`` that reads its parents' **current** ``.data`` and
refreshes whatever saved context the backward closure consumes.  Eager
execution simply calls the closure once at op-construction time; the
tape-compiled training path (:mod:`repro.nn.tape`) records ``(tensor,
forward)`` pairs and re-invokes the same closures with preallocated ``out``
buffers on later epochs.  Because eager and replay share one closure per op,
replayed results are bit-identical to eager by construction — same kernels,
same op order, same reduction order.
"""

from __future__ import annotations

import threading

import numpy as np

__all__ = ["Tensor", "as_tensor", "no_grad", "is_grad_enabled"]

# Grad mode is per-thread: the threaded drain backend of repro.serve runs
# inference under ``no_grad`` from worker threads, which must never toggle
# graph construction for a fit running concurrently on another thread.
_GRAD_STATE = threading.local()


class no_grad:
    """Context manager that disables graph construction (like torch.no_grad).

    The flag is thread-local, so entering/exiting on one thread leaves every
    other thread's grad mode untouched.
    """

    def __enter__(self):
        self._prev = is_grad_enabled()
        _GRAD_STATE.enabled = False
        return self

    def __exit__(self, exc_type, exc, tb):
        _GRAD_STATE.enabled = self._prev
        return False


def is_grad_enabled():
    """Return True when operations record the autograd graph (this thread)."""
    return getattr(_GRAD_STATE, "enabled", True)


# --------------------------------------------------------------------- #
# Tape recording hooks (consumed by repro.nn.tape).
#
# Like grad mode, the active recorder is per-thread: the parallel ensemble
# fits of repro.core.ensemble record one tape per member on the thread that
# runs that member's fit.
_TAPE_STATE = threading.local()


def _push_tape(tape):
    """Install ``tape`` as this thread's recorder; return the previous one."""
    previous = getattr(_TAPE_STATE, "tape", None)
    _TAPE_STATE.tape = tape
    return previous


def _record(out, forward):
    """Register ``(out, forward)`` with the recording tape, if any."""
    tape = getattr(_TAPE_STATE, "tape", None)
    if tape is not None:
        tape._add(out, forward)


def _record_call(fn):
    """Register a replayable side-effect call with the recording tape.

    Optimizer steps, ``zero_grad`` and gradient clipping announce themselves
    through this hook so a recording that *contains* an optimisation step
    (e.g. the discriminator update inside BeatGAN's loss) replays it at the
    recorded position.  No tape is ever installed during replay, so the
    replayed call's own ``_record_call`` is a no-op — no recursion.
    """
    tape = getattr(_TAPE_STATE, "tape", None)
    if tape is not None:
        tape._add_call(fn)


def _poison_tape(reason):
    """Mark an in-progress recording as not replayable.

    Called by ops that bake run-time data into constants (softmax's max
    shift, dropout's sampled mask): replaying their recorded graph would
    silently reuse stale values, so the tape refuses to certify instead.
    """
    tape = getattr(_TAPE_STATE, "tape", None)
    if tape is not None:
        tape._poison(reason)


def _into(out, result):
    """Copy ``result`` into the reusable buffer ``out`` when one is given.

    Used by forward closures whose kernel cannot write in place (fancy
    indexing, np.where); the copy keeps the op's output buffer stable
    across replays without changing any computed value.
    """
    if out is None or out is result:
        return result
    np.copyto(out, result)
    return out


def _topo_order(root):
    """Topological order of ``root``'s graph via iterative DFS.

    Shared by :meth:`Tensor.backward` and the tape recorder so a replayed
    backward visits nodes in exactly the order the eager backward would
    (avoids recursion limits on long unrolled recurrent graphs).
    """
    topo, visited, stack = [], set(), [(root, False)]
    while stack:
        node, processed = stack.pop()
        if processed:
            topo.append(node)
            continue
        if id(node) in visited:
            continue
        visited.add(id(node))
        stack.append((node, True))
        for parent in node._prev:
            if id(parent) not in visited:
                stack.append((parent, False))
    return topo


def _unbroadcast(grad, shape):
    """Sum ``grad`` down to ``shape``, undoing NumPy broadcasting."""
    if grad.shape == shape:
        return grad
    # Sum over leading axes added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were size-1 in the original shape.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def as_tensor(value, requires_grad=False):
    """Coerce ``value`` (array-like or Tensor) to a :class:`Tensor`."""
    if isinstance(value, Tensor):
        return value
    return Tensor(np.asarray(value, dtype=np.float64), requires_grad=requires_grad)


class Tensor:
    """A NumPy array with reverse-mode autograd.

    Parameters
    ----------
    data:
        Array-like payload; stored as ``float64``.
    requires_grad:
        When True, gradients w.r.t. this tensor are accumulated in ``.grad``
        during :meth:`backward`.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_prev",
                 "_grad_buf", "_grad_owned")

    def __init__(self, data, requires_grad=False, _prev=()):
        self.data = np.asarray(data, dtype=np.float64)
        self.grad = None
        self.requires_grad = bool(requires_grad) and is_grad_enabled()
        self._backward = None
        self._prev = tuple(_prev) if is_grad_enabled() else ()
        self._grad_buf = None
        self._grad_owned = False

    # ------------------------------------------------------------------ #
    # basic introspection
    # ------------------------------------------------------------------ #
    @property
    def shape(self):
        return self.data.shape

    @property
    def ndim(self):
        return self.data.ndim

    @property
    def size(self):
        return self.data.size

    def numpy(self):
        """Return the underlying array (detached view)."""
        return self.data

    def item(self):
        return float(self.data)

    def detach(self):
        """Return a new Tensor sharing data but cut from the graph."""
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self):
        self.grad = None

    def __repr__(self):
        return "Tensor(shape=%s, requires_grad=%s)" % (
            self.shape,
            self.requires_grad,
        )

    # ------------------------------------------------------------------ #
    # graph machinery
    # ------------------------------------------------------------------ #
    @staticmethod
    def _make(data, parents, backward):
        """Create a graph node from ``parents`` with backward closure."""
        requires = is_grad_enabled() and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires, _prev=parents if requires else ())
        if requires:
            out._backward = backward
        return out

    def _accumulate(self, grad):
        buf = self._grad_buf
        if buf is not None:
            # Tape replay: reuse the persistent gradient buffer instead of
            # allocating.  copyto/+= produce the same values as copy()/+.
            if self.grad is None:
                np.copyto(buf, grad)
                self.grad = buf
            elif self.grad is buf:
                buf += grad
            else:
                self.grad = self.grad + grad
            return
        grad = np.asarray(grad, dtype=np.float64)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad = self.grad + grad

    def _accumulate_product(self, a, b):
        """Accumulate ``a * b`` without materialising the product when this
        tensor has a persistent gradient buffer (identical values: writing
        the product straight into the buffer equals product-then-copy)."""
        buf = self._grad_buf
        if buf is not None and self.grad is None:
            np.multiply(a, b, out=buf)
            self.grad = buf
        else:
            self._accumulate(np.multiply(a, b))

    def _accumulate_owned(self, grad):
        """Adopt ``grad`` as this node's gradient without copying.

        For backward closures whose gradient is already materialised in an
        array (or view) that nothing mutates until the op's next backward
        pass: a fresh allocation, a closure-owned scratch buffer, or a view
        of the consumer's gradient.  Adopting the array instead of copying
        it is value-identical; the node is flagged so the tape never
        installs the adopted (caller-owned, possibly read-only) array as a
        reusable accumulation buffer.
        """
        if self.grad is None:
            self._grad_owned = True
            self.grad = grad
        else:
            self._accumulate(grad)

    def backward(self, grad=None):
        """Backpropagate ``grad`` (default: ones for scalars) through the graph."""
        if grad is None:
            if self.data.size != 1:
                raise ValueError("grad must be supplied for non-scalar tensors")
            grad = np.ones_like(self.data)
        topo = _topo_order(self)
        tape = getattr(_TAPE_STATE, "tape", None)
        if tape is not None:
            # A backward executed inside a recording (the inner
            # discriminator step of an adversarial loss): capture it as a
            # replayable event before running it eagerly.
            tape._add_backward(self, grad, topo)
        self._accumulate(grad)
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    # ------------------------------------------------------------------ #
    # arithmetic
    # ------------------------------------------------------------------ #
    def __add__(self, other):
        other = as_tensor(other)

        def forward(out=None):
            return np.add(self.data, other.data, out=out)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad, other.shape))

        out = Tensor._make(forward(), (self, other), backward)
        _record(out, forward)
        return out

    __radd__ = __add__

    def __neg__(self):
        def forward(out=None):
            return np.negative(self.data, out=out)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(-grad)

        out = Tensor._make(forward(), (self,), backward)
        _record(out, forward)
        return out

    def __sub__(self, other):
        return self + (-as_tensor(other))

    def __rsub__(self, other):
        return as_tensor(other) + (-self)

    def __mul__(self, other):
        other = as_tensor(other)

        def forward(out=None):
            return np.multiply(self.data, other.data, out=out)

        def backward(grad):
            if self.requires_grad:
                if grad.shape == self.shape == other.shape:
                    self._accumulate_product(grad, other.data)
                else:
                    self._accumulate(_unbroadcast(grad * other.data, self.shape))
            if other.requires_grad:
                if grad.shape == other.shape == self.shape:
                    other._accumulate_product(grad, self.data)
                else:
                    other._accumulate(_unbroadcast(grad * self.data, other.shape))

        out = Tensor._make(forward(), (self, other), backward)
        _record(out, forward)
        return out

    __rmul__ = __mul__

    def __truediv__(self, other):
        other = as_tensor(other)

        def forward(out=None):
            return np.divide(self.data, other.data, out=out)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad / other.data, self.shape))
            if other.requires_grad:
                other._accumulate(
                    _unbroadcast(-grad * self.data / other.data**2, other.shape)
                )

        out = Tensor._make(forward(), (self, other), backward)
        _record(out, forward)
        return out

    def __rtruediv__(self, other):
        return as_tensor(other) / self

    def __pow__(self, exponent):
        if not np.isscalar(exponent):
            raise TypeError("only scalar exponents are supported")

        def forward(out=None):
            return np.power(self.data, exponent, out=out)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * exponent * self.data ** (exponent - 1))

        out = Tensor._make(forward(), (self,), backward)
        _record(out, forward)
        return out

    def __matmul__(self, other):
        other = as_tensor(other)

        def forward(out=None):
            if out is None:
                return np.matmul(self.data, other.data)
            return np.matmul(self.data, other.data, out=out)

        def backward(grad):
            if self.requires_grad:
                if other.data.ndim == 1:
                    g = np.multiply.outer(grad, other.data)
                else:
                    g = grad @ np.swapaxes(other.data, -1, -2)
                self._accumulate(_unbroadcast(g, self.shape))
            if other.requires_grad:
                if self.data.ndim == 1:
                    g = np.multiply.outer(self.data, grad)
                else:
                    g = np.swapaxes(self.data, -1, -2) @ grad
                other._accumulate(_unbroadcast(g, other.shape))

        out = Tensor._make(forward(), (self, other), backward)
        _record(out, forward)
        return out

    # ------------------------------------------------------------------ #
    # elementwise nonlinearities
    # ------------------------------------------------------------------ #
    def relu(self):
        saved = [None]

        def forward(out=None):
            saved[0] = mask = self.data > 0
            return np.multiply(self.data, mask, out=out)

        def backward(grad):
            if self.requires_grad:
                self._accumulate_product(grad, saved[0])

        out = Tensor._make(forward(), (self,), backward)
        _record(out, forward)
        return out

    def leaky_relu(self, slope=0.01):
        saved = [None]

        def forward(out=None):
            saved[0] = mask = self.data > 0
            return _into(out, np.where(mask, self.data, slope * self.data))

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * np.where(saved[0], 1.0, slope))

        out = Tensor._make(forward(), (self,), backward)
        _record(out, forward)
        return out

    def tanh(self):
        def forward(out=None):
            return np.tanh(self.data, out=out)

        out_data = forward()

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * (1.0 - out_data**2))

        out = Tensor._make(out_data, (self,), backward)
        _record(out, forward)
        return out

    def sigmoid(self):
        def forward(out=None):
            # Same op sequence as 1/(1 + exp(-clip(x))), computed in place
            # on the clip temporary.
            t = np.clip(self.data, -60.0, 60.0)
            np.negative(t, out=t)
            np.exp(t, out=t)
            t += 1.0
            return np.divide(1.0, t, out=out)

        out_data = forward()

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * out_data * (1.0 - out_data))

        out = Tensor._make(out_data, (self,), backward)
        _record(out, forward)
        return out

    def exp(self):
        def forward(out=None):
            return np.exp(np.clip(self.data, -700.0, 700.0), out=out)

        out_data = forward()

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * out_data)

        out = Tensor._make(out_data, (self,), backward)
        _record(out, forward)
        return out

    def log(self):
        def forward(out=None):
            return np.log(self.data, out=out)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad / self.data)

        out = Tensor._make(forward(), (self,), backward)
        _record(out, forward)
        return out

    def sqrt(self):
        def forward(out=None):
            return np.sqrt(self.data, out=out)

        out_data = forward()

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * 0.5 / np.maximum(out_data, 1e-300))

        out = Tensor._make(out_data, (self,), backward)
        _record(out, forward)
        return out

    def abs(self):
        saved = [None]

        def forward(out=None):
            saved[0] = np.sign(self.data)
            return np.absolute(self.data, out=out)

        def backward(grad):
            if self.requires_grad:
                self._accumulate_product(grad, saved[0])

        out = Tensor._make(forward(), (self,), backward)
        _record(out, forward)
        return out

    # ------------------------------------------------------------------ #
    # reductions and shape ops
    # ------------------------------------------------------------------ #
    def sum(self, axis=None, keepdims=False):
        def forward(out=None):
            return self.data.sum(axis=axis, keepdims=keepdims, out=out)

        def backward(grad):
            if not self.requires_grad:
                return
            g = np.asarray(grad)
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis)
            # The broadcast view is read-only and backed by the consumer's
            # gradient, which stays untouched for the rest of this pass.
            self._accumulate_owned(np.broadcast_to(g, self.shape))

        out = Tensor._make(forward(), (self,), backward)
        _record(out, forward)
        return out

    def mean(self, axis=None, keepdims=False):
        if axis is None:
            count = self.data.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([self.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def reshape(self, *shape):
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        original = self.shape

        def forward(out=None):
            return self.data.reshape(shape)

        def backward(grad):
            if self.requires_grad:
                self._accumulate_owned(grad.reshape(original))

        out = Tensor._make(forward(), (self,), backward)
        _record(out, forward)
        return out

    def transpose(self, *axes):
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        elif len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        inverse = np.argsort(axes)

        def forward(out=None):
            return self.data.transpose(axes)

        def backward(grad):
            if self.requires_grad:
                self._accumulate_owned(grad.transpose(inverse))

        out = Tensor._make(forward(), (self,), backward)
        _record(out, forward)
        return out

    def __getitem__(self, key):
        def forward(out=None):
            # Basic indexing returns a view of the parent's (stable) buffer;
            # fancy indexing allocates.  Either way downstream closures read
            # parents' data live, so rebinding per replay is sound.
            return self.data[key]

        def backward(grad):
            if self.requires_grad:
                full = np.zeros_like(self.data)
                np.add.at(full, key, grad)
                self._accumulate_owned(full)

        out = Tensor._make(forward(), (self,), backward)
        _record(out, forward)
        return out

    def clip_value(self, low, high):
        """Clip with straight-through gradient inside the interval."""
        saved = [None]

        def forward(out=None):
            saved[0] = (self.data >= low) & (self.data <= high)
            return np.clip(self.data, low, high, out=out)

        def backward(grad):
            if self.requires_grad:
                self._accumulate_product(grad, saved[0])

        out = Tensor._make(forward(), (self,), backward)
        _record(out, forward)
        return out


def concatenate(tensors, axis=0):
    """Concatenate tensors along ``axis`` with gradient routing."""
    tensors = [as_tensor(t) for t in tensors]
    sizes = [t.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def forward(out=None):
        if out is None:
            return np.concatenate([t.data for t in tensors], axis=axis)
        return np.concatenate([t.data for t in tensors], axis=axis, out=out)

    def backward(grad):
        for t, lo, hi in zip(tensors, offsets[:-1], offsets[1:]):
            if t.requires_grad:
                index = [slice(None)] * grad.ndim
                index[axis] = slice(lo, hi)
                t._accumulate(grad[tuple(index)])

    out = Tensor._make(forward(), tuple(tensors), backward)
    _record(out, forward)
    return out


def stack(tensors, axis=0):
    """Stack tensors along a new ``axis`` with gradient routing."""
    tensors = [as_tensor(t) for t in tensors]

    def forward(out=None):
        if out is None:
            return np.stack([t.data for t in tensors], axis=axis)
        return np.stack([t.data for t in tensors], axis=axis, out=out)

    def backward(grad):
        parts = np.moveaxis(grad, axis, 0)
        for t, g in zip(tensors, parts):
            if t.requires_grad:
                t._accumulate(g)

    out = Tensor._make(forward(), tuple(tensors), backward)
    _record(out, forward)
    return out
