"""Reverse-mode automatic differentiation on NumPy arrays.

This module is the foundation of the :mod:`repro.nn` substrate.  The paper's
methods were implemented on PyTorch 1.1; since no deep-learning framework is
available offline, we provide a small but complete autograd engine with the
same semantics: a :class:`Tensor` wraps an ``np.ndarray``, records the
operations applied to it, and :meth:`Tensor.backward` propagates gradients
through the recorded graph in reverse topological order.

Gradient correctness of every primitive is verified against central finite
differences in ``tests/nn/test_autograd.py``.
"""

from __future__ import annotations

import threading

import numpy as np

__all__ = ["Tensor", "as_tensor", "no_grad", "is_grad_enabled"]

# Grad mode is per-thread: the threaded drain backend of repro.serve runs
# inference under ``no_grad`` from worker threads, which must never toggle
# graph construction for a fit running concurrently on another thread.
_GRAD_STATE = threading.local()


class no_grad:
    """Context manager that disables graph construction (like torch.no_grad).

    The flag is thread-local, so entering/exiting on one thread leaves every
    other thread's grad mode untouched.
    """

    def __enter__(self):
        self._prev = is_grad_enabled()
        _GRAD_STATE.enabled = False
        return self

    def __exit__(self, exc_type, exc, tb):
        _GRAD_STATE.enabled = self._prev
        return False


def is_grad_enabled():
    """Return True when operations record the autograd graph (this thread)."""
    return getattr(_GRAD_STATE, "enabled", True)


def _unbroadcast(grad, shape):
    """Sum ``grad`` down to ``shape``, undoing NumPy broadcasting."""
    if grad.shape == shape:
        return grad
    # Sum over leading axes added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were size-1 in the original shape.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def as_tensor(value, requires_grad=False):
    """Coerce ``value`` (array-like or Tensor) to a :class:`Tensor`."""
    if isinstance(value, Tensor):
        return value
    return Tensor(np.asarray(value, dtype=np.float64), requires_grad=requires_grad)


class Tensor:
    """A NumPy array with reverse-mode autograd.

    Parameters
    ----------
    data:
        Array-like payload; stored as ``float64``.
    requires_grad:
        When True, gradients w.r.t. this tensor are accumulated in ``.grad``
        during :meth:`backward`.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_prev")

    def __init__(self, data, requires_grad=False, _prev=()):
        self.data = np.asarray(data, dtype=np.float64)
        self.grad = None
        self.requires_grad = bool(requires_grad) and is_grad_enabled()
        self._backward = None
        self._prev = tuple(_prev) if is_grad_enabled() else ()

    # ------------------------------------------------------------------ #
    # basic introspection
    # ------------------------------------------------------------------ #
    @property
    def shape(self):
        return self.data.shape

    @property
    def ndim(self):
        return self.data.ndim

    @property
    def size(self):
        return self.data.size

    def numpy(self):
        """Return the underlying array (detached view)."""
        return self.data

    def item(self):
        return float(self.data)

    def detach(self):
        """Return a new Tensor sharing data but cut from the graph."""
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self):
        self.grad = None

    def __repr__(self):
        return "Tensor(shape=%s, requires_grad=%s)" % (
            self.shape,
            self.requires_grad,
        )

    # ------------------------------------------------------------------ #
    # graph machinery
    # ------------------------------------------------------------------ #
    @staticmethod
    def _make(data, parents, backward):
        """Create a graph node from ``parents`` with backward closure."""
        requires = is_grad_enabled() and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires, _prev=parents if requires else ())
        if requires:
            out._backward = backward
        return out

    def _accumulate(self, grad):
        grad = np.asarray(grad, dtype=np.float64)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad = self.grad + grad

    def backward(self, grad=None):
        """Backpropagate ``grad`` (default: ones for scalars) through the graph."""
        if grad is None:
            if self.data.size != 1:
                raise ValueError("grad must be supplied for non-scalar tensors")
            grad = np.ones_like(self.data)
        # Topological order via iterative DFS (avoids recursion limits on
        # long unrolled recurrent graphs).
        topo, visited, stack = [], set(), [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._prev:
                if id(parent) not in visited:
                    stack.append((parent, False))
        self._accumulate(grad)
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    # ------------------------------------------------------------------ #
    # arithmetic
    # ------------------------------------------------------------------ #
    def __add__(self, other):
        other = as_tensor(other)
        out_data = self.data + other.data

        def backward(grad):
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad, other.shape))

        return Tensor._make(out_data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self):
        def backward(grad):
            if self.requires_grad:
                self._accumulate(-grad)

        return Tensor._make(-self.data, (self,), backward)

    def __sub__(self, other):
        return self + (-as_tensor(other))

    def __rsub__(self, other):
        return as_tensor(other) + (-self)

    def __mul__(self, other):
        other = as_tensor(other)
        out_data = self.data * other.data

        def backward(grad):
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad * other.data, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad * self.data, other.shape))

        return Tensor._make(out_data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other):
        other = as_tensor(other)
        out_data = self.data / other.data

        def backward(grad):
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad / other.data, self.shape))
            if other.requires_grad:
                other._accumulate(
                    _unbroadcast(-grad * self.data / other.data**2, other.shape)
                )

        return Tensor._make(out_data, (self, other), backward)

    def __rtruediv__(self, other):
        return as_tensor(other) / self

    def __pow__(self, exponent):
        if not np.isscalar(exponent):
            raise TypeError("only scalar exponents are supported")
        out_data = self.data**exponent

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return Tensor._make(out_data, (self,), backward)

    def __matmul__(self, other):
        other = as_tensor(other)
        out_data = self.data @ other.data

        def backward(grad):
            if self.requires_grad:
                if other.data.ndim == 1:
                    g = np.multiply.outer(grad, other.data)
                else:
                    g = grad @ np.swapaxes(other.data, -1, -2)
                self._accumulate(_unbroadcast(g, self.shape))
            if other.requires_grad:
                if self.data.ndim == 1:
                    g = np.multiply.outer(self.data, grad)
                else:
                    g = np.swapaxes(self.data, -1, -2) @ grad
                other._accumulate(_unbroadcast(g, other.shape))

        return Tensor._make(out_data, (self, other), backward)

    # ------------------------------------------------------------------ #
    # elementwise nonlinearities
    # ------------------------------------------------------------------ #
    def relu(self):
        mask = self.data > 0
        out_data = self.data * mask

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * mask)

        return Tensor._make(out_data, (self,), backward)

    def leaky_relu(self, slope=0.01):
        mask = self.data > 0
        out_data = np.where(mask, self.data, slope * self.data)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * np.where(mask, 1.0, slope))

        return Tensor._make(out_data, (self,), backward)

    def tanh(self):
        out_data = np.tanh(self.data)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * (1.0 - out_data**2))

        return Tensor._make(out_data, (self,), backward)

    def sigmoid(self):
        out_data = 1.0 / (1.0 + np.exp(-np.clip(self.data, -60.0, 60.0)))

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * out_data * (1.0 - out_data))

        return Tensor._make(out_data, (self,), backward)

    def exp(self):
        out_data = np.exp(np.clip(self.data, -700.0, 700.0))

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * out_data)

        return Tensor._make(out_data, (self,), backward)

    def log(self):
        out_data = np.log(self.data)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad / self.data)

        return Tensor._make(out_data, (self,), backward)

    def sqrt(self):
        out_data = np.sqrt(self.data)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * 0.5 / np.maximum(out_data, 1e-300))

        return Tensor._make(out_data, (self,), backward)

    def abs(self):
        sign = np.sign(self.data)
        out_data = np.abs(self.data)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * sign)

        return Tensor._make(out_data, (self,), backward)

    # ------------------------------------------------------------------ #
    # reductions and shape ops
    # ------------------------------------------------------------------ #
    def sum(self, axis=None, keepdims=False):
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad):
            if not self.requires_grad:
                return
            g = np.asarray(grad)
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis)
            self._accumulate(np.broadcast_to(g, self.shape))

        return Tensor._make(out_data, (self,), backward)

    def mean(self, axis=None, keepdims=False):
        if axis is None:
            count = self.data.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([self.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def reshape(self, *shape):
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out_data = self.data.reshape(shape)
        original = self.shape

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad.reshape(original))

        return Tensor._make(out_data, (self,), backward)

    def transpose(self, *axes):
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        elif len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        inverse = np.argsort(axes)
        out_data = self.data.transpose(axes)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad.transpose(inverse))

        return Tensor._make(out_data, (self,), backward)

    def __getitem__(self, key):
        out_data = self.data[key]

        def backward(grad):
            if self.requires_grad:
                full = np.zeros_like(self.data)
                np.add.at(full, key, grad)
                self._accumulate(full)

        return Tensor._make(out_data, (self,), backward)

    def clip_value(self, low, high):
        """Clip with straight-through gradient inside the interval."""
        inside = (self.data >= low) & (self.data <= high)
        out_data = np.clip(self.data, low, high)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * inside)

        return Tensor._make(out_data, (self,), backward)


def concatenate(tensors, axis=0):
    """Concatenate tensors along ``axis`` with gradient routing."""
    tensors = [as_tensor(t) for t in tensors]
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad):
        for t, lo, hi in zip(tensors, offsets[:-1], offsets[1:]):
            if t.requires_grad:
                index = [slice(None)] * grad.ndim
                index[axis] = slice(lo, hi)
                t._accumulate(grad[tuple(index)])

    return Tensor._make(out_data, tuple(tensors), backward)


def stack(tensors, axis=0):
    """Stack tensors along a new ``axis`` with gradient routing."""
    tensors = [as_tensor(t) for t in tensors]
    out_data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad):
        parts = np.moveaxis(grad, axis, 0)
        for t, g in zip(tensors, parts):
            if t.requires_grad:
                t._accumulate(g)

    return Tensor._make(out_data, tuple(tensors), backward)
