"""Neural network modules built on the :mod:`repro.nn.tensor` autograd engine.

The layer set mirrors what the paper's PyTorch implementation needs: linear
layers, 1D/2D convolutions with max pooling and nearest-neighbour upsampling
(the encoder/decoder building blocks of Eqs. 4-5 and 8-9), standard
activations, dropout, and layer normalisation (for the transformer baseline).
"""

from __future__ import annotations

import numpy as np

from . import functional as F
from .init import default_rng, xavier_uniform
from .receptive import UNBOUNDED, ReceptiveField
from .tensor import Tensor

__all__ = [
    "Module",
    "Parameter",
    "Linear",
    "Conv1d",
    "Conv2d",
    "MaxPool1d",
    "MaxPool2d",
    "Upsample1d",
    "Upsample2d",
    "ReLU",
    "Tanh",
    "Sigmoid",
    "LeakyReLU",
    "Identity",
    "Sequential",
    "Dropout",
    "LayerNorm",
]


class Parameter(Tensor):
    """A Tensor registered as a learnable parameter of a Module."""

    def __init__(self, data):
        super().__init__(data, requires_grad=True)


class Module:
    """Base class with parameter registration and train/eval mode."""

    def __init__(self):
        self.training = True

    def forward(self, *args, **kwargs):  # pragma: no cover - abstract
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def receptive_field(self):
        """This module's time-axis dependence cone (see :mod:`.receptive`).

        The base class answers :data:`repro.nn.receptive.UNBOUNDED` — the
        only sound default for an arbitrary ``forward``.  Structured
        primitives override with exact extents, and
        :class:`Sequential` composes its children, which is what lets
        :mod:`repro.core.scoring` bound how far a new arrival's influence
        reaches back into a window.
        """
        return UNBOUNDED

    def parameters(self):
        """Yield all Parameters of this module and its sub-modules."""
        seen = set()
        for __, param in self.named_parameters():
            if id(param) not in seen:
                seen.add(id(param))
                yield param

    def named_parameters(self, prefix=""):
        for name, value in vars(self).items():
            qualified = "%s.%s" % (prefix, name) if prefix else name
            if isinstance(value, Parameter):
                yield qualified, value
            elif isinstance(value, Module):
                yield from value.named_parameters(qualified)
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Module):
                        yield from item.named_parameters("%s.%d" % (qualified, i))
                    elif isinstance(item, Parameter):
                        yield "%s.%d" % (qualified, i), item

    def zero_grad(self):
        for param in self.parameters():
            param.zero_grad()

    def train(self, mode=True):
        self.training = mode
        for value in vars(self).values():
            if isinstance(value, Module):
                value.train(mode)
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        item.train(mode)
        return self

    def eval(self):
        return self.train(False)

    def num_parameters(self):
        """Total number of scalar parameters."""
        return sum(p.size for p in self.parameters())

    def state_dict(self):
        """Copy of all parameter arrays keyed by qualified name."""
        return {name: p.data.copy() for name, p in self.named_parameters()}

    def load_state_dict(self, state, copy=True):
        """Install parameter arrays keyed by qualified name.

        ``copy=False`` adopts the passed arrays as-is — the serving-layer
        weight-store path, where parameters are read-only ``np.memmap``
        views that many worker processes share through the page cache
        (inference only reads parameters; training would need owned,
        writable copies, i.e. the default).
        """
        for name, param in self.named_parameters():
            if name not in state:
                raise KeyError("missing parameter %r" % name)
            if param.data.shape != state[name].shape:
                raise ValueError("shape mismatch for %r" % name)
            param.data = state[name].copy() if copy else state[name]


class Linear(Module):
    """Affine map ``y = x W + b`` for inputs ``(..., in_features)``."""

    def __init__(self, in_features, out_features, bias=True, rng=None):
        super().__init__()
        rng = default_rng(rng)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(
            xavier_uniform((in_features, out_features), in_features, out_features, rng)
        )
        self.bias = Parameter(np.zeros(out_features)) if bias else None

    def forward(self, x):
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out

    def receptive_field(self):
        """Dense-over-time: callers flatten time into the feature axis
        (see :class:`repro.core.autoencoders.FCSeriesAE`), so a Linear
        layer's outputs may depend on arbitrarily distant positions."""
        return UNBOUNDED


class Conv1d(Module):
    """1D convolution over ``(N, C_in, L)`` with 'same' or explicit padding."""

    def __init__(self, in_channels, out_channels, kernel_size, padding="same", rng=None):
        super().__init__()
        rng = default_rng(rng)
        if padding == "same":
            padding = kernel_size // 2
        self.padding = padding
        fan_in = in_channels * kernel_size
        fan_out = out_channels * kernel_size
        self.weight = Parameter(
            xavier_uniform(
                (out_channels, in_channels, kernel_size), fan_in, fan_out, rng
            )
        )
        self.bias = Parameter(np.zeros(out_channels))

    def forward(self, x):
        return F.conv1d(x, self.weight, self.bias, padding=self.padding)

    def receptive_field(self):
        return ReceptiveField.conv(self.weight.shape[2], self.padding)


class Conv2d(Module):
    """2D convolution over ``(N, C_in, H, W)`` with 'same' or explicit padding."""

    def __init__(self, in_channels, out_channels, kernel_size, padding="same", rng=None):
        super().__init__()
        rng = default_rng(rng)
        if padding == "same":
            padding = kernel_size // 2
        self.padding = padding
        fan_in = in_channels * kernel_size * kernel_size
        fan_out = out_channels * kernel_size * kernel_size
        self.weight = Parameter(
            xavier_uniform(
                (out_channels, in_channels, kernel_size, kernel_size),
                fan_in,
                fan_out,
                rng,
            )
        )
        self.bias = Parameter(np.zeros(out_channels))

    def forward(self, x):
        return F.conv2d(x, self.weight, self.bias, padding=self.padding)


class MaxPool1d(Module):
    def __init__(self, kernel=2):
        super().__init__()
        self.kernel = kernel

    def forward(self, x):
        return F.max_pool1d(x, self.kernel)

    def receptive_field(self):
        return ReceptiveField.pool(self.kernel)


class MaxPool2d(Module):
    def __init__(self, kernel=2):
        super().__init__()
        self.kernel = kernel

    def forward(self, x):
        return F.max_pool2d(x, self.kernel)


class Upsample1d(Module):
    def __init__(self, factor=2, size=None):
        super().__init__()
        self.factor = factor
        self.size = size

    def forward(self, x):
        return F.upsample1d(x, self.factor, self.size)

    def receptive_field(self):
        # The `size` clamp only ever *drops* dependence at the right edge,
        # so the factor-only cone stays a sound over-approximation.
        return ReceptiveField.upsample(self.factor)


class Upsample2d(Module):
    def __init__(self, factor=2, size=None):
        super().__init__()
        self.factor = factor
        self.size = size

    def forward(self, x):
        return F.upsample2d(x, self.factor, self.size)


class _Pointwise(Module):
    """Base for elementwise modules: their time cone is the identity."""

    def receptive_field(self):
        return ReceptiveField.pointwise()


class ReLU(_Pointwise):
    def forward(self, x):
        return x.relu()


class Tanh(_Pointwise):
    def forward(self, x):
        return x.tanh()


class Sigmoid(_Pointwise):
    def forward(self, x):
        return x.sigmoid()


class LeakyReLU(_Pointwise):
    def __init__(self, slope=0.01):
        super().__init__()
        self.slope = slope

    def forward(self, x):
        return x.leaky_relu(self.slope)


class Identity(_Pointwise):
    def forward(self, x):
        return x


class Sequential(Module):
    """Chain modules; iterable and indexable like a list."""

    def __init__(self, *modules):
        super().__init__()
        self.modules = list(modules)

    def forward(self, x):
        for module in self.modules:
            x = module(x)
        return x

    def __iter__(self):
        return iter(self.modules)

    def __len__(self):
        return len(self.modules)

    def __getitem__(self, index):
        return self.modules[index]

    def receptive_field(self):
        """Compose the children's cones in execution order; one unbounded
        stage makes the whole chain unbounded."""
        field = ReceptiveField.pointwise()
        for module in self.modules:
            field = field.then(module.receptive_field())
            if not field.bounded:
                break
        return field


class Dropout(_Pointwise):
    def __init__(self, p=0.5, rng=None):
        super().__init__()
        self.p = p
        self.rng = default_rng(rng)

    def forward(self, x):
        return F.dropout(x, self.p, self.rng, training=self.training)


class LayerNorm(Module):
    """Layer normalisation over the last axis."""

    def __init__(self, dim, eps=1e-5):
        super().__init__()
        self.eps = eps
        self.gamma = Parameter(np.ones(dim))
        self.beta = Parameter(np.zeros(dim))

    def forward(self, x):
        mean = x.mean(axis=-1, keepdims=True)
        centred = x - mean
        var = (centred * centred).mean(axis=-1, keepdims=True)
        normed = centred / (var + self.eps).sqrt()
        return normed * self.gamma + self.beta

    def receptive_field(self):
        """Normalises over the last axis — the time axis for ``(N, C, L)``
        conv tensors — so every output depends on the whole window."""
        return UNBOUNDED
