"""Loss functions used across the paper's methods and baselines."""

from __future__ import annotations

import numpy as np

from .tensor import Tensor, as_tensor

__all__ = [
    "mse_loss",
    "l1_loss",
    "bce_with_logits",
    "gaussian_nll",
    "kl_diag_gaussian",
]


def mse_loss(prediction, target):
    """Mean squared error; ``target`` is detached."""
    prediction = as_tensor(prediction)
    target = np.asarray(target.data if isinstance(target, Tensor) else target)
    diff = prediction - Tensor(target)
    return (diff * diff).mean()


def l1_loss(prediction, target):
    """Mean absolute error; ``target`` is detached."""
    prediction = as_tensor(prediction)
    target = np.asarray(target.data if isinstance(target, Tensor) else target)
    return (prediction - Tensor(target)).abs().mean()


def bce_with_logits(logits, target):
    """Binary cross-entropy from logits, numerically stable.

    Uses the identity ``max(z, 0) - z*y + log(1 + exp(-|z|))``.
    """
    logits = as_tensor(logits)
    target = np.asarray(target.data if isinstance(target, Tensor) else target)
    relu_z = logits.relu()
    abs_z = logits.abs()
    soft = (1.0 + (-abs_z).exp()).log()
    return (relu_z - logits * Tensor(target) + soft).mean()


def gaussian_nll(mean, log_var, target):
    """Negative log-likelihood of ``target`` under a diagonal Gaussian.

    Averaged over all elements; constants are kept so values are comparable
    across models (used by the Donut / OmniAnomaly baselines).
    """
    mean = as_tensor(mean)
    log_var = as_tensor(log_var)
    target = np.asarray(target.data if isinstance(target, Tensor) else target)
    diff = Tensor(target) - mean
    inv_var = (-log_var).exp()
    nll = 0.5 * (log_var + diff * diff * inv_var + float(np.log(2.0 * np.pi)))
    return nll.mean()


def kl_diag_gaussian(mean, log_var):
    """KL( N(mean, var) || N(0, I) ), averaged over all elements."""
    mean = as_tensor(mean)
    log_var = as_tensor(log_var)
    kl = 0.5 * (log_var.exp() + mean * mean - log_var - 1.0)
    return kl.mean()
