"""Weight initialisation helpers for :mod:`repro.nn` modules."""

from __future__ import annotations

import numpy as np

_DEFAULT_SEED = 0
_global_rng = np.random.default_rng(_DEFAULT_SEED)


def seed(value):
    """Re-seed the global RNG used by module constructors without an ``rng``."""
    global _global_rng
    _global_rng = np.random.default_rng(value)


def default_rng(rng=None):
    """Return ``rng`` if provided, otherwise the module-level generator."""
    return _global_rng if rng is None else rng


def xavier_uniform(shape, fan_in, fan_out, rng=None):
    """Glorot/Xavier uniform initialisation."""
    rng = default_rng(rng)
    bound = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape)


def kaiming_uniform(shape, fan_in, rng=None):
    """He/Kaiming uniform initialisation for ReLU networks."""
    rng = default_rng(rng)
    bound = np.sqrt(6.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape)
