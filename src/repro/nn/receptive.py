"""Receptive-field metadata for modules acting on a 1-D time axis.

The serving hot path of :mod:`repro.core.scoring` wants to know, for a
fitted module, *which input positions can influence which outputs*: a push
of one arrival then only needs to re-forward the tail of the window whose
reconstruction can actually change.  This module is the vocabulary for
that question:

* :class:`ReceptiveField` — a conservative dependence cone: output ``i``
  depends on at most input positions
  ``floor(i * stride) - lookback .. floor(i * stride) + lookahead``, and
  the computation commutes with time shifts that are multiples of
  ``period`` (the pooling-grid alignment constraint).
* :data:`UNBOUNDED` — the sentinel for modules whose outputs may depend
  on arbitrarily distant inputs (recurrent state, attention, dense layers
  over time, positional encodings).  Composition with it is absorbing.

Every :class:`repro.nn.Module` answers ``receptive_field()``; the base
class answers :data:`UNBOUNDED` (the only safe default for an unknown
``forward``), structured primitives (conv/pool/upsample/activations)
answer exact extents, and :class:`repro.nn.Sequential` composes its
children with :meth:`ReceptiveField.then`.

Bounds are deliberately *over*-approximations: composition adds one
position of slack per stage to absorb the floor/ceil rounding of strided
stages.  Everything downstream (tail forwards, the perturbation contract
tests) only needs soundness — an output outside the reported cone must
never depend on the input — not tightness.
"""

from __future__ import annotations

import math
from fractions import Fraction

__all__ = ["ReceptiveField", "UNBOUNDED"]


def _lcm_fractions(*values):
    """Least positive rational that every ``values`` entry divides."""
    values = [Fraction(v) for v in values if Fraction(v) > 0]
    if not values:
        return Fraction(1)
    denominator = math.lcm(*[v.denominator for v in values])
    numerator = math.lcm(*[int(v * denominator) for v in values])
    return Fraction(numerator, denominator)


class _UnboundedField:
    """Absorbing sentinel: the module's time dependence has no finite bound."""

    bounded = False

    def then(self, other):
        return self

    def __repr__(self):  # pragma: no cover - cosmetic
        return "UNBOUNDED"


UNBOUNDED = _UnboundedField()


class ReceptiveField:
    """A sound (over-approximated) 1-D dependence cone.

    Parameters
    ----------
    lookback / lookahead: input positions before/after the projected
        centre ``floor(i * stride)`` that output ``i`` may depend on.
    stride: input positions consumed per output step — an integer for
        downsampling stages (pooling), a fraction below 1 for upsampling.
    period: input-shift quantum.  Shifting the input by a multiple of
        ``period`` shifts every output by ``shift / stride`` and leaves
        all per-position values unchanged (away from the edges); shifts
        that are *not* multiples of ``period`` re-anchor pooling grids
        and invalidate every cached position.
    """

    bounded = True
    __slots__ = ("lookback", "lookahead", "stride", "period")

    def __init__(self, lookback=0, lookahead=0, stride=1, period=1):
        self.lookback = int(lookback)
        self.lookahead = int(lookahead)
        self.stride = Fraction(stride)
        self.period = Fraction(period)
        if self.lookback < 0 or self.lookahead < 0:
            raise ValueError("lookback/lookahead must be >= 0")
        if self.stride <= 0 or self.period <= 0:
            raise ValueError("stride/period must be > 0")

    # ------------------------------------------------------------------ #
    # constructors for the structured primitives
    @classmethod
    def pointwise(cls):
        """Elementwise op along time (activations, dropout, identity)."""
        return cls(0, 0, 1, 1)

    @classmethod
    def conv(cls, kernel_size, padding):
        """Stride-1 convolution: ``out[i]`` reads ``in[i-p .. i-p+k-1]``."""
        kernel_size = int(kernel_size)
        padding = int(padding)
        return cls(padding, max(kernel_size - 1 - padding, 0), 1, 1)

    @classmethod
    def pool(cls, kernel):
        """Stride==kernel pooling: ``out[i]`` reads ``in[k*i .. k*i+k-1]``
        on a grid anchored at position 0 (hence ``period == kernel``)."""
        kernel = int(kernel)
        return cls(0, kernel - 1, kernel, kernel)

    @classmethod
    def upsample(cls, factor):
        """Nearest-neighbour upsampling: ``out[i]`` reads ``in[i//factor]``."""
        return cls(0, 0, Fraction(1, int(factor)), 1)

    # ------------------------------------------------------------------ #
    @property
    def period_int(self):
        """Smallest positive integer input shift that keeps grids aligned."""
        return self.period.numerator  # lowest terms: k*(n/d) integral => d|k

    def margins(self):
        """``(left, right)`` positions a slice edge can pollute.

        The single source of the tail-forward safety margin: ``left`` is
        how many leading outputs of a slice forward may differ from the
        full forward (padded left edge), ``right`` the trailing outputs an
        interior boundary may disturb (edge padding, pool trimming, the
        upsample ``size`` clamp).  The extra ``period + 4`` slack absorbs
        grid re-anchoring and the composition's floor/ceil rounding.
        Both :meth:`context` (the public ``tail_context()`` bound the
        perturbation contract tests pin) and the splice exclusion zones of
        :class:`repro.core.ScoringSession` derive from here, so the tested
        bound and the splice mechanics cannot drift apart.
        """
        slack = self.period_int + 4
        return self.lookback + slack, self.lookahead + slack

    def context(self):
        """One-number locality bound: the larger of :meth:`margins`.

        Scores strictly more than ``context()`` positions away from a
        perturbed input are unaffected, and a slice reaching
        ``context()`` positions past a wanted output reproduces it
        exactly — the number RAE/RDAE surface as ``tail_context()``.
        """
        return max(self.margins())

    def then(self, other):
        """The cone of ``self`` followed by ``other`` (data flows s -> o).

        Extents compose by projecting ``other``'s extents back through
        ``self``'s stride, with one position of slack per composition to
        absorb floor/ceil rounding; the combined period is the smallest
        shift that is a whole period for ``self``, lands the intermediate
        signal on an integer shift, and is a whole period for ``other``.
        """
        if not other.bounded:
            return UNBOUNDED
        slack = int(math.ceil(self.stride)) + 1
        lookback = self.lookback + int(math.ceil(other.lookback * self.stride)) + slack
        lookahead = self.lookahead + int(math.ceil(other.lookahead * self.stride)) + slack
        period = _lcm_fractions(
            self.period,
            Fraction(self.stride.numerator),   # intermediate shift integral
            other.period * self.stride,
        )
        return ReceptiveField(lookback, lookahead, self.stride * other.stride, period)

    def __repr__(self):  # pragma: no cover - cosmetic
        return "ReceptiveField(lookback=%d, lookahead=%d, stride=%s, period=%s)" % (
            self.lookback, self.lookahead, self.stride, self.period,
        )
