"""Attention layers for the Transformer-autoencoder (TAE) baseline."""

from __future__ import annotations

import numpy as np

from .functional import softmax
from .layers import LayerNorm, Linear, Module, ReLU, Sequential
from .tensor import Tensor

__all__ = ["MultiHeadAttention", "PositionalEncoding", "TransformerEncoderLayer"]


class MultiHeadAttention(Module):
    """Standard scaled dot-product multi-head self-attention.

    Operates on ``(N, T, d_model)``; ``d_model`` must be divisible by the
    number of heads.

    Attention mixes all positions (and positional encodings pin values to
    absolute offsets), so every module in this file keeps the inherited
    :data:`repro.nn.receptive.UNBOUNDED` receptive field.
    """

    def __init__(self, d_model, num_heads, rng=None):
        super().__init__()
        if d_model % num_heads != 0:
            raise ValueError("d_model %d not divisible by %d heads" % (d_model, num_heads))
        self.d_model = d_model
        self.num_heads = num_heads
        self.d_head = d_model // num_heads
        self.proj_q = Linear(d_model, d_model, rng=rng)
        self.proj_k = Linear(d_model, d_model, rng=rng)
        self.proj_v = Linear(d_model, d_model, rng=rng)
        self.proj_out = Linear(d_model, d_model, rng=rng)

    def _split_heads(self, x):
        n, t, __ = x.shape
        return x.reshape(n, t, self.num_heads, self.d_head).transpose(0, 2, 1, 3)

    def forward(self, x):
        n, t, __ = x.shape
        q = self._split_heads(self.proj_q(x))  # (N, H, T, dh)
        k = self._split_heads(self.proj_k(x))
        v = self._split_heads(self.proj_v(x))
        scores = (q @ k.transpose(0, 1, 3, 2)) * (1.0 / np.sqrt(self.d_head))
        weights = softmax(scores, axis=-1)
        mixed = weights @ v  # (N, H, T, dh)
        merged = mixed.transpose(0, 2, 1, 3).reshape(n, t, self.d_model)
        return self.proj_out(merged)


class PositionalEncoding(Module):
    """Additive sinusoidal positional encoding (Vaswani et al.)."""

    def __init__(self, d_model, max_len=4096):
        super().__init__()
        position = np.arange(max_len)[:, None]
        div = np.exp(np.arange(0, d_model, 2) * (-np.log(10000.0) / d_model))
        table = np.zeros((max_len, d_model))
        table[:, 0::2] = np.sin(position * div)
        table[:, 1::2] = np.cos(position * div)[:, : d_model // 2]
        self._table = table

    def forward(self, x):
        t = x.shape[1]
        return x + Tensor(self._table[:t][None, :, :])


class TransformerEncoderLayer(Module):
    """Pre-norm transformer encoder block: attention + position-wise FFN."""

    def __init__(self, d_model, num_heads, d_ff=None, rng=None):
        super().__init__()
        d_ff = d_ff or 2 * d_model
        self.attention = MultiHeadAttention(d_model, num_heads, rng=rng)
        self.norm1 = LayerNorm(d_model)
        self.norm2 = LayerNorm(d_model)
        self.ffn = Sequential(
            Linear(d_model, d_ff, rng=rng), ReLU(), Linear(d_ff, d_model, rng=rng)
        )

    def forward(self, x):
        x = x + self.attention(self.norm1(x))
        x = x + self.ffn(self.norm2(x))
        return x
