"""Recurrent layers: an LSTM used by the RNNAE and OmniAnomaly baselines.

The recurrence is unrolled with autograd primitives, so backpropagation
through time falls out of the ordinary :meth:`Tensor.backward` pass.
"""

from __future__ import annotations

import numpy as np

from .init import default_rng, xavier_uniform
from .layers import Module, Parameter
from .tensor import Tensor, concatenate, stack

__all__ = ["LSTMCell", "LSTM"]


class LSTMCell(Module):
    """Single LSTM step with fused gate weights.

    Gate layout in the fused matrices is ``[input, forget, cell, output]``.
    The forget-gate bias is initialised to 1, the standard trick that keeps
    memory alive early in training.

    Recurrent state threads information from every earlier step, so the
    time-axis receptive field is :data:`repro.nn.receptive.UNBOUNDED`
    (the inherited :meth:`Module.receptive_field` answer).
    """

    def __init__(self, input_size, hidden_size, rng=None):
        super().__init__()
        rng = default_rng(rng)
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.weight_x = Parameter(
            xavier_uniform(
                (input_size, 4 * hidden_size), input_size, hidden_size, rng
            )
        )
        self.weight_h = Parameter(
            xavier_uniform(
                (hidden_size, 4 * hidden_size), hidden_size, hidden_size, rng
            )
        )
        bias = np.zeros(4 * hidden_size)
        bias[hidden_size : 2 * hidden_size] = 1.0
        self.bias = Parameter(bias)

    def forward(self, x, state):
        """Advance one step.

        Parameters
        ----------
        x: Tensor ``(N, input_size)``
        state: tuple ``(h, c)`` of Tensors ``(N, hidden_size)``
        """
        h_prev, c_prev = state
        gates = x @ self.weight_x + h_prev @ self.weight_h + self.bias
        hs = self.hidden_size
        i_gate = gates[:, 0 * hs : 1 * hs].sigmoid()
        f_gate = gates[:, 1 * hs : 2 * hs].sigmoid()
        g_gate = gates[:, 2 * hs : 3 * hs].tanh()
        o_gate = gates[:, 3 * hs : 4 * hs].sigmoid()
        c = f_gate * c_prev + i_gate * g_gate
        h = o_gate * c.tanh()
        return h, c


class LSTM(Module):
    """Multi-step LSTM over ``(N, T, D)`` inputs.

    Returns the full hidden sequence ``(N, T, H)`` and the final ``(h, c)``.
    """

    def __init__(self, input_size, hidden_size, rng=None):
        super().__init__()
        self.cell = LSTMCell(input_size, hidden_size, rng=rng)
        self.hidden_size = hidden_size

    def forward(self, x, state=None):
        n, steps, __ = x.shape
        if state is None:
            h = Tensor(np.zeros((n, self.hidden_size)))
            c = Tensor(np.zeros((n, self.hidden_size)))
        else:
            h, c = state
        outputs = []
        for t in range(steps):
            h, c = self.cell(x[:, t, :], (h, c))
            outputs.append(h)
        return stack(outputs, axis=1), (h, c)


def repeat_hidden(h, steps):
    """Tile a ``(N, H)`` hidden state into a ``(N, steps, H)`` sequence.

    Used by sequence-to-sequence autoencoders whose decoder consumes the
    encoder's final state at every step.
    """
    return concatenate([h.reshape(h.shape[0], 1, h.shape[1])] * steps, axis=1)
